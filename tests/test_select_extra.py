"""Additional selector coverage: K80 calibration, report serialisation,
cost-model structure, and transfer-term consistency."""

import numpy as np
import pytest

from repro.core import ooc_boundary, ooc_johnson
from repro.gpu.device import Device, K80, V100
from repro.graphs.generators import erdos_renyi, road_like
from repro.select import Calibration, Selector, estimate_boundary, estimate_fw
from repro.select.cost_models import boundary_transfer_seconds, fw_transfer_seconds


K80_SPEC = K80.scaled(1 / 64)


class TestK80Selection:
    @pytest.fixture(scope="class")
    def selector(self):
        return Selector(
            K80_SPEC,
            Calibration(K80_SPEC, fw_n0=128, boundary_n0=256),
            density_scale=1 / 64,
            seed=0,
        )

    def test_small_separator_pick(self, selector):
        g = road_like(700, 2.6, seed=51)
        report = selector.select(g)
        assert report.algorithm == "boundary"

    def test_selection_matches_measured_on_k80(self, selector):
        g = road_like(700, 2.6, seed=51)
        report = selector.select(g)
        t_j = ooc_johnson(g, Device(K80_SPEC)).simulated_seconds
        t_b = ooc_boundary(g, Device(K80_SPEC), seed=0).simulated_seconds
        best = "johnson" if t_j < t_b else "boundary"
        assert report.algorithm == best


class TestReportSerialisation:
    def test_to_dict_round_trips_json(self):
        import json

        spec = V100.scaled(1 / 64)
        selector = Selector(
            spec, Calibration(spec, fw_n0=128, boundary_n0=256),
            density_scale=1 / 64, seed=0,
        )
        g = road_like(600, 2.6, seed=52)
        d = selector.select(g).to_dict()
        parsed = json.loads(json.dumps(d))
        assert parsed["algorithm"] == d["algorithm"]
        assert set(parsed["estimates"]) == set(d["estimates"])

    def test_middle_band_dict_shape(self):
        spec = V100.scaled(1 / 64)
        selector = Selector(
            spec, Calibration(spec, fw_n0=128, boundary_n0=256), seed=0
        )
        g = erdos_renyi(300, 500, seed=53)
        d = selector.select(g).to_dict()
        assert d["band"] == "middle"
        assert d["estimates"] == {}


class TestTransferTerms:
    def test_fw_transfer_positive_and_grows(self):
        spec = V100.scaled(1 / 64)
        small = fw_transfer_seconds(300, spec)
        large = fw_transfer_seconds(1200, spec)
        assert 0 < small < large

    def test_fw_transfer_tracks_measured_order(self):
        from repro.core import ooc_floyd_warshall

        spec = V100.scaled(1 / 64)
        g = erdos_renyi(600, 3000, seed=54)
        res = ooc_floyd_warshall(g, Device(spec))
        predicted = fw_transfer_seconds(600, spec)
        assert predicted == pytest.approx(res.stats["transfer_seconds"], rel=0.6)

    def test_boundary_transfer_tracks_measured_order(self):
        from repro.core.ooc_boundary import plan_boundary

        spec = V100.scaled(1 / 64)
        g = road_like(800, 2.6, seed=55)
        plan = plan_boundary(g, spec, seed=0)
        res = ooc_boundary(g, Device(spec), plan=plan)
        predicted = boundary_transfer_seconds(g.num_vertices, plan, spec)
        assert predicted == pytest.approx(res.stats["transfer_seconds"], rel=0.6)


class TestEstimateShapes:
    def test_fw_estimate_detail(self):
        spec = V100.scaled(1 / 64)
        calib = Calibration(spec, fw_n0=128, boundary_n0=256).run(
            with_large_separator_bins=False
        )
        est = estimate_fw(erdos_renyi(400, 2000, seed=56), spec, calib)
        assert est.algorithm == "floyd-warshall"
        assert est.detail["n0"] == 128.0
        assert est.total_seconds == est.compute_seconds + est.transfer_seconds

    def test_boundary_estimate_small_model_tagged(self):
        spec = V100.scaled(1 / 64)
        calib = Calibration(spec, fw_n0=128, boundary_n0=256).run(
            with_large_separator_bins=False
        )
        est = estimate_boundary(road_like(700, 2.6, seed=57), spec, calib, seed=0)
        assert est.detail["model"] == "small-separator"
        assert est.detail["k"] >= 2
