"""Unit tests for graph property extraction."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, planar_like
from repro.graphs.properties import analyze, connected_components, is_connected


class TestComponents:
    def test_single_component(self):
        g = planar_like(100, seed=1)
        labels = connected_components(g)
        assert labels.max() == 0
        assert is_connected(g)

    def test_two_components(self):
        g = CSRGraph.from_edges(
            4, np.array([0, 2]), np.array([1, 3]), np.array([1.0, 1.0])
        )
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_vertices(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]), np.array([1.0]))
        labels = connected_components(g)
        assert labels.max() == 1  # {0,1} and {2}

    def test_direction_ignored(self):
        # one-way chain is still weakly connected
        g = CSRGraph.from_edges(
            3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0])
        )
        assert is_connected(g)


class TestAnalyze:
    def test_basic_fields(self):
        g = erdos_renyi(200, 1500, seed=2)
        p = analyze(g)
        assert p.num_vertices == 200
        assert p.num_edges == g.num_edges
        assert p.density == pytest.approx(g.num_edges / 200**2)
        assert p.density_percent == pytest.approx(100 * p.density)
        assert p.max_out_degree >= p.mean_out_degree

    def test_ideal_separator_default_k(self):
        g = erdos_renyi(100, 400, seed=3)
        p = analyze(g)
        # k defaults to sqrt(n) = 10 -> sqrt(k*n) = sqrt(1000)
        assert p.ideal_separator == pytest.approx(np.sqrt(10 * 100))

    def test_ideal_separator_explicit_k(self):
        g = erdos_renyi(100, 400, seed=3)
        p = analyze(g, k=4)
        assert p.ideal_separator == pytest.approx(20.0)

    def test_component_count(self):
        g = CSRGraph.from_edges(
            6, np.array([0, 2, 4]), np.array([1, 3, 5]), np.ones(3)
        )
        assert analyze(g).num_components == 3
