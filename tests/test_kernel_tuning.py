"""Autotuner contract tests: fingerprinting, persistence, engine pickup.

The autotuner's promise is closed-loop: ``tune_kernels`` measures and
verifies configs, ``record_tuned`` persists the winner keyed by the
machine fingerprint, and a *fresh* ``KernelEngine("auto")`` materialises
that exact config without re-sweeping — falling back to live
micro-calibration whenever the winner is missing, stale, or recorded for
different hardware. These tests run everything against temp files via
``REPRO_BENCH_KERNELS`` so the committed ``BENCH_kernels.json`` is never
touched.
"""

import json
import os
import stat

import numpy as np
import pytest

from repro.bench.kernels import (
    check_regression,
    fingerprint_class,
    load_tuned_winner,
    machine_fingerprint,
    record_tuned,
    save_sweep,
    sweep_backends,
    tune_kernels,
    tuned_minplus_gops,
)
from repro.core.engine import KernelEngine, reset_default_engine

TUNE_N = 96  # tiny: the contract, not the Gop/s, is under test


@pytest.fixture(autouse=True)
def _isolated_bench(monkeypatch, tmp_path):
    """Point every bench read/write at a per-test file."""
    path = tmp_path / "BENCH_kernels.json"
    monkeypatch.setenv("REPRO_BENCH_KERNELS", str(path))
    reset_default_engine()
    yield path
    reset_default_engine()


@pytest.fixture(scope="module")
def tune_result():
    """One shared small tune (the sweep itself is deterministic enough)."""
    return tune_kernels(n=TUNE_N, tiles=(32, 64), repeats=1)


def test_tune_winner_is_verified_and_fingerprinted(tune_result):
    assert tune_result["fingerprint"] == machine_fingerprint()
    assert "|cpus=" in tune_result["fingerprint"]
    winner = tune_result["winner"]
    row = next(
        r for r in tune_result["rows"]
        if r["backend"] == winner["backend"] and r["options"] == winner["options"]
    )
    assert row["identical"], "a non-bit-identical config can never win"
    assert winner["gops"] == max(
        r["gops"] for r in tune_result["rows"] if r["identical"]
    )
    assert all("tiled" != r["backend"] for r in tune_result["rows"]), (
        "the demoted backend is not even searched"
    )


def test_record_and_reload_roundtrip(tune_result, _isolated_bench):
    path = _isolated_bench
    assert load_tuned_winner(path) is None  # no file yet
    record_tuned(tune_result, path)
    entry = load_tuned_winner(path)
    assert entry is not None
    assert entry["backend"] == tune_result["winner"]["backend"]
    assert entry["options"] == tune_result["winner"]["options"]
    assert tuned_minplus_gops(path) == pytest.approx(tune_result["winner"]["gops"])


def test_sweep_refresh_preserves_tuned_winners(tune_result, _isolated_bench):
    path = _isolated_bench
    record_tuned(tune_result, path)
    rows = sweep_backends(sizes=(48,), tiles=(32,), backends=("reference", "jit"))
    save_sweep(rows, path)
    payload = json.loads(path.read_text())
    assert payload["rows"], "sweep rows written"
    assert machine_fingerprint() in payload["tuned"], (
        "save_sweep must not discard autotune results"
    )


def test_fresh_engine_picks_up_winner_without_sweeping(tune_result, _isolated_bench):
    record_tuned(tune_result, _isolated_bench)
    eng = KernelEngine("auto")
    assert eng.calibration is None, "no re-sweep at startup"
    assert eng.tuned is not None
    winner = tune_result["winner"]
    assert eng.name == winner["backend"]
    assert eng.flavor == winner["flavor"]
    # the tuned engine still satisfies the bit-identity contract
    rng = np.random.default_rng(3)
    c = (rng.random((20, 20)) * 50).astype(np.float32)
    a = (rng.random((20, 20)) * 50).astype(np.float32)
    b = (rng.random((20, 20)) * 50).astype(np.float32)
    expected = c.copy()
    for k in range(20):
        np.minimum(expected, a[:, k, None] + b[k, None, :], out=expected)
    got = c.copy()
    eng.update(got, a, b)
    assert np.array_equal(got, expected)


def test_foreign_fingerprint_falls_back_to_calibration(tune_result, _isolated_bench):
    foreign = dict(tune_result, fingerprint="clang-99|-O3|cpus=4096")
    record_tuned(foreign, _isolated_bench)
    eng = KernelEngine("auto")
    assert eng.tuned is None, "a winner tuned on other hardware must not apply"
    assert eng.calibration is not None


def test_stale_flavor_falls_back_to_calibration(tune_result, _isolated_bench):
    """A winner whose recorded flavor no longer materialises (e.g. numba
    uninstalled since tuning) is discarded, not silently substituted."""
    stale = dict(
        tune_result,
        winner={"backend": "jit", "options": {"flavor": "numba"},
                "flavor": "numba", "gops": 99.0, "n": TUNE_N},
    )
    record_tuned(stale, _isolated_bench)
    eng = KernelEngine("auto")
    if eng.tuned is not None:  # environment actually has numba
        assert eng.flavor == "numba"
    else:
        assert eng.calibration is not None


def test_corrupt_bench_file_falls_back(tune_result, _isolated_bench):
    _isolated_bench.write_text("{not json")
    assert load_tuned_winner(_isolated_bench) is None
    eng = KernelEngine("auto")
    assert eng.tuned is None and eng.calibration is not None


def test_fingerprint_class_ignores_cpu_count():
    fp = machine_fingerprint()
    assert fingerprint_class(fp) == fp.rsplit("|cpus=", 1)[0]
    assert fingerprint_class("gcc-12|-O3|cpus=1") == fingerprint_class(
        "gcc-12|-O3|cpus=64"
    )
    assert fingerprint_class("gcc-12|-O3") != fingerprint_class("gcc-13|-O3")


def test_regression_gate(tune_result, _isolated_bench):
    path = _isolated_bench
    ok, msg = check_regression(tune_result, path)
    assert ok and "recording only" in msg  # no baseline file yet
    record_tuned(tune_result, path)
    ok, _ = check_regression(tune_result, path)
    assert ok  # same rate as its own baseline
    payload = json.loads(path.read_text())
    fp = tune_result["fingerprint"]
    # baseline from a sibling machine in the class (different cpu count)
    sibling = fingerprint_class(fp) + "|cpus=4096"
    payload["tuned"][sibling] = {
        **payload["tuned"][fp],
        "gops": tune_result["winner"]["gops"] * 2,
    }
    path.write_text(json.dumps(payload))
    ok, msg = check_regression(tune_result, path, tolerance=0.20)
    assert not ok, f"2× baseline must trip the 20% gate: {msg}"
    ok, _ = check_regression(tune_result, path, tolerance=0.99)
    assert ok


# ----------------------------------------------------------------------
# Compile-flag probing and degradation (satellite 1)
# ----------------------------------------------------------------------
def _fake_compiler(tmp_path, rejected: tuple[str, ...]):
    """A cc wrapper that rejects the given flags, else delegates to gcc."""
    script = tmp_path / "picky-cc"
    cases = "|".join(rejected)
    script.write_text(
        "#!/bin/sh\n"
        f'for a in "$@"; do case "$a" in {cases}) exit 1;; esac; done\n'
        'exec gcc "$@"\n'
    )
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return str(script)


needs_gcc = pytest.mark.skipif(
    os.system("gcc --version > /dev/null 2>&1") != 0, reason="needs gcc"
)


@needs_gcc
def test_flag_probe_drops_rejected_flags(tmp_path):
    from repro.core.backends.jit import _resolve_flags

    picky = _fake_compiler(tmp_path, ("-march=native", "-fopenmp"))
    flags, openmp, sanitize, degraded = _resolve_flags(picky)
    assert sanitize is None and degraded == ()
    assert "-march=native" not in flags
    assert "-fopenmp" not in flags and not openmp
    assert "-fopenmp-simd" in flags  # the degraded SIMD-only step
    assert "-O3" in flags


@needs_gcc
def test_degraded_flag_set_still_compiles(tmp_path, monkeypatch):
    """Satellite: the -O3-only retry set must produce working kernels."""
    from repro.core.backends.jit import _DEGRADED_CFLAGS, _compile_and_load

    monkeypatch.setenv("REPRO_JIT_CACHE", str(tmp_path / "jit-cache"))
    kernels = _compile_and_load("gcc", list(_DEGRADED_CFLAGS), False)
    assert not kernels.openmp
    assert kernels.build.flags == tuple(_DEGRADED_CFLAGS)
    n = 8
    c = np.full((n, n), np.inf, dtype=np.float32)
    a = np.arange(n * n, dtype=np.float32).reshape(n, n)
    b = a.T.copy()
    expected = c.copy()
    for k in range(n):
        np.minimum(expected, a[:, k, None] + b[k, None, :], out=expected)
    kernels.mp_update(
        c.ctypes.data, a.ctypes.data, b.ctypes.data, n, n, n, n, n, n, 64
    )
    assert np.array_equal(c, expected)


@needs_gcc
def test_sanitizer_flag_rejected_degrades_to_plain(tmp_path):
    """A toolchain without ASan must yield a plain build, honestly recorded."""
    from repro.core.backends.jit import _resolve_flags

    picky = _fake_compiler(tmp_path, ("-fsanitize=address",))
    flags, _openmp, sanitize, degraded = _resolve_flags(picky, sanitize="asan")
    assert sanitize is None  # the instrumented request was not honoured
    assert "sanitize:asan" in degraded
    assert "-fsanitize=address" not in flags
    assert "-O3" in flags  # ...but the plain build is intact


@needs_gcc
def test_cc_build_info_reports_degraded_sanitizer(tmp_path, monkeypatch):
    """load_cc_kernels survives a rejected sanitizer flag; build info is honest."""
    import repro.core.backends.jit as jit

    picky = _fake_compiler(tmp_path, ("-fsanitize=address",))
    monkeypatch.setenv("REPRO_CC", picky)
    monkeypatch.setenv("REPRO_JIT_CACHE", str(tmp_path / "jit-cache"))
    # marker only: the guard checks the env var, and with the flag
    # rejected the build degrades to plain, so nothing asan-linked is
    # ever dlopen'd into this process
    monkeypatch.setenv("LD_PRELOAD", "libasan-marker")
    monkeypatch.setattr(jit, "_CC_KERNELS", {})
    info = jit.cc_build_info(sanitize="asan")
    assert info is not None, "degraded build must still load"
    assert info.sanitize is None
    assert "sanitize:asan" in info.degraded


def test_no_compiler_falls_back_to_python_kernels(tmp_path, monkeypatch):
    """cc absent: load_cc_kernels is None and JITBackend still computes."""
    import repro.core.backends.jit as jit

    monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
    monkeypatch.setattr(jit, "_CC_KERNELS", {})
    assert jit.load_cc_kernels() is None
    assert jit.cc_build_info() is None
    backend = jit.JITBackend()
    assert backend.flavor in ("numba", "fallback")  # honest, no phantom cc
    n = 16
    rng = np.random.default_rng(7)
    a = rng.random((n, n)).astype(np.float32)
    b = rng.random((n, n)).astype(np.float32)
    c = np.full((n, n), np.inf, dtype=np.float32)
    expected = c.copy()
    for k in range(n):
        np.minimum(expected, a[:, k, None] + b[k, None, :], out=expected)
    backend.update(c, a, b)
    np.testing.assert_allclose(c, expected, rtol=1e-6)


@needs_gcc
def test_compile_cache_is_lock_serialised(tmp_path):
    """Satellite: the .so publish leaves the advisory lock file behind."""
    from repro.core.backends.jit import _DEGRADED_CFLAGS, compile_cc_so

    cache = tmp_path / "jit-cache"
    so1, _ = compile_cc_so(
        "gcc", list(_DEGRADED_CFLAGS), False, cache_dir=cache
    )
    so2, _ = compile_cc_so(
        "gcc", list(_DEGRADED_CFLAGS), False, cache_dir=cache
    )
    assert so1 == so2 and so1.exists()
    assert so1.with_suffix(so1.suffix + ".lock").exists()


# ----------------------------------------------------------------------
# Downstream consumers of the tuned rate (satellite 3)
# ----------------------------------------------------------------------
def test_timing_calibration_prefers_tuned_winner(tune_result, _isolated_bench):
    from repro.verifyplan.timing import TimingCalibration

    path = _isolated_bench
    record_tuned(tune_result, path)
    cal = TimingCalibration.from_bench(path)
    assert cal.minplus_rate == pytest.approx(tune_result["winner"]["gops"] * 1e9)
    # sweep rows with a higher (stale) rate must NOT override the winner
    rows = [{"backend": "jit", "gops": tune_result["winner"]["gops"] * 50,
             "identical": True}]
    payload = json.loads(path.read_text())
    payload["rows"] = rows
    path.write_text(json.dumps(payload))
    cal = TimingCalibration.from_bench(path)
    assert cal.minplus_rate == pytest.approx(tune_result["winner"]["gops"] * 1e9)


def test_measured_cpu_opt_in(tune_result, _isolated_bench):
    from repro.cpumodel import XEON_E5_2680, measured_cpu, measured_fw_rate

    assert measured_cpu(XEON_E5_2680, _isolated_bench) is XEON_E5_2680, (
        "untuned machines keep the paper-band preset untouched"
    )
    record_tuned(tune_result, _isolated_bench)
    rate = measured_fw_rate(XEON_E5_2680, _isolated_bench)
    assert rate == pytest.approx(
        tune_result["winner"]["gops"] * 1e9 / XEON_E5_2680.cores
    )
    spec = measured_cpu(XEON_E5_2680, _isolated_bench)
    assert spec.fw_rate == rate and spec.name.endswith("+measured")
    assert XEON_E5_2680.fw_rate != spec.fw_rate
