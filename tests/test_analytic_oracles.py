"""Closed-form distance oracles on structured graphs.

The scipy oracle validates against an independent implementation; these
tests validate against *mathematics* — Manhattan distances on grids,
min-arc distances on cycles, 2-hop stars — catching any error the two
implementations could share.
"""

import numpy as np
import pytest

from repro.core import ooc_boundary, ooc_floyd_warshall, ooc_johnson
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.graphs.composite import cycle_graph, grid_2d, grid_3d, star_graph


def manhattan_matrix(rows, cols):
    r = np.arange(rows * cols) // cols
    c = np.arange(rows * cols) % cols
    return np.abs(r[:, None] - r[None, :]) + np.abs(c[:, None] - c[None, :])


class TestGrid2d:
    @pytest.fixture(scope="class")
    def case(self):
        return grid_2d(8, 9), manhattan_matrix(8, 9)

    def test_fw(self, case):
        g, expected = case
        assert np.array_equal(
            ooc_floyd_warshall(g, Device(TEST_DEVICE)).to_array(), expected
        )

    def test_johnson(self, case):
        g, expected = case
        assert np.array_equal(
            ooc_johnson(g, Device(TEST_DEVICE)).to_array(), expected
        )

    def test_boundary(self, case):
        g, expected = case
        res = ooc_boundary(g, Device(V100.scaled(1 / 64)), seed=0)
        assert np.array_equal(res.to_array(), expected)


class TestGrid3d:
    def test_johnson_manhattan_3d(self):
        nx, ny, nz = 4, 4, 4
        g = grid_3d(nx, ny, nz)
        ids = np.arange(nx * ny * nz)
        x, rem = divmod(ids, ny * nz)
        y, z = divmod(rem, nz)
        expected = (
            np.abs(x[:, None] - x[None, :])
            + np.abs(y[:, None] - y[None, :])
            + np.abs(z[:, None] - z[None, :])
        )
        got = ooc_johnson(g, Device(TEST_DEVICE)).to_array()
        assert np.array_equal(got, expected)


class TestCycle:
    def test_min_arc_distance(self):
        n = 17
        g = cycle_graph(n)
        got = ooc_floyd_warshall(g, Device(TEST_DEVICE)).to_array()
        idx = np.arange(n)
        gap = np.abs(idx[:, None] - idx[None, :])
        expected = np.minimum(gap, n - gap)
        assert np.array_equal(got, expected)

    def test_directed_cycle_one_way(self):
        n = 9
        g = cycle_graph(n, directed=True)
        got = ooc_johnson(g, Device(TEST_DEVICE)).to_array()
        idx = np.arange(n)
        expected = (idx[None, :] - idx[:, None]) % n
        assert np.array_equal(got, expected)


class TestStar:
    def test_two_hop_world(self):
        n = 25
        g = star_graph(n, weight=3.0)
        got = ooc_johnson(g, Device(TEST_DEVICE)).to_array()
        expected = np.full((n, n), 6.0)
        expected[0, :] = 3.0
        expected[:, 0] = 3.0
        np.fill_diagonal(expected, 0.0)
        assert np.array_equal(got, expected)


class TestWeightedGrid:
    def test_uniform_weight_scales_distances(self):
        g1 = grid_2d(5, 6, weight=1.0)
        g7 = grid_2d(5, 6, weight=7.0)
        d1 = ooc_floyd_warshall(g1, Device(TEST_DEVICE)).to_array()
        d7 = ooc_floyd_warshall(g7, Device(TEST_DEVICE)).to_array()
        assert np.array_equal(d7, 7 * d1)
