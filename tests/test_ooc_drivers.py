"""Integration tests for the three out-of-core APSP drivers.

Every driver must produce exact shortest distances on every graph family
while respecting the device memory capacity, and the three must agree with
each other (the paper's implementations are interchangeable on results).
"""

import numpy as np
import pytest

from repro.core import (
    BoundaryInfeasibleError,
    ooc_boundary,
    ooc_floyd_warshall,
    ooc_johnson,
    plan_batch_size,
    plan_boundary,
    plan_fw_block_size,
    solve_apsp,
)
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.gpu.errors import OutOfMemoryError
from repro.graphs.generators import erdos_renyi, planar_like, rmat, road_like
from tests.conftest import oracle_apsp


@pytest.fixture
def scaled_v100():
    return V100.scaled(1 / 64)


class TestOocFloydWarshall:
    def test_correct_on_all_families(self, any_graph, device):
        res = ooc_floyd_warshall(any_graph, device)
        assert np.allclose(res.to_array(), oracle_apsp(any_graph))
        device.timeline.validate()

    def test_goes_out_of_core(self, device):
        g = erdos_renyi(300, 2500, seed=42)  # 300² floats exceed the planner's tile budget
        res = ooc_floyd_warshall(g, device)
        assert res.stats["num_blocks"] >= 2
        assert np.allclose(res.to_array(), oracle_apsp(g))

    def test_memory_capacity_respected(self, small_rmat, device):
        ooc_floyd_warshall(small_rmat, device)
        assert device.memory.peak <= device.memory.capacity

    def test_memory_all_freed(self, small_rmat, device):
        ooc_floyd_warshall(small_rmat, device)
        assert device.memory.used == 0

    def test_overlap_not_slower(self, small_rmat):
        t = {}
        for overlap in (False, True):
            dev = Device(TEST_DEVICE)
            res = ooc_floyd_warshall(small_rmat, dev, overlap=overlap)
            t[overlap] = res.simulated_seconds
        assert t[True] <= t[False] * 1.02

    def test_explicit_block_size(self, small_rmat, device):
        res = ooc_floyd_warshall(small_rmat, device, block_size=40)
        assert res.stats["block_size"] == 40
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))

    def test_oversized_block_raises_oom(self, device):
        g = erdos_renyi(250, 2000, seed=43)
        with pytest.raises(OutOfMemoryError):
            # a single 250² tile fits, but stage 3 needs several
            ooc_floyd_warshall(g, device, block_size=250)

    def test_plan_block_size_fits(self, device):
        b = plan_fw_block_size(1000, device.spec, overlap=True)
        assert 5 * b * b * 4 <= device.spec.memory_bytes

    def test_data_movement_complexity(self, device):
        """Moved bytes should be ≈ 3·n_d·n²·W (Table I: O(n_d·n²))."""
        g = erdos_renyi(150, 1500, seed=3)
        res = ooc_floyd_warshall(g, device, overlap=False)
        nd = res.stats["num_blocks"]
        n = g.num_vertices
        total = res.stats["bytes_h2d"] + res.stats["bytes_d2h"]
        assert total == pytest.approx(3 * nd * n * n * 4, rel=0.35)

    def test_disk_store_mode(self, small_rmat, device, tmp_path):
        res = ooc_floyd_warshall(small_rmat, device, store_mode="disk", store_dir=tmp_path)
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))


class TestOocJohnson:
    def test_correct_on_all_families(self, any_graph, device):
        res = ooc_johnson(any_graph, device)
        assert np.allclose(res.to_array(), oracle_apsp(any_graph))
        device.timeline.validate()

    def test_batched(self, small_rmat, device):
        res = ooc_johnson(small_rmat, device)
        assert res.stats["num_batches"] >= 2
        assert res.stats["batch_size"] * res.stats["num_batches"] >= small_rmat.num_vertices

    def test_memory_capacity_respected(self, small_rmat, device):
        ooc_johnson(small_rmat, device)
        assert device.memory.peak <= device.memory.capacity

    def test_dp_on_off_same_distances(self, small_rmat):
        results = {}
        for dp in (False, True):
            dev = Device(TEST_DEVICE)
            results[dp] = ooc_johnson(small_rmat, dev, dynamic_parallelism=dp)
        assert np.allclose(results[True].to_array(), results[False].to_array())

    def test_dp_helps_scale_free_low_occupancy(self):
        """Scale-free graph forced to tiny batches: DP must speed it up."""
        g = rmat(200, 6000, seed=4)
        times = {}
        for dp in (False, True):
            dev = Device(TEST_DEVICE)
            res = ooc_johnson(g, dev, batch_size=1, dynamic_parallelism=dp, heavy_degree=16)
            times[dp] = res.simulated_seconds
        assert times[True] < times[False]

    def test_explicit_batch_size(self, small_rmat, device):
        res = ooc_johnson(small_rmat, device, batch_size=7)
        assert res.stats["batch_size"] == 7
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))

    def test_plan_batch_size_raises_when_graph_too_big(self):
        g = erdos_renyi(500, 40000, seed=5)
        with pytest.raises(OutOfMemoryError):
            plan_batch_size(g, TEST_DEVICE)

    def test_batch_size_formula(self, small_rmat, device):
        bat = plan_batch_size(small_rmat, device.spec, queue_factor=4.0, num_row_buffers=2)
        m, n = small_rmat.num_edges, small_rmat.num_vertices
        s = 4 * (n + 1) + 8 * m
        expected = (device.spec.memory_bytes - s) // (4.0 * m * 4 + 2 * n * 4)
        assert bat == min(n, int(expected))

    def test_overlap_not_slower(self, small_rmat):
        t = {}
        for overlap in (False, True):
            dev = Device(TEST_DEVICE)
            t[overlap] = ooc_johnson(small_rmat, dev, overlap=overlap).simulated_seconds
        assert t[True] <= t[False] * 1.02


class TestOocBoundary:
    def test_correct_on_road(self, small_road, scaled_v100):
        res = ooc_boundary(small_road, Device(scaled_v100))
        assert np.allclose(res.to_array(), oracle_apsp(small_road))

    def test_correct_on_planar(self, small_planar, scaled_v100):
        dev = Device(scaled_v100)
        res = ooc_boundary(small_planar, dev)
        assert np.allclose(res.to_array(), oracle_apsp(small_planar))
        dev.timeline.validate()

    def test_correct_on_disconnected(self, scaled_v100):
        a = planar_like(60, seed=30)
        sa, da, wa = a.edge_array()
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(
            120,
            np.concatenate([sa, sa + 60]),
            np.concatenate([da, da + 60]),
            np.concatenate([wa, wa]),
        )
        res = ooc_boundary(g, Device(scaled_v100))
        assert np.allclose(res.to_array(), oracle_apsp(g))

    @pytest.mark.parametrize("batch,overlap", [(False, False), (True, False), (True, True)])
    def test_optimization_variants_agree(self, small_road, scaled_v100, batch, overlap):
        res = ooc_boundary(
            small_road, Device(scaled_v100),
            batch_transfers=batch, overlap=overlap,
        )
        assert np.allclose(res.to_array(), oracle_apsp(small_road))

    def test_batching_faster_than_naive(self, scaled_v100):
        g = road_like(600, 2.6, seed=31)
        naive = ooc_boundary(g, Device(scaled_v100), batch_transfers=False, overlap=False)
        batched = ooc_boundary(g, Device(scaled_v100), batch_transfers=True, overlap=False)
        assert batched.simulated_seconds < naive.simulated_seconds

    def test_overlap_not_slower(self, scaled_v100):
        g = road_like(600, 2.6, seed=31)
        a = ooc_boundary(g, Device(scaled_v100), batch_transfers=True, overlap=False)
        b = ooc_boundary(g, Device(scaled_v100), batch_transfers=True, overlap=True)
        assert b.simulated_seconds <= a.simulated_seconds * 1.02

    def test_memory_capacity_respected(self, small_road, scaled_v100):
        dev = Device(scaled_v100)
        ooc_boundary(small_road, dev)
        assert dev.memory.peak <= dev.memory.capacity

    def test_explicit_num_components(self, small_road, scaled_v100):
        res = ooc_boundary(small_road, Device(scaled_v100), num_components=5)
        assert res.stats["num_components"] == 5
        assert np.allclose(res.to_array(), oracle_apsp(small_road))

    def test_infeasible_on_dense_graph_tiny_device(self):
        # dense graph: every vertex is boundary at any k, so the boundary
        # matrix can never fit — the paper's Johnson-fallback case
        g = erdos_renyi(800, 40000, seed=32, symmetric=True)
        with pytest.raises(BoundaryInfeasibleError):
            plan_boundary(g, TEST_DEVICE)

    def test_plan_reuse(self, small_road, scaled_v100):
        plan = plan_boundary(small_road, scaled_v100, seed=0)
        res = ooc_boundary(small_road, Device(scaled_v100), plan=plan)
        assert res.stats["num_components"] == plan.num_components

    def test_stats_fields(self, small_road, scaled_v100):
        res = ooc_boundary(small_road, Device(scaled_v100))
        for key in ("num_components", "num_boundary", "n_row", "bytes_d2h"):
            assert key in res.stats


class TestCrossAlgorithmAgreement:
    def test_all_three_agree(self, small_road, scaled_v100):
        fw = ooc_floyd_warshall(small_road, Device(TEST_DEVICE))
        jo = ooc_johnson(small_road, Device(TEST_DEVICE))
        bd = ooc_boundary(small_road, Device(scaled_v100))
        assert np.allclose(fw.to_array(), jo.to_array())
        assert np.allclose(jo.to_array(), bd.to_array())


class TestSolveApsp:
    def test_explicit_algorithms(self, small_rmat, device):
        for alg in ("floyd-warshall", "johnson"):
            res = solve_apsp(small_rmat, algorithm=alg, device=Device(TEST_DEVICE))
            assert res.algorithm == alg
            assert np.allclose(res.to_array(), oracle_apsp(small_rmat))

    def test_boundary_via_api(self, small_road, scaled_v100):
        res = solve_apsp(small_road, algorithm="boundary", device=scaled_v100)
        assert np.allclose(res.to_array(), oracle_apsp(small_road))

    def test_auto_selection_attaches_report(self, small_road, scaled_v100):
        res = solve_apsp(small_road, algorithm="auto", device=scaled_v100, density_scale=1 / 64)
        assert "selection" in res.stats
        assert res.algorithm == res.stats["selection"].algorithm
        assert np.allclose(res.to_array(), oracle_apsp(small_road))

    def test_unknown_algorithm(self, small_rmat):
        with pytest.raises(ValueError):
            solve_apsp(small_rmat, algorithm="bogus")

    def test_spec_accepted_as_device(self, small_rmat):
        res = solve_apsp(small_rmat, algorithm="johnson", device=TEST_DEVICE)
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))
