"""Unit tests for the vectorised worklist primitives."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.sssp.frontier import (
    expand_frontier,
    scatter_min,
    segmented_arange,
    suggest_delta,
)


class TestSegmentedArange:
    def test_basic(self):
        out = segmented_arange(np.array([3, 0, 2]))
        assert out.tolist() == [0, 1, 2, 0, 1]

    def test_empty(self):
        assert segmented_arange(np.array([], dtype=np.int64)).size == 0

    def test_all_zero(self):
        assert segmented_arange(np.array([0, 0])).size == 0

    def test_matches_python_loop(self):
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 7, size=50)
        expected = [i for c in counts for i in range(c)]
        assert segmented_arange(counts).tolist() == expected


class TestExpandFrontier:
    def graph(self):
        return CSRGraph.from_edges(
            4,
            np.array([0, 0, 1, 2]),
            np.array([1, 2, 3, 3]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )

    def test_gathers_all_edges(self):
        tails, heads, w = expand_frontier(self.graph(), np.array([0, 2]))
        assert tails.tolist() == [0, 0, 1]  # positions in the input array
        assert heads.tolist() == [1, 2, 3]
        assert w.tolist() == [1.0, 2.0, 4.0]

    def test_empty_frontier(self):
        tails, heads, w = expand_frontier(self.graph(), np.array([], dtype=np.int64))
        assert tails.size == heads.size == w.size == 0

    def test_vertex_without_edges(self):
        tails, heads, _ = expand_frontier(self.graph(), np.array([3]))
        assert heads.size == 0

    def test_duplicate_frontier_entries(self):
        tails, heads, _ = expand_frontier(self.graph(), np.array([0, 0]))
        assert heads.tolist() == [1, 2, 1, 2]
        assert tails.tolist() == [0, 0, 1, 1]


class TestScatterMin:
    def test_simple_improvement(self):
        target = np.array([10.0, 10.0, 10.0])
        idx = np.array([0, 2])
        improved, vals = scatter_min(target, idx, np.array([5.0, 20.0]))
        assert improved.tolist() == [0]
        assert vals.tolist() == [5.0]
        assert target.tolist() == [5.0, 10.0, 10.0]

    def test_duplicates_take_min(self):
        target = np.array([np.inf])
        improved, vals = scatter_min(
            target, np.array([0, 0, 0]), np.array([3.0, 1.0, 2.0])
        )
        assert target[0] == 1.0
        assert improved.tolist() == [0]
        assert vals.tolist() == [1.0]

    def test_no_improvement(self):
        target = np.array([1.0, 2.0])
        improved, _ = scatter_min(target, np.array([0, 1]), np.array([5.0, 5.0]))
        assert improved.size == 0
        assert target.tolist() == [1.0, 2.0]

    def test_empty_input(self):
        target = np.array([1.0])
        improved, vals = scatter_min(
            target, np.array([], dtype=np.int64), np.array([])
        )
        assert improved.size == 0 and vals.size == 0

    def test_ties_do_not_count_as_improvement(self):
        target = np.array([3.0])
        improved, _ = scatter_min(target, np.array([0]), np.array([3.0]))
        assert improved.size == 0

    def test_matches_minimum_at(self):
        rng = np.random.default_rng(2)
        target = rng.random(50) * 10
        ref = target.copy()
        idx = rng.integers(0, 50, size=500)
        vals = rng.random(500) * 10
        scatter_min(target, idx, vals)
        np.minimum.at(ref, idx, vals)
        assert np.allclose(target, ref)


class TestSuggestDelta:
    def test_positive(self):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]), np.array([4.0]))
        assert suggest_delta(g) > 0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, np.array([]), np.array([]), np.array([]))
        assert suggest_delta(g) == 1.0
