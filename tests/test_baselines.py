"""Unit tests for the CPU baselines and the CPU machine model."""

import numpy as np
import pytest

from repro.baselines import bgl_plus_apsp, galois_apsp, super_fw_apsp
from repro.baselines.common import sample_sources
from repro.cpumodel import HASWELL_32, XEON_E5_2680
from repro.graphs.generators import erdos_renyi, planar_like, road_like
from tests.conftest import oracle_apsp


class TestCpuSpec:
    def test_scaled_rates(self):
        s = XEON_E5_2680.scaled(0.5)
        assert s.dijkstra_rate == pytest.approx(XEON_E5_2680.dijkstra_rate * 0.5)
        assert s.fw_rate == pytest.approx(XEON_E5_2680.fw_rate * 0.25)
        assert s.llc_bytes == XEON_E5_2680.llc_bytes // 2

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            XEON_E5_2680.scaled(0)

    def test_source_parallel_time(self):
        t = XEON_E5_2680.source_parallel_time(1.0, 28)
        assert t == pytest.approx(28 / (28 * 0.85))

    def test_paper_core_counts(self):
        assert XEON_E5_2680.cores == 14 and XEON_E5_2680.threads == 28
        assert HASWELL_32.cores == 32 and HASWELL_32.threads == 64


class TestSampling:
    def test_distinct_and_sorted(self):
        s = sample_sources(100, 10, seed=1)
        assert len(set(s.tolist())) == 10
        assert np.all(np.diff(s) > 0)

    def test_clamped_to_n(self):
        assert sample_sources(5, 10, seed=1).size == 5


class TestBglPlus:
    def test_exact_matches_oracle(self, small_rmat):
        res = bgl_plus_apsp(small_rmat, exact=True)
        assert np.allclose(res.distances, oracle_apsp(small_rmat))

    def test_sampled_time_close_to_exact_time(self):
        g = planar_like(300, seed=2)
        exact = bgl_plus_apsp(g, exact=True)
        sampled = bgl_plus_apsp(g, num_samples=8, seed=3)
        assert sampled.simulated_seconds == pytest.approx(
            exact.simulated_seconds, rel=0.25
        )

    def test_sampled_returns_no_distances(self, small_rmat):
        res = bgl_plus_apsp(small_rmat, num_samples=4)
        assert res.distances is None
        assert res.sampled_sources == 4

    def test_time_scales_with_edges(self):
        small = erdos_renyi(200, 600, seed=4)
        big = erdos_renyi(200, 6000, seed=4)
        assert (
            bgl_plus_apsp(big, seed=5).simulated_seconds
            > bgl_plus_apsp(small, seed=5).simulated_seconds
        )

    def test_more_threads_faster(self):
        g = erdos_renyi(200, 2000, seed=6)
        fast = bgl_plus_apsp(g, XEON_E5_2680, seed=7)
        from dataclasses import replace

        slow_cpu = replace(XEON_E5_2680, threads=1)
        slow = bgl_plus_apsp(g, slow_cpu, seed=7)
        assert slow.simulated_seconds > fast.simulated_seconds


class TestSuperFW:
    def test_exact_matches_oracle(self, small_rmat):
        res = super_fw_apsp(small_rmat, exact=True)
        assert np.allclose(res.distances, oracle_apsp(small_rmat))

    def test_time_is_cubic_in_n(self):
        a = super_fw_apsp(erdos_renyi(100, 500, seed=8))
        b = super_fw_apsp(erdos_renyi(200, 1000, seed=8))
        assert b.simulated_seconds / a.simulated_seconds == pytest.approx(8.0)

    def test_time_independent_of_m(self):
        sparse = super_fw_apsp(erdos_renyi(150, 300, seed=9))
        dense = super_fw_apsp(erdos_renyi(150, 9000, seed=9))
        assert sparse.simulated_seconds == dense.simulated_seconds


class TestGalois:
    def test_exact_matches_oracle(self, small_planar):
        res = galois_apsp(small_planar, exact=True)
        assert np.allclose(res.distances, oracle_apsp(small_planar))

    def test_sampled_mode(self, small_rmat):
        res = galois_apsp(small_rmat, num_samples=5, seed=10)
        assert res.distances is None
        assert res.simulated_seconds > 0
        assert res.stats["relaxations_per_source"] > 0

    def test_galois_slower_than_bgl(self):
        """The paper's Fig 4: Galois's reported numbers are far slower than
        BGL-plus on the same graphs."""
        g = road_like(500, 2.6, seed=11)
        galois = galois_apsp(g, seed=12)
        bgl = bgl_plus_apsp(g, seed=12)
        assert galois.simulated_seconds > bgl.simulated_seconds
