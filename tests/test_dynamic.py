"""Dynamic-graph APSP: patch engine exactness, static O(n²) proofs,
patch-soundness defects, cache revalidation, and the differential suite.

The contract under test (ISSUE 9 / ROADMAP item 3): every incremental
update path is bit-identical to a full re-solve, its transfer volume is
proven O(n²) three ways (closed form == static IR tally == dynamic
trace), and the statically planned touched-block set covers every block
the patch actually changes — with each seeded violation of that
soundness argument caught *statically*, attributed to a block.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import solve_apsp
from repro.core.blocked_fw import floyd_warshall
from repro.core.engine import DIST_DTYPE, default_engine
from repro.dynamic import (
    DistanceCache,
    DynamicAPSP,
    EdgeUpdate,
    UpdatePlan,
    apply_edge_updates,
    emit_ops_ir,
    emit_update_ir,
    seed_defect,
    trace_tally,
    update_ops,
    verify_update,
)
from repro.faults.checkpoint import CheckpointError, CheckpointStore, graph_fingerprint
from repro.gpu.device import TEST_DEVICE
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, rmat
from repro.verifyplan import (
    analyze_hb,
    audit_ir,
    check_patch_soundness,
    decrease_d2h_bytes,
    decrease_h2d_bytes,
    increase_d2h_bytes,
    ir_transfer_maps,
    static_touched_blocks,
    update_bound_checks,
)


def _resolve(graph: CSRGraph) -> np.ndarray:
    return floyd_warshall(graph.to_dense(DIST_DTYPE), engine=default_engine())


def _some_edge(graph: CSRGraph, index: int = 0) -> tuple[int, int, float]:
    src, dst, w = graph.edge_array()
    return int(src[index]), int(dst[index]), float(w[index])


def _non_edge(graph: CSRGraph, u: int = 0) -> tuple[int, int]:
    """A pair (u, v) with no current edge (for insertion tests)."""
    n = graph.num_vertices
    lo, hi = int(graph.indptr[u]), int(graph.indptr[u + 1])
    present = set(int(x) for x in graph.indices[lo:hi])
    for v in range(n - 1, -1, -1):
        if v != u and v not in present:
            return u, v
    raise AssertionError("graph is complete")  # pragma: no cover


# ---------------------------------------------------------------------------
# graph mutation primitives
# ---------------------------------------------------------------------------
def test_edge_update_validation():
    graph = erdos_renyi(20, 60, seed=1)
    apsp = DynamicAPSP(graph)
    with pytest.raises(ValueError, match="out of range"):
        apsp.apply([EdgeUpdate(0, 20, 1.0)])
    with pytest.raises(ValueError, match="self-loop"):
        apsp.apply([EdgeUpdate(3, 3, 1.0)])
    with pytest.raises(ValueError, match=">= 0"):
        apsp.apply([EdgeUpdate(0, 1, -2.0)])


def test_apply_edge_updates_builds_new_graph():
    graph = erdos_renyi(20, 60, seed=2)
    u, v, w = _some_edge(graph)
    iu, iv = _non_edge(graph, 5)
    out = apply_edge_updates(graph, {(u, v): w + 3.0, (iu, iv): 4.0})
    # the input graph is untouched (CSRGraph is frozen by contract)
    assert _some_edge(graph) == (u, v, w)
    src, dst, wts = out.edge_array()
    pairs = {(int(s), int(d)): float(x) for s, d, x in zip(src, dst, wts)}
    assert pairs[(u, v)] == w + 3.0 and pairs[(iu, iv)] == 4.0
    removed = apply_edge_updates(out, {(u, v): math.inf})
    src, dst, _ = removed.edge_array()
    assert (u, v) not in {(int(s), int(d)) for s, d in zip(src, dst)}


def test_delete_missing_edge_is_noop():
    graph = erdos_renyi(20, 60, seed=3)
    apsp = DynamicAPSP(graph)
    before = apsp.dist.copy()
    iu, iv = _non_edge(graph, 2)
    result = apsp.delete_edge(iu, iv)
    assert result.applied == 0 and result.noops == 1 and not result.passes
    assert result.old_fingerprint == result.new_fingerprint
    assert np.array_equal(apsp.dist, before)


# ---------------------------------------------------------------------------
# exactness: every update path bit-identical to a full re-solve
# ---------------------------------------------------------------------------
def test_single_decrease_bit_identical():
    graph = rmat(60, 360, seed=4)
    apsp = DynamicAPSP(graph, block_size=16)
    u, v, w = _some_edge(graph)
    result = apsp.decrease_edge(u, v, max(0.0, w // 2))
    assert result.applied == 1
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))


def test_insertion_is_a_decrease_from_inf():
    graph = rmat(60, 360, seed=5)
    apsp = DynamicAPSP(graph, block_size=20)
    iu, iv = _non_edge(graph, 7)
    result = apsp.decrease_edge(iu, iv, 1.0)
    assert result.applied == 1
    assert [p.plan.kind for p in result.passes] == ["decrease"]
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))


def test_batched_decreases_exceeding_chunk_split_exactly():
    """More simultaneous decreases than n // 2 must split into chunks
    that compose to the same closure."""
    graph = erdos_renyi(30, 240, seed=6)
    apsp = DynamicAPSP(graph, block_size=10)
    src, dst, w = graph.edge_array()
    batch = [
        EdgeUpdate(int(src[i]), int(dst[i]), float(w[i]) // 2)
        for i in range(min(24, len(src)))
    ]
    result = apsp.apply(batch)
    kinds = [p.plan.kind for p in result.passes]
    assert kinds.count("decrease") >= 2, "expected the batch to chunk"
    assert sum(p.plan.k for p in result.passes if p.plan.kind == "decrease") >= 2
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))


def test_increase_and_disconnecting_delete_bit_identical():
    # a two-vertex bridge: deleting it must reintroduce infinities
    graph = CSRGraph.from_edges(
        6,
        np.array([0, 1, 2, 3, 4, 1], dtype=np.int64),
        np.array([1, 2, 3, 4, 5, 0], dtype=np.int64),
        np.array([2.0, 3.0, 1.0, 2.0, 4.0, 2.0]),
    )
    apsp = DynamicAPSP(graph, block_size=3)
    result = apsp.increase_edge(1, 2, 9.0)
    assert result.applied == 1
    assert [p.plan.kind for p in result.passes] == ["increase"]
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))
    result = apsp.delete_edge(1, 2)
    assert result.applied == 1
    assert not np.isfinite(apsp.dist[0, 3])
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))


def test_mixed_batch_bit_identical():
    graph = rmat(48, 288, seed=8)
    apsp = DynamicAPSP(graph, block_size=16)
    src, dst, w = graph.edge_array()
    iu, iv = _non_edge(graph, 3)
    batch = [
        EdgeUpdate(int(src[0]), int(dst[0]), float(w[0]) // 2),  # decrease
        EdgeUpdate(int(src[1]), int(dst[1]), float(w[1]) + 7.0),  # increase
        EdgeUpdate.delete(int(src[2]), int(dst[2])),  # delete
        EdgeUpdate(iu, iv, 2.0),  # insert
    ]
    result = apsp.apply(batch)
    assert result.applied >= 3
    assert np.array_equal(apsp.dist, _resolve(apsp.graph))


def test_noop_updates_do_not_sweep():
    graph = erdos_renyi(24, 100, seed=9)
    apsp = DynamicAPSP(graph)
    u, v, w = _some_edge(graph)
    before = apsp.dist.copy()
    result = apsp.apply([EdgeUpdate(u, v, w)])  # same weight
    assert result.applied == 0 and result.noops == 1 and not result.passes
    assert np.array_equal(apsp.dist, before)


# ---------------------------------------------------------------------------
# static layer: trace == IR == closed form, coverage, HB
# ---------------------------------------------------------------------------
def _one_pass(kind: str):
    """A real executed pass of the requested kind, plus its device spec."""
    graph = rmat(60, 360, seed=11)
    apsp = DynamicAPSP(graph, block_size=20)
    src, dst, w = graph.edge_array()
    if kind == "decrease":
        result = apsp.apply(
            [EdgeUpdate(int(src[i]), int(dst[i]), float(w[i]) // 2) for i in range(3)]
        )
    else:
        result = apsp.apply([EdgeUpdate(int(src[0]), int(dst[0]), float(w[0]) + 9.0)])
    passes = [p for p in result.passes if p.plan.kind == kind]
    assert passes, f"update produced no {kind} pass"
    return passes[0]


@pytest.mark.parametrize("kind", ["decrease", "increase"])
def test_trace_matches_ir_per_key(kind):
    patch = _one_pass(kind)
    ir = emit_update_ir(patch.plan, TEST_DEVICE)
    ir_h2d, ir_d2h = ir_transfer_maps(ir)
    dyn = trace_tally(patch.trace)
    assert ir_h2d == dyn["h2d_by_key"]
    assert ir_d2h == dyn["d2h_by_key"]


@pytest.mark.parametrize("kind", ["decrease", "increase"])
def test_closed_form_bounds_exact_and_o_n2_gated(kind):
    patch = _one_pass(kind)
    plan = patch.plan
    ir = emit_update_ir(plan, TEST_DEVICE)
    _peak, tally, findings = audit_ir(ir)
    assert findings == []
    ir_tally = {
        "bytes_h2d": tally.bytes_h2d, "bytes_d2h": tally.bytes_d2h,
        "num_h2d": tally.num_h2d, "num_d2h": tally.num_d2h,
    }
    checks = update_bound_checks(plan, ir_tally, trace_tally(patch.trace))
    assert checks and all(c.ok for c in checks), [c.describe() for c in checks]
    names = {c.name for c in checks}
    assert "update-o-n2-gate" in names
    if kind == "decrease":
        assert tally.bytes_h2d == decrease_h2d_bytes(plan.n, plan.k)
        assert tally.bytes_d2h == decrease_d2h_bytes(plan.n)
    else:
        assert tally.bytes_h2d == plan.csr_bytes
        assert tally.bytes_d2h == increase_d2h_bytes(plan.n, len(plan.affected_rows))


def test_o_n2_gate_scales_quadratically_not_cubically():
    """The gated volume is 4·n²·elem — a re-solve moves ≥ n_d·n² more.
    Doubling n must ~4× the bound, never ~8×."""
    small = UpdatePlan(kind="decrease", n=64, block_size=16, k=2)
    large = UpdatePlan(kind="decrease", n=128, block_size=32, k=2)
    s = decrease_h2d_bytes(small.n, small.k) + decrease_d2h_bytes(small.n)
    l = decrease_h2d_bytes(large.n, large.k) + decrease_d2h_bytes(large.n)
    assert 3.5 < l / s < 4.5


@pytest.mark.parametrize("kind", ["decrease", "increase"])
def test_touched_blocks_cover_changed_blocks(kind):
    patch = _one_pass(kind)
    ir = emit_update_ir(patch.plan, TEST_DEVICE)
    static = static_touched_blocks(ir, patch.plan.num_blocks)
    assert patch.changed_blocks <= static
    assert check_patch_soundness(patch.plan, ir, patch.changed_blocks) == []


@pytest.mark.parametrize("kind", ["decrease", "increase"])
def test_update_schedule_happens_before_clean(kind):
    patch = _one_pass(kind)
    report = analyze_hb(emit_update_ir(patch.plan, TEST_DEVICE))
    assert report.ok, [f.describe() for f in report.findings]


# ---------------------------------------------------------------------------
# seeded soundness defects: each caught statically, with attribution
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "defect", ["shrunken-region", "dropped-writeback", "stale-pivot-panel"]
)
def test_seeded_decrease_defects_caught(defect):
    patch = _one_pass("decrease")
    target = max(patch.changed_blocks)
    ops = seed_defect(list(update_ops(patch.plan)), defect, patch.plan, target)
    ir = emit_ops_ir(ops, patch.plan, TEST_DEVICE)
    findings = check_patch_soundness(patch.plan, ir, patch.changed_blocks)
    assert findings, f"{defect} not caught"
    if defect == "stale-pivot-panel":
        assert any(f.kind == "stale-pivot-panel" for f in findings)
    else:
        assert any(f.block == target for f in findings), (
            f"{defect} caught without block attribution: "
            + "; ".join(f.describe() for f in findings)
        )


@pytest.mark.parametrize("defect", ["shrunken-region", "dropped-writeback"])
def test_seeded_increase_defects_caught(defect):
    patch = _one_pass("increase")
    target = max(patch.changed_blocks)
    ops = seed_defect(list(update_ops(patch.plan)), defect, patch.plan, target)
    ir = emit_ops_ir(ops, patch.plan, TEST_DEVICE)
    findings = check_patch_soundness(patch.plan, ir, patch.changed_blocks)
    assert any(f.block == target for f in findings), f"{defect} not attributed"


def test_dropped_writeback_also_diverges_bound_tally():
    patch = _one_pass("decrease")
    target = max(patch.changed_blocks)
    ops = seed_defect(
        list(update_ops(patch.plan)), "dropped-writeback", patch.plan, target
    )
    ir = emit_ops_ir(ops, patch.plan, TEST_DEVICE)
    _peak, tally, _findings = audit_ir(ir)
    ir_tally = {
        "bytes_h2d": tally.bytes_h2d, "bytes_d2h": tally.bytes_d2h,
        "num_h2d": tally.num_h2d, "num_d2h": tally.num_d2h,
    }
    checks = update_bound_checks(patch.plan, ir_tally, trace_tally(patch.trace))
    assert any(not c.ok for c in checks), "byte-exact bound must notice a lost d2h"


# ---------------------------------------------------------------------------
# the full driver (what `repro verify-update` runs)
# ---------------------------------------------------------------------------
def test_verify_update_end_to_end():
    ver = verify_update()
    assert ver.ok, ver.describe()
    assert len(ver.audits) >= 6
    assert {d.name for d in ver.defects} == {
        "shrunken-region", "dropped-writeback", "stale-pivot-panel"
    }
    assert all(d.caught for d in ver.defects)
    # every catch that claims attribution names a block
    assert all(
        d.block is not None for d in ver.defects if d.name != "stale-pivot-panel"
    )
    payload = ver.to_dict()
    assert payload["ok"] is True
    assert set(payload["revalidation"]) == {
        "fingerprint-rotates", "revalidated-entry-reused",
        "revalidated-bit-identical", "stale-checkpoint-refused",
    }


# ---------------------------------------------------------------------------
# CheckpointStore invalidation / DistanceCache revalidation (satellite 3)
# ---------------------------------------------------------------------------
def test_fingerprint_rotates_on_any_mutation():
    graph = erdos_renyi(24, 100, seed=12)
    u, v, w = _some_edge(graph)
    same = apply_edge_updates(graph, {})
    changed = apply_edge_updates(graph, {(u, v): w + 1.0})
    assert graph_fingerprint(same) == graph_fingerprint(graph)
    assert graph_fingerprint(changed) != graph_fingerprint(graph)


def test_cache_lookup_misses_for_unknown_graph(tmp_path):
    cache = DistanceCache(tmp_path)
    graph = erdos_renyi(24, 100, seed=13)
    assert cache.lookup(graph) is None
    with pytest.raises(CheckpointError, match="no cached closure"):
        cache.revalidate(graph, [EdgeUpdate(0, 1, 1.0)])


def test_stale_checkpoint_refused_not_served(tmp_path):
    """A store written for one graph must refuse a bind for another —
    the invalidation mechanism behind content-hash keying."""
    graph = erdos_renyi(24, 100, seed=14)
    u, v, w = _some_edge(graph)
    mutated = apply_edge_updates(graph, {(u, v): w + 5.0})
    cache = DistanceCache(tmp_path)
    cache.store(graph, DynamicAPSP(graph).dist)
    with pytest.raises(CheckpointError):
        CheckpointStore(cache._subdir(graph_fingerprint(graph))).bind(
            algorithm="dynamic-dist", fingerprint=graph_fingerprint(mutated)
        )
    # and the cache itself misses rather than serving the stale entry
    assert cache.lookup(mutated) is None


def test_revalidation_reuses_entry_bit_identically(tmp_path):
    graph = rmat(48, 288, seed=15)
    cache = DistanceCache(tmp_path)
    apsp = DynamicAPSP(graph, block_size=16)
    cache.store(graph, apsp.dist)
    u, v, w = _some_edge(graph)
    updates = [EdgeUpdate(u, v, float(w) // 2)]
    new_graph, new_dist, result = cache.revalidate(
        graph, updates, block_size=16
    )
    assert result.applied == 1 and result.new_fingerprint == graph_fingerprint(new_graph)
    # the patched entry is re-filed under the new fingerprint and equals
    # a from-scratch solve of the mutated graph, bit for bit
    reloaded = cache.lookup(new_graph)
    assert reloaded is not None and np.array_equal(reloaded, new_dist)
    assert np.array_equal(new_dist, _resolve(new_graph))
    # the old entry still answers for the old graph
    assert cache.lookup(graph) is not None


# ---------------------------------------------------------------------------
# differential suite (satellite 4): random mixed sequences vs solve_apsp
# ---------------------------------------------------------------------------
@st.composite
def update_scripts(draw):
    """A base graph plus a short sequence of mixed update batches."""
    n = draw(st.integers(min_value=6, max_value=20))
    num_edges = draw(st.integers(min_value=n, max_value=3 * n))
    rng_pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
    edges = draw(
        st.lists(rng_pairs, min_size=num_edges, max_size=num_edges).map(
            lambda ps: [(u, v) for u, v in ps if u != v]
        )
    )
    weights = draw(
        st.lists(st.integers(1, 30), min_size=len(edges), max_size=len(edges))
    )
    num_batches = draw(st.integers(min_value=1, max_value=3))
    batches = []
    for _ in range(num_batches):
        size = draw(st.integers(min_value=1, max_value=4))
        batch = []
        for _ in range(size):
            u, v = draw(rng_pairs.filter(lambda p: p[0] != p[1]))
            kind = draw(st.sampled_from(["decrease", "increase", "delete"]))
            if kind == "delete":
                batch.append(EdgeUpdate.delete(u, v))
            elif kind == "decrease":
                batch.append(EdgeUpdate(u, v, float(draw(st.integers(0, 5)))))
            else:
                batch.append(EdgeUpdate(u, v, float(draw(st.integers(20, 60)))))
        batches.append(batch)
    return n, edges, weights, batches


@given(update_scripts())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_differential_incremental_vs_full_resolve(script):
    """Bit-identical float32 distances on every prefix of a random mixed
    update sequence — incremental patching vs a full ``solve_apsp``."""
    n, edges, weights, batches = script
    graph = CSRGraph.from_edges(
        n,
        np.array([u for u, _ in edges], dtype=np.int64),
        np.array([v for _, v in edges], dtype=np.int64),
        np.array(weights[: len(edges)], dtype=np.float64),
    )
    apsp = DynamicAPSP(graph, block_size=max(1, n // 3))
    for batch in batches:
        apsp.apply(batch)
        full = solve_apsp(apsp.graph, algorithm="floyd-warshall", device=TEST_DEVICE)
        assert np.array_equal(apsp.dist, full.to_array()), (
            "incremental state diverged from full re-solve"
        )
