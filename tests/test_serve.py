"""The serving layer: differential correctness, faults, fairness, admission.

The core property (ISSUE acceptance): *any* interleaving of point/SSSP/full
queries and edge-update mutations answered by :class:`repro.serve.APSPService`
must be bit-identical to a fresh solve of the graph version the drain ran
against. Hypothesis drives the interleavings; seeded-fault legs check that
transient mid-batch faults retry (never corrupting an answer) and that a
killed solve resumes from the spool instead of recomputing.
"""

from __future__ import annotations

import math
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.dynamic.patch import EdgeUpdate
from repro.faults.plan import FaultPlan
from repro.graphs.generators import erdos_renyi
from repro.gpu.device import TEST_DEVICE
from repro.gpu.errors import TransientDeviceError
from repro.serve import AdmissionError, APSPService, Query
from tests.conftest import oracle_apsp

N = 16
TENANTS = ("alpha", "beta")


def _graph(seed: int = 123):
    return erdos_renyi(N, 60, seed=seed)


def _assert_matches(resp, truth: np.ndarray) -> None:
    q = resp.query
    if q.kind == "point":
        assert float(resp.value) == float(truth[q.u, q.v]), resp
    elif q.kind == "sssp":
        assert np.array_equal(
            np.asarray(resp.value, dtype=np.float64), truth[q.source]
        ), resp
    else:
        assert np.array_equal(np.asarray(resp.value, dtype=np.float64), truth), resp


# ---------------------------------------------------------------------------
# hypothesis strategies: one op = a query, a mutation batch, or a drain
# ---------------------------------------------------------------------------
_vertex = st.integers(0, N - 1)
_tenant = st.sampled_from(TENANTS)
_weight = st.one_of(st.integers(1, 50).map(float), st.just(math.inf))


@st.composite
def _edge_update(draw):
    u = draw(_vertex)
    v = draw(st.integers(0, N - 2))
    if v >= u:
        v += 1
    return EdgeUpdate(u, v, draw(_weight))


_op = st.one_of(
    st.tuples(st.just("point"), _vertex, _vertex, _tenant),
    st.tuples(st.just("sssp"), _vertex, _tenant),
    st.tuples(st.just("sssp"), _vertex, _tenant),
    st.tuples(st.just("full"), _tenant),
    st.tuples(st.just("mutate"), st.lists(_edge_update(), min_size=1, max_size=3)),
    st.tuples(st.just("drain")),
)


class TestDifferentialHarness:
    """Service answers == fresh ground truth under arbitrary interleavings."""

    @given(ops=st.lists(_op, max_size=24))
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_any_interleaving_matches_fresh_solve(self, ops):
        graph = _graph()
        truths: dict[str, np.ndarray] = {}
        with tempfile.TemporaryDirectory(prefix="repro-serve-test-") as tmp:
            service = APSPService(
                graph,
                spec=TEST_DEVICE,
                cache_dir=Path(tmp) / "cache",
                spool_dir=Path(tmp) / "spool",
                algorithm="johnson",
            )

            def check_drain() -> None:
                # queries are answered against the graph at drain time
                fp = service.fingerprint
                if fp not in truths:
                    truths[fp] = oracle_apsp(service.graph)
                for resp in service.drain():
                    assert resp.fingerprint == fp
                    _assert_matches(resp, truths[fp])

            for op in ops:
                if op[0] == "point":
                    service.submit(Query.point(op[1], op[2], tenant=op[3]))
                elif op[0] == "sssp":
                    service.submit(Query.sssp(op[1], tenant=op[2]))
                elif op[0] == "full":
                    service.submit(Query.full(tenant=op[1]))
                elif op[0] == "mutate":
                    service.mutate(op[1])
                else:
                    check_drain()
            check_drain()
            assert not service.pending

    @given(seed=st.integers(0, 7))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_transient_faults_mid_batch_never_corrupt_answers(self, seed):
        """Injected transfer/kernel faults retry inside the streams; every
        answer stays bit-identical and the clock pays the backoff."""
        graph = _graph(seed=9)
        truth = oracle_apsp(graph)
        service = APSPService(
            graph,
            spec=TEST_DEVICE,
            faults=FaultPlan.random(seed, 4, sites=("h2d", "d2h", "kernel"), horizon=2),
        )
        for u in range(0, N, 2):
            service.submit(Query.sssp(u))
            service.submit(Query.point(u, (u + 3) % N))
        responses = service.drain()
        assert len(responses) == N
        for resp in responses:
            _assert_matches(resp, truth)
        # the plan's early ordinals are guaranteed to be exercised
        assert service.device.fault_report.injected > 0
        assert not service.pending


class TestKillAndResume:
    def test_killed_solve_stays_pending_and_resumes_in_new_service(self, tmp_path):
        """Permanent device loss mid-solve: the drain raises, the ticket is
        NOT answered (no stale/partial data), and a replacement service
        over the same spool resumes from the checkpoint."""
        graph = erdos_renyi(100, 1000, seed=5)
        cache_dir, spool = tmp_path / "cache", tmp_path / "spool"
        crashed = APSPService(
            graph,
            spec=TEST_DEVICE,
            cache_dir=cache_dir,
            spool_dir=spool,
            algorithm="johnson",
            faults=FaultPlan.kill("d2h", 1),
        )
        ticket = crashed.submit(Query.full())
        with pytest.raises(TransientDeviceError):
            crashed.drain()
        assert [t.ticket_id for t in crashed.pending] == [ticket.ticket_id]
        assert crashed.served == {}

        fresh = APSPService(
            graph,
            spec=TEST_DEVICE,
            cache_dir=cache_dir,
            spool_dir=spool,
            algorithm="johnson",
        )
        fresh.submit(Query.full())
        (resp,) = fresh.drain()
        assert resp.served_from == "solve-resumed"
        assert np.array_equal(
            np.asarray(resp.value, dtype=np.float64), oracle_apsp(graph)
        )


class TestFairScheduling:
    def test_light_tenant_is_not_starved_by_a_flood(self):
        """WFQ: after 8 queued requests from one tenant, a single request
        from another tenant completes second, not ninth."""
        graph = _graph()
        service = APSPService(graph, spec=TEST_DEVICE, batch_size=1, row_budget=0)
        for u in range(8):
            service.submit(Query.sssp(u, tenant="flood"))
        light = service.submit(Query.sssp(9, tenant="light"))
        order = [r.ticket_id for r in service.drain()]
        assert order.index(light.ticket_id) == 1

    def test_heavier_weight_drains_first(self):
        graph = _graph()
        service = APSPService(
            graph,
            spec=TEST_DEVICE,
            batch_size=1,
            row_budget=0,
            tenant_weights={"gold": 4.0, "free": 1.0},
        )
        for u in range(4):
            service.submit(Query.sssp(u, tenant="free"))
            service.submit(Query.sssp(u + 4, tenant="gold"))
        order = [r.query.tenant for r in service.drain()]
        # gold's virtual clock advances 4x slower: its 4 requests all land
        # before free's 2nd request
        assert order.index("gold") <= 1
        assert order[:6].count("gold") == 4

    def test_completion_times_follow_fair_order(self):
        graph = _graph()
        service = APSPService(graph, spec=TEST_DEVICE, batch_size=1, row_budget=0)
        for u in range(6):
            service.submit(Query.sssp(u, tenant=TENANTS[u % 2]))
        responses = service.drain()
        completed = [r.completed for r in responses]
        assert completed == sorted(completed)
        assert all(r.latency > 0 for r in responses)


class TestAdmissionControl:
    def test_over_budget_request_is_refused_with_retry_hint(self):
        graph = _graph()
        probe = APSPService(graph, spec=TEST_DEVICE, algorithm="johnson")
        full_cost = probe.submit(Query.full()).cost_estimate
        assert full_cost > 0

        service = APSPService(
            graph,
            spec=TEST_DEVICE,
            algorithm="johnson",
            budget_seconds=1.5 * full_cost,
        )
        service.submit(Query.full())
        with pytest.raises(AdmissionError) as excinfo:
            service.submit(Query.full(tenant="late"))
        err = excinfo.value
        assert err.budget_seconds == pytest.approx(1.5 * full_cost)
        assert err.backlog_seconds == pytest.approx(full_cost)
        assert err.retry_after >= 0
        assert service.admission.tenant("late").rejected == 1
        # the refused request left no ticket behind
        assert len(service.pending) == 1

    def test_cache_hits_are_always_admissible(self, tmp_path):
        graph = _graph()
        service = APSPService(
            graph,
            spec=TEST_DEVICE,
            cache_dir=tmp_path / "cache",
            algorithm="johnson",
            budget_seconds=1e-12,
        )
        # a cold full query blows the (absurd) budget...
        with pytest.raises(AdmissionError):
            service.submit(Query.full())
        # ...but once the closure is cached, everything prices at zero
        service.cache.put(graph, oracle_apsp(graph).astype(np.float32))
        for query in (Query.full(), Query.sssp(3), Query.point(1, 2)):
            service.submit(query)
        responses = service.drain()
        assert [r.served_from for r in responses] == ["closure-cache"] * 3

    def test_backlog_releases_on_completion(self):
        graph = _graph()
        service = APSPService(graph, spec=TEST_DEVICE, row_budget=0)
        for u in range(4):
            service.submit(Query.sssp(u))
        assert service.admission.backlog_seconds > 0
        service.drain()
        assert service.admission.backlog_seconds == pytest.approx(0.0, abs=1e-15)


class TestServeCli:
    def test_selftest_smoke(self, capsys):
        assert main(["serve", "--selftest"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_serve_json_schema(self, capsys):
        import json

        code = main([
            "serve", "er:n=32,m=120", "--queries", "12", "--mutations", "2",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["answered"] == 12
        assert payload["rejected"] == 0
        assert payload["p99_us"] >= payload["p50_us"] > 0
        assert payload["stats"]["cache"] is None
