"""Unit tests for the four SSSP implementations (oracle: scipy Dijkstra)."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.sssp import (
    bellman_ford,
    delta_stepping,
    dijkstra,
    near_far,
    near_far_batch,
)
from tests.conftest import oracle_sssp


ALGORITHMS = {
    "dijkstra": lambda g, s: dijkstra(g, s),
    "bellman-ford": lambda g, s: bellman_ford(g, s),
    "delta-stepping": lambda g, s: delta_stepping(g, s),
    "near-far": lambda g, s: near_far(g, s),
}


@pytest.mark.parametrize("alg", sorted(ALGORITHMS))
class TestCorrectness:
    def test_matches_oracle(self, alg, any_graph):
        dist, _ = ALGORITHMS[alg](any_graph, 0)
        expected = oracle_sssp(any_graph, [0])[0]
        assert np.allclose(dist, expected)

    def test_multiple_sources(self, alg, small_rmat):
        for s in (0, 17, 63, small_rmat.num_vertices - 1):
            dist, _ = ALGORITHMS[alg](small_rmat, s)
            expected = oracle_sssp(small_rmat, [s])[0]
            assert np.allclose(dist, expected), f"source {s}"

    def test_source_distance_zero(self, alg, small_planar):
        dist, _ = ALGORITHMS[alg](small_planar, 5)
        assert dist[5] == 0.0

    def test_unreachable_is_inf(self, alg):
        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]), np.array([2.0]))
        dist, _ = ALGORITHMS[alg](g, 0)
        assert dist[1] == 2.0
        assert np.isinf(dist[2])

    def test_source_out_of_range(self, alg, small_rmat):
        with pytest.raises(ValueError):
            ALGORITHMS[alg](small_rmat, small_rmat.num_vertices)
        with pytest.raises(ValueError):
            ALGORITHMS[alg](small_rmat, -1)

    def test_single_vertex_graph(self, alg):
        g = CSRGraph.from_edges(1, np.array([]), np.array([]), np.array([]))
        dist, _ = ALGORITHMS[alg](g, 0)
        assert dist[0] == 0.0


class TestDijkstra:
    def test_stats_counts(self, small_rmat):
        _, stats = dijkstra(small_rmat, 0)
        assert stats.pops <= stats.pushes
        assert stats.relaxations > 0
        assert stats.heap_ops == stats.pushes + stats.pops

    def test_predecessors_form_tree(self, small_planar):
        dist, pred, _ = dijkstra(small_planar, 0, with_predecessors=True)
        assert pred[0] == -1
        # walking predecessors from any reachable vertex terminates at source
        for v in (10, 50, 100):
            hops = 0
            u = v
            while pred[u] != -1:
                u = pred[u]
                hops += 1
                assert hops <= small_planar.num_vertices
            assert u == 0 or np.isinf(dist[v])

    def test_predecessor_edge_consistency(self, small_rmat):
        dist, pred, _ = dijkstra(small_rmat, 0, with_predecessors=True)
        for v in range(small_rmat.num_vertices):
            if pred[v] >= 0:
                nbrs, w = small_rmat.neighbors(int(pred[v]))
                idx = np.nonzero(nbrs == v)[0]
                assert idx.size
                assert dist[v] == pytest.approx(dist[pred[v]] + w[idx].min())


class TestBellmanFord:
    def test_rounds_bounded(self, small_planar):
        _, stats = bellman_ford(small_planar, 0)
        assert stats.rounds <= small_planar.num_vertices

    def test_max_rounds_enforced(self, small_road):
        # road graphs have huge hop diameters; 2 rounds cannot converge
        with pytest.raises(RuntimeError):
            bellman_ford(small_road, 0, max_rounds=2)


class TestDeltaStepping:
    @pytest.mark.parametrize("delta", [0.5, 5.0, 50.0, 1e6])
    def test_delta_independence(self, small_rmat, delta):
        dist, _ = delta_stepping(small_rmat, 0, delta=delta)
        expected = oracle_sssp(small_rmat, [0])[0]
        assert np.allclose(dist, expected)

    def test_large_delta_degenerates_to_fewer_buckets(self, small_rmat):
        _, few = delta_stepping(small_rmat, 0, delta=1e9)
        _, many = delta_stepping(small_rmat, 0, delta=1.0)
        assert few.buckets_processed <= many.buckets_processed

    def test_invalid_delta(self, small_rmat):
        with pytest.raises(ValueError):
            delta_stepping(small_rmat, 0, delta=0.0)


class TestNearFar:
    @pytest.mark.parametrize("delta", [1.0, 20.0, 500.0])
    def test_delta_independence(self, small_planar, delta):
        dist, _ = near_far(small_planar, 0, delta=delta)
        expected = oracle_sssp(small_planar, [0])[0]
        assert np.allclose(dist, expected)

    def test_batch_matches_oracle(self, any_graph):
        sources = np.array([0, 3, 9])
        dist, _ = near_far_batch(any_graph, sources)
        expected = oracle_sssp(any_graph, sources)
        assert np.allclose(dist, expected)

    def test_batch_equals_singles(self, small_rmat):
        sources = np.array([1, 2, 3, 4])
        batch, _ = near_far_batch(small_rmat, sources)
        for i, s in enumerate(sources):
            single, _ = near_far(small_rmat, int(s))
            assert np.allclose(batch[i], single)

    def test_empty_batch(self, small_rmat):
        dist, stats = near_far_batch(small_rmat, np.array([], dtype=np.int64))
        assert dist.shape == (0, small_rmat.num_vertices)
        assert stats.relaxations == 0

    def test_heavy_stats_counted(self):
        # star graph: hub with out-degree 100 > threshold
        n = 101
        src = np.concatenate([[i for i in range(1, n)], np.zeros(n - 1, dtype=int)])
        dst = np.concatenate([np.zeros(n - 1, dtype=int), [i for i in range(1, n)]])
        g = CSRGraph.from_edges(n, src, dst, np.ones(2 * (n - 1)))
        _, stats = near_far(g, 1, heavy_degree=50)
        assert stats.heavy_relaxations > 0
        assert stats.child_launches > 0

    def test_no_heavy_below_threshold(self, small_planar):
        _, stats = near_far(small_planar, 0, heavy_degree=10**6)
        assert stats.heavy_relaxations == 0
        assert stats.child_launches == 0

    def test_stats_relaxations_at_least_reachable_edges(self, small_planar):
        _, stats = near_far(small_planar, 0)
        assert stats.relaxations >= small_planar.num_edges  # connected graph

    def test_invalid_delta(self, small_rmat):
        with pytest.raises(ValueError):
            near_far(small_rmat, 0, delta=-1.0)


class TestWorkEfficiency:
    def test_near_far_less_work_than_bellman_ford(self, small_road):
        """Near-Far's bucket ordering should beat Bellman-Ford's flood on
        high-diameter graphs (the paper's §II-B work-efficiency argument)."""
        _, nf = near_far(small_road, 0)
        _, bf = bellman_ford(small_road, 0)
        assert nf.relaxations < bf.relaxations
