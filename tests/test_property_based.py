"""Property-based tests (hypothesis) for the core invariants.

Strategies generate arbitrary small weighted digraphs; the properties assert
the invariants DESIGN.md §6 lists: oracle equivalence for every APSP path,
min-plus algebra laws, partition well-formedness, timeline causality, and
allocator safety.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.blocked_fw import blocked_floyd_warshall, floyd_warshall
from repro.core.minplus import minplus, minplus_update
from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.errors import OutOfMemoryError
from repro.gpu.memory import DeviceMemory
from repro.gpu.timeline import Timeline
from repro.graphs.csr import CSRGraph
from repro.partition.kway import partition_kway
from repro.partition.separator import boundary_nodes
from repro.sssp import bellman_ford, delta_stepping, dijkstra, near_far
from tests.conftest import oracle_apsp, oracle_sssp

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def graphs(draw, max_n=28, max_extra_edges=80):
    """Arbitrary small weighted digraph (possibly disconnected)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    num_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=num_edges, max_size=num_edges)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=num_edges, max_size=num_edges)
    )
    w = draw(
        st.lists(
            st.integers(1, 50), min_size=num_edges, max_size=num_edges
        )
    )
    return CSRGraph.from_edges(
        n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64),
        np.array(w, dtype=np.float64),
    )


@st.composite
def matrices(draw, max_n=10):
    """Small distance-like matrices with inf entries allowed."""
    rows = draw(st.integers(1, max_n))
    cols = draw(st.integers(1, max_n))
    vals = draw(
        st.lists(
            st.one_of(st.integers(0, 100), st.just(np.inf)),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(vals, dtype=np.float64).reshape(rows, cols)


SETTINGS = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,  # reproducible wall time and coverage across sessions
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# SSSP / APSP oracle equivalence
# ----------------------------------------------------------------------


class TestSsspProperties:
    @SETTINGS
    @given(graphs())
    def test_all_sssp_agree_with_oracle(self, g):
        expected = oracle_sssp(g, [0])[0]
        for fn in (dijkstra, bellman_ford, delta_stepping, near_far):
            dist = fn(g, 0)[0]
            assert np.allclose(dist, expected), fn.__name__

    @SETTINGS
    @given(graphs(), st.floats(0.5, 200.0))
    def test_near_far_delta_independent(self, g, delta):
        dist, _ = near_far(g, 0, delta=delta)
        assert np.allclose(dist, oracle_sssp(g, [0])[0])

    @SETTINGS
    @given(graphs())
    def test_distances_respect_triangle_inequality(self, g):
        dist = floyd_warshall(g.to_dense())
        # dist[i,j] <= dist[i,k] + dist[k,j] for all triples
        via = (dist[:, :, None] + dist[None, :, :]).min(axis=1)
        finite = np.isfinite(via)
        assert np.all(dist[finite] <= via[finite] + 1e-6)


class TestApspProperties:
    @SETTINGS
    @given(graphs(max_n=20), st.integers(1, 25))
    def test_blocked_fw_equals_plain(self, g, block_size):
        plain = floyd_warshall(g.to_dense())
        blocked = g.to_dense()
        blocked_floyd_warshall(blocked, block_size)
        assert np.allclose(plain, blocked)

    @SETTINGS
    @given(graphs(max_n=18))
    def test_ooc_drivers_match_oracle(self, g):
        expected = oracle_apsp(g)
        from repro.core import ooc_floyd_warshall, ooc_johnson

        fw = ooc_floyd_warshall(g, Device(TEST_DEVICE))
        assert np.allclose(fw.to_array(), expected)
        jo = ooc_johnson(g, Device(TEST_DEVICE))
        assert np.allclose(jo.to_array(), expected)

    @SETTINGS
    @given(graphs(max_n=18))
    def test_boundary_matches_oracle(self, g):
        from repro.core import BoundaryInfeasibleError, ooc_boundary
        from repro.gpu.device import V100

        try:
            res = ooc_boundary(g, Device(V100.scaled(1 / 64)))
        except BoundaryInfeasibleError:
            return  # legitimately infeasible for adversarial graphs
        assert np.allclose(res.to_array(), oracle_apsp(g))


# ----------------------------------------------------------------------
# min-plus algebra
# ----------------------------------------------------------------------


class TestMinplusAlgebra:
    @SETTINGS
    @given(matrices())
    def test_identity(self, a):
        ident = np.full((a.shape[0], a.shape[0]), np.inf)
        np.fill_diagonal(ident, 0.0)
        assert np.allclose(minplus(ident, a), a)

    @SETTINGS
    @given(st.data())
    def test_associative(self, data):
        n1 = data.draw(st.integers(1, 6))
        n2 = data.draw(st.integers(1, 6))
        n3 = data.draw(st.integers(1, 6))
        n4 = data.draw(st.integers(1, 6))
        rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
        a = rng.integers(0, 50, (n1, n2)).astype(float)
        b = rng.integers(0, 50, (n2, n3)).astype(float)
        c = rng.integers(0, 50, (n3, n4)).astype(float)
        assert np.allclose(minplus(minplus(a, b), c), minplus(a, minplus(b, c)))

    @SETTINGS
    @given(st.data())
    def test_update_monotone_decreasing(self, data):
        n = data.draw(st.integers(1, 8))
        rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
        a = rng.integers(0, 50, (n, n)).astype(float)
        b = rng.integers(0, 50, (n, n)).astype(float)
        c = rng.integers(0, 50, (n, n)).astype(float)
        before = c.copy()
        minplus_update(c, a, b)
        assert np.all(c <= before)


# ----------------------------------------------------------------------
# partition invariants
# ----------------------------------------------------------------------


class TestPartitionProperties:
    @SETTINGS
    @given(graphs(max_n=40, max_extra_edges=150), st.integers(2, 6))
    def test_partition_well_formed(self, g, k):
        res = partition_kway(g, k, seed=0)
        assert res.labels.shape == (g.num_vertices,)
        assert res.labels.min() >= 0 and res.labels.max() < k
        assert res.part_sizes.sum() == g.num_vertices

    @SETTINGS
    @given(graphs(max_n=40, max_extra_edges=150), st.integers(2, 5))
    def test_boundary_exactly_cut_endpoints(self, g, k):
        res = partition_kway(g, k, seed=1)
        bnd = set(boundary_nodes(g, res.labels).tolist())
        src, dst, _ = g.edge_array()
        expected = set()
        for s, d in zip(src, dst):
            if res.labels[s] != res.labels[d]:
                expected.add(int(s))
                expected.add(int(d))
        assert bnd == expected


# ----------------------------------------------------------------------
# timeline and allocator safety
# ----------------------------------------------------------------------


class TestTimelineProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["compute", "h2d", "d2h"]),
                st.floats(0.0, 10.0),
                st.floats(0.0, 5.0),
            ),
            max_size=40,
        )
    )
    def test_schedule_is_valid_and_monotone(self, ops):
        tl = Timeline()
        makespans = []
        for engine, ready, dur in ops:
            tl.schedule(engine, ready, dur)
            makespans.append(tl.makespan)
        tl.validate()
        assert makespans == sorted(makespans)

    @SETTINGS
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 400)),
                st.just(("free", 0)),
            ),
            max_size=60,
        )
    )
    def test_allocator_never_overcommits(self, actions):
        pool = DeviceMemory(capacity=1000)
        live = []
        for kind, size in actions:
            if kind == "alloc":
                try:
                    live.append(pool.alloc(size, np.uint8))
                except OutOfMemoryError:
                    pass
            elif live:
                live.pop().free()
            assert 0 <= pool.used <= 1000
            assert pool.used == sum(a.nbytes for a in live)
