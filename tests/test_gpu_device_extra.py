"""Additional device/timeline coverage: trace control, spec invariants
under composition of scalings, and host-clock semantics."""

import numpy as np
import pytest

from repro.gpu.device import K80, TEST_DEVICE, V100, Device
from repro.gpu.kernels import minplus_cost
from repro.gpu.trace import utilization_report


class TestTraceControl:
    def test_record_trace_false_skips_ops_list(self):
        dev = Device(TEST_DEVICE, record_trace=False)
        dev.default_stream.launch("k", 1.0)
        assert dev.timeline.ops == []
        assert dev.timeline.num_ops == 1
        assert dev.timeline.makespan >= 1.0

    def test_busy_time_requires_trace(self):
        dev = Device(TEST_DEVICE, record_trace=False)
        dev.default_stream.launch("k", 1.0)
        # documented behaviour: without a trace, busy_time sees no ops
        assert dev.timeline.busy_time("compute") == 0.0

    def test_drivers_work_without_trace(self):
        from repro.core import ooc_johnson
        from repro.graphs.generators import erdos_renyi
        from tests.conftest import oracle_apsp

        g = erdos_renyi(60, 350, seed=31)
        dev = Device(TEST_DEVICE, record_trace=False)
        res = ooc_johnson(g, dev)
        assert np.allclose(res.to_array(), oracle_apsp(g))
        assert res.simulated_seconds > 0
        # transfer stats degrade gracefully to zeros
        assert res.stats["bytes_h2d"] == 0


class TestSpecComposition:
    def test_scaled_composes_multiplicatively(self):
        once = V100.scaled(1 / 4).scaled(1 / 16)
        direct = V100.scaled(1 / 64)
        assert once.minplus_rate == pytest.approx(direct.minplus_rate)
        assert once.memory_bytes == pytest.approx(direct.memory_bytes, rel=0.01)
        assert once.sparse_charge_factor == pytest.approx(direct.sparse_charge_factor)

    def test_kernel_costs_scale_inverse_to_rates(self):
        full = minplus_cost(V100, 128, 128, 128) - V100.kernel_launch_overhead
        half = (
            minplus_cost(V100.scaled(0.5), 128, 128, 128)
            - V100.scaled(0.5).kernel_launch_overhead
        )
        assert half == pytest.approx(2 * full, rel=0.01)

    def test_presets_distinct(self):
        assert V100.minplus_rate > K80.minplus_rate
        assert V100.transfer_throughput > K80.transfer_throughput
        assert V100.memory_bytes > K80.memory_bytes


class TestHostClock:
    def test_sync_copy_then_kernel_orders(self):
        dev = Device(TEST_DEVICE)
        arr = dev.memory.alloc((64, 64), np.float32)
        dev.default_stream.copy_h2d(arr, np.zeros((64, 64), np.float32), pinned=True)
        t_after_copy = dev.host_ready
        dev.default_stream.launch("k", 0.5)
        dev.synchronize()
        assert dev.elapsed >= t_after_copy + 0.5

    def test_utilization_overlap_factor_range(self):
        from repro.core import ooc_floyd_warshall
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(150, 900, seed=32)
        dev = Device(TEST_DEVICE)
        ooc_floyd_warshall(g, dev, overlap=True)
        rep = utilization_report(dev)
        assert 0.5 <= rep.overlap_factor <= 3.0

    def test_elapsed_monotone(self):
        dev = Device(TEST_DEVICE)
        times = []
        for i in range(5):
            dev.default_stream.launch(f"k{i}", 0.1)
            times.append(dev.elapsed)
        assert times == sorted(times)
