"""Cross-validation tests for the native-kernel verification layer.

The layer's promise is two-sided and these tests hold both sides at
once: the static analyzer and the sanitizer harness must each stay
*silent* on the shipped kernels and each *fire* on every seeded defect
(off-by-one subscript, dropped remainder guard, widened OpenMP panel,
serial fan-out, unsound alias routing). Dynamic legs self-skip on
toolchains without a compiler or sanitizer runtime; the static side
runs everywhere.
"""

import json

import numpy as np
import pytest

from repro.core.backends import jit
from repro.core.backends.jit import (
    _DEGRADED_CFLAGS,
    KERNEL_TEMPLATES,
    cc_compiler,
    compile_cc_so,
)
from repro.verifykernel import (
    DEFECTS,
    SCHEMA_VERSION,
    run_matrix,
    sanitizer_available,
    static_findings,
    verify_kernels,
)
from repro.verifykernel import cparse
from repro.verifykernel.alias import check_python_dispatch, derive_alias_class
from repro.verifykernel.bounds import analyze_kernel
from repro.verifykernel.defects import defect_by_name

TPL = {t.name: t for t in KERNEL_TEMPLATES}

needs_cc = pytest.mark.skipif(cc_compiler() is None, reason="needs a C compiler")


def _defect_findings(defect):
    """Static findings with one defect seeded into its home source."""
    if defect.kind == "python":
        src = jit.__file__
        with open(src) as fh:
            return static_findings(python_source=defect.apply(fh.read()))
    return static_findings(overrides=defect.overrides(TPL))


# ----------------------------------------------------------------------
# Static pillar: parser, proofs, alias classes, dispatch cross-check
# ----------------------------------------------------------------------
def test_every_template_parses():
    for t in KERNEL_TEMPLATES:
        fn = cparse.parse_kernel(t.source)
        assert fn.name == t.name


def test_clean_kernels_prove_clean():
    assert static_findings() == []


def test_derived_alias_classes_match_declarations():
    parsed = {t.name: cparse.parse_kernel(t.source) for t in KERNEL_TEMPLATES}
    known = frozenset(parsed)
    for t in KERNEL_TEMPLATES:
        analysis = analyze_kernel(parsed[t.name], known)
        cls, findings = derive_alias_class(analysis, t)
        assert findings == [], f"{t.name}: {[f.describe() for f in findings]}"
        assert cls == t.alias_class, t.name


@pytest.mark.parametrize("defect", DEFECTS, ids=lambda d: d.name)
def test_each_seeded_defect_is_caught_statically(defect):
    findings = _defect_findings(defect)
    checks = {f.check for f in findings}
    assert defect.static_check in checks, (
        f"{defect.name}: expected a {defect.static_check!r} finding, got {checks}"
    )


def test_defect_apply_refuses_drifted_source():
    d = defect_by_name("off_by_one_subscript")
    with pytest.raises(ValueError, match="drifted"):
        d.apply("int unrelated(void) { return 0; }")


def test_dispatch_check_accepts_shipped_jit():
    with open(jit.__file__) as fh:
        assert check_python_dispatch(fh.read()) == []


def test_dispatch_check_rejects_constant_seq():
    with open(jit.__file__) as fh:
        src = fh.read()
    bad = src.replace("seq = self._aliased(c, a, b)", "seq = False")
    assert bad != src
    findings = check_python_dispatch(bad)
    assert any(f.check == "dispatch" for f in findings)


# ----------------------------------------------------------------------
# Dynamic pillar: oracle matrix on a plain build (no sanitizer needed)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def plain_kernels(tmp_path_factory):
    from repro.verifykernel.matrixrun import _load

    cc = cc_compiler()
    if cc is None:
        pytest.skip("needs a C compiler")
    cache = tmp_path_factory.mktemp("vk-jit-cache")
    so, _ = compile_cc_so(cc, list(_DEGRADED_CFLAGS), False, cache_dir=cache)
    return _load(so)


@needs_cc
def test_matrix_clean_on_shipped_kernels(plain_kernels):
    from repro.verifykernel.matrixrun import run_matrix_cases

    cases = run_matrix_cases(plain_kernels, fast=True)
    bad = [c for c in cases if not c["ok"]]
    assert not bad, bad


@needs_cc
def test_matrix_flags_unsound_alias_routing(plain_kernels):
    """Aliased operands forced through the fast kernel must diverge."""
    from repro.verifykernel.matrixrun import run_matrix_cases

    cases = run_matrix_cases(plain_kernels, fast=True, force_fast_alias=True)
    assert any(not c["ok"] for c in cases)


# ----------------------------------------------------------------------
# Dynamic pillar: sanitizer legs (self-skipping)
# ----------------------------------------------------------------------
def _needs_sanitizer(mode):
    return pytest.mark.skipif(
        not sanitizer_available(mode), reason=f"toolchain lacks {mode}"
    )


@_needs_sanitizer("ubsan")
def test_ubsan_leg_clean_on_shipped_kernels():
    r = run_matrix("ubsan", fast=True)
    assert r.ran and r.clean, r.detail


@_needs_sanitizer("asan")
def test_asan_catches_off_by_one_subscript():
    d = defect_by_name("off_by_one_subscript")
    r = run_matrix("asan", overrides=d.overrides(TPL), fast=True)
    assert r.ran and r.faulted, (r.returncode, r.detail)


@_needs_sanitizer("tsan")
def test_tsan_leg_clean_then_catches_widened_panel():
    clean = run_matrix("tsan", fast=True)
    assert clean.ran and clean.clean, clean.detail
    d = defect_by_name("widened_panel")
    seeded = run_matrix("tsan", overrides=d.overrides(TPL), fast=True)
    assert seeded.ran and seeded.caught, (seeded.returncode, seeded.detail)


# ----------------------------------------------------------------------
# Report aggregation and downstream consumers
# ----------------------------------------------------------------------
def test_verify_kernels_static_report():
    ver = verify_kernels()  # static-only: no sanitizer legs requested
    assert ver.ok
    payload = ver.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["ok"] is True
    assert payload["findings"] == []
    json.dumps(payload)  # must be serialisable as-is


def test_tuner_refuses_unverified_native_candidates(monkeypatch, tmp_path):
    import repro.verifykernel as vk
    from repro.bench.kernels import tune_kernels
    from repro.verifykernel.bounds import Finding

    monkeypatch.setenv("REPRO_BENCH_KERNELS", str(tmp_path / "bench.json"))
    monkeypatch.setattr(
        vk, "static_findings", lambda: [Finding("bounds", "mp_update_f32", 1, "seeded")]
    )
    result = tune_kernels(n=64, tiles=(32,), repeats=1)
    assert result["verification"]["ok"] is False
    assert result["verification"]["findings"]
    flavors = {
        row.get("options", {}).get("flavor")
        for row in result["rows"]
        if row.get("backend") == "jit"
    }
    assert not ({"cc", "cc-omp"} & flavors), flavors
