"""Property-based tests for graph transforms, reweighting, and analysis
invariants (second hypothesis file — the first covers APSP/min-plus)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    closeness_centrality,
    diameter,
    eccentricity,
    harmonic_centrality,
    radius,
)
from repro.core.blocked_fw import floyd_warshall
from repro.graphs.csr import CSRGraph
from repro.sssp.reweight import NegativeCycleError, johnson_potentials
from tests.test_property_based import SETTINGS, graphs


@st.composite
def permutations(draw, n):
    perm = list(range(n))
    # Fisher-Yates with drawn swaps keeps shrinking friendly
    for i in range(n - 1, 0, -1):
        j = draw(st.integers(0, i))
        perm[i], perm[j] = perm[j], perm[i]
    return np.array(perm, dtype=np.int64)


class TestTransformProperties:
    @SETTINGS
    @given(st.data())
    def test_permute_preserves_distances(self, data):
        g = data.draw(graphs(max_n=16))
        perm = data.draw(permutations(g.num_vertices))
        base = floyd_warshall(g.to_dense())
        permuted = floyd_warshall(g.permute(perm).to_dense())
        # dist_perm[perm[u], perm[v]] == dist[u, v]
        assert np.allclose(permuted[np.ix_(perm, perm)], base)

    @SETTINGS
    @given(graphs(max_n=20))
    def test_symmetrize_idempotent(self, g):
        s1 = g.symmetrize()
        s2 = s1.symmetrize()
        assert np.allclose(s1.to_dense(), s2.to_dense())

    @SETTINGS
    @given(graphs(max_n=20))
    def test_subgraph_distances_never_shorter(self, g):
        """Removing vertices can only lengthen (or disconnect) paths."""
        n = g.num_vertices
        if n < 2:
            return
        keep = np.arange(0, n, 2)
        sub = g.subgraph(keep)
        full = floyd_warshall(g.to_dense())
        small = floyd_warshall(sub.to_dense())
        for i, u in enumerate(keep):
            for j, v in enumerate(keep):
                assert small[i, j] >= full[u, v] - 1e-9

    @SETTINGS
    @given(graphs(max_n=20))
    def test_reverse_transposes_distances(self, g):
        fwd = floyd_warshall(g.to_dense())
        bwd = floyd_warshall(g.reverse().to_dense())
        assert np.allclose(fwd, bwd.T)


class TestReweightProperties:
    @SETTINGS
    @given(st.data())
    def test_potentials_certify_nonnegativity(self, data):
        """Whenever potentials exist, every reweighted edge is ≥ 0."""
        n = data.draw(st.integers(2, 15))
        m = data.draw(st.integers(1, 40))
        src = np.array(data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
        dst = np.array(data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
        w = np.array(
            data.draw(st.lists(st.integers(-5, 30), min_size=m, max_size=m)),
            dtype=float,
        )
        try:
            h = johnson_potentials(n, src, dst, w)
        except NegativeCycleError:
            return
        assert np.all(w + h[src] - h[dst] >= -1e-9)

    @SETTINGS
    @given(graphs(max_n=15))
    def test_nonnegative_graphs_zero_potentials(self, g):
        src, dst, w = g.edge_array()
        h = johnson_potentials(g.num_vertices, src, dst, w)
        assert np.all(h == 0)


class TestAnalysisProperties:
    @SETTINGS
    @given(graphs(max_n=18))
    def test_centralities_bounded(self, g):
        dist = floyd_warshall(g.to_dense())
        clo = closeness_centrality(dist)
        har = harmonic_centrality(dist)
        assert np.all(clo >= 0) and np.all(har >= 0)
        # with integer weights ≥ 1, both are ≤ 1
        assert np.all(clo <= 1.0 + 1e-9)
        assert np.all(har <= 1.0 + 1e-9)

    @SETTINGS
    @given(graphs(max_n=18))
    def test_radius_le_diameter_le_2radius(self, g):
        dist = floyd_warshall(g.to_dense())
        assert radius(dist) <= diameter(dist) + 1e-9
        # the classic d ≤ 2r bound needs symmetric distances: check it on
        # the symmetrised graph when connected
        sdist = floyd_warshall(g.symmetrize().to_dense())
        if np.isfinite(sdist).all():
            assert diameter(sdist) <= 2 * radius(sdist) + 1e-9

    @SETTINGS
    @given(graphs(max_n=18))
    def test_eccentricity_block_invariance(self, g):
        dist = floyd_warshall(g.to_dense())
        assert np.allclose(
            eccentricity(dist, block_rows=3), eccentricity(dist, block_rows=512)
        )


class TestDedupeProperty:
    @SETTINGS
    @given(st.data())
    def test_min_dedupe_is_order_independent(self, data):
        n = data.draw(st.integers(1, 10))
        m = data.draw(st.integers(0, 30))
        src = np.array(data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64)
        dst = np.array(data.draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)), dtype=np.int64)
        w = np.array(data.draw(st.lists(st.integers(1, 50), min_size=m, max_size=m)), dtype=float)
        g1 = CSRGraph.from_edges(n, src, dst, w)
        order = np.array(data.draw(permutations(m)), dtype=np.int64) if m else np.arange(0)
        g2 = CSRGraph.from_edges(n, src[order], dst[order], w[order])
        assert np.allclose(g1.to_dense(), g2.to_dense())
