"""Chaos-harness tests: fault injection, retry, and checkpoint/resume.

Three layers of guarantees over the four out-of-core drivers:

1. *Transient* faults (within the retry budget) at any site — first,
   middle, or last guarded op — leave the distances bit-identical to a
   fault-free run and the device memory empty.
2. *Permanent* faults (device loss) raise after exhausting the budget
   without leaking device memory, and a checkpointed run can be resumed
   to bit-identical distances.
3. Checkpoint stores defend themselves: corrupt/truncated stages, stale
   checkpoints of a different graph, and mismatched run parameters all
   raise a clean :class:`CheckpointError` naming the offender.

Fault-site ordinals are *measured*, not guessed: an empty ``FaultPlan``
attached to a device counts the guarded ops of each class, and the tests
target exact positions within those counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi_gpu import ooc_boundary_multi
from repro.core.ooc_boundary import ooc_boundary
from repro.core.ooc_fw import ooc_floyd_warshall
from repro.core.ooc_johnson import ooc_johnson
from repro.faults import (
    FAULT_SITES,
    CheckpointError,
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    graph_fingerprint,
)
from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.errors import TransientDeviceError
from repro.graphs.generators import rmat
from tests.conftest import oracle_apsp

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

DRIVERS = ("fw", "johnson", "boundary", "multi")

#: per-driver kwargs chosen so every driver has several outer iterations
#: (and therefore several checkpoints) on the shared 110-vertex graph
DRIVER_KWARGS = {
    "fw": {"block_size": 48},
    "johnson": {"batch_size": 40},
    "boundary": {},
    "multi": {},
}


def chaos_graph():
    return rmat(110, 800, seed=3)


GRAPH = chaos_graph()


def run_driver(name, *, faults=None, retry=None, checkpoint=None, graph=None,
               **extra):
    """Run one driver on fresh TEST_DEVICE device(s); returns (result, devices).

    For ``multi`` the fault plan is attached to device 0 of a two-device
    fleet. The devices are returned so callers can assert on memory state
    and fault reports even when the run raises (in which case the caller
    holds the devices it built itself).
    """
    graph = GRAPH if graph is None else graph
    kwargs = {**DRIVER_KWARGS[name], **extra}
    if name == "multi":
        devices = [
            Device(TEST_DEVICE, faults=faults if i == 0 else None, retry=retry)
            for i in range(2)
        ]
        result = ooc_boundary_multi(graph, devices, checkpoint=checkpoint, **kwargs)
        return result, devices
    device = Device(TEST_DEVICE, faults=faults, retry=retry)
    fn = {"fw": ooc_floyd_warshall, "johnson": ooc_johnson,
          "boundary": ooc_boundary}[name]
    result = fn(graph, device, checkpoint=checkpoint, **kwargs)
    return result, [device]


def assert_clean(devices):
    for dev in devices:
        assert dev.memory.used == 0
        assert dev.memory.num_live == 0


_BASELINE: dict = {}
_COUNTS: dict = {}


def baseline(name) -> np.ndarray:
    """Fault-free distances of one driver (cached across the module)."""
    if name not in _BASELINE:
        counter = FaultPlan()
        result, devices = run_driver(name, faults=counter)
        assert_clean(devices)
        _BASELINE[name] = result.to_array()
        _COUNTS[name] = {s: c for s, c in counter.op_counts.items() if c}
    return _BASELINE[name]


def op_counts(name) -> dict:
    """Measured guarded-op counts per site (counting pass, cached)."""
    baseline(name)
    return _COUNTS[name]


# ---------------------------------------------------------------------------
# 1. Transient faults: retry must be invisible in the results
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("driver", DRIVERS)
@pytest.mark.parametrize("site", FAULT_SITES)
@pytest.mark.parametrize("position", ["first", "middle", "last"])
def test_transient_fault_is_bit_identical(driver, site, position):
    expected = baseline(driver)
    total = op_counts(driver).get(site, 0)
    if total == 0:
        pytest.skip(f"driver {driver} issues no {site} ops")
    index = {"first": 0, "middle": total // 2, "last": total - 1}[position]
    plan = FaultPlan([FaultSpec(site, index)])
    result, devices = run_driver(driver, faults=plan)
    assert np.array_equal(result.to_array(), expected)
    assert np.allclose(result.to_array(), oracle_apsp(GRAPH))
    report = result.faults
    assert report is not None
    assert report.injected == 1
    assert report.injected_by_site == {site: 1}
    assert report.retried == 1
    assert report.exhausted == 0
    assert report.backoff_seconds > 0
    assert_clean(devices)


def test_fault_free_run_reports_clean_ledger():
    result, devices = run_driver("fw", faults=FaultPlan())
    assert result.faults is not None and result.faults.clean
    assert_clean(devices)
    # the backoff engine carries no ops on a fault-free run, so timing is
    # unchanged relative to an uninstrumented device
    host_ops = [
        op for op in devices[0].timeline.ops if op.engine == "host"
    ]
    assert host_ops == []


def test_back_to_back_faulted_runs_reset_ordinals():
    # reset_clock() must re-zero the plan's attempt counters: the same
    # plan object injects the same fault in both runs
    plan = FaultPlan([FaultSpec("h2d", 1)])
    device = Device(TEST_DEVICE, faults=plan)
    r1 = ooc_floyd_warshall(GRAPH, device, **DRIVER_KWARGS["fw"])
    assert r1.faults is not None and r1.faults.injected == 1
    r2 = ooc_floyd_warshall(GRAPH, device, **DRIVER_KWARGS["fw"])
    assert r2.faults is not None and r2.faults.injected == 1
    assert np.array_equal(r2.to_array(), baseline("fw"))


def test_exhausted_retries_raise_without_leaking():
    for driver in DRIVERS:
        counts = op_counts(driver)
        site = "kernel" if counts.get("kernel") else next(iter(counts))
        device = Device(TEST_DEVICE, faults=FaultPlan.kill(site, counts[site] // 2))
        fleet = [device] + (
            [Device(TEST_DEVICE)] if driver == "multi" else []
        )
        with pytest.raises(TransientDeviceError):
            if driver == "multi":
                ooc_boundary_multi(GRAPH, fleet, **DRIVER_KWARGS[driver])
            else:
                fn = {"fw": ooc_floyd_warshall, "johnson": ooc_johnson,
                      "boundary": ooc_boundary}[driver]
                fn(GRAPH, device, **DRIVER_KWARGS[driver])
        assert_clean(fleet)
        assert device.fault_report.exhausted == 1
        # budget is max_attempts: 1 initial + (max_attempts - 1) retries
        assert device.fault_report.injected == device.retry.max_attempts


def test_custom_retry_policy_is_honoured():
    plan = FaultPlan.kill("h2d", 0)
    device = Device(TEST_DEVICE, faults=plan,
                    retry=RetryPolicy(max_attempts=2, base_delay=1e-3))
    with pytest.raises(TransientDeviceError):
        ooc_floyd_warshall(GRAPH, device, **DRIVER_KWARGS["fw"])
    assert device.fault_report.injected == 2
    assert device.fault_report.retried == 1
    assert device.fault_report.backoff_seconds == pytest.approx(1e-3)


# ---------------------------------------------------------------------------
# 2. Kill-and-resume: checkpoints must reconstruct the run bit-identically
# ---------------------------------------------------------------------------
def kill_and_resume(driver, site, index, tmp_path):
    """Kill a checkpointed run at (site, index), then resume it."""
    expected = baseline(driver)
    ckpt = tmp_path / "store"
    if driver == "multi":
        fleet = [Device(TEST_DEVICE, faults=FaultPlan.kill(site, index)),
                 Device(TEST_DEVICE)]
        with pytest.raises(TransientDeviceError):
            ooc_boundary_multi(GRAPH, fleet, checkpoint=ckpt,
                               **DRIVER_KWARGS[driver])
    else:
        fleet = [Device(TEST_DEVICE, faults=FaultPlan.kill(site, index))]
        fn = {"fw": ooc_floyd_warshall, "johnson": ooc_johnson,
              "boundary": ooc_boundary}[driver]
        with pytest.raises(TransientDeviceError):
            fn(GRAPH, fleet[0], checkpoint=ckpt, **DRIVER_KWARGS[driver])
    assert_clean(fleet)
    wrote = fleet[0].fault_report.checkpoints_written
    result, devices = run_driver(driver, checkpoint=ckpt)
    assert np.array_equal(result.to_array(), expected)
    assert result.faults is not None
    if wrote:
        assert result.faults.resumed >= 1
    assert_clean(devices)
    return result


@pytest.mark.parametrize("driver", DRIVERS)
@pytest.mark.parametrize("site", FAULT_SITES)
def test_kill_and_resume_every_site(driver, site, tmp_path):
    total = op_counts(driver).get(site, 0)
    if total == 0:
        pytest.skip(f"driver {driver} issues no {site} ops")
    # the last guarded op of the site fails permanently: every checkpoint
    # the run could write exists by then
    kill_and_resume(driver, site, total - 1, tmp_path)


@pytest.mark.parametrize("driver", DRIVERS)
def test_resume_reports_progress(driver, tmp_path):
    counts = op_counts(driver)
    site = "kernel" if counts.get("kernel") else next(iter(counts))
    result = kill_and_resume(driver, site, counts[site] - 1, tmp_path)
    assert result.faults is not None and result.faults.resumed >= 1


def test_resume_of_completed_run_recomputes_nothing(tmp_path):
    ckpt = tmp_path / "store"
    first, _ = run_driver("fw", checkpoint=ckpt)
    assert first.faults is not None and first.faults.checkpoints_written >= 1
    again, devices = run_driver("fw", checkpoint=ckpt)
    assert np.array_equal(again.to_array(), baseline("fw"))
    # no kernels run on resume of a finished run
    assert all(op.engine != "compute" for op in devices[0].timeline.ops)


def test_checkpointing_does_not_perturb_timing(tmp_path):
    plain, _ = run_driver("fw")
    stored, _ = run_driver("fw", checkpoint=tmp_path / "store")
    assert stored.simulated_seconds == plain.simulated_seconds


def test_multi_resume_on_different_fleet_size(tmp_path):
    ckpt = tmp_path / "store"
    fleet = [Device(TEST_DEVICE, faults=FaultPlan.kill("kernel", 20)),
             Device(TEST_DEVICE)]
    with pytest.raises(TransientDeviceError):
        ooc_boundary_multi(GRAPH, fleet, checkpoint=ckpt)
    assert_clean(fleet)
    # resume the 2-device run on a 3-device fleet: checkpoint stages are
    # device-count independent
    fleet3 = [Device(TEST_DEVICE) for _ in range(3)]
    result = ooc_boundary_multi(GRAPH, fleet3, checkpoint=ckpt)
    assert np.array_equal(result.to_array(), baseline("multi"))
    assert result.faults is not None and result.faults.resumed >= 1
    assert_clean(fleet3)


# ---------------------------------------------------------------------------
# 3. Checkpoint stores defend their integrity
# ---------------------------------------------------------------------------
def _killed_fw_store(tmp_path):
    ckpt = tmp_path / "store"
    device = Device(TEST_DEVICE, faults=FaultPlan.kill("h2d", 30))
    with pytest.raises(TransientDeviceError):
        ooc_floyd_warshall(GRAPH, device, checkpoint=ckpt, **DRIVER_KWARGS["fw"])
    assert device.fault_report.checkpoints_written >= 1
    return ckpt


def test_corrupt_stage_raises_checkpoint_error(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    stage = ckpt / "progress.npz"
    stage.write_bytes(b"garbage not a zipfile")
    with pytest.raises(CheckpointError) as err:
        run_driver("fw", checkpoint=ckpt)
    assert str(stage) in str(err.value)


def test_truncated_stage_raises_checkpoint_error(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    stage = ckpt / "progress.npz"
    stage.write_bytes(stage.read_bytes()[:20])
    with pytest.raises(CheckpointError) as err:
        run_driver("fw", checkpoint=ckpt)
    assert str(stage) in str(err.value)


def test_stale_checkpoint_of_other_graph_rejected(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    other = rmat(110, 800, seed=99)  # same shape, different content
    assert graph_fingerprint(other) != graph_fingerprint(GRAPH)
    with pytest.raises(CheckpointError, match="different graph"):
        run_driver("fw", checkpoint=ckpt, graph=other)


def test_checkpoint_of_other_algorithm_rejected(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    with pytest.raises(CheckpointError, match="algorithm"):
        run_driver("johnson", checkpoint=ckpt)


def test_mismatched_block_size_rejected(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    with pytest.raises(CheckpointError, match="block"):
        run_driver("fw", checkpoint=ckpt, block_size=32)


def test_stage_files_without_metadata_rejected(tmp_path):
    ckpt = _killed_fw_store(tmp_path)
    (ckpt / "meta.json").unlink()
    with pytest.raises(CheckpointError, match="no metadata"):
        run_driver("fw", checkpoint=ckpt)


def test_store_counters_and_atomic_layout(tmp_path):
    store = CheckpointStore(tmp_path / "s")
    store.bind(algorithm="x", fingerprint="f")
    store.save("stage", data=np.arange(4))
    assert store.saved == 1 and store.has("stage")
    assert sorted(p.name for p in (tmp_path / "s").iterdir()) == [
        "meta.json", "stage.npz",
    ]  # no leftover temp files
    loaded = store.load("stage")
    assert loaded is not None and np.array_equal(loaded["data"], np.arange(4))
    assert store.load("absent") is None


# ---------------------------------------------------------------------------
# 4. Property tests: random fault plans never change results or leak
# ---------------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @settings(max_examples=15, deadline=None)
    @given(
        driver=st.sampled_from(DRIVERS),
        seed=st.integers(min_value=0, max_value=2**16),
        num_faults=st.integers(min_value=0, max_value=3),
    )
    def test_random_fault_plans_never_change_results(driver, seed, num_faults):
        # num_faults <= max_attempts - 1 and FaultPlan.random never reuses
        # an attempt ordinal, so the retry budget cannot exhaust
        expected = baseline(driver)
        plan = FaultPlan.random(seed, num_faults)
        result, devices = run_driver(driver, faults=plan)
        assert np.array_equal(result.to_array(), expected)
        assert result.faults is not None and result.faults.exhausted == 0
        assert_clean(devices)

    @settings(max_examples=15, deadline=None)
    @given(
        site=st.sampled_from(FAULT_SITES),
        index=st.integers(min_value=0, max_value=40),
        driver=st.sampled_from(("fw", "johnson", "boundary")),
    )
    def test_device_loss_never_leaks_memory(driver, site, index):
        # a permanent fault anywhere either misses (out of range: run
        # completes) or exhausts the budget — device memory is empty
        # either way
        device = Device(TEST_DEVICE, faults=FaultPlan.kill(site, index))
        fn = {"fw": ooc_floyd_warshall, "johnson": ooc_johnson,
              "boundary": ooc_boundary}[driver]
        try:
            result = fn(GRAPH, device, **DRIVER_KWARGS[driver])
        except TransientDeviceError:
            pass
        else:
            assert np.array_equal(result.to_array(), baseline(driver))
        assert device.memory.used == 0
        assert device.memory.num_live == 0


# ---------------------------------------------------------------------------
# 5. Recovery paths stay sanitizer- and HB-verifier-clean
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("driver", ["fw", "johnson", "boundary", "multi-gpu"])
def test_recovery_schedule_is_sanitizer_clean(driver):
    from repro.sanitize import sanitize_driver

    name = {"multi-gpu": "multi"}.get(driver, driver)
    counts = op_counts(name)
    specs = [FaultSpec(site, total // 2) for site, total in counts.items()]
    report, result = sanitize_driver(
        driver, GRAPH, TEST_DEVICE, faults=FaultPlan(specs),
        **DRIVER_KWARGS[name],
    )
    assert report.clean, report.describe()
    assert result.faults is not None
    assert result.faults.injected >= len(specs) - (1 if driver == "multi-gpu" else 0)
    assert np.array_equal(result.to_array(), baseline(name))


def test_resumed_fw_schedule_passes_hb_and_audit():
    from repro.core.ooc_fw import emit_fw_ir
    from repro.verifyplan import analyze_hb, audit_ir

    ir = emit_fw_ir(GRAPH.num_vertices, TEST_DEVICE, block_size=48, start_k=1)
    hb = analyze_hb(ir)
    assert hb.ok, hb.describe()
    peak, _tally, findings = audit_ir(ir)
    assert findings == []
    assert peak <= TEST_DEVICE.memory_bytes


def test_resumed_johnson_schedule_passes_hb_and_audit():
    from repro.core.ooc_johnson import emit_johnson_ir
    from repro.verifyplan import analyze_hb, audit_ir

    ir = emit_johnson_ir(GRAPH, TEST_DEVICE, batch_size=40, start_batch=1)
    hb = analyze_hb(ir)
    assert hb.ok, hb.describe()
    peak, _tally, findings = audit_ir(ir)
    assert findings == []
    assert peak <= TEST_DEVICE.memory_bytes


def test_resumed_boundary_schedule_passes_hb_and_audit():
    from repro.core.ooc_boundary import emit_boundary_ir, plan_boundary
    from repro.verifyplan import analyze_hb, audit_ir

    plan = plan_boundary(GRAPH, TEST_DEVICE, seed=0)
    for resume in [(1, False, 0), (plan.num_components, True, 0),
                   (plan.num_components, True, 1)]:
        ir = emit_boundary_ir(GRAPH, TEST_DEVICE, plan=plan, resume=resume)
        hb = analyze_hb(ir)
        assert hb.ok, hb.describe()
        _peak, _tally, findings = audit_ir(ir)
        assert findings == []


# ---------------------------------------------------------------------------
# 6. The abort/backoff ops are visible in the execution record
# ---------------------------------------------------------------------------
def test_backoff_and_abort_ops_reach_the_timeline():
    plan = FaultPlan([FaultSpec("h2d", 0)])
    device = Device(TEST_DEVICE, faults=plan)
    ooc_floyd_warshall(GRAPH, device, **DRIVER_KWARGS["fw"])
    names = [op.name for op in device.timeline.ops]
    assert any(name.endswith("!abort") for name in names)
    assert any(name.startswith("backoff:h2d:") for name in names)
    # backoff occupies the host engine, aborts the copy engine
    engines = {op.engine for op in device.timeline.ops if
               op.name.startswith("backoff:")}
    assert engines == {"host"}


def test_faulted_run_takes_longer_than_fault_free():
    plain, _ = run_driver("fw")
    faulted, _ = run_driver("fw", faults=FaultPlan([FaultSpec("h2d", 0)]))
    assert faulted.simulated_seconds > plain.simulated_seconds
