"""Schedule-sanitizer tests: clean drivers, seeded hazards, unit hazards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ooc_boundary import ooc_boundary
from repro.core.ooc_fw import ooc_floyd_warshall
from repro.core.ooc_johnson import ooc_johnson
from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.stream import Event, Stream
from repro.sanitize import DRIVER_NAMES, sanitize_driver


# ---------------------------------------------------------------------------
# Production schedules are hazard-free
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("overlap", [True, False])
def test_ooc_fw_schedule_is_clean(any_graph, overlap):
    device = Device(TEST_DEVICE, sanitize=True)
    # force several blocks so the double-buffered stage 3 actually runs
    ooc_floyd_warshall(any_graph, device, overlap=overlap, block_size=40)
    report = device.hazard_report()
    assert report.clean, report.describe()
    assert report.num_ops > 10


@pytest.mark.parametrize("overlap", [True, False])
def test_ooc_boundary_schedule_is_clean(any_graph, overlap):
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_boundary(any_graph, device, overlap=overlap)
    report = device.hazard_report()
    assert report.clean, report.describe()


def test_ooc_boundary_unbatched_schedule_is_clean(small_rmat):
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_boundary(small_rmat, device, batch_transfers=False)
    assert device.hazard_report().clean


@pytest.mark.parametrize("overlap", [True, False])
def test_ooc_johnson_schedule_is_clean(any_graph, overlap):
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_johnson(any_graph, device, overlap=overlap)
    report = device.hazard_report()
    assert report.clean, report.describe()


@pytest.mark.parametrize("name", DRIVER_NAMES)
def test_sanitize_driver_runner_all_clean(small_rmat, name):
    report, result = sanitize_driver(name, small_rmat, TEST_DEVICE)
    assert report.clean, report.describe()
    assert result.simulated_seconds > 0
    assert report.num_ops > 0


def test_multi_gpu_merged_report_counts(small_rmat):
    report, _ = sanitize_driver("multi-gpu", small_rmat, TEST_DEVICE, num_devices=3)
    assert report.clean
    # merged over three devices, each with its own op/buffer tally
    assert "+" in report.device


# ---------------------------------------------------------------------------
# Seeded hazards: strip one event edge, the sanitizer must name the bug
# ---------------------------------------------------------------------------
def _drop_waits_on(monkeypatch, event_name: str) -> None:
    orig_wait = Stream.wait

    def broken_wait(self, event):
        if event.name == event_name:
            return  # the seeded bug: handoff edge silently dropped
        return orig_wait(self, event)

    monkeypatch.setattr(Stream, "wait", broken_wait)


def test_boundary_missing_strip_ready_is_flagged(small_rmat, monkeypatch):
    """Dropping the compute→copier handoff in the double-buffered flush
    races the async download against the min-plus writes."""
    _drop_waits_on(monkeypatch, "strip-ready")
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_boundary(small_rmat, device, overlap=True)
    report = device.hazard_report()
    assert not report.clean
    races = [h for h in report.hazards if h.kind == "write-read-race"]
    assert races, report.describe()
    hazard = races[0]
    # names the offending stream pair and the accumulation buffer
    assert set(hazard.streams) == {"default", "bound-copy"}
    assert hazard.buffer.startswith("out")
    assert "d2h" in hazard.second_op


def test_johnson_missing_mssp_done_is_flagged(small_rmat, monkeypatch):
    _drop_waits_on(monkeypatch, "mssp-done")
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_johnson(small_rmat, device, overlap=True, batch_size=30)
    report = device.hazard_report()
    assert "write-read-race" in report.kinds()
    buffers = {h.buffer for h in report.hazards}
    assert any(b.startswith("rows") for b in buffers)


def test_fw_missing_up_event_is_flagged(small_rmat, monkeypatch):
    """Dropping the copier→compute upload edge in stage 3 races the
    rank-update reads against the async uploads."""
    _drop_waits_on(monkeypatch, "up")
    device = Device(TEST_DEVICE, sanitize=True)
    ooc_floyd_warshall(small_rmat, device, overlap=True, block_size=40)
    report = device.hazard_report()
    assert not report.clean
    assert any("race" in k for k in report.kinds())


# ---------------------------------------------------------------------------
# Unit-level hazards on a hand-built schedule
# ---------------------------------------------------------------------------
def test_unordered_cross_stream_write_read_is_a_race():
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((8, 8), np.float32, name="tile")
    s1.copy_h2d_async(buf, np.zeros((8, 8), np.float32))
    s2.launch("consume", 1e-6, reads=(buf,))  # no wait: race
    report = device.hazard_report()
    # the unordered read both races the write and counts as uninitialized
    assert "write-read-race" in report.kinds()
    hazard = next(h for h in report.hazards if h.kind == "write-read-race")
    assert hazard.buffer == "tile"
    assert set(hazard.streams) == {"default", "other"}


def test_event_edge_orders_the_same_schedule():
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((8, 8), np.float32, name="tile")
    s1.copy_h2d_async(buf, np.zeros((8, 8), np.float32))
    s2.wait(s1.record(Event("ready")))
    s2.launch("consume", 1e-6, reads=(buf,))
    assert device.hazard_report().clean


def test_disjoint_regions_do_not_race():
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((8, 8), np.float32, name="tile", fill=0.0)
    s1.launch("top", 1e-6, writes=(buf.data[:4],))
    s2.launch("bottom", 1e-6, writes=(buf.data[4:],))  # unordered but disjoint
    assert device.hazard_report().clean


def test_overlapping_unordered_writes_race():
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((8, 8), np.float32, name="tile", fill=0.0)
    s1.launch("a", 1e-6, writes=(buf.data[:6],))
    s2.launch("b", 1e-6, writes=(buf.data[4:],))
    assert device.hazard_report().kinds() == ["write-write-race"]


def test_use_after_free_is_flagged():
    device = Device(TEST_DEVICE, sanitize=True)
    stream = device.default_stream
    buf = device.memory.alloc((4, 4), np.float32, name="tile")
    stream.copy_h2d(buf, np.zeros((4, 4), np.float32))
    data = buf.data
    buf.free()
    stream.launch("stale", 1e-6, reads=(data,))
    report = device.hazard_report()
    assert "use-after-free" in report.kinds()
    assert report.hazards[0].buffer == "tile"


def test_uninitialized_device_read_is_flagged():
    device = Device(TEST_DEVICE, sanitize=True)
    stream = device.default_stream
    buf = device.memory.alloc((4, 4), np.float32, name="tile")  # never written
    stream.launch("consume", 1e-6, reads=(buf,))
    report = device.hazard_report()
    assert report.kinds() == ["uninitialized-read"]


def test_filled_allocation_counts_as_initialized():
    device = Device(TEST_DEVICE, sanitize=True)
    stream = device.default_stream
    buf = device.memory.alloc((4, 4), np.float32, name="tile", fill=np.inf)
    stream.launch("consume", 1e-6, reads=(buf,))
    assert device.hazard_report().clean


def test_sync_copy_orders_across_streams_via_host():
    """cudaMemcpy semantics: a synchronous copy blocks the host, so work
    enqueued afterwards on any stream is ordered after it."""
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((4, 4), np.float32, name="tile")
    s1.copy_h2d(buf, np.zeros((4, 4), np.float32))  # sync
    s2.launch("consume", 1e-6, reads=(buf,))  # enqueued after the blocking copy
    assert device.hazard_report().clean


def test_reset_clock_also_resets_the_sanitizer_schedule():
    device = Device(TEST_DEVICE, sanitize=True)
    s1 = device.default_stream
    s2 = device.create_stream("other")
    buf = device.memory.alloc((4, 4), np.float32, name="tile")
    s1.copy_h2d_async(buf, np.zeros((4, 4), np.float32))
    s2.launch("consume", 1e-6, reads=(buf,))
    assert not device.hazard_report().clean
    device.reset_clock()
    assert device.hazard_report().clean  # schedule forgotten, buffers kept
    s1.copy_h2d(buf, np.zeros((4, 4), np.float32))
    s2.launch("consume", 1e-6, reads=(buf,))
    assert device.hazard_report().clean


def test_hazard_report_requires_sanitize_flag():
    device = Device(TEST_DEVICE)
    assert device.sanitizer is None
    with pytest.raises(ValueError, match="sanitize=True"):
        device.hazard_report()


def test_unsanitized_device_ignores_access_annotations():
    device = Device(TEST_DEVICE)
    buf = device.memory.alloc((4, 4), np.float32)
    device.default_stream.launch("k", 1e-6, reads=(buf,), writes=(buf,))
    device.default_stream.annotate("memset", writes=(buf,))
    assert device.synchronize() >= 0
