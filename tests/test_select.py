"""Unit tests for the density filter, cost models, calibration, and selector."""

import numpy as np
import pytest

from repro.core import ooc_boundary, ooc_johnson
from repro.gpu.device import Device, V100
from repro.graphs.generators import erdos_renyi, planar_like, rmat, road_like
from repro.select import (
    Calibration,
    Selector,
    density_band,
    estimate_boundary,
    estimate_fw,
    estimate_johnson,
    filter_candidates,
)
from repro.select.cost_models import boundary_n_op


SPEC = V100.scaled(1 / 64)


@pytest.fixture(scope="module")
def calibration():
    return Calibration(SPEC, fw_n0=192, boundary_n0=384).run()


class TestDensityFilter:
    def test_bands(self):
        assert density_band(0.05) == "dense"
        assert density_band(0.011) == "dense"
        assert density_band(0.005) == "middle"
        assert density_band(0.0001) == "middle"
        assert density_band(0.00005) == "sparse"

    def test_thresholds_exact(self):
        # the paper's rules are strict inequalities on 1% and 0.01%
        assert density_band(0.01) == "middle"
        assert density_band(0.0001) == "middle"

    def test_candidates_per_band(self):
        dense = rmat(100, 5000, seed=1)  # density ~0.4
        assert filter_candidates(dense) == ("johnson", "floyd-warshall")
        # a 2k-vertex road graph has scaled density ~0.12%; the 1/64
        # stand-in correction maps it into the paper's sparse band
        sparse = road_like(2000, 2.3, seed=2)
        assert filter_candidates(sparse, density_scale=1 / 64) == ("johnson", "boundary")

    def test_density_scale_applied(self):
        g = road_like(500, 2.3, seed=3)  # scaled density in middle band
        assert filter_candidates(g) == ("johnson",)
        # applying the stand-in correction moves it to the sparse band
        assert filter_candidates(g, density_scale=1 / 64) == ("johnson", "boundary")


class TestCalibration:
    def test_references_populated(self, calibration):
        t_fw, n_fw = calibration.fw_reference
        t_b, n_b = calibration.boundary_reference
        assert t_fw > 0 and n_fw == 192
        assert t_b > 0 and n_b == 384

    def test_c_unit_bins_fit(self, calibration):
        assert calibration.c_unit_bins
        for c in calibration.c_unit_bins.values():
            assert 0 < c < 1e-6

    def test_c_unit_nearest_bin_fallback(self, calibration):
        # a bin index far beyond the trained range falls back to nearest
        c = calibration.c_unit_for(1000, 100000)
        assert c in calibration.c_unit_bins.values()

    def test_run_idempotent(self, calibration):
        ref = calibration.fw_reference
        calibration.run()
        assert calibration.fw_reference == ref

    def test_unrun_calibration_raises_on_c_unit(self):
        fresh = Calibration(SPEC)
        with pytest.raises(RuntimeError):
            fresh.c_unit_for(100, 1000)

    def test_bin_index(self):
        assert Calibration._bin_index(10000, 1000) == 0  # 10000^0.75 = 1000
        assert Calibration._bin_index(10000, 2500) == 1
        assert Calibration._bin_index(10000, 100) == 0  # clamped at ideal


class TestCostModels:
    def test_fw_estimate_tracks_actual(self, calibration):
        from repro.core import ooc_floyd_warshall

        g = erdos_renyi(300, 3000, seed=4)
        est = estimate_fw(g, SPEC, calibration)
        dev = Device(SPEC)
        actual = ooc_floyd_warshall(g, dev).simulated_seconds
        assert est.total_seconds == pytest.approx(actual, rel=0.6)

    def test_fw_estimate_cubic_in_n(self, calibration):
        a = estimate_fw(erdos_renyi(200, 1000, seed=5), SPEC, calibration)
        b = estimate_fw(erdos_renyi(400, 2000, seed=5), SPEC, calibration)
        assert b.compute_seconds / a.compute_seconds == pytest.approx(8.0, rel=0.05)

    def test_johnson_estimate_tracks_actual(self):
        g = road_like(700, 2.6, seed=6)
        dev = Device(SPEC)
        est = estimate_johnson(g, dev, seed=0)
        actual = ooc_johnson(g, Device(SPEC)).simulated_seconds
        assert est.total_seconds == pytest.approx(actual, rel=0.5)

    def test_johnson_sampling_resets_clock(self):
        g = road_like(400, 2.6, seed=7)
        dev = Device(SPEC)
        estimate_johnson(g, dev, seed=0)
        assert dev.elapsed == 0.0

    def test_boundary_estimate_tracks_actual_small_separator(self, calibration):
        g = road_like(900, 2.6, seed=8)
        est = estimate_boundary(g, SPEC, calibration, seed=0)
        actual = ooc_boundary(g, Device(SPEC), seed=0).simulated_seconds
        assert est.detail["model"] == "small-separator"
        assert est.total_seconds == pytest.approx(actual, rel=0.6)

    def test_boundary_large_separator_uses_n_op(self, calibration):
        from repro.graphs.generators import random_geometric

        g = random_geometric(700, 0.12, seed=9)
        est = estimate_boundary(g, SPEC, calibration, seed=0)
        assert est.detail["model"] == "large-separator"
        assert est.compute_seconds > 0

    def test_boundary_n_op_formula(self):
        # N_op = n³/k² + (kB)³ + nkB² + n²B
        assert boundary_n_op(100, 10, 5.0) == pytest.approx(
            100**3 / 100 + 50**3 + 100 * 10 * 25 + 100**2 * 5
        )

    def test_estimates_have_transfer_terms(self, calibration):
        g = road_like(500, 2.6, seed=10)
        est = estimate_boundary(g, SPEC, calibration, seed=0)
        assert est.transfer_seconds > 0
        est_fw = estimate_fw(g, SPEC, calibration)
        assert est_fw.transfer_seconds > 0


class TestSelector:
    def test_middle_band_short_circuits(self):
        sel = Selector(SPEC, Calibration(SPEC, fw_n0=128, boundary_n0=256))
        g = erdos_renyi(300, 40000, seed=11)  # density 0.04 with scale 1: dense
        g_mid = erdos_renyi(300, 500, seed=12)  # density 0.0056: middle
        report = sel.select(g_mid)
        assert report.band == "middle"
        assert report.algorithm == "johnson"
        assert report.estimates == {}

    def test_sparse_band_picks_boundary_for_road(self):
        sel = Selector(SPEC, Calibration(SPEC, fw_n0=128, boundary_n0=256),
                       density_scale=1 / 64)
        g = road_like(900, 2.6, seed=13)
        report = sel.select(g)
        assert report.band == "sparse"
        assert report.algorithm == "boundary"
        assert set(report.candidates) == {"johnson", "boundary"}

    def test_selection_matches_measured_best(self):
        """The selector's pick must actually be the fastest measured
        implementation (the paper's §V-E claim)."""
        sel = Selector(SPEC, Calibration(SPEC, fw_n0=128, boundary_n0=256),
                       density_scale=1 / 64)
        g = road_like(800, 2.6, seed=14)
        report = sel.select(g)
        johnson_t = ooc_johnson(g, Device(SPEC)).simulated_seconds
        boundary_t = ooc_boundary(g, Device(SPEC), seed=0).simulated_seconds
        measured_best = "johnson" if johnson_t < boundary_t else "boundary"
        assert report.algorithm == measured_best

    def test_infeasible_boundary_falls_back_to_johnson(self):
        sel = Selector(SPEC, Calibration(SPEC, fw_n0=128, boundary_n0=256),
                       density_scale=1 / 64)
        # sparse in paper-equivalent density but expander-like in structure:
        # every vertex becomes boundary, so the boundary algorithm cannot plan
        g = erdos_renyi(2000, 10000, seed=15, symmetric=True)
        report = sel.select(g, device=Device(SPEC))
        if "boundary" in report.infeasible:
            assert report.algorithm == "johnson"
        else:  # planning found a k; the estimate must then exist
            assert "boundary" in report.estimates

    def test_report_estimated_seconds(self):
        sel = Selector(SPEC, Calibration(SPEC, fw_n0=128, boundary_n0=256),
                       density_scale=1 / 64)
        g = road_like(600, 2.6, seed=16)
        report = sel.select(g)
        assert report.estimated_seconds() == report.estimates[report.algorithm].total_seconds
