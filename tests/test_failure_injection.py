"""Failure-injection tests: drivers must never leak device memory.

A mid-run failure (oversized explicit parameters, planning bugs) raises —
but the device must come back with zero live allocations so it stays
reusable, and a subsequent run on the same device must succeed.
"""

import numpy as np
import pytest

from repro.core import (
    incore_apsp,
    ooc_boundary,
    ooc_floyd_warshall,
    ooc_johnson,
)
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.gpu.errors import OutOfMemoryError
from repro.graphs.generators import erdos_renyi, road_like
from tests.conftest import oracle_apsp


class TestNoLeakOnFailure:
    def test_fw_oom_leaves_device_clean(self):
        device = Device(TEST_DEVICE)
        g = erdos_renyi(250, 2000, seed=1)
        with pytest.raises(OutOfMemoryError):
            ooc_floyd_warshall(g, device, block_size=250)  # stage 3 cannot fit
        assert device.memory.used == 0
        assert device.memory.num_live == 0

    def test_johnson_oom_leaves_device_clean(self):
        device = Device(TEST_DEVICE)
        g = erdos_renyi(200, 1500, seed=2)
        with pytest.raises(OutOfMemoryError):
            # batch so large the output rows cannot fit
            ooc_johnson(g, device, batch_size=200)
        assert device.memory.used == 0
        assert device.memory.num_live == 0

    def test_boundary_oom_leaves_device_clean(self):
        device = Device(V100.scaled(1 / 64))
        g = road_like(900, 2.6, seed=3)
        from repro.core import plan_boundary
        from dataclasses import replace

        plan = plan_boundary(g, device.spec, seed=0)
        # sabotage the plan: claim far more buffered rows than memory holds
        bad = replace(plan, n_row=plan.num_components * 10, num_buffers=2)
        with pytest.raises(OutOfMemoryError):
            ooc_boundary(g, device, plan=bad)
        assert device.memory.used == 0
        assert device.memory.num_live == 0

    def test_incore_oom_leaves_device_clean(self):
        device = Device(TEST_DEVICE)
        g = erdos_renyi(500, 3000, seed=4)
        with pytest.raises(OutOfMemoryError):
            incore_apsp(g, device)
        assert device.memory.used == 0

    def test_device_reusable_after_failure(self):
        device = Device(TEST_DEVICE)
        big = erdos_renyi(250, 2000, seed=5)
        small = erdos_renyi(80, 500, seed=6)
        with pytest.raises(OutOfMemoryError):
            ooc_floyd_warshall(big, device, block_size=250)
        res = ooc_floyd_warshall(small, device)
        assert np.allclose(res.to_array(), oracle_apsp(small))
        assert device.memory.used == 0

    def test_cleanup_preserves_preexisting_allocations(self):
        device = Device(TEST_DEVICE)
        keeper = device.memory.alloc((10, 10), np.float32, name="keeper")
        g = erdos_renyi(250, 2000, seed=7)
        with pytest.raises(OutOfMemoryError):
            ooc_floyd_warshall(g, device, block_size=240)
        assert not keeper.freed
        assert device.memory.used == keeper.nbytes
        keeper.free()


class TestCleanupContext:
    def test_frees_only_inner_allocations(self):
        from repro.gpu.memory import DeviceMemory

        pool = DeviceMemory(capacity=1000)
        outer = pool.alloc(100, np.uint8)
        with pytest.raises(RuntimeError):
            with pool.cleanup_on_error():
                pool.alloc(200, np.uint8)
                raise RuntimeError("boom")
        assert pool.used == 100
        outer.free()

    def test_no_effect_on_success(self):
        from repro.gpu.memory import DeviceMemory

        pool = DeviceMemory(capacity=1000)
        with pool.cleanup_on_error():
            arr = pool.alloc(50, np.uint8)
        assert pool.used == 50  # success path leaves allocations alone
        arr.free()
