"""Static plan verifier: analyses, bounds, and static↔dynamic agreement.

The contract under test: the symbolic :class:`PlanIR` each driver emits
must predict, *byte for byte*, what the dynamic trace of a real run
records — peak charged residency, H2D/D2H volumes, and copy counts.
Two independent analyses, one contract.
"""

import dataclasses

import pytest

from repro.core.multi_gpu import emit_multi_ir, ooc_boundary_multi
from repro.core.ooc_boundary import emit_boundary_ir, ooc_boundary
from repro.core.ooc_fw import emit_fw_ir, ooc_floyd_warshall, transfer_stats
from repro.core.ooc_johnson import emit_johnson_ir, ooc_johnson
from repro.core.planner import explain_plan
from repro.gpu.device import Device, TEST_DEVICE, V100
from repro.graphs.generators import erdos_renyi, rmat, road_like
from repro.verifyplan import (
    CopyOp,
    IREmitter,
    Rect,
    analyze_def_use,
    analyze_residency,
    analyze_transfers,
    audit_ir,
    verify_plan,
)

V100_64 = V100.scaled(1 / 64)

#: the ≥3 graph/device configurations of the static↔dynamic contract
CONFIGS = [
    pytest.param(lambda: road_like(220, 2.6, seed=1), TEST_DEVICE, id="road220-test"),
    pytest.param(lambda: rmat(110, 800, seed=2), TEST_DEVICE, id="rmat110-test"),
    pytest.param(lambda: erdos_renyi(200, 1200, seed=3), TEST_DEVICE, id="er200-test"),
    pytest.param(lambda: road_like(900, 2.6, seed=3), V100_64, id="road900-v100/64"),
    # deliberately uneven: n=500 with block 161 leaves a 17-wide ragged
    # last block (nd=4) — the exact-mode FW bounds must still close
    pytest.param(lambda: road_like(500, 2.6, seed=4), TEST_DEVICE,
                 id="road500-test-uneven"),
]


def dynamic_stats(device):
    """(bytes_h2d, bytes_d2h, num_h2d, num_d2h, peak) from a real run's trace."""
    ts = transfer_stats(device)
    return (
        ts["bytes_h2d"],
        ts["bytes_d2h"],
        len(device.timeline.engine_ops("h2d")),
        len(device.timeline.engine_ops("d2h")),
        device.memory.peak,
    )


def static_stats(audit):
    return (
        audit.bytes_h2d,
        audit.bytes_d2h,
        audit.num_h2d,
        audit.num_d2h,
        audit.peak_bytes,
    )


class TestStaticDynamicAgreement:
    @pytest.mark.parametrize("build,spec", CONFIGS)
    def test_fw_prediction_matches_trace(self, build, spec):
        g = build()
        audit = verify_plan(g, spec, algorithms=["fw"]).audits["floyd-warshall"]
        assert audit.verified
        device = Device(spec)
        ooc_floyd_warshall(g, device)
        assert static_stats(audit) == dynamic_stats(device)

    @pytest.mark.parametrize("build,spec", CONFIGS)
    def test_johnson_prediction_matches_trace(self, build, spec):
        g = build()
        audit = verify_plan(g, spec, algorithms=["johnson"]).audits["johnson"]
        assert audit.verified
        device = Device(spec)
        ooc_johnson(g, device)
        assert static_stats(audit) == dynamic_stats(device)

    @pytest.mark.parametrize("build,spec", CONFIGS)
    def test_boundary_prediction_matches_trace(self, build, spec):
        g = build()
        audit = verify_plan(g, spec, algorithms=["boundary"]).audits["boundary"]
        assert audit.verified
        device = Device(spec)
        ooc_boundary(g, device, seed=0)
        assert static_stats(audit) == dynamic_stats(device)

    @pytest.mark.parametrize("build,spec", CONFIGS)
    def test_multi_gpu_prediction_matches_trace(self, build, spec):
        g = build()
        audit = verify_plan(g, spec, algorithms=["multi-gpu"]).audits["multi-gpu"]
        assert audit.verified
        devices = [Device(spec), Device(spec)]
        ooc_boundary_multi(g, devices, seed=0)
        h2d = d2h = nh = nd = 0
        for dv in devices:
            bh, bd, ch, cd, _ = dynamic_stats(dv)
            h2d += bh
            d2h += bd
            nh += ch
            nd += cd
        peak = max(dv.memory.peak for dv in devices)
        assert static_stats(audit) == (h2d, d2h, nh, nd, peak)

    def test_fw_buffer_reuse_path_matches_trace(self):
        # n_d = 3 with double-buffered stage 3: the driver skips re-uploads
        # of a row block the rotation still holds; the mirror must skip the
        # same ones.
        g = road_like(400, 2.6, seed=7)
        for overlap in (True, False):
            audit = verify_plan(
                g, TEST_DEVICE, algorithms=["fw"], overlap=overlap
            ).audits["floyd-warshall"]
            assert audit.verified
            assert audit.redundant_bytes == 0
            device = Device(TEST_DEVICE)
            ooc_floyd_warshall(g, device, overlap=overlap)
            assert static_stats(audit) == dynamic_stats(device)

    def test_fw_fanout_engine_moves_same_bytes(self):
        # The threaded engine's wave grouping reorders stage-3 ops but must
        # not change what crosses the bus.
        from repro.core.engine import KernelEngine

        g = road_like(400, 2.6, seed=7)
        audit = verify_plan(g, TEST_DEVICE, algorithms=["fw"]).audits["floyd-warshall"]
        device = Device(TEST_DEVICE)
        ooc_floyd_warshall(g, device, engine=KernelEngine(backend="threaded", workers=4))
        assert static_stats(audit) == dynamic_stats(device)

    def test_sanitizer_agrees_plans_are_clean(self):
        # the dynamic half of the contract: what the verifier proves clean,
        # the runtime sanitizer also finds hazard-free
        from repro.sanitize import DRIVER_NAMES, sanitize_driver

        g = road_like(220, 2.6, seed=1)
        ver = verify_plan(g, TEST_DEVICE)
        assert ver.ok
        for name in DRIVER_NAMES:
            report, _ = sanitize_driver(name, g, TEST_DEVICE)
            assert report.clean, name


class TestVerifyPlan:
    def test_all_algorithms_audited(self):
        ver = verify_plan(road_like(220, 2.6, seed=1), TEST_DEVICE)
        assert set(ver.audits) == {"floyd-warshall", "johnson", "boundary", "multi-gpu"}
        assert ver.ok
        for audit in ver.audits.values():
            assert audit.verified
            assert audit.redundant_bytes == 0
            assert audit.peak_bytes <= audit.capacity

    def test_describe_and_to_dict(self):
        ver = verify_plan(rmat(110, 800, seed=2), TEST_DEVICE)
        text = ver.describe()
        assert "all feasible plans verified" in text
        assert "bounds ok" in text
        d = ver.to_dict()
        assert d["ok"] is True
        assert d["audits"]["johnson"]["verified"] is True
        assert d["audits"]["floyd-warshall"]["bounds"][0]["ok"] is True

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            verify_plan(rmat(50, 200, seed=0), TEST_DEVICE, algorithms=["dijkstra"])

    def test_infeasible_reported_not_raised(self):
        g = rmat(1200, 40_000, seed=2)  # expander: huge boundary
        ver = verify_plan(g, V100_64)
        audit = ver.audits["boundary"]
        assert not audit.feasible
        assert "boundary matrix" in audit.reason
        assert "infeasible" in audit.describe()


class TestPlannerAgreement:
    """verify_plan and explain_plan must agree on feasibility + parameters."""

    @pytest.mark.parametrize(
        "build,spec",
        [
            # n=200 with block 161: ragged last block (n % b != 0)
            pytest.param(lambda: road_like(220, 2.6, seed=1), TEST_DEVICE,
                         id="ragged-blocks"),
            # n=110 fits one block: single-block FW
            pytest.param(lambda: rmat(110, 800, seed=2), TEST_DEVICE,
                         id="single-block"),
            # expander on a scaled V100: boundary infeasible, others not
            pytest.param(lambda: rmat(1200, 40_000, seed=2), V100_64,
                         id="one-infeasible"),
        ],
    )
    def test_feasibility_and_parameters_agree(self, build, spec):
        g = build()
        report = explain_plan(g, spec, seed=0)
        ver = verify_plan(g, spec, seed=0)
        for name, plan in report.plans.items():
            audit = ver.audits[name]
            assert audit.feasible == plan.feasible, name
            if not plan.feasible:
                assert audit.reason == plan.reason
                continue
            shared = set(audit.parameters) & set(plan.parameters)
            assert shared, name
            for key in shared:
                assert audit.parameters[key] == plan.parameters[key], (name, key)

    def test_single_block_graph_is_one_block(self):
        g = rmat(110, 800, seed=2)
        audit = verify_plan(g, TEST_DEVICE, algorithms=["fw"]).audits["floyd-warshall"]
        assert audit.parameters["num_blocks"] == 1
        # one upload, one download: the whole matrix moves once each way
        assert audit.num_h2d == 1 and audit.num_d2h == 1

    def test_ragged_blocks_still_tile_exactly(self):
        # n not divisible by the block size: the exact d2h bound (n_d·n²)
        # only holds if the ragged tiling is handled correctly
        g = road_like(220, 2.6, seed=1)
        audit = verify_plan(g, TEST_DEVICE, algorithms=["fw"]).audits["floyd-warshall"]
        n, b = 200, audit.parameters["block_size"]
        assert n % b != 0
        assert audit.verified

    def test_only_one_algorithm_feasible(self):
        g = erdos_renyi(600, 50_000, seed=5)
        report = explain_plan(g, TEST_DEVICE, seed=0)
        ver = verify_plan(g, TEST_DEVICE, seed=0)
        feasible = [n for n, p in report.plans.items() if p.feasible]
        assert feasible == ["floyd-warshall"]
        assert [n for n, a in ver.audits.items()
                if n in report.plans and a.feasible] == feasible
        assert ver.ok  # the one feasible plan verifies


class TestSeededDefects:
    """Inject schedule defects into the IR; each analysis must catch its own."""

    def test_extra_upload_reported_with_block_coordinates(self):
        # the acceptance defect: duplicate one FW stage-3 upload — the
        # verifier must name the duplicated host block and the wasted bytes
        g = road_like(220, 2.6, seed=1)
        ir = emit_fw_ir(g.num_vertices, TEST_DEVICE)
        dup_idx = next(
            i for i, op in enumerate(ir.ops)
            if isinstance(op, CopyOp) and op.kind == "h2d" and op.key[0] == "A"
        )
        dup = ir.ops[dup_idx]
        seeded = dataclasses.replace(
            ir, ops=ir.ops[: dup_idx + 1] + (dup,) + ir.ops[dup_idx + 1 :]
        )
        _, tally, findings = audit_ir(seeded)
        redundant = [f for f in findings if f.kind == "redundant-upload"]
        assert len(redundant) == 1
        finding = redundant[0]
        assert finding.block == dup.key  # ("A", i, k) coordinates
        assert finding.wasted_bytes == dup.access.nbytes
        assert tally.redundant_bytes == dup.access.nbytes
        assert str(dup.key) in finding.describe()
        # and the clean plan stays clean
        assert not [f for f in audit_ir(ir)[2]]

    def test_redundant_download_detected(self):
        em = IREmitter("toy", "test", 1 << 20)
        a = em.alloc("a", (8, 8))
        em.h2d(a, key=("A", 0, 0))
        em.d2h(a, key=("A", 0, 0))
        em.d2h(a, key=("A", 0, 0))  # nothing wrote in between
        tally, findings = analyze_transfers(em.finish())
        assert [f.kind for f in findings] == ["redundant-download"]
        assert tally.redundant_bytes == 8 * 8 * 4

    def test_kernel_write_invalidates_residency(self):
        em = IREmitter("toy", "test", 1 << 20)
        a = em.alloc("a", (8, 8))
        em.h2d(a, key=("A", 0, 0))
        em.kernel("fw", reads=(a,), writes=(a,))
        em.h2d(a, key=("A", 0, 0))  # re-upload after modification: fine
        tally, findings = analyze_transfers(em.finish())
        assert findings == []
        assert tally.redundant_bytes == 0

    def test_capacity_bomb_reported_with_live_set(self):
        em = IREmitter("toy", "test", 1000)
        em.alloc("small", (10, 10))  # 400 B
        em.alloc("bomb", (20, 20))  # +1600 B > 1000 B
        peak, findings = analyze_residency(em.finish())
        assert peak == 2000
        assert [f.kind for f in findings] == ["capacity-exceeded"]
        assert "bomb" in findings[0].detail and "small" in findings[0].detail

    def test_undefined_read_reported(self):
        em = IREmitter("toy", "test", 1 << 20)
        a = em.alloc("a", (8, 8))
        b = em.alloc("b", (8, 8))
        em.h2d(a, key=("A", 0, 0))
        em.kernel("mp", reads=(a, b), writes=(a,))  # b was never written
        findings = analyze_def_use(em.finish())
        assert [f.kind for f in findings] == ["undefined-read"]
        assert findings[0].buffer == "b"

    def test_disjoint_rects_do_not_define_each_other(self):
        em = IREmitter("toy", "test", 1 << 20)
        a = em.alloc("a", (10, 10))
        em.h2d(a, Rect(0, 5, 0, 10), key=("top",))
        em.kernel("mp", reads=((a, Rect(5, 10, 0, 10)),), writes=())
        findings = analyze_def_use(em.finish())
        assert [f.kind for f in findings] == ["undefined-read"]

    def test_dropped_download_fails_the_bound(self):
        # remove one FW download: volumes no longer tile n_d·n² exactly
        g = rmat(110, 800, seed=2)
        n = g.num_vertices
        ir = emit_fw_ir(n, TEST_DEVICE)
        drop_idx = next(
            i for i, op in enumerate(ir.ops)
            if isinstance(op, CopyOp) and op.kind == "d2h"
        )
        seeded = dataclasses.replace(
            ir, ops=ir.ops[:drop_idx] + ir.ops[drop_idx + 1 :]
        )
        from repro.verifyplan.bounds import fw_bound_checks

        _, tally, _ = audit_ir(seeded)
        checks = fw_bound_checks(n, 1, tally.bytes_h2d, tally.bytes_d2h)
        d2h = next(c for c in checks if c.name == "fw-d2h-volume")
        assert not d2h.ok
        assert "FAILED" in d2h.describe()


class TestEmitterWellFormedness:
    """Structural invariants every emitted plan must satisfy."""

    @pytest.mark.parametrize(
        "emit",
        [
            pytest.param(
                lambda g, s: emit_fw_ir(g.num_vertices, s), id="fw"
            ),
            pytest.param(emit_johnson_ir, id="johnson"),
            pytest.param(emit_boundary_ir, id="boundary"),
        ],
    )
    def test_every_buffer_allocated_then_freed(self, emit):
        from repro.verifyplan.ir import AllocOp, FreeOp, KernelOp

        g = road_like(220, 2.6, seed=1)
        ir = emit(g, TEST_DEVICE)
        allocated, freed = set(), set()
        for op in ir.ops:
            if isinstance(op, AllocOp):
                allocated.add(op.buffer)
            elif isinstance(op, FreeOp):
                assert op.buffer in allocated and op.buffer not in freed
                freed.add(op.buffer)
            elif isinstance(op, CopyOp):
                assert op.access.buffer in allocated - freed
            elif isinstance(op, KernelOp):
                for acc in (*op.reads, *op.writes):
                    assert acc.buffer in allocated - freed
        assert allocated == freed == set(ir.buffers)

    def test_multi_emits_one_ir_per_device(self):
        g = road_like(220, 2.6, seed=1)
        irs = emit_multi_ir(g, TEST_DEVICE, 3)
        assert len(irs) == 3
        assert [ir.device for ir in irs] == [f"test-gpu#{d}" for d in range(3)]
