"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.graphs.generators import (
    erdos_renyi,
    planar_like,
    random_geometric,
    rmat,
    road_like,
    subdivide,
)
from repro.graphs.properties import is_connected


class TestRmat:
    def test_size_and_determinism(self):
        g1 = rmat(256, 2000, seed=1)
        g2 = rmat(256, 2000, seed=1)
        assert g1.num_vertices == 256
        assert 0 < g1.num_edges <= 2000
        assert np.array_equal(g1.indices, g2.indices)
        assert np.array_equal(g1.weights, g2.weights)

    def test_seed_changes_graph(self):
        g1 = rmat(256, 2000, seed=1)
        g2 = rmat(256, 2000, seed=2)
        assert not (
            g1.num_edges == g2.num_edges and np.array_equal(g1.indices, g2.indices)
        )

    def test_degree_skew(self):
        """R-MAT should produce a heavier-tailed degree distribution than
        a uniform random graph of the same size."""
        g = rmat(512, 8000, seed=3)
        e = erdos_renyi(512, 8000, seed=3)
        assert g.out_degree().max() > e.out_degree().max()

    def test_symmetric_option(self):
        g = rmat(128, 600, seed=4, symmetric=True)
        d = g.to_dense()
        finite = np.isfinite(d) & (d > 0)
        assert np.array_equal(finite, finite.T)

    def test_weight_range(self):
        g = rmat(64, 400, seed=5, weight_range=(2.0, 9.0))
        assert g.weights.min() >= 2.0
        assert g.weights.max() <= 9.0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(64, 100, a=0.5, b=0.4, c=0.3)


class TestPlanar:
    def test_connected_by_default(self):
        assert is_connected(planar_like(400, seed=1))

    def test_symmetric(self):
        g = planar_like(300, seed=2)
        d = g.to_dense()
        finite = np.isfinite(d)
        assert np.array_equal(finite, finite.T)

    def test_exact_vertex_count(self):
        for n in (97, 100, 256):
            assert planar_like(n, seed=3).num_vertices == n

    def test_diagonals_raise_degree(self):
        base = planar_like(400, seed=4, extra_edge_fraction=0.0)
        tri = planar_like(400, seed=4, extra_edge_fraction=0.0, diagonal_fraction=0.9)
        assert tri.num_edges > base.num_edges

    def test_drop_fraction_reduces_edges(self):
        dense = planar_like(400, seed=5, drop_fraction=0.0, extra_edge_fraction=0.0)
        sparse = planar_like(400, seed=5, drop_fraction=0.4, extra_edge_fraction=0.0)
        assert sparse.num_edges < dense.num_edges


class TestRoad:
    def test_target_degree(self):
        for d in (2.2, 2.6, 3.5):
            g = road_like(600, d, seed=6)
            assert g.num_edges / g.num_vertices == pytest.approx(d, rel=0.25)

    def test_connected(self):
        assert is_connected(road_like(500, 2.6, seed=7))

    def test_chain_vertices_present(self):
        """Road networks are dominated by degree-2 chain vertices."""
        g = road_like(800, 2.3, seed=8)
        deg = g.out_degree()
        assert (deg == 2).mean() > 0.5

    def test_degree_out_of_range(self):
        with pytest.raises(ValueError):
            road_like(100, 5.0)
        with pytest.raises(ValueError):
            road_like(100, 1.5)


class TestSubdivide:
    def test_factor_one_is_identity(self):
        g = planar_like(100, seed=9)
        assert subdivide(g, 1.0).num_vertices == g.num_vertices

    def test_vertex_growth(self):
        g = planar_like(100, seed=9, extra_edge_fraction=0.0, drop_fraction=0.0)
        s = subdivide(g, 3.0, seed=1)
        und = g.num_edges // 2
        assert s.num_vertices == g.num_vertices + und * 2  # (c-1) per edge

    def test_preserves_connectivity(self):
        g = planar_like(150, seed=10)
        assert is_connected(subdivide(g, 2.5, seed=2))


class TestGeometric:
    def test_radius_controls_degree(self):
        lo = random_geometric(300, 0.05, seed=11)
        hi = random_geometric(300, 0.12, seed=11)
        assert hi.num_edges > lo.num_edges

    def test_symmetric(self):
        g = random_geometric(200, 0.1, seed=12)
        d = g.to_dense()
        finite = np.isfinite(d)
        assert np.array_equal(finite, finite.T)

    def test_max_degree_cap(self):
        g = random_geometric(200, 0.2, seed=13, max_degree=10)
        assert g.out_degree().max() <= 12  # cap applies to undirected halves


class TestErdos:
    def test_determinism(self):
        a = erdos_renyi(100, 700, seed=14)
        b = erdos_renyi(100, 700, seed=14)
        assert np.array_equal(a.indices, b.indices)

    def test_edge_count_close(self):
        g = erdos_renyi(500, 5000, seed=15)
        assert g.num_edges == pytest.approx(5000, rel=0.05)
