"""Smoke-generate every registry entry and check basic invariants."""

import numpy as np
import pytest

from repro.graphs.properties import connected_components
from repro.graphs.suite import list_suite

SCALE = 1 / 256  # small enough that all 29 generate in seconds


@pytest.mark.parametrize("entry", list_suite(), ids=lambda e: e.name)
class TestEveryStandIn:
    def test_generates_and_is_sane(self, entry):
        g = entry.generate(SCALE)
        assert g.num_vertices >= 64
        assert g.num_edges > 0
        assert g.name == entry.name
        # weights are the default integer range
        assert g.weights.min() >= 1.0
        assert g.weights.max() <= 100.0

    def test_mostly_connected(self, entry):
        """Stand-ins should be dominated by one component (APSP on dust is
        meaningless); webs/roads may carry small satellites."""
        g = entry.generate(SCALE)
        labels = connected_components(g)
        largest = np.bincount(labels).max()
        assert largest >= 0.75 * g.num_vertices, entry.name

    def test_degree_tracks_paper(self, entry):
        g = entry.generate(SCALE)
        ours = g.num_edges / g.num_vertices
        paper = entry.paper_m / entry.paper_n
        # generous band: the generators trade exact degree for class shape
        assert paper / 3.0 <= ours <= paper * 1.6, (entry.name, ours, paper)
