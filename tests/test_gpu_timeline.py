"""Unit tests for the discrete-event timeline."""

import pytest

from repro.gpu.timeline import Timeline


class TestScheduling:
    def test_single_op(self):
        tl = Timeline()
        op = tl.schedule("compute", 0.0, 1.5, name="k")
        assert op.start == 0.0
        assert op.end == 1.5
        assert tl.makespan == 1.5

    def test_engine_serialises(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0)
        op2 = tl.schedule("compute", 0.0, 1.0)
        assert op2.start == 1.0  # waits for the engine even if stream ready

    def test_engines_independent(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0)
        op = tl.schedule("h2d", 0.0, 1.0)
        assert op.start == 0.0  # different engine: overlaps

    def test_stream_ready_respected(self):
        tl = Timeline()
        op = tl.schedule("compute", 5.0, 1.0)
        assert op.start == 5.0

    def test_start_is_max_of_constraints(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 3.0)
        op = tl.schedule("compute", 1.0, 1.0)
        assert op.start == 3.0

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            Timeline().schedule("nope", 0.0, 1.0)

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            Timeline().schedule("compute", 0.0, -1.0)

    def test_zero_duration_ok(self):
        op = Timeline().schedule("compute", 2.0, 0.0)
        assert op.start == op.end == 2.0


class TestAccounting:
    def test_busy_time(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0)
        tl.schedule("compute", 5.0, 2.0)
        assert tl.busy_time("compute") == pytest.approx(3.0)

    def test_engine_ops_filter(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0, name="a")
        tl.schedule("h2d", 0.0, 1.0, name="b")
        assert [op.name for op in tl.engine_ops("h2d")] == ["b"]

    def test_num_ops_counts_without_trace(self):
        tl = Timeline(record_trace=False)
        tl.schedule("compute", 0.0, 1.0)
        tl.schedule("compute", 0.0, 1.0)
        assert tl.num_ops == 2
        assert tl.ops == []
        assert tl.makespan == 2.0

    def test_reset(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0)
        tl.reset()
        assert tl.makespan == 0.0
        assert tl.num_ops == 0
        assert tl.ops == []

    def test_validate_passes_on_good_schedule(self):
        tl = Timeline()
        for i in range(10):
            tl.schedule("compute", i * 0.1, 0.5)
        tl.validate()

    def test_op_metadata(self):
        tl = Timeline()
        op = tl.schedule("h2d", 0.0, 1.0, stream="s1", name="copy", nbytes=42, flops=7)
        assert op.stream == "s1"
        assert op.nbytes == 42
        assert op.flops == 7
        assert op.duration == 1.0
