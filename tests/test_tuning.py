"""Tests for the empirical parameter-tuning extension."""

import numpy as np
import pytest

from repro.core.ooc_boundary import BoundaryInfeasibleError
from repro.gpu.device import V100
from repro.graphs.generators import erdos_renyi, road_like
from repro.select.tuning import tune_components, tune_delta

SPEC = V100.scaled(1 / 64)


class TestTuneDelta:
    def test_returns_candidate(self):
        g = road_like(500, 2.6, seed=1)
        result = tune_delta(g, SPEC, factors=(0.5, 1.0, 2.0), seed=0)
        assert result.parameter == "delta"
        assert any(p.value == result.best for p in result.sweep)
        assert len(result.sweep) == 3

    def test_best_minimises_time(self):
        g = road_like(500, 2.6, seed=1)
        result = tune_delta(g, SPEC, factors=(0.25, 1.0, 4.0), seed=0)
        best_time = min(p.seconds for p in result.sweep)
        chosen = next(p for p in result.sweep if p.value == result.best)
        assert chosen.seconds == best_time

    def test_deterministic(self):
        g = road_like(400, 2.6, seed=2)
        a = tune_delta(g, SPEC, seed=3)
        b = tune_delta(g, SPEC, seed=3)
        assert a.best == b.best
        assert [p.seconds for p in a.sweep] == [p.seconds for p in b.sweep]

    def test_describe(self):
        g = road_like(300, 2.6, seed=4)
        text = tune_delta(g, SPEC, factors=(1.0, 2.0), seed=0).describe()
        assert "delta: best=" in text


class TestTuneComponents:
    def test_best_is_sweep_minimum(self):
        g = road_like(800, 2.6, seed=5)
        result = tune_components(g, SPEC, seed=0)
        feasible = [p for p in result.sweep if p.feasible]
        assert min(feasible, key=lambda p: p.seconds).value == result.best

    def test_paper_region_wins(self):
        """On a small-separator graph the optimum sits at √n/8–√n/2, per
        §V-F (and the component-count ablation benchmark)."""
        g = road_like(900, 2.6, seed=6)
        result = tune_components(g, SPEC, factors=(1 / 8, 1 / 4, 1 / 2, 1.0), seed=0)
        root_n = np.sqrt(g.num_vertices)
        assert result.best <= root_n / 2 + 2

    def test_infeasible_candidates_recorded(self):
        g = erdos_renyi(1500, 9000, seed=7, symmetric=True)
        try:
            result = tune_components(g, SPEC, factors=(1 / 4, 1.0), seed=0)
        except BoundaryInfeasibleError:
            return  # acceptable: nothing feasible at all
        assert any(not p.feasible for p in result.sweep) or len(result.sweep) == 2
