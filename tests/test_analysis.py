"""Tests for the analysis layer (metrics + centrality), including
equivalence with networkx on small graphs and disk-backed streaming."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import (
    average_path_length,
    center_vertices,
    closeness_centrality,
    diameter,
    distance_statistics,
    eccentricity,
    harmonic_centrality,
    one_center,
    one_median,
    periphery_vertices,
    radius,
    reachability_matrix_density,
)
from repro.core import ooc_boundary, ooc_johnson
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, planar_like
from tests.conftest import oracle_apsp


def to_networkx(graph: CSRGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    src, dst, w = graph.edge_array()
    g.add_weighted_edges_from(zip(src.tolist(), dst.tolist(), w.tolist()))
    return g


@pytest.fixture(scope="module")
def connected_case():
    graph = planar_like(90, seed=3)
    return graph, oracle_apsp(graph)


@pytest.fixture(scope="module")
def disconnected_case():
    a = erdos_renyi(40, 220, seed=4)
    sa, da, wa = a.edge_array()
    graph = CSRGraph.from_edges(
        60, sa, da, wa
    )  # vertices 40..59 isolated
    return graph, oracle_apsp(graph)


class TestMetricsVsNetworkx:
    def test_eccentricity(self, connected_case):
        graph, dist = connected_case
        ours = eccentricity(dist)
        theirs = nx.eccentricity(to_networkx(graph), weight="weight")
        for v, e in theirs.items():
            assert ours[v] == pytest.approx(e)

    def test_diameter_radius(self, connected_case):
        graph, dist = connected_case
        g = to_networkx(graph)
        assert diameter(dist) == pytest.approx(nx.diameter(g, weight="weight"))
        assert radius(dist) == pytest.approx(nx.radius(g, weight="weight"))

    def test_center_periphery(self, connected_case):
        graph, dist = connected_case
        g = to_networkx(graph)
        assert set(center_vertices(dist).tolist()) == set(nx.center(g, weight="weight"))
        assert set(periphery_vertices(dist).tolist()) == set(
            nx.periphery(g, weight="weight")
        )

    def test_average_path_length(self, connected_case):
        graph, dist = connected_case
        expected = nx.average_shortest_path_length(to_networkx(graph), weight="weight")
        assert average_path_length(dist) == pytest.approx(expected)

    def test_closeness(self, connected_case):
        graph, dist = connected_case
        # networkx closeness is over *incoming* distances; compare on the
        # reverse graph's APSP
        rev = oracle_apsp(graph.reverse())
        ours = closeness_centrality(rev)
        theirs = nx.closeness_centrality(to_networkx(graph), distance="weight")
        for v, c in theirs.items():
            assert ours[v] == pytest.approx(c, rel=1e-6)

    def test_harmonic(self, connected_case):
        graph, dist = connected_case
        rev = oracle_apsp(graph.reverse())
        ours = harmonic_centrality(rev) * (graph.num_vertices - 1)
        theirs = nx.harmonic_centrality(to_networkx(graph), distance="weight")
        for v, c in theirs.items():
            assert ours[v] == pytest.approx(c, rel=1e-6)


class TestDisconnected:
    def test_isolated_vertices_zero(self, disconnected_case):
        _, dist = disconnected_case
        ecc = eccentricity(dist)
        assert np.all(ecc[40:] == 0.0)
        clo = closeness_centrality(dist)
        assert np.all(clo[40:] == 0.0)
        har = harmonic_centrality(dist)
        assert np.all(har[40:] == 0.0)

    def test_reachability_density(self, disconnected_case):
        _, dist = disconnected_case
        density = reachability_matrix_density(dist)
        finite = np.isfinite(dist).sum() / dist.size
        assert density == pytest.approx(finite)

    def test_average_excludes_unreachable(self, disconnected_case):
        _, dist = disconnected_case
        apl = average_path_length(dist)
        off = dist.copy()
        np.fill_diagonal(off, np.inf)
        assert apl == pytest.approx(off[np.isfinite(off)].mean())

    def test_statistics(self, disconnected_case):
        _, dist = disconnected_case
        stats = distance_statistics(dist)
        off = dist.copy()
        np.fill_diagonal(off, np.inf)
        vals = off[np.isfinite(off)]
        assert stats.reachable_pairs == vals.size
        assert stats.mean == pytest.approx(vals.mean())
        assert stats.max == pytest.approx(vals.max())
        assert 0 < stats.reachable_fraction < 1


class TestFacilityLocation:
    def test_one_median_minimises_mean(self, connected_case):
        _, dist = connected_case
        v, mean = one_median(dist)
        off = dist.copy()
        np.fill_diagonal(off, np.inf)
        means = np.array([off[u][np.isfinite(off[u])].mean() for u in range(dist.shape[0])])
        assert mean == pytest.approx(means.min())
        assert means[v] == pytest.approx(means.min())

    def test_one_center_is_center_vertex(self, connected_case):
        _, dist = connected_case
        v, ecc = one_center(dist)
        assert ecc == pytest.approx(radius(dist))
        assert v in center_vertices(dist)

    def test_candidate_restriction(self, connected_case):
        _, dist = connected_case
        cands = np.array([3, 17, 42])
        v, _ = one_median(dist, candidates=cands)
        assert v in cands

    def test_no_reachable_candidate(self):
        dist = np.full((3, 3), np.inf)
        np.fill_diagonal(dist, 0.0)
        with pytest.raises(ValueError):
            one_median(dist)


class TestStreamingAndResults:
    def test_accepts_apsp_result(self, small_rmat):
        res = ooc_johnson(small_rmat, Device(TEST_DEVICE))
        direct = eccentricity(oracle_apsp(small_rmat))
        streamed = eccentricity(res)
        assert np.allclose(direct, streamed, atol=1e-3)

    def test_permuted_result_external_order(self, small_road):
        res = ooc_boundary(small_road, Device(V100.scaled(1 / 64)), seed=0)
        direct = closeness_centrality(oracle_apsp(small_road))
        streamed = closeness_centrality(res)
        assert np.allclose(direct, streamed, rtol=1e-4)

    def test_disk_backed_result(self, small_rmat, tmp_path):
        res = ooc_johnson(
            small_rmat, Device(TEST_DEVICE), store_mode="disk", store_dir=tmp_path
        )
        assert diameter(res) == pytest.approx(
            diameter(oracle_apsp(small_rmat)), rel=1e-5
        )

    def test_block_size_invariance(self, connected_case):
        _, dist = connected_case
        a = average_path_length(dist, block_rows=7)
        b = average_path_length(dist, block_rows=1000)
        assert a == pytest.approx(b)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            eccentricity(np.zeros((3, 4)))
