"""Tests for the in-core fast path, largest-component utility, and the
results-report generator."""

import numpy as np
import pytest

from repro.bench.report import collect_records, render_markdown, write_report
from repro.bench.runner import ExperimentRecord
from repro.core.incore import fits_in_core, incore_apsp
from repro.core.ooc_fw import ooc_floyd_warshall
from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.errors import OutOfMemoryError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.properties import largest_component
from tests.conftest import oracle_apsp


class TestInCore:
    def test_matches_oracle(self, small_rmat, device):
        res = incore_apsp(small_rmat, device)
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))
        assert res.stats["in_core"]

    def test_fits_predicate(self):
        # TEST_DEVICE: 512 KiB -> n*n*4 <= 0.9*512Ki -> n <= ~343
        assert fits_in_core(300, TEST_DEVICE)
        assert not fits_in_core(400, TEST_DEVICE)

    def test_oom_beyond_boundary(self, device):
        g = erdos_renyi(450, 2000, seed=1)
        with pytest.raises(OutOfMemoryError):
            incore_apsp(g, device)

    def test_faster_than_ooc_when_it_fits(self, small_rmat):
        t_in = incore_apsp(small_rmat, Device(TEST_DEVICE)).simulated_seconds
        t_ooc = ooc_floyd_warshall(
            small_rmat, Device(TEST_DEVICE), block_size=40
        ).simulated_seconds
        assert t_in < t_ooc

    def test_exactly_three_transfers_total(self, small_rmat, device):
        res = incore_apsp(small_rmat, device)
        # one upload + one download (num_transfers counts both engines)
        assert res.stats["num_transfers"] == 2


class TestLargestComponent:
    def test_selects_biggest(self):
        g = CSRGraph.from_edges(
            7, np.array([0, 1, 4]), np.array([1, 2, 5]), np.ones(3)
        )
        sub, verts = largest_component(g)
        assert verts.tolist() == [0, 1, 2]
        assert sub.num_edges == 2

    def test_connected_graph_identity(self, small_planar):
        sub, verts = largest_component(small_planar)
        assert sub.num_vertices == small_planar.num_vertices
        assert np.array_equal(verts, np.arange(small_planar.num_vertices))

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, np.array([]), np.array([]), np.array([]))
        sub, verts = largest_component(g)
        assert sub.num_vertices == 0 and verts.size == 0


class TestReport:
    def _write_record(self, tmp_path, name):
        rec = ExperimentRecord(name, f"title {name}", "expected X")
        rec.add(graph="g", value=1.0)
        rec.note("hello")
        import os

        os.environ["REPRO_RESULTS_DIR"] = str(tmp_path)
        rec.save()

    def test_collect_orders_canonically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        for name in ("fig8", "table1", "zzz_custom"):
            self._write_record(tmp_path, name)
        records = collect_records(tmp_path)
        names = [r["experiment"] for r in records]
        assert names.index("table1") < names.index("fig8") < names.index("zzz_custom")

    def test_render_contains_tables_and_notes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        self._write_record(tmp_path, "fig2")
        text = render_markdown(collect_records(tmp_path))
        assert "## fig2 — title fig2" in text
        assert "> hello" in text
        assert "graph" in text

    def test_write_report(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        self._write_record(tmp_path, "fig3")
        out = write_report(tmp_path)
        assert out.name == "RESULTS.md"
        assert "fig3" in out.read_text()

    def test_empty_dir(self, tmp_path):
        text = render_markdown(collect_records(tmp_path))
        assert "No records" in text

    def test_ignores_non_record_json(self, tmp_path):
        (tmp_path / "junk.json").write_text("[1, 2, 3]")
        (tmp_path / "broken.json").write_text("{nope")
        assert collect_records(tmp_path) == []
