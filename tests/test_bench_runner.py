"""Tests for the benchmark harness utilities."""

import json

import pytest

from repro.bench import ExperimentRecord, cpu_profile, device_profile, format_table
from repro.gpu.device import K80, V100


class TestDeviceProfiles:
    def test_ratio_scales_throughput(self):
        spec = device_profile("ratio", scale=0.5)
        assert spec.transfer_throughput == pytest.approx(V100.transfer_throughput * 0.5)
        assert spec.minplus_rate == pytest.approx(V100.minplus_rate * 0.5)

    def test_transfer_keeps_physical_pcie(self):
        spec = device_profile("transfer", scale=0.25)
        assert spec.transfer_throughput == pytest.approx(V100.transfer_throughput)
        assert spec.minplus_rate == pytest.approx(V100.minplus_rate * 0.25)

    def test_crossover_softens_relax_scaling(self):
        spec = device_profile("crossover", scale=0.25)
        assert spec.relax_rate == pytest.approx(V100.relax_rate * 0.5)

    def test_base_override(self):
        spec = device_profile("ratio", base=K80, scale=0.5)
        assert "K80" in spec.name

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            device_profile("warp-speed")

    def test_cpu_profile_scales(self):
        cpu = cpu_profile(scale=0.5)
        assert cpu.threads == 28  # structure preserved, rates scaled


class TestExperimentRecord:
    def test_save_and_shape(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        rec = ExperimentRecord("figX", "demo", "expected band")
        rec.add(graph="a", value=1.5)
        rec.add(graph="b", value=2.5)
        rec.note("a note")
        path = rec.save()
        data = json.loads(path.read_text())
        assert data["experiment"] == "figX"
        assert len(data["rows"]) == 2
        assert data["notes"] == ["a note"]

    def test_print_does_not_crash(self, capsys):
        rec = ExperimentRecord("figY", "demo", "expected")
        rec.add(x=1)
        rec.print()
        out = capsys.readouterr().out
        assert "figY" in out and "expected" in out


class TestFormatTable:
    def test_alignment(self):
        out = format_table([{"name": "a", "v": 1.0}, {"name": "bbbb", "v": 22.5}])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_union_of_keys(self):
        out = format_table([{"a": 1}, {"b": 2}])
        assert "a" in out.splitlines()[0]
        assert "b" in out.splitlines()[0]

    def test_float_formats(self):
        out = format_table([{"x": 1e-9, "y": 12345.6, "z": 0.5, "w": 0}])
        assert "1e-09" in out
        assert "1.23e+04" in out
        assert "0.500" in out

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_explicit_columns(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]
