"""Regression tests for the Chrome-trace export of the device schedule."""

from __future__ import annotations

import json

from repro.core.ooc_fw import ooc_floyd_warshall
from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.trace import export_chrome_trace, utilization_report


def _traced_device(graph):
    device = Device(TEST_DEVICE)
    ooc_floyd_warshall(graph, device, block_size=40, overlap=True)
    return device


def test_export_chrome_trace_is_valid_trace_json(small_rmat, tmp_path):
    device = _traced_device(small_rmat)
    path = export_chrome_trace(device, tmp_path / "trace.json")
    assert path.exists()
    doc = json.loads(path.read_text())

    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert isinstance(events, list) and events

    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert meta and slices
    assert {e["ph"] for e in events} <= {"M", "X"}

    # metadata rows name every engine, and every slice maps onto one of them
    engine_pids = {e["pid"] for e in meta}
    engine_names = {e["args"]["name"] for e in meta}
    assert {"engine:compute", "engine:h2d", "engine:d2h"} <= engine_names
    for e in slices:
        assert e["pid"] in engine_pids
        assert isinstance(e["ts"], float) and e["ts"] >= 0.0
        assert isinstance(e["dur"], float) and e["dur"] >= 0.0
        assert isinstance(e["name"], str) and e["name"]
        assert "stream" in e["args"] and "nbytes" in e["args"]

    # a blocked-FW run must show kernels and both copy directions
    names = {e["name"] for e in slices}
    assert "fw_diag" in names
    assert "h2d" in names and "d2h" in names


def test_trace_slices_match_timeline_ops(small_rmat, tmp_path):
    device = _traced_device(small_rmat)
    doc = json.loads(export_chrome_trace(device, tmp_path / "t.json").read_text())
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == len(device.timeline.ops)
    # timestamps are seconds->microseconds; spot check the first op
    first = device.timeline.ops[0]
    assert any(
        abs(e["ts"] - first.start * 1e6) < 1e-9 and abs(e["dur"] - first.duration * 1e6) < 1e-9
        for e in slices
    )


def test_utilization_report_consistent_with_trace(small_rmat):
    device = _traced_device(small_rmat)
    report = utilization_report(device)
    assert report.makespan > 0
    assert report.overlap_factor > 0
    engines = {e.engine for e in report.engines}
    assert {"compute", "h2d", "d2h"} <= engines
    assert sum(e.num_ops for e in report.engines) == len(device.timeline.ops)
