"""Invariants of the workload-statistics records across the suite graphs.

The machine models consume these statistics, so their internal consistency
is load-bearing: relaxation counts must bound heavy subsets, iteration
counts must be positive exactly when work happened, and Dijkstra's heap
accounting must balance.
"""

import numpy as np
import pytest

from repro.graphs.suite import get_suite_graph
from repro.sssp import (
    bellman_ford,
    delta_stepping,
    dijkstra,
    near_far,
    near_far_batch,
)

GRAPHS = ["usroads", "wi2010", "onera_dual", "stanford"]
SCALE = 1 / 256


@pytest.fixture(scope="module", params=GRAPHS)
def graph(request):
    return get_suite_graph(request.param, SCALE)


class TestNearFarStats:
    def test_heavy_subset_of_total(self, graph):
        _, stats = near_far(graph, 0, heavy_degree=8)
        assert 0 <= stats.heavy_relaxations <= stats.relaxations

    def test_child_launches_iff_heavy(self, graph):
        _, none = near_far(graph, 0, heavy_degree=10**9)
        assert none.heavy_relaxations == 0 and none.child_launches == 0
        _, all_heavy = near_far(graph, 0, heavy_degree=0)
        if all_heavy.relaxations:
            assert all_heavy.heavy_relaxations == all_heavy.relaxations
            assert all_heavy.child_launches > 0

    def test_batch_scales_superadditively(self, graph):
        """A 4-source batch does at least the work of one source and at
        most 4 sources' worth plus shared-split slack."""
        _, one = near_far_batch(graph, np.array([0]))
        _, four = near_far_batch(graph, np.array([0, 1, 2, 3]))
        assert four.relaxations >= one.relaxations
        assert four.relaxations <= 8 * one.relaxations + 1000

    def test_iterations_positive_when_reachable(self, graph):
        _, stats = near_far(graph, 0)
        assert stats.iterations >= 1

    def test_deterministic(self, graph):
        _, a = near_far(graph, 3)
        _, b = near_far(graph, 3)
        assert a == b


class TestDijkstraAccounting:
    def test_pops_bounded_by_pushes(self, graph):
        _, stats = dijkstra(graph, 0)
        assert stats.pops <= stats.pushes

    def test_relaxations_bounded_by_edges(self, graph):
        _, stats = dijkstra(graph, 0)
        # each vertex settles once, so relaxations <= m
        assert stats.relaxations <= graph.num_edges

    def test_pushes_bounded_by_relaxations_plus_source(self, graph):
        _, stats = dijkstra(graph, 0)
        assert stats.pushes <= stats.relaxations + 1


class TestCrossAlgorithmWork:
    def test_work_efficiency_ordering(self, graph):
        """Dijkstra ≤ Near-Far ≤ Bellman-Ford in relaxations (the Section
        II-B spectrum), modulo small constant slack."""
        _, dj = dijkstra(graph, 0)
        _, nf = near_far(graph, 0)
        _, bf = bellman_ford(graph, 0)
        assert dj.relaxations <= nf.relaxations * 1.01 + 10
        assert nf.relaxations <= bf.relaxations * 1.01 + 10

    def test_delta_stepping_between(self, graph):
        _, dj = dijkstra(graph, 0)
        _, ds = delta_stepping(graph, 0)
        assert ds.relaxations >= dj.relaxations * 0.5
