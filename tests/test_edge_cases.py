"""Edge-case tests across the stack: zero weights, degenerate graphs,
dtype boundaries, and exotic-but-legal inputs."""

import numpy as np
import pytest

from repro.core import (
    incore_apsp,
    ooc_boundary,
    ooc_floyd_warshall,
    ooc_johnson,
    solve_apsp,
)
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.graphs.csr import CSRGraph
from repro.sssp import bellman_ford, delta_stepping, dijkstra, near_far
from tests.conftest import oracle_apsp, oracle_sssp


def graph_of(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edges(n, src, dst, w)


class TestZeroWeights:
    """Weight 0 is legal (non-negative); label-correcting algorithms must
    not loop on zero-weight cycles."""

    @pytest.fixture
    def zero_cycle(self):
        # 0 -> 1 -> 2 -> 0 all weight 0, plus a weighted exit
        return graph_of(4, [(0, 1, 0.0), (1, 2, 0.0), (2, 0, 0.0), (2, 3, 5.0)])

    def test_sssp_all_terminate_and_agree(self, zero_cycle):
        expected = oracle_sssp(zero_cycle, [0])[0]
        for fn in (dijkstra, bellman_ford, delta_stepping, near_far):
            dist, _ = fn(zero_cycle, 0)
            assert np.allclose(dist, expected), fn.__name__

    def test_apsp_drivers(self, zero_cycle):
        expected = oracle_apsp(zero_cycle)
        assert np.allclose(
            ooc_floyd_warshall(zero_cycle, Device(TEST_DEVICE)).to_array(), expected
        )
        assert np.allclose(
            ooc_johnson(zero_cycle, Device(TEST_DEVICE)).to_array(), expected
        )

    def test_all_zero_weights(self):
        g = graph_of(5, [(i, (i + 1) % 5, 0.0) for i in range(5)])
        dist = ooc_johnson(g, Device(TEST_DEVICE)).to_array()
        assert np.all(dist == 0.0)


class TestDegenerateGraphs:
    def test_single_vertex_all_drivers(self):
        g = graph_of(1, [])
        for driver in (ooc_floyd_warshall, ooc_johnson, incore_apsp):
            res = driver(g, Device(TEST_DEVICE))
            assert res.to_array().shape == (1, 1)
            assert res.to_array()[0, 0] == 0.0
        res = ooc_boundary(g, Device(V100.scaled(1 / 64)))
        assert res.to_array()[0, 0] == 0.0

    def test_edgeless_graph(self):
        g = graph_of(6, [])
        res = ooc_johnson(g, Device(TEST_DEVICE))
        arr = res.to_array()
        assert np.all(np.diag(arr) == 0)
        off = ~np.eye(6, dtype=bool)
        assert np.all(np.isinf(arr[off]))

    def test_two_vertices_one_edge(self):
        g = graph_of(2, [(0, 1, 7.0)])
        res = ooc_floyd_warshall(g, Device(TEST_DEVICE))
        assert res.distance(0, 1) == 7.0
        assert np.isinf(res.distance(1, 0))

    def test_complete_graph(self):
        n = 30
        edges = [(i, j, float(1 + (i * 7 + j) % 9)) for i in range(n) for j in range(n) if i != j]
        g = graph_of(n, edges)
        expected = oracle_apsp(g)
        assert np.allclose(ooc_johnson(g, Device(TEST_DEVICE)).to_array(), expected)
        assert np.allclose(ooc_floyd_warshall(g, Device(TEST_DEVICE)).to_array(), expected)

    def test_self_loops_ignored_everywhere(self):
        g = graph_of(3, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0), (1, 2, 3.0)])
        res = solve_apsp(g, algorithm="johnson", device=TEST_DEVICE)
        assert res.distance(0, 0) == 0.0
        assert res.distance(0, 2) == 5.0

    def test_long_path_graph(self):
        """A pure path exercises the worst case for bucket advancement."""
        n = 300
        g = graph_of(n, [(i, i + 1, 10.0) for i in range(n - 1)])
        dist, stats = near_far(g, 0)
        assert dist[n - 1] == 10.0 * (n - 1)
        assert stats.splits_advanced > 0

    def test_star_graph_boundary(self):
        """A star has a 1-vertex separator — boundary algorithm heaven."""
        n = 120
        edges = [(0, i, 1.0) for i in range(1, n)] + [(i, 0, 1.0) for i in range(1, n)]
        g = graph_of(n, edges)
        res = ooc_boundary(g, Device(V100.scaled(1 / 64)), num_components=4)
        assert np.allclose(res.to_array(), oracle_apsp(g))


class TestNumericBoundaries:
    def test_large_integer_weights_exact_in_float32(self):
        # path sums approach but stay below 2^24, the float32 integer limit
        g = graph_of(3, [(0, 1, 8_000_000.0), (1, 2, 8_000_000.0)])
        res = ooc_floyd_warshall(g, Device(TEST_DEVICE))
        assert res.distance(0, 2) == 16_000_000.0

    def test_fractional_weights(self):
        g = graph_of(3, [(0, 1, 0.5), (1, 2, 0.25)])
        res = ooc_johnson(g, Device(TEST_DEVICE))
        assert res.distance(0, 2) == pytest.approx(0.75)

    def test_mixed_magnitudes(self):
        g = graph_of(4, [(0, 1, 1e-3), (1, 2, 1e3), (2, 3, 1.0), (0, 3, 1e4)])
        expected = oracle_apsp(g)
        got = ooc_johnson(g, Device(TEST_DEVICE)).to_array()
        assert np.allclose(got, expected, rtol=1e-5)


class TestCliExtras:
    def test_plan_command(self, capsys):
        from repro.cli import main

        assert main(["plan", "road:n=500,deg=2.6,seed=1", "--scale", "0.015625"]) == 0
        out = capsys.readouterr().out
        assert "out of core" in out or "fits in core" in out
        assert "boundary:" in out

    def test_report_command_stdout(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench import ExperimentRecord
        from repro.cli import main

        rec = ExperimentRecord("fig2", "t", "e")
        rec.add(a=1)
        rec.save()
        assert main(["report", "--stdout"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_report_command_writes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.cli import main

        assert main(["report"]) == 0
        assert (tmp_path / "RESULTS.md").exists()
