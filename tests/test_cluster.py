"""Cluster-scale schedule verification: proofs, defects, and baselines.

The contract under test: the distributed blocked-FW simulator and its
``emit_cluster_ir`` mirror walk one canonical op stream, so

* the dynamic message trace matches the static schedule **byte for
  byte**, per link and per lowered collective;
* both match the closed-form 2-D block-cyclic communication bounds;
* the α–β link-model replay predicts the simulated makespan **exactly**;
* every seeded wiring defect — dropped panel broadcast, duplicated
  reduce contribution, mismatched send/recv rank, circular collective
  wait — is caught *statically* (happens-before or comm-bounds), with
  node/link/block attribution, while clean schedules verify with zero
  findings.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.cluster import (
    BlockCyclicLayout,
    ClusterSpec,
    cluster_fw,
    default_block_size,
    emit_cluster_ir,
    near_square_grid,
    slice_widths,
    verify_cluster,
)
from repro.core.blocked_fw import floyd_warshall
from repro.core.minplus import DIST_DTYPE
from repro.graphs.generators import rmat
from repro.verifyplan import (
    BarrierOp,
    RecvOp,
    SendOp,
    analyze_cluster_hb,
    analyze_comm,
    audit_ir,
    cluster_comm_checks,
    expected_comm_volumes,
    predict_cluster_timing,
)

#: (nodes, devices per node) topologies of the standard sweep
TOPOLOGIES = [(1, 1), (2, 1), (2, 2), (4, 1), (3, 2)]

N = 120


@pytest.fixture(scope="module")
def graph():
    return rmat(N, 6 * N, seed=3)


@pytest.fixture(scope="module")
def reference(graph):
    return floyd_warshall(graph.to_dense(dtype=DIST_DTYPE))


def _setup(nodes, devices, n=N, block_size=None):
    cluster = ClusterSpec.make(nodes, devices)
    bs = block_size or default_block_size(n, cluster)
    layout = BlockCyclicLayout(n=n, block_size=bs, grid=cluster.grid)
    irs = emit_cluster_ir(n, cluster, block_size=bs)
    return cluster, layout, irs


class TestTopology:
    def test_near_square_grid(self):
        assert near_square_grid(1) == (1, 1)
        assert near_square_grid(2) == (1, 2)
        assert near_square_grid(4) == (2, 2)
        assert near_square_grid(6) == (2, 3)
        assert near_square_grid(12) == (3, 4)
        assert near_square_grid(7) == (1, 7)  # prime: flat grid

    def test_slice_widths_partition_the_pivot(self):
        for bk, m in [(30, 1), (30, 4), (7, 3), (2, 4)]:
            widths = slice_widths(bk, m)
            assert sum(widths) == bk and len(widths) == m
            assert all(w >= 0 for w in widths)
            assert max(widths) - min(widths) <= 1

    def test_block_cyclic_ownership_partitions_blocks(self):
        cluster, layout, _ = _setup(4, 1)
        seen = {}
        for node in range(cluster.num_nodes):
            for ij in layout.owned_blocks(node):
                assert ij not in seen
                seen[ij] = node
        assert len(seen) == layout.num_blocks ** 2
        # cyclic: owners repeat with grid periodicity
        pr, pc = cluster.grid
        for (i, j), node in seen.items():
            assert node == (i % pr) * pc + (j % pc)

    def test_link_model(self):
        cluster = ClusterSpec.make(2, 2)
        assert cluster.link_of(0, 1) is cluster.intra_link
        assert cluster.link_of(0, 2) is cluster.inter_link
        assert cluster.inter_link.duration(1000) == pytest.approx(
            cluster.inter_link.latency + 1000 / cluster.inter_link.bandwidth
        )
        assert cluster.rank_name(3) == "n1d1"


class TestClusterNumerics:
    @pytest.mark.parametrize("nodes,devices", TOPOLOGIES)
    def test_matches_reference_fw(self, graph, reference, nodes, devices):
        result = cluster_fw(graph, ClusterSpec.make(nodes, devices))
        assert np.array_equal(result.dist, reference)

    def test_ragged_block_size_matches_reference(self, graph, reference):
        result = cluster_fw(graph, ClusterSpec.make(2, 2), block_size=17)
        assert np.array_equal(result.dist, reference)


class TestCrossValidation:
    """trace == static schedule == closed form, and timing is exact."""

    @pytest.mark.parametrize("nodes,devices", TOPOLOGIES)
    def test_trace_matches_ir_byte_for_byte(self, graph, nodes, devices):
        cluster, layout, irs = _setup(nodes, devices)
        result = cluster_fw(graph, cluster, block_size=layout.block_size)
        tally = analyze_comm(irs)
        assert result.link_bytes == tally.link_bytes
        assert result.kind_bytes == tally.kind_bytes
        assert result.num_messages == tally.num_messages

    @pytest.mark.parametrize("nodes,devices", TOPOLOGIES)
    def test_closed_form_volumes_exact(self, nodes, devices):
        cluster, layout, irs = _setup(nodes, devices)
        report = cluster_comm_checks(cluster, layout, analyze_comm(irs))
        assert report.ok, report.describe()
        expected = expected_comm_volumes(cluster, layout)
        assert sum(expected.values()) == report.total_bytes

    @pytest.mark.parametrize("nodes,devices", TOPOLOGIES)
    def test_predicted_makespan_equals_simulated(self, graph, nodes, devices):
        cluster, layout, irs = _setup(nodes, devices)
        result = cluster_fw(graph, cluster, block_size=layout.block_size)
        timing = predict_cluster_timing(
            irs, cluster.device, link_of=cluster.link_of
        )
        assert timing.makespan == result.makespan  # exact, not approx

    def test_ragged_blocks_still_exact(self, graph):
        cluster, layout, irs = _setup(2, 2, block_size=17)  # 120 % 17 != 0
        result = cluster_fw(graph, cluster, block_size=17)
        tally = analyze_comm(irs)
        assert result.link_bytes == tally.link_bytes
        assert cluster_comm_checks(cluster, layout, tally).ok
        timing = predict_cluster_timing(
            irs, cluster.device, link_of=cluster.link_of
        )
        assert timing.makespan == result.makespan

    @pytest.mark.parametrize("nodes,devices", TOPOLOGIES)
    def test_clean_schedules_verify_with_zero_findings(self, nodes, devices):
        cluster, _, irs = _setup(nodes, devices)
        hb = analyze_cluster_hb(irs, node_names=cluster.node_names())
        assert hb.ok and not hb.findings
        for ir in irs:
            _, _, findings = audit_ir(ir)
            assert not findings


def _drop_op(irs, pred):
    """Remove the first op matching ``pred``; returns (mutated, victim)."""
    for i, ir in enumerate(irs):
        for j, op in enumerate(ir.ops):
            if pred(ir, op):
                out = list(irs)
                out[i] = dataclasses.replace(
                    ir, ops=ir.ops[:j] + ir.ops[j + 1:]
                )
                return out, (i, op)
    raise AssertionError("no op matched the defect predicate")


def _first_op(irs, pred):
    for i, ir in enumerate(irs):
        for j, op in enumerate(ir.ops):
            if pred(ir, op):
                return i, j, op
    raise AssertionError("no op matched")


class TestSeededDefects:
    """Each wiring defect must be caught statically, with attribution."""

    def test_dropped_panel_broadcast_is_orphaned_recv(self):
        cluster, layout, irs = _setup(4, 1)
        mutated, (rank, victim) = _drop_op(
            irs, lambda ir, op: isinstance(op, SendOp)
            and op.collective == "broadcast-row"
        )
        hb = analyze_cluster_hb(mutated, node_names=cluster.node_names())
        orphans = [f for f in hb.findings if f.kind == "orphaned-recv"]
        assert orphans, hb.findings
        # attribution: the blocked receiver names the link and block
        direct = [
            f for f in orphans
            if f.buffer == str(victim.key)
            and cluster.rank_name(victim.dst) in f.detail
        ]
        assert direct, orphans
        assert "link" in direct[0].detail and "block" in direct[0].detail
        # the comm proof independently localises the short link
        report = cluster_comm_checks(cluster, layout, analyze_comm(mutated))
        failed = [c for c in report.checks if not c.ok]
        assert any(c.name == "comm-broadcast-row" for c in failed)
        src = cluster.rank_name(rank)
        assert any(c.name.startswith(f"comm-link-{src}->") for c in failed)

    def test_dropped_send_recv_pair_caught_by_commbounds_and_defuse(self):
        cluster, layout, irs = _setup(4, 1)
        mutated, (_, send) = _drop_op(
            irs, lambda ir, op: isinstance(op, SendOp)
            and op.collective == "broadcast-col"
        )
        mutated, (rank, _) = _drop_op(
            mutated, lambda ir, op: isinstance(op, RecvOp)
            and op.tag == send.tag and ir.rank == send.dst
        )
        # the pair vanished symmetrically, so HB sees no orphan — the
        # closed-form volume proof still catches the missing panel
        report = cluster_comm_checks(cluster, layout, analyze_comm(mutated))
        assert not report.ok
        failed = {c.name for c in report.checks if not c.ok}
        assert "comm-broadcast-col" in failed and "comm-total" in failed
        # and the receiver now reads a panel that was never delivered
        _, _, findings = audit_ir(mutated[rank])
        assert any(f.kind == "undefined-read" for f in findings)

    def test_duplicated_reduce_contribution_is_orphaned_send(self):
        cluster, layout, irs = _setup(2, 2)
        rank, j, op = _first_op(
            irs, lambda ir, op: isinstance(op, SendOp)
            and op.collective == "reduce"
        )
        mutated = list(irs)
        mutated[rank] = dataclasses.replace(
            irs[rank], ops=irs[rank].ops[:j] + (op,) + irs[rank].ops[j:]
        )
        hb = analyze_cluster_hb(mutated, node_names=cluster.node_names())
        orphans = [f for f in hb.findings if f.kind == "orphaned-send"]
        assert orphans
        assert "duplicated contribution" in orphans[0].detail
        report = cluster_comm_checks(cluster, layout, analyze_comm(mutated))
        failed = {c.name for c in report.checks if not c.ok}
        assert "comm-reduce" in failed

    def test_mismatched_send_rank_is_orphaned_both_ways(self):
        cluster, layout, irs = _setup(4, 1)
        rank, j, op = _first_op(
            irs, lambda ir, op: isinstance(op, SendOp)
            and op.collective == "broadcast-diag"
        )
        wrong = next(
            r for r in range(cluster.num_ranks)
            if r not in (op.dst, rank)
        )
        mutated = list(irs)
        mutated[rank] = dataclasses.replace(
            irs[rank],
            ops=irs[rank].ops[:j]
            + (dataclasses.replace(op, dst=wrong),)
            + irs[rank].ops[j + 1:],
        )
        hb = analyze_cluster_hb(mutated, node_names=cluster.node_names())
        kinds = {f.kind for f in hb.findings}
        assert "orphaned-recv" in kinds  # the intended receiver starves
        assert "orphaned-send" in kinds  # the stray message is unconsumed
        # the per-link volume proof names both drifted links
        report = cluster_comm_checks(cluster, layout, analyze_comm(mutated))
        failed = {c.name for c in report.checks if not c.ok}
        src = cluster.rank_name(rank)
        assert f"comm-link-{src}->{cluster.rank_name(op.dst)}" in failed
        assert f"comm-link-{src}->{cluster.rank_name(wrong)}" in failed

    def test_circular_collective_wait_is_deadlock(self):
        cluster, _, irs = _setup(2, 1)

        def recv_before_send(ir):
            """Reorder the terminal all-gather: receive before sending."""
            sends = [op for op in ir.ops if isinstance(op, SendOp)
                     and op.collective == "allgather"]
            recvs = [op for op in ir.ops if isinstance(op, RecvOp)
                     and op.collective == "allgather"]
            rest = [op for op in ir.ops
                    if not (isinstance(op, (SendOp, RecvOp))
                            and op.collective == "allgather")]
            cut = next(i for i, op in enumerate(rest)
                       if isinstance(op, BarrierOp)
                       and op.label == "after-allgather")
            return dataclasses.replace(
                ir, ops=tuple(rest[:cut]) + tuple(recvs) + tuple(sends)
                + tuple(rest[cut:]),
            )

        mutated = [recv_before_send(ir) for ir in irs]
        hb = analyze_cluster_hb(mutated, node_names=cluster.node_names())
        cycles = [f for f in hb.findings if f.kind == "circular-wait"]
        assert len(cycles) >= 2  # both leads blocked on each other
        assert "deadlocked collective" in cycles[0].detail
        # the timing replay refuses to schedule a deadlocked fleet
        with pytest.raises(ValueError, match="deadlock"):
            predict_cluster_timing(
                mutated, cluster.device, link_of=cluster.link_of
            )

    def test_wrong_key_is_key_mismatch(self):
        cluster, _, irs = _setup(2, 1)
        rank, j, op = _first_op(
            irs, lambda ir, op: isinstance(op, SendOp)
            and op.collective == "broadcast-diag"
        )
        mutated = list(irs)
        mutated[rank] = dataclasses.replace(
            irs[rank],
            ops=irs[rank].ops[:j]
            + (dataclasses.replace(op, key=("bogus", 9, 9)),)
            + irs[rank].ops[j + 1:],
        )
        hb = analyze_cluster_hb(mutated, node_names=cluster.node_names())
        assert any(f.kind == "key-mismatch" for f in hb.findings)


class TestVerifyCluster:
    def test_clean_schedule_verifies(self, graph):
        ver = verify_cluster(N, ClusterSpec.make(2, 2), graph=graph)
        assert ver.ok
        assert ver.cross_validation and all(ver.cross_validation.values())
        assert ver.peak_bytes <= ver.capacity
        assert not ver.findings

    def test_to_dict_round_trips_through_json(self, graph):
        ver = verify_cluster(N, ClusterSpec.make(3, 2), graph=graph)
        payload = json.loads(json.dumps(ver.to_dict()))
        assert payload["ok"] is True
        assert payload["comm"]["ok"] is True
        assert payload["cross_validation"]["makespan_exact"] is True

    def test_static_only_skips_cross_validation(self):
        ver = verify_cluster(N, ClusterSpec.make(2, 1))
        assert ver.ok and ver.cross_validation is None

    def test_graph_size_mismatch_rejected(self, graph):
        with pytest.raises(ValueError, match="vertices"):
            verify_cluster(N + 1, ClusterSpec.make(2, 1), graph=graph)


class TestScalingBaseline:
    """Spot-check BENCH_cluster.json entries against a fresh run."""

    @pytest.mark.parametrize("name", ["strong-n180-2x2", "weak-n120-1x1"])
    def test_committed_entry_reproduces_exactly(self, name):
        from repro.bench.cluster import BASELINE_FIELDS, _run_config, load_baseline

        baseline = load_baseline()
        entry = baseline["configs"][name]
        fresh = _run_config(entry["config"])
        for field in BASELINE_FIELDS:
            assert fresh[field] == entry[field], field

    def test_every_committed_entry_is_exact(self):
        from repro.bench.cluster import load_baseline

        for name, entry in load_baseline()["configs"].items():
            assert entry["ok"] and entry["exact"], name


class TestEmitterDrift:
    """RPR010: drivers must stay in sync with their emit_*_ir mirrors."""

    def test_all_registered_canaries_in_sync(self):
        from repro.sanitize.drift import check_drift

        checks = check_drift()
        assert len(checks) == 6
        for check in checks:
            assert check.ok and not check.skipped, check.describe()

    def test_drifted_counts_fail(self):
        from repro.sanitize.drift import DriftCheck

        drifted = DriftCheck(
            driver="fw", dynamic={"ops": 28}, static={"ops": 27}
        )
        assert not drifted.ok and "DRIFT" in drifted.describe()
        assert DriftCheck(driver="b", skipped="plan infeasible").ok
        assert not DriftCheck(driver="b", skipped="canary failed: boom").ok

    def test_lint_flags_drifted_driver(self, monkeypatch):
        from pathlib import Path

        from repro.sanitize import drift, lint

        monkeypatch.setitem(
            drift._CACHE, "core/ooc_fw.py",
            drift.DriftCheck(
                driver="fw", dynamic={"ops": 28}, static={"ops": 30}
            ),
        )
        root = Path(__file__).resolve().parents[1]
        violations = lint.lint_file(
            root / "src/repro/core/ooc_fw.py", root=root
        )
        assert any(v.rule == "RPR010" for v in violations)

    def test_lint_clean_on_in_sync_driver(self):
        from pathlib import Path

        from repro.sanitize import lint

        root = Path(__file__).resolve().parents[1]
        violations = lint.lint_file(
            root / "src/repro/cluster/simulate.py", root=root
        )
        assert not [v for v in violations if v.rule == "RPR010"]


class TestClusterCLI:
    def test_verify_cluster_text(self, capsys):
        from repro.cli import main

        rc = main([
            "verify-cluster", "rmat:n=96,m=576,seed=3",
            "--device", "test", "--scale", "1",
            "--nodes", "2", "--num-devices", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VERIFIED" in out and "dynamic cross-validation" in out

    def test_verify_cluster_json_schema(self, capsys):
        from repro.cli import SCHEMA_VERSION, main

        rc = main([
            "verify-cluster", "rmat:n=96,m=576,seed=3",
            "--device", "test", "--scale", "1",
            "--nodes", "4", "--static-only", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["ok"] is True
        assert payload["comm"]["ok"] is True
        assert payload["cross_validation"] is None

    def test_bench_cluster_check_passes_on_committed_baseline(self, capsys):
        from repro.cli import main

        assert main(["bench-cluster", "--check"]) == 0
        assert "no drift" in capsys.readouterr().out
