"""The serving benchmark baseline (``BENCH_serve.json``) and its CI gate.

The committed baseline must reproduce exactly on the modeled clock, the
issue's hard floor — batched throughput ≥ 3× unbatched at offered loads
≥ 64 — must hold in the recorded figures, and ``compare_serve`` must
flag tampering, missing configurations, and floor violations.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import serve as bench_serve
from repro.bench.serve import (
    BASELINE_FIELDS,
    SPEEDUP_FLOOR,
    SPEEDUP_GATE_LOAD,
    bench_serve_path,
    collect_serve,
    compare_serve,
    load_serve,
    save_serve,
)
from repro.cli import main

#: a cheap stand-in for the real config table (n=40 on the V100 model runs
#: in milliseconds; the real table is exercised once by the no-drift test)
TINY_CONFIGS = (
    {"name": "tiny-rmat", "kind": "rmat", "n": 40, "m": 160,
     "device": "v100", "seed": 3},
)
TINY_LOADS = (4, 8)


class TestCommittedBaseline:
    def test_no_drift_from_committed_baseline(self):
        """The CI gate: recollecting on the modeled clock reproduces every
        recorded figure exactly and the batching floor holds."""
        assert compare_serve() == []

    def test_recorded_speedups_clear_the_floor(self):
        baseline = load_serve()
        gated = 0
        for entry in baseline["configs"].values():
            for load, row in entry["loads"].items():
                assert set(BASELINE_FIELDS) <= set(row)
                if int(load) >= SPEEDUP_GATE_LOAD:
                    gated += 1
                    assert row["speedup"] >= SPEEDUP_FLOOR
        assert gated >= 2  # both configs gate at 64 and 128

    def test_path_env_override(self, monkeypatch, tmp_path):
        target = tmp_path / "elsewhere.json"
        monkeypatch.setenv("REPRO_BENCH_SERVE", str(target))
        assert bench_serve_path() == target
        monkeypatch.delenv("REPRO_BENCH_SERVE")
        assert bench_serve_path().name == "BENCH_serve.json"


class TestCompareSemantics:
    @pytest.fixture
    def tiny_baseline(self, monkeypatch):
        monkeypatch.setattr(bench_serve, "SERVE_CONFIGS", TINY_CONFIGS)
        monkeypatch.setattr(bench_serve, "OFFERED_LOADS", TINY_LOADS)
        return collect_serve()

    def test_identical_payload_has_no_drift(self, tiny_baseline):
        assert compare_serve(copy.deepcopy(tiny_baseline)) == []

    def test_tampered_field_is_flagged(self, tiny_baseline):
        tampered = copy.deepcopy(tiny_baseline)
        row = tampered["configs"]["tiny-rmat"]["loads"]["4"]
        row["batched_qps"] += 1.0
        drifts = compare_serve(tampered)
        assert any("batched_qps drifted" in d for d in drifts)

    def test_missing_and_new_configs_are_flagged(self, tiny_baseline):
        renamed = copy.deepcopy(tiny_baseline)
        renamed["configs"]["ghost"] = renamed["configs"].pop("tiny-rmat")
        drifts = compare_serve(renamed)
        assert any("ghost: configuration missing" in d for d in drifts)
        assert any("tiny-rmat: new configuration" in d for d in drifts)

    def test_floor_violation_is_flagged(self, tiny_baseline, monkeypatch):
        # gate the tiny loads and raise the floor beyond reach: the check
        # must fail on the floor even though every figure matches exactly
        monkeypatch.setattr(bench_serve, "SPEEDUP_GATE_LOAD", min(TINY_LOADS))
        monkeypatch.setattr(bench_serve, "SPEEDUP_FLOOR", 1e9)
        drifts = compare_serve(copy.deepcopy(tiny_baseline))
        assert any("below the 1000000000.0x floor" in d for d in drifts)


class TestBenchServeCli:
    @pytest.fixture
    def redirected(self, monkeypatch, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        monkeypatch.setenv("REPRO_BENCH_SERVE", str(path))
        monkeypatch.setattr(bench_serve, "SERVE_CONFIGS", TINY_CONFIGS)
        monkeypatch.setattr(bench_serve, "OFFERED_LOADS", TINY_LOADS)
        return path

    def test_record_then_check_roundtrip(self, redirected, capsys):
        assert main(["bench-serve"]) == 0
        assert redirected.exists()
        assert main(["bench-serve", "--check"]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_check_fails_on_tampered_file(self, redirected, capsys):
        save_serve()
        payload = json.loads(redirected.read_text())
        payload["configs"]["tiny-rmat"]["loads"]["8"]["speedup"] = 0.0
        redirected.write_text(json.dumps(payload))
        assert main(["bench-serve", "--check"]) == 1
        assert "speedup drifted" in capsys.readouterr().out

    def test_redirected_save_does_not_touch_mirror(self, redirected, tmp_path):
        from repro.bench.runner import results_dir

        mirror = results_dir() / "serve.json"
        before = mirror.read_text()
        save_serve()
        assert mirror.read_text() == before
