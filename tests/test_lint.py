"""AST contract-checker tests: each rule fires on a fixture, the tree is clean."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sanitize import format_violations, lint_file, lint_paths

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _rules(violations) -> set[str]:
    return {v.rule for v in violations}


# ---------------------------------------------------------------------------
# One fixture per rule
# ---------------------------------------------------------------------------
def test_rpr001_raw_minplus_in_core(tmp_path):
    path = _write(
        tmp_path, "repro/core/fused.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['bad']\n"
        "def bad(C, A, B):\n"
        "    np.minimum(C, A[:, :, None] + B[None, :, :], out=C)\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR001"}
    v = violations[0]
    assert v.name == "raw-minplus" and v.line == 5
    assert "fused.py:5" in v.describe()


def test_rpr001_not_applied_outside_core(tmp_path):
    path = _write(
        tmp_path, "repro/select/model.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['ok']\n"
        "def ok(C, A, B):\n"
        "    np.minimum(C, A[:, :, None] + B[None, :, :], out=C)\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr001_backends_are_exempt(tmp_path):
    """core/backends/ implements the engine — raw broadcasts are its job."""
    path = _write(
        tmp_path, "repro/core/backends/raw.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['kernel']\n"
        "def kernel(C, A, B):\n"
        "    np.minimum(C, A[:, :, None] + B[None, :, :], out=C)\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr002_float64_at_engine_call_site(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['go']\n"
        "def go(engine):\n"
        "    engine.minplus(np.zeros((4, 4)), np.ones((4, 4)), np.empty((4, 4)))\n"
        "    minplus_update(np.full((4, 4), np.inf, dtype=np.float64), a, b)\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR002"}
    assert len(violations) == 4  # three dtype-less ctors + one explicit float64


def test_rpr002_float32_operands_pass(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['go']\n"
        "def go(engine, DIST_DTYPE):\n"
        "    engine.minplus(np.zeros((4, 4), dtype=np.float32),\n"
        "                   np.ones((4, 4), dtype=DIST_DTYPE),\n"
        "                   np.empty((4, 4), dtype='f4'))\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr003_wall_clock_in_bench(tmp_path):
    path = _write(
        tmp_path, "repro/bench/sweep.py",
        '"""Doc."""\n'
        "import time\n"
        "from time import time as now\n"
        "__all__ = ['measure']\n"
        "def measure():\n"
        "    return time.time()\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR003", "RPR003"]
    assert {v.line for v in violations} == {3, 6}


def test_rpr003_perf_counter_passes_and_scope_is_bench_only(tmp_path):
    bench = _write(
        tmp_path, "repro/bench/sweep.py",
        '"""Doc."""\n'
        "from time import perf_counter\n"
        "__all__ = ['measure']\n"
        "def measure():\n"
        "    return perf_counter()\n",
    )
    core = _write(
        tmp_path, "repro/graphs/io.py",
        '"""Doc."""\n'
        "import time\n"
        "__all__ = ['stamp']\n"
        "def stamp():\n"
        "    return time.time()\n",  # fine outside bench/
    )
    assert lint_file(bench, root=tmp_path) == []
    assert lint_file(core, root=tmp_path) == []


def test_rpr004_mutable_default(tmp_path):
    path = _write(
        tmp_path, "repro/util.py",
        '"""Doc."""\n'
        "__all__ = ['f', 'g']\n"
        "def f(x=[]):\n"
        "    return x\n"
        "def g(*, y=dict()):\n"
        "    return y\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR004", "RPR004"]
    assert "f()" in violations[0].message


def test_rpr005_missing_all(tmp_path):
    path = _write(
        tmp_path, "repro/thing.py",
        '"""Doc."""\n'
        "def public():\n"
        "    return 1\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR005"}


def test_rpr005_private_modules_exempt(tmp_path):
    path = _write(
        tmp_path, "repro/_private.py",
        '"""Doc."""\n'
        "def helper():\n"
        "    return 1\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr005_dunder_init_not_exempt(tmp_path):
    path = _write(
        tmp_path, "repro/pkg/__init__.py",
        '"""Doc."""\n'
        "def public():\n"
        "    return 1\n",
    )
    assert _rules(lint_file(path, root=tmp_path)) == {"RPR005"}


def test_rpr006_untracked_launch(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['go']\n"
        "def go(stream, cost, a, b):\n"
        "    stream.launch('fw', cost)\n"
        "    stream.launch('mp', cost, reads=(a,))\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR006", "RPR006"]
    assert "reads=/writes=" in violations[0].message
    assert "without writes=" in violations[1].message


def test_rpr006_tracked_launch_passes(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['go']\n"
        "def go(stream, cost, a, b, kw):\n"
        "    stream.launch('fw', cost, reads=(a,), writes=(b,))\n"
        "    stream.launch('mp', cost, **kw)\n"  # splat may carry the sets
        "    launch('not-a-stream-method', cost)\n",  # bare call: not ours
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr007_discarded_record(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['go']\n"
        "def go(stream):\n"
        "    stream.record(Event('done'))\n",  # bare discard: orders nothing
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR007"}
    assert "record()" in violations[0].message


def test_rpr007_assigned_but_never_waited(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['go']\n"
        "def go(stream, events):\n"
        "    ev = stream.record(Event('a'))\n"
        "    events[0] = stream.record(Event('b'))\n"
        "    return None\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR007", "RPR007"]
    assert {v.line for v in violations} == {4, 5}


def test_rpr007_waited_records_pass(tmp_path):
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['go']\n"
        "def go(stream, copier, events):\n"
        "    ev = stream.record(Event('a'))\n"
        "    copier.wait(ev)\n"
        "    events[0] = stream.record(Event('b'))\n"
        "    copier.wait(events[0])\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr007_escaping_records_pass(tmp_path):
    """A record whose handle escapes (returned, stored on an attribute,
    passed to another call) may be waited elsewhere — not our business."""
    path = _write(
        tmp_path, "repro/core/driver.py",
        '"""Doc."""\n'
        "__all__ = ['a', 'b', 'c']\n"
        "def a(stream):\n"
        "    return stream.record(Event('x'))\n"
        "def b(stream, self):\n"
        "    self.pending = stream.record(Event('y'))\n"
        "def c(stream, register):\n"
        "    register(stream.record(Event('z')))\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr008_cdll_function_without_contract(tmp_path):
    path = _write(
        tmp_path, "repro/ffi.py",
        '"""Doc."""\n'
        "import ctypes\n"
        "__all__ = ['Lib']\n"
        "class Lib:\n"
        "    def __init__(self, path):\n"
        "        lib = ctypes.CDLL(path)\n"
        "        self.f = lib.foo\n"
        "        self.f.argtypes = [ctypes.c_void_p]\n"
        "        self.g = lib.bar\n"  # no argtypes, no restype
        "        lib.baz(0)\n",  # direct call, no declared contract
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR008", "RPR008", "RPR008"]
    messages = " ".join(v.message for v in violations)
    assert "restype" in messages  # self.f has argtypes but no restype


def test_rpr008_declared_contract_passes(tmp_path):
    path = _write(
        tmp_path, "repro/ffi_ok.py",
        '"""Doc."""\n'
        "import ctypes\n"
        "__all__ = ['Lib']\n"
        "class Lib:\n"
        "    def __init__(self, lib: ctypes.CDLL):\n"
        "        self.f = lib.foo\n"
        "        self.f.argtypes = [ctypes.c_void_p]\n"
        "        self.f.restype = None\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr009_unguarded_pointer_escape(tmp_path):
    """Pointers packed into tuples count too — not just direct call args."""
    path = _write(
        tmp_path, "repro/ptr.py",
        '"""Doc."""\n'
        "__all__ = ['call']\n"
        "def call(f, arr):\n"
        "    args = (arr.ctypes.data, arr.size)\n"
        "    f(*args)\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR009"}
    assert "arr" in violations[0].message


def test_rpr009_guarded_pointer_passes(tmp_path):
    path = _write(
        tmp_path, "repro/ptr_ok.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['call']\n"
        "def call(f, arr):\n"
        "    arr = np.ascontiguousarray(arr, dtype=np.float32)\n"
        "    f(arr.ctypes.data, arr.size)\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_rpr011_dist_store_outside_dynamic(tmp_path):
    path = _write(
        tmp_path, "repro/select/tweak.py",
        '"""Doc."""\n'
        "__all__ = ['shortcut']\n"
        "def shortcut(apsp, u, v, w):\n"
        "    apsp.dist[u, v] = w\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR011"}
    v = violations[0]
    assert v.name == "stale-dist-mutation" and v.line == 4
    assert "DynamicAPSP" in v.message


def test_rpr011_frozen_csr_arrays(tmp_path):
    """weights/indptr/indices element stores are flagged everywhere,
    including augmented assignments and tuple targets."""
    path = _write(
        tmp_path, "repro/graphs/mutate.py",
        '"""Doc."""\n'
        "__all__ = ['reweight']\n"
        "def reweight(g, e, w):\n"
        "    g.weights[e] = w\n"
        "    g.indptr[0] += 1\n"
        "    g.indices[e], x = e, 0\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR011"] * 3
    assert {v.line for v in violations} == {4, 5, 6}
    assert all("apply_edge_updates" in v.message for v in violations)


def test_rpr011_store_data_outside_core(tmp_path):
    path = _write(
        tmp_path, "repro/analysis/poke.py",
        '"""Doc."""\n'
        "__all__ = ['poke']\n"
        "def poke(result):\n"
        "    result.store.data[...] = 0\n",
    )
    violations = lint_file(path, root=tmp_path)
    assert _rules(violations) == {"RPR011"}
    assert ".store.data" in violations[0].message


def test_rpr011_dynamic_and_core_owners_exempt(tmp_path):
    """The owning packages may mutate their own state: repro/dynamic/
    for dist/CSR panels, repro/core/ for a result's backing store."""
    dyn = _write(
        tmp_path, "repro/dynamic/patching.py",
        '"""Doc."""\n'
        "__all__ = ['patch']\n"
        "def patch(self, rows, view):\n"
        "    self.dist[rows, :] = view\n"
        "    self.graph.weights[0] = 1.0\n",
    )
    core = _write(
        tmp_path, "repro/core/shift.py",
        '"""Doc."""\n'
        "__all__ = ['unshift']\n"
        "def unshift(result, delta):\n"
        "    result.store.data[...] = result.store.data - delta\n",
    )
    assert lint_file(dyn, root=tmp_path) == []
    assert lint_file(core, root=tmp_path) == []


def test_rpr011_reads_and_local_names_pass(tmp_path):
    """Reads of dist/CSR arrays and stores to local matrices are fine —
    only attribute-chain element stores are the stale-state hazard."""
    path = _write(
        tmp_path, "repro/analysis/reader.py",
        '"""Doc."""\n'
        "import numpy as np\n"
        "__all__ = ['scan']\n"
        "def scan(apsp, g):\n"
        "    dist = apsp.dist.copy()\n"
        "    dist[0, 0] = 0.0\n"
        "    return float(dist.sum() + g.weights[0] + apsp.dist[1, 2])\n",
    )
    assert lint_file(path, root=tmp_path) == []


def test_syntax_error_reported_not_raised(tmp_path):
    path = _write(tmp_path, "repro/broken.py", "def broken(:\n")
    violations = lint_file(path, root=tmp_path)
    assert [v.rule for v in violations] == ["RPR000"]


# ---------------------------------------------------------------------------
# Directory walking, formatting, CLI
# ---------------------------------------------------------------------------
def test_lint_paths_walks_directories(tmp_path):
    _write(tmp_path, "repro/core/a.py",
           '"""Doc."""\n__all__ = []\n')
    _write(tmp_path, "repro/core/b.py",
           '"""Doc."""\ndef pub():\n    return 2\n')
    violations = lint_paths([tmp_path])
    assert _rules(violations) == {"RPR005"}
    text = format_violations(violations)
    assert "b.py" in text and "RPR005 missing-all" in text


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path, "repro/bad.py", '"""Doc."""\ndef pub():\n    return 2\n')
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR005" in out and "bad.py" in out
    assert main(["lint", str(REPO_SRC)]) == 0


def test_repository_tree_is_lint_clean():
    """The acceptance gate: ``python -m repro lint src/`` exits 0."""
    violations = lint_paths([REPO_SRC], root=REPO_SRC.parent)
    assert violations == [], "\n" + format_violations(violations)
