"""Unit tests for the kernel cost models and device specs."""

import pytest

from repro.gpu.device import K80, TEST_DEVICE, V100, DeviceSpec
from repro.gpu.kernels import (
    MsspWorkload,
    extract_cost,
    fw_tile_cost,
    minplus_cost,
    mssp_batch_cost,
)
from repro.gpu.transfer import copy_duration, copy_duration_2d


class TestCostModels:
    def test_minplus_monotone_in_size(self):
        small = minplus_cost(V100, 64, 64, 64)
        large = minplus_cost(V100, 128, 128, 128)
        assert large > small

    def test_minplus_positive_even_empty(self):
        assert minplus_cost(V100, 0, 0, 0) >= V100.kernel_launch_overhead

    def test_fw_tile_costs_more_than_minplus(self):
        # sequential dependence factor makes FW closure dearer per op
        assert fw_tile_cost(V100, 128) > minplus_cost(V100, 128, 128, 128)

    def test_fw_tile_cubic_scaling(self):
        t1 = fw_tile_cost(V100, 256) - V100.kernel_launch_overhead
        t2 = fw_tile_cost(V100, 512) - V100.kernel_launch_overhead
        assert t2 / t1 == pytest.approx(8.0, rel=0.2)

    def test_extract_is_bandwidth_only(self):
        assert extract_cost(V100, 100, 100) < minplus_cost(V100, 100, 100, 100)

    def test_k80_slower_than_v100(self):
        assert fw_tile_cost(K80, 512) > fw_tile_cost(V100, 512)


class TestMsspCost:
    def workload(self, relax=10000, heavy=0, iters=10, child=0):
        return MsspWorkload(
            relaxations=relax, heavy_relaxations=heavy,
            iterations=iters, child_launches=child,
        )

    def test_full_occupancy_rate(self):
        w = self.workload(relax=int(TEST_DEVICE.relax_rate))
        bat = TEST_DEVICE.max_active_blocks
        t = mssp_batch_cost(TEST_DEVICE, w, bat, dynamic_parallelism=False)
        assert t == pytest.approx(
            1.0 + w.iterations * TEST_DEVICE.sync_overhead
            + TEST_DEVICE.kernel_launch_overhead,
            rel=0.01,
        )

    def test_low_occupancy_penalty(self):
        w = self.workload()
        full = mssp_batch_cost(TEST_DEVICE, w, TEST_DEVICE.max_active_blocks,
                               dynamic_parallelism=False)
        tiny = mssp_batch_cost(TEST_DEVICE, w, 1, dynamic_parallelism=False)
        assert tiny > full

    def test_saturation_point(self):
        # beyond the saturation fraction, more blocks do not help
        w = self.workload()
        sat = int(TEST_DEVICE.occupancy_saturation * TEST_DEVICE.max_active_blocks) + 1
        a = mssp_batch_cost(TEST_DEVICE, w, sat, dynamic_parallelism=False)
        b = mssp_batch_cost(TEST_DEVICE, w, sat * 4, dynamic_parallelism=False)
        assert a == pytest.approx(b)

    def test_dp_helps_at_low_occupancy_with_heavy_work(self):
        w = self.workload(relax=100000, heavy=90000, child=10)
        no_dp = mssp_batch_cost(TEST_DEVICE, w, 1, dynamic_parallelism=False)
        dp = mssp_batch_cost(TEST_DEVICE, w, 1, dynamic_parallelism=True)
        assert dp < no_dp

    def test_dp_noop_without_heavy(self):
        w = self.workload(heavy=0)
        a = mssp_batch_cost(TEST_DEVICE, w, 2, dynamic_parallelism=True)
        b = mssp_batch_cost(TEST_DEVICE, w, 2, dynamic_parallelism=False)
        assert a == b

    def test_invalid_bat(self):
        with pytest.raises(ValueError):
            mssp_batch_cost(TEST_DEVICE, self.workload(), 0, dynamic_parallelism=False)

    def test_heavy_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            MsspWorkload(relaxations=10, heavy_relaxations=20, iterations=1, child_launches=0)


class TestTransferModel:
    def test_latency_floor(self):
        assert copy_duration(V100, 0) == V100.transfer_latency

    def test_bandwidth_term(self):
        t = copy_duration(V100, int(11.75e9))
        assert t == pytest.approx(1.0 + V100.transfer_latency)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            copy_duration(V100, -1)

    def test_2d_pays_per_row(self):
        one_row = copy_duration_2d(V100, 1, 4096)
        many_rows = copy_duration_2d(V100, 100, 4096)
        # 99 extra rows each pay the per-row overhead on top of bandwidth
        marginal = (many_rows - one_row) / 99
        assert marginal == pytest.approx(
            V100.row_transfer_overhead + 4096 / V100.transfer_throughput
        )

    def test_2d_equals_sum_of_segments(self):
        t = copy_duration_2d(V100, 10, 1000)
        expected = V100.transfer_latency + 10 * (
            V100.row_transfer_overhead + 1000 / V100.transfer_throughput
        )
        assert t == pytest.approx(expected)


class TestScaledSpec:
    def test_memory_scales_quadratically(self):
        s = V100.scaled(0.5)
        assert s.memory_bytes == pytest.approx(V100.memory_bytes * 0.25, rel=0.01)

    def test_rates_scale_linearly(self):
        s = V100.scaled(0.5)
        assert s.minplus_rate == pytest.approx(V100.minplus_rate * 0.5)
        assert s.transfer_throughput == pytest.approx(V100.transfer_throughput * 0.5)

    def test_latency_unscaled(self):
        s = V100.scaled(1 / 64)
        assert s.transfer_latency == V100.transfer_latency
        assert s.row_transfer_overhead == V100.row_transfer_overhead

    def test_transfer_exponent_zero_keeps_throughput(self):
        s = V100.scaled(1 / 64, transfer_exponent=0.0)
        assert s.transfer_throughput == V100.transfer_throughput

    def test_relax_exponent(self):
        s = V100.scaled(1 / 4, relax_exponent=0.5)
        assert s.relax_rate == pytest.approx(V100.relax_rate * 0.5)

    def test_identity_scale(self):
        s = V100.scaled(1.0)
        assert s.memory_bytes == V100.memory_bytes
        assert s.minplus_rate == V100.minplus_rate

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            V100.scaled(0.0)
        with pytest.raises(ValueError):
            V100.scaled(2.0)

    def test_paper_throughputs(self):
        # Section V-E measured values
        assert V100.transfer_throughput == pytest.approx(11.75e9)
        assert K80.transfer_throughput == pytest.approx(7.23e9)

    def test_paper_memory_sizes(self):
        # Table II
        assert V100.memory_bytes == 16 * 1024**3
        assert K80.memory_bytes == 12 * 1024**3


def test_spec_is_frozen():
    with pytest.raises(Exception):
        V100.memory_bytes = 1  # type: ignore[misc]


def test_spec_is_dataclass_with_name():
    assert isinstance(V100, DeviceSpec)
    assert V100.name == "V100"
