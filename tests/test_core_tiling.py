"""Unit tests for block layouts, the host store, and the result container."""

import numpy as np
import pytest

from repro.core.result import APSPResult
from repro.core.tiling import BlockLayout, HostStore
from repro.graphs.generators import erdos_renyi


class TestBlockLayout:
    def test_even_split(self):
        lay = BlockLayout(100, 25)
        assert lay.num_blocks == 4
        assert [lay.size(i) for i in lay] == [25, 25, 25, 25]

    def test_ragged_last_block(self):
        lay = BlockLayout(10, 4)
        assert lay.num_blocks == 3
        assert [lay.size(i) for i in lay] == [4, 4, 2]
        assert lay.slice(2) == slice(8, 10)

    def test_block_larger_than_n(self):
        lay = BlockLayout(5, 100)
        assert lay.num_blocks == 1
        assert lay.size(0) == 5

    def test_sizes_cover_n(self):
        for n, b in [(97, 13), (64, 8), (1, 1), (33, 32)]:
            lay = BlockLayout(n, b)
            assert sum(lay.size(i) for i in lay) == n

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            BlockLayout(10, 4).slice(3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BlockLayout(-1, 4)
        with pytest.raises(ValueError):
            BlockLayout(10, 0)


class TestHostStore:
    def test_ram_mode(self):
        store = HostStore(8)
        store.data[...] = 3.0
        assert store.nbytes == 8 * 8 * 4  # float32 default

    def test_from_graph_seeds_weights(self):
        g = erdos_renyi(20, 80, seed=1)
        store = HostStore.from_graph(g)
        assert np.allclose(store.data, g.to_dense(dtype=store.data.dtype))

    def test_disk_mode_round_trip(self, tmp_path):
        store = HostStore(16, mode="disk", directory=tmp_path)
        store.data[...] = 7.0
        store.flush()
        assert store.path.exists()
        assert store.path.stat().st_size == 16 * 16 * 4
        back = np.memmap(store.path, dtype=store.data.dtype, shape=(16, 16))
        assert np.all(back == 7.0)

    def test_disk_mode_tempdir_cleanup(self):
        store = HostStore(8, mode="disk")
        path = store.path
        assert path.exists()
        store.close()
        assert not path.exists()

    def test_block_view_is_writable(self):
        store = HostStore(10)
        store.data[...] = 0.0
        lay = BlockLayout(10, 4)
        store.block(lay, 1, 2)[...] = 5.0
        assert np.all(store.data[4:8, 8:10] == 5.0)

    def test_rows_view(self):
        store = HostStore(6)
        store.data[...] = 0.0
        store.rows(2, 4)[...] = 9.0
        assert np.all(store.data[2:4] == 9.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            HostStore(4, mode="tape")

    def test_empty_helper_accepts_graph(self):
        g = erdos_renyi(12, 40, seed=2)
        assert HostStore.empty(g).n == 12
        assert HostStore.empty(7).n == 7


class TestAPSPResult:
    def _result(self, n=6, perm=None):
        store = HostStore(n)
        store.data[...] = np.arange(n * n, dtype=np.float32).reshape(n, n)
        inv = np.argsort(perm) if perm is not None else None
        return APSPResult(
            algorithm="test", store=store, simulated_seconds=1.0,
            perm=perm, inv_perm=inv,
        )

    def test_distance_no_perm(self):
        r = self._result()
        assert r.distance(1, 2) == 8.0

    def test_row_no_perm(self):
        r = self._result()
        assert np.allclose(r.row(2), np.arange(12, 18))

    def test_permuted_lookups(self):
        n = 4
        perm = np.array([2, 0, 3, 1])  # external v -> internal perm[v]
        r = self._result(n, perm=perm)
        internal = np.asarray(r.store.data)
        for u in range(n):
            for v in range(n):
                assert r.distance(u, v) == internal[perm[u], perm[v]]

    def test_to_array_matches_distance(self):
        perm = np.array([1, 2, 0])
        r = self._result(3, perm=perm)
        full = r.to_array()
        for u in range(3):
            for v in range(3):
                assert full[u, v] == r.distance(u, v)

    def test_row_matches_distance_with_perm(self):
        perm = np.array([3, 1, 0, 2])
        r = self._result(4, perm=perm)
        row = r.row(2)
        for v in range(4):
            assert row[v] == r.distance(2, v)

    def test_n_property(self):
        assert self._result(5).n == 5


class TestResultPersistence:
    def test_save_load_round_trip(self, tmp_path):
        import numpy as np

        from repro.core import ooc_johnson
        from repro.core.result import APSPResult
        from repro.gpu.device import TEST_DEVICE, Device
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(50, 300, seed=21)
        res = ooc_johnson(g, Device(TEST_DEVICE))
        res.save(tmp_path / "run")
        back = APSPResult.load(tmp_path / "run")
        assert back.algorithm == "johnson"
        assert np.allclose(back.to_array(), res.to_array())
        assert back.simulated_seconds == res.simulated_seconds

    def test_save_load_permuted(self, tmp_path):
        import numpy as np

        from repro.core import ooc_boundary
        from repro.core.result import APSPResult
        from repro.gpu.device import Device, V100
        from repro.graphs.generators import planar_like

        g = planar_like(80, seed=22)
        res = ooc_boundary(g, Device(V100.scaled(1 / 64)), seed=0)
        res.save(tmp_path / "run")
        back = APSPResult.load(tmp_path / "run")
        for u, v in [(0, 5), (7, 79), (40, 3)]:
            assert back.distance(u, v) == res.distance(u, v)

    def test_metadata_written(self, tmp_path):
        import json

        from repro.core import ooc_johnson
        from repro.gpu.device import TEST_DEVICE, Device
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(30, 150, seed=23)
        res = ooc_johnson(g, Device(TEST_DEVICE))
        out = res.save(tmp_path / "run")
        meta = json.loads((out / "meta.json").read_text())
        assert meta["n"] == 30
        assert not meta["permuted"]
