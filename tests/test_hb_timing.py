"""Happens-before model checker + symbolic timing pass (PR 4).

Three contracts:

* **soundness** — every driver's emitted schedule is proven race-,
  deadlock- and dead-event-free in *every* interleaving, in both overlap
  modes, on the four standard configs;
* **sensitivity** — removing any single event edge (a wait or a record)
  from an overlap schedule is detected: an ``unordered-conflict`` with
  the stream pair and block coordinates, an ``unsatisfiable-wait``, or a
  ``dead-event``;
* **fidelity** — the symbolic timing replay predicts the dynamic
  simulator's makespan essentially exactly (the paper-level requirement
  is 10%; the replay shares the clock discipline, so we hold it to 1e-6).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.engine import KernelEngine
from repro.core.multi_gpu import emit_multi_ir, ooc_boundary_multi
from repro.core.ooc_boundary import emit_boundary_ir, ooc_boundary
from repro.core.ooc_fw import emit_fw_ir, ooc_floyd_warshall, plan_fw_block_size
from repro.core.ooc_johnson import (
    collect_mssp_workloads,
    emit_johnson_ir,
    ooc_johnson,
    plan_batch_size,
)
from repro.gpu.device import Device, TEST_DEVICE, V100
from repro.graphs.generators import erdos_renyi, rmat, road_like
from repro.select.cost_models import analytic_estimate_fw
from repro.select.selector import Selector
from repro.verifyplan import verify_plan
from repro.verifyplan.hb import analyze_hb, merge_hb_reports
from repro.verifyplan.ir import KernelOp, RecordOp, Rect, WaitOp
from repro.verifyplan.timing import (
    TimingCalibration,
    kernel_duration,
    predict_multi_timing,
    predict_timing,
)

V100_64 = V100.scaled(1 / 64)

CONFIGS = [
    pytest.param(lambda: road_like(220, 2.6, seed=1), TEST_DEVICE, id="road220-test"),
    pytest.param(lambda: rmat(110, 800, seed=2), TEST_DEVICE, id="rmat110-test"),
    pytest.param(lambda: erdos_renyi(200, 1200, seed=3), TEST_DEVICE, id="er200-test"),
    pytest.param(lambda: road_like(900, 2.6, seed=3), V100_64, id="road900-v100/64"),
]


def _drop_op(ir, index):
    ops = tuple(op for i, op in enumerate(ir.ops) if i != index)
    return dataclasses.replace(ir, ops=ops)


def _record_streams(ir) -> dict[int, str]:
    return {op.event: op.stream for op in ir.ops if isinstance(op, RecordOp)}


def _overlap_irs(graph, spec):
    """The three single-device overlap schedules (the event-rich ones)."""
    n = graph.num_vertices
    b = plan_fw_block_size(n, spec, overlap=True)
    bat = max(1, min(plan_batch_size(graph, spec, num_row_buffers=2), n))
    return {
        "floyd-warshall": emit_fw_ir(n, spec, block_size=b, overlap=True),
        "johnson": emit_johnson_ir(graph, spec, batch_size=bat, overlap=True),
        "boundary": emit_boundary_ir(graph, spec, seed=0, overlap=True),
    }


class TestHappensBefore:
    @pytest.mark.parametrize("graph_factory,spec", CONFIGS)
    @pytest.mark.parametrize("overlap", [True, False], ids=["overlap", "serial"])
    def test_every_driver_clean_in_every_interleaving(
        self, graph_factory, spec, overlap
    ):
        ver = verify_plan(graph_factory(), spec, overlap=overlap)
        for name, audit in ver.audits.items():
            if not audit.feasible:
                continue
            assert audit.hb is not None
            assert audit.hb.ok, f"{name}: {audit.hb.describe()}"
            assert audit.verified

    def test_overlap_schedules_actually_use_events(self):
        irs = _overlap_irs(road_like(220, 2.6, seed=1), TEST_DEVICE)
        for name, ir in irs.items():
            report = analyze_hb(ir)
            assert report.num_streams == 2, name
            assert report.num_events > 0, name
            assert report.num_events == report.num_waits, name

    def test_removing_any_wait_is_detected(self):
        irs = _overlap_irs(road_like(220, 2.6, seed=1), TEST_DEVICE)
        for name, ir in irs.items():
            rec_streams = _record_streams(ir)
            wait_indices = [
                i for i, op in enumerate(ir.ops) if isinstance(op, WaitOp)
            ]
            assert wait_indices, name
            races_seen = 0
            for i in wait_indices:
                dropped: WaitOp = ir.ops[i]
                report = analyze_hb(_drop_op(ir, i))
                assert not report.ok, f"{name}: wait #{i} removal undetected"
                if rec_streams[dropped.event] != dropped.stream:
                    # a cross-stream edge: either it was load-bearing (an
                    # unordered conflicting pair with both streams and the
                    # block rectangles of both sides) or it was redundant,
                    # in which case its record is now a flagged orphan
                    conflicts = [
                        f for f in report.findings if f.kind == "unordered-conflict"
                    ]
                    dead = [f for f in report.findings if f.kind == "dead-event"]
                    assert conflicts or dead, (
                        f"{name}: wait #{i} removal lost the race"
                    )
                    if conflicts:
                        races_seen += 1
                        f = conflicts[0]
                        assert len(set(f.streams)) == 2
                        assert f.buffer
                        assert "[" in f.first and "[" in f.second  # rect coords
            assert races_seen, f"{name}: every event edge was redundant"

    def test_removing_any_record_is_unsatisfiable(self):
        irs = _overlap_irs(road_like(220, 2.6, seed=1), TEST_DEVICE)
        for name, ir in irs.items():
            record_indices = [
                i for i, op in enumerate(ir.ops) if isinstance(op, RecordOp)
            ]
            assert record_indices, name
            for i in record_indices:
                report = analyze_hb(_drop_op(ir, i))
                kinds = {f.kind for f in report.findings}
                assert "unsatisfiable-wait" in kinds, (
                    f"{name}: record #{i} removal left every wait satisfied"
                )

    def test_same_stream_pair_removal_stays_clean(self):
        """Precision: a record/wait pair on one stream is covered by that
        stream's program order, so grafting one in keeps the schedule
        clean, dropping only its wait flags the orphan record, and
        removing *both* ends must not produce a finding (no false
        positives from redundant-edge removal)."""
        ir = _overlap_irs(road_like(220, 2.6, seed=1), TEST_DEVICE)["floyd-warshall"]
        eid = 1 + max(op.event for op in ir.ops if isinstance(op, RecordOp))
        kernel_idx = next(
            i for i, op in enumerate(ir.ops)
            if isinstance(op, KernelOp) and op.stream == "default"
        )
        rec = RecordOp(event=eid, name="self", stream="default")
        wait = WaitOp(event=eid, stream="default")
        ops = list(ir.ops)
        ops.insert(kernel_idx + 1, rec)
        ops.insert(kernel_idx + 2, wait)
        grafted = dataclasses.replace(ir, ops=tuple(ops))
        assert analyze_hb(grafted).ok
        # wait alone gone -> the record is a flagged orphan
        no_wait = tuple(op for op in grafted.ops if op is not wait)
        report = analyze_hb(dataclasses.replace(ir, ops=no_wait))
        assert any(f.kind == "dead-event" for f in report.findings)
        # both ends gone -> pure program order, still provably clean
        neither = tuple(
            op for op in grafted.ops if op is not wait and op is not rec
        )
        assert analyze_hb(dataclasses.replace(ir, ops=neither)).ok


class TestMultiGpuEmission:
    @pytest.mark.parametrize("overlap", [True, False], ids=["overlap", "serial"])
    def test_fleet_clean_and_barriers_present(self, overlap):
        g = road_like(220, 2.6, seed=1)
        irs = emit_multi_ir(g, TEST_DEVICE, 2, seed=0, overlap=overlap)
        assert len(irs) == 2
        merged = merge_hb_reports([analyze_hb(ir) for ir in irs])
        assert merged.ok
        if overlap:
            assert merged.num_events > 0
            assert merged.num_events == merged.num_waits
        else:
            assert merged.num_events == 0
        for ir in irs:
            labels = [op.label for op in ir.ops if hasattr(op, "label")]
            assert labels == [
                "after-dist2", "after-bound-closure", "after-broadcast",
                "after-output",
            ]

    def test_overlap_mode_matches_serial_byte_for_byte(self):
        from repro.verifyplan.analyze import analyze_transfers

        g = road_like(220, 2.6, seed=1)
        tallies = {}
        for overlap in (False, True):
            irs = emit_multi_ir(g, TEST_DEVICE, 2, seed=0, overlap=overlap)
            tallies[overlap] = [analyze_transfers(ir)[0] for ir in irs]
        for serial, pipelined in zip(tallies[False], tallies[True]):
            assert serial.bytes_h2d == pipelined.bytes_h2d
            assert serial.bytes_d2h == pipelined.bytes_d2h
            assert serial.num_h2d == pipelined.num_h2d
            assert serial.num_d2h == pipelined.num_d2h

    def test_seeded_dropped_event_edge_is_flagged(self):
        """Defect injection: drop one device's drain wait — the checker
        must name the stream pair and the output buffer it unprotects."""
        g = road_like(220, 2.6, seed=1)
        irs = emit_multi_ir(g, TEST_DEVICE, 2, seed=0, overlap=True)
        injected = False
        for d, ir in enumerate(irs):
            wait_indices = [
                i for i, op in enumerate(ir.ops) if isinstance(op, WaitOp)
            ]
            if not wait_indices:
                continue
            injected = True
            for i in wait_indices:
                report = analyze_hb(_drop_op(ir, i))
                conflicts = [
                    f for f in report.findings if f.kind == "unordered-conflict"
                ]
                assert conflicts, f"device {d}: dropped wait #{i} undetected"
                f = conflicts[0]
                assert set(f.streams) == {"default", "multi-copy"}
                assert f.buffer.startswith("out")
        assert injected, "no drain waits emitted — elision is over-aggressive"


class TestTimingAgreement:
    """Static critical-path prediction vs the dynamic simulator's clocks."""

    REL_TOL = 1e-6  # acceptance bar is 10%; the replay is exact

    @pytest.mark.parametrize("graph_factory,spec", CONFIGS)
    def test_fw_makespan(self, graph_factory, spec):
        g = graph_factory()
        res = ooc_floyd_warshall(
            g, Device(spec), engine=KernelEngine(backend="reference")
        )
        b = plan_fw_block_size(g.num_vertices, spec, overlap=True)
        ir = emit_fw_ir(g.num_vertices, spec, block_size=b, overlap=True)
        pred = predict_timing(ir, spec)
        assert pred.makespan == pytest.approx(
            res.simulated_seconds, rel=self.REL_TOL
        )

    @pytest.mark.parametrize("graph_factory,spec", CONFIGS)
    def test_johnson_makespan(self, graph_factory, spec):
        g = graph_factory()
        res = ooc_johnson(g, Device(spec))
        n = g.num_vertices
        bat = max(1, min(plan_batch_size(g, spec, num_row_buffers=2), n))
        workloads = collect_mssp_workloads(g, batch_size=bat)
        ir = emit_johnson_ir(g, spec, batch_size=bat, workloads=workloads)
        pred = predict_timing(ir, spec)
        assert pred.makespan == pytest.approx(
            res.simulated_seconds, rel=self.REL_TOL
        )

    @pytest.mark.parametrize("graph_factory,spec", CONFIGS)
    def test_boundary_makespan(self, graph_factory, spec):
        g = graph_factory()
        res = ooc_boundary(
            g, Device(spec), seed=0, engine=KernelEngine(backend="reference")
        )
        pred = predict_timing(emit_boundary_ir(g, spec, seed=0), spec)
        assert pred.makespan == pytest.approx(
            res.simulated_seconds, rel=self.REL_TOL
        )

    @pytest.mark.parametrize("graph_factory,spec", CONFIGS)
    @pytest.mark.parametrize("overlap", [True, False], ids=["overlap", "serial"])
    def test_multi_makespan(self, graph_factory, spec, overlap):
        g = graph_factory()
        res = ooc_boundary_multi(
            g, [Device(spec) for _ in range(2)], seed=0, overlap=overlap
        )
        irs = emit_multi_ir(g, spec, 2, seed=0, overlap=overlap)
        pred = predict_multi_timing(irs, spec)
        assert pred.makespan == pytest.approx(
            res.simulated_seconds, rel=self.REL_TOL
        )

    def test_report_invariants(self):
        g = road_like(220, 2.6, seed=1)
        ir = emit_boundary_ir(g, TEST_DEVICE, seed=0, overlap=True)
        rep = predict_timing(ir, TEST_DEVICE)
        assert 0.0 <= rep.overlap_efficiency <= 1.0
        assert rep.makespan > 0
        assert rep.serial_seconds >= max(
            rep.compute_seconds, rep.h2d_seconds, rep.d2h_seconds
        )
        assert rep.critical_path, "critical path must be non-empty"
        # segments on the critical path chain backwards in time
        ends = [seg.end for seg in rep.critical_path]
        assert ends == sorted(ends)
        assert ends[-1] <= rep.makespan + 1e-12
        payload = rep.to_dict()
        assert payload["makespan_seconds"] == rep.makespan
        assert payload["critical_path_length"] == len(rep.critical_path)

    def test_mssp_without_cost_is_rejected(self):
        g = rmat(110, 800, seed=2)
        ir = emit_johnson_ir(g, TEST_DEVICE)  # no workloads -> no costs
        mssp = next(
            op for op in ir.ops
            if isinstance(op, KernelOp) and op.name == "mssp"
        )
        with pytest.raises(ValueError, match="mssp"):
            kernel_duration(mssp, TEST_DEVICE)
        with pytest.raises(ValueError, match="mssp"):
            predict_timing(ir, TEST_DEVICE)

    def test_verify_plan_timing_integration(self):
        ver = verify_plan(road_like(220, 2.6, seed=1), TEST_DEVICE, timing=True)
        assert ver.ok
        for audit in ver.audits.values():
            if audit.feasible:
                assert audit.timing is not None
                assert audit.timing.makespan > 0
                assert audit.to_dict()["timing"]["makespan_seconds"] > 0


class TestCalibration:
    def test_from_bench_reads_checked_in_sweep(self):
        cal = TimingCalibration.from_bench()
        assert cal.minplus_rate is not None and cal.minplus_rate > 0
        spec = cal.apply(TEST_DEVICE)
        assert spec.minplus_rate == cal.minplus_rate
        assert TEST_DEVICE.minplus_rate != spec.minplus_rate

    def test_calibration_rescales_compute(self):
        g = road_like(220, 2.6, seed=1)
        b = plan_fw_block_size(g.num_vertices, TEST_DEVICE, overlap=True)
        ir = emit_fw_ir(g.num_vertices, TEST_DEVICE, block_size=b, overlap=True)
        base = predict_timing(ir, TEST_DEVICE)
        slow = predict_timing(
            ir, TEST_DEVICE,
            calibration=TimingCalibration(minplus_rate=TEST_DEVICE.minplus_rate / 10),
        )
        assert slow.compute_seconds > base.compute_seconds

    def test_missing_transfers_baseline_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TimingCalibration.from_bench(
                transfers_path=tmp_path / "nope.json"
            )


class TestAnalyticSelector:
    def test_skips_calibration_entirely(self):
        sel = Selector(TEST_DEVICE, analytic=True)
        assert sel.calibration is None
        assert sel.method == "analytic"

    def test_estimates_come_from_schedule_dag(self):
        sel = Selector(TEST_DEVICE, analytic=True)
        report = sel.select(road_like(220, 2.6, seed=1))
        assert report.method == "analytic"
        assert report.algorithm in report.candidates
        assert report.estimates
        for est in report.estimates.values():
            assert est.detail["model"] == "schedule-dag"
            assert est.total_seconds == pytest.approx(
                est.detail["makespan_seconds"]
            )
        assert report.to_dict()["method"] == "analytic"

    def test_total_equals_predicted_makespan(self):
        g = road_like(220, 2.6, seed=1)
        est = analytic_estimate_fw(g, TEST_DEVICE)
        b = plan_fw_block_size(g.num_vertices, TEST_DEVICE, overlap=True)
        ir = emit_fw_ir(g.num_vertices, TEST_DEVICE, block_size=b, overlap=True)
        assert est.total_seconds == pytest.approx(
            predict_timing(ir, TEST_DEVICE).makespan
        )

    def test_analytic_ranking_matches_dynamic_order(self):
        """The analytic ranking must order candidates the same way the
        dynamic simulator does on a config where the gap is wide."""
        g = road_like(220, 2.6, seed=1)
        report = Selector(TEST_DEVICE, analytic=True).select(g)
        if {"johnson", "floyd-warshall"} <= set(report.estimates):
            dyn_fw = ooc_floyd_warshall(
                g, Device(TEST_DEVICE), engine=KernelEngine(backend="reference")
            ).simulated_seconds
            dyn_jn = ooc_johnson(g, Device(TEST_DEVICE)).simulated_seconds
            analytic_says_fw = (
                report.estimates["floyd-warshall"].total_seconds
                < report.estimates["johnson"].total_seconds
            )
            assert analytic_says_fw == (dyn_fw < dyn_jn)
