"""Tests for the execution-plan explainer."""

import numpy as np
import pytest

from repro.core.planner import explain_plan
from repro.gpu.device import TEST_DEVICE, V100
from repro.graphs.generators import erdos_renyi, rmat, road_like


SPEC = V100.scaled(1 / 64)


class TestExplainPlan:
    def test_all_algorithms_reported(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC)
        assert set(report.plans) == {"floyd-warshall", "johnson", "boundary"}

    def test_feasible_plans_match_drivers(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC, seed=0)
        from repro.core import ooc_boundary, ooc_johnson
        from repro.gpu.device import Device

        res_j = ooc_johnson(g, Device(SPEC))
        assert report.plans["johnson"].parameters["batch_size"] == res_j.stats["batch_size"]
        res_b = ooc_boundary(g, Device(SPEC), seed=0)
        assert (
            report.plans["boundary"].parameters["num_components"]
            == res_b.stats["num_components"]
        )

    def test_working_sets_fit_device(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC)
        for plan in report.plans.values():
            if plan.feasible:
                assert plan.working_set_bytes <= SPEC.memory_bytes * 1.01

    def test_boundary_infeasible_reported_not_raised(self):
        g = rmat(1200, 40_000, seed=2)  # expander: huge boundary
        report = explain_plan(g, SPEC)
        plan = report.plans["boundary"]
        assert not plan.feasible
        assert "boundary matrix" in plan.reason
        assert "infeasible" in plan.describe()

    def test_output_fits_flag(self):
        small = erdos_renyi(100, 500, seed=3)
        big = erdos_renyi(2000, 8000, seed=3)
        assert explain_plan(small, SPEC).output_fits_device
        assert not explain_plan(big, SPEC).output_fits_device

    def test_describe_is_readable(self):
        g = road_like(500, 2.6, seed=4)
        text = explain_plan(g, SPEC).describe()
        assert "out of core" in text or "fits in core" in text
        assert "block_size=" in text
        assert "batch_size=" in text

    def test_johnson_infeasible_on_tiny_device(self):
        g = erdos_renyi(600, 50_000, seed=5)
        report = explain_plan(g, TEST_DEVICE)
        assert not report.plans["johnson"].feasible


class TestPlannerEdgeCases:
    """Plan parameters at the tiling boundaries, cross-checked against the
    static plan verifier (explain_plan and verify_plan share the planning
    functions, so feasibility and parameters must always agree)."""

    def test_block_size_not_dividing_n(self):
        from repro.verifyplan import verify_plan

        g = road_like(220, 2.6, seed=1)  # n=200, block 161: ragged tail
        report = explain_plan(g, TEST_DEVICE)
        plan = report.plans["floyd-warshall"]
        n, b = g.num_vertices, plan.parameters["block_size"]
        assert n % b != 0
        audit = verify_plan(g, TEST_DEVICE).audits["floyd-warshall"]
        assert audit.parameters["block_size"] == b
        assert audit.parameters["num_blocks"] == plan.parameters["num_blocks"]
        assert audit.verified

    def test_single_block_graph(self):
        from repro.verifyplan import verify_plan

        g = rmat(110, 800, seed=2)  # whole matrix fits one FW block
        report = explain_plan(g, TEST_DEVICE)
        assert report.plans["floyd-warshall"].parameters["num_blocks"] == 1
        audit = verify_plan(g, TEST_DEVICE).audits["floyd-warshall"]
        assert audit.parameters["num_blocks"] == 1
        assert audit.verified

    def test_only_one_algorithm_feasible(self):
        from repro.verifyplan import verify_plan

        g = erdos_renyi(600, 50_000, seed=5)  # dense expander on tiny device
        report = explain_plan(g, TEST_DEVICE)
        feasible = [n for n, p in report.plans.items() if p.feasible]
        assert feasible == ["floyd-warshall"]
        ver = verify_plan(g, TEST_DEVICE)
        for name, plan in report.plans.items():
            assert ver.audits[name].feasible == plan.feasible, name
        assert ver.ok
