"""Tests for the execution-plan explainer."""

import numpy as np
import pytest

from repro.core.planner import explain_plan
from repro.gpu.device import TEST_DEVICE, V100
from repro.graphs.generators import erdos_renyi, rmat, road_like


SPEC = V100.scaled(1 / 64)


class TestExplainPlan:
    def test_all_algorithms_reported(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC)
        assert set(report.plans) == {"floyd-warshall", "johnson", "boundary"}

    def test_feasible_plans_match_drivers(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC, seed=0)
        from repro.core import ooc_boundary, ooc_johnson
        from repro.gpu.device import Device

        res_j = ooc_johnson(g, Device(SPEC))
        assert report.plans["johnson"].parameters["batch_size"] == res_j.stats["batch_size"]
        res_b = ooc_boundary(g, Device(SPEC), seed=0)
        assert (
            report.plans["boundary"].parameters["num_components"]
            == res_b.stats["num_components"]
        )

    def test_working_sets_fit_device(self):
        g = road_like(900, 2.6, seed=1)
        report = explain_plan(g, SPEC)
        for plan in report.plans.values():
            if plan.feasible:
                assert plan.working_set_bytes <= SPEC.memory_bytes * 1.01

    def test_boundary_infeasible_reported_not_raised(self):
        g = rmat(1200, 40_000, seed=2)  # expander: huge boundary
        report = explain_plan(g, SPEC)
        plan = report.plans["boundary"]
        assert not plan.feasible
        assert "boundary matrix" in plan.reason
        assert "infeasible" in plan.describe()

    def test_output_fits_flag(self):
        small = erdos_renyi(100, 500, seed=3)
        big = erdos_renyi(2000, 8000, seed=3)
        assert explain_plan(small, SPEC).output_fits_device
        assert not explain_plan(big, SPEC).output_fits_device

    def test_describe_is_readable(self):
        g = road_like(500, 2.6, seed=4)
        text = explain_plan(g, SPEC).describe()
        assert "out of core" in text or "fits in core" in text
        assert "block_size=" in text
        assert "batch_size=" in text

    def test_johnson_infeasible_on_tiny_device(self):
        g = erdos_renyi(600, 50_000, seed=5)
        report = explain_plan(g, TEST_DEVICE)
        assert not report.plans["johnson"].feasible
