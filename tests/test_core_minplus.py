"""Unit tests for min-plus multiplication and blocked Floyd–Warshall."""

import numpy as np
import pytest

from repro.core.blocked_fw import (
    blocked_floyd_warshall,
    floyd_warshall,
    floyd_warshall_inplace,
    fw_ops,
)
from repro.core.minplus import DIST_DTYPE, minplus, minplus_ops, minplus_update
from repro.graphs.generators import erdos_renyi, rmat
from tests.conftest import oracle_apsp


def reference_minplus(a, b):
    return (a[:, :, None] + b[None, :, :]).min(axis=1)


class TestMinplus:
    def test_matches_reference(self):
        rng = np.random.default_rng(1)
        a = rng.random((17, 23))
        b = rng.random((23, 11))
        assert np.allclose(minplus(a, b), reference_minplus(a, b))

    def test_update_accumulates(self):
        rng = np.random.default_rng(2)
        a = rng.random((9, 9))
        b = rng.random((9, 9))
        c = rng.random((9, 9))
        expected = np.minimum(c, reference_minplus(a, b))
        got = minplus_update(c.copy(), a, b)
        assert np.allclose(got, expected)

    def test_inf_propagation(self):
        a = np.array([[np.inf, 1.0]])
        b = np.array([[np.inf], [np.inf]])
        out = minplus(a, b)
        assert np.isinf(out[0, 0])

    def test_identity_element(self):
        """I ⊗ A = A where I has 0 diagonal, inf elsewhere."""
        rng = np.random.default_rng(3)
        a = rng.random((12, 12))
        ident = np.full((12, 12), np.inf)
        np.fill_diagonal(ident, 0.0)
        assert np.allclose(minplus(ident, a), a)
        assert np.allclose(minplus(a, ident), a)

    def test_rectangular_shapes(self):
        rng = np.random.default_rng(4)
        a = rng.random((3, 40))
        b = rng.random((40, 7))
        assert minplus(a, b).shape == (3, 7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            minplus(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            minplus_update(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((3, 3)))

    def test_empty_inner_dim(self):
        c = np.full((3, 3), 5.0)
        out = minplus_update(c, np.zeros((3, 0)), np.zeros((0, 3)))
        assert np.all(out == 5.0)

    def test_associativity(self):
        rng = np.random.default_rng(5)
        a, b, c = (rng.random((8, 8)) for _ in range(3))
        left = minplus(minplus(a, b), c)
        right = minplus(a, minplus(b, c))
        assert np.allclose(left, right)

    def test_ops_count(self):
        assert minplus_ops(2, 3, 4) == 48

    def test_float32_exact_for_integer_weights(self):
        rng = np.random.default_rng(6)
        a = rng.integers(1, 100, (20, 20)).astype(np.float32)
        b = rng.integers(1, 100, (20, 20)).astype(np.float32)
        got = minplus(a, b)
        expected = reference_minplus(a.astype(np.float64), b.astype(np.float64))
        assert np.array_equal(got, expected.astype(np.float32))


class TestFloydWarshall:
    def test_plain_matches_oracle(self, small_rmat):
        got = floyd_warshall(small_rmat.to_dense())
        assert np.allclose(got, oracle_apsp(small_rmat))

    @pytest.mark.parametrize("block_size", [1, 3, 16, 50, 120, 200])
    def test_blocked_equals_plain(self, block_size):
        g = rmat(90, 700, seed=7)
        dist = g.to_dense(dtype=DIST_DTYPE)
        blocked_floyd_warshall(dist, block_size)
        assert np.allclose(dist, oracle_apsp(g))

    def test_idempotent_at_fixpoint(self, small_rmat):
        dist = floyd_warshall(small_rmat.to_dense())
        again = floyd_warshall(dist)
        assert np.allclose(dist, again)

    def test_inplace_returns_same_array(self):
        d = erdos_renyi(30, 100, seed=8).to_dense()
        np.fill_diagonal(d, 0.0)
        out = floyd_warshall_inplace(d)
        assert out is d

    def test_disconnected_stays_inf(self):
        g = erdos_renyi(40, 60, seed=9)
        dist = floyd_warshall(g.to_dense())
        oracle = oracle_apsp(g)
        assert np.array_equal(np.isinf(dist), np.isinf(oracle))

    def test_triangle_inequality(self, small_planar):
        dist = floyd_warshall(small_planar.to_dense())
        n = dist.shape[0]
        rng = np.random.default_rng(10)
        for _ in range(200):
            i, j, k = rng.integers(0, n, 3)
            assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            floyd_warshall_inplace(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            blocked_floyd_warshall(np.zeros((2, 3)), 1)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            blocked_floyd_warshall(np.zeros((4, 4)), 0)

    def test_fw_ops(self):
        assert fw_ops(10) == 2000
