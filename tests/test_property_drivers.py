"""Property tests over *driver parameters*: every legal block size, batch
size, and component count must leave results exact (the planner's defaults
are an optimisation, never a correctness requirement)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ooc_boundary, ooc_floyd_warshall, ooc_johnson
from repro.gpu.device import Device, DeviceSpec, TEST_DEVICE, V100
from repro.graphs.generators import erdos_renyi, planar_like
from tests.conftest import oracle_apsp
from tests.test_property_based import SETTINGS

# a reusable mid-size graph per family (generation inside @given would slow
# shrinking down massively)
_ER = erdos_renyi(70, 500, seed=41)
_ER_ORACLE = oracle_apsp(_ER)
_PL = planar_like(90, seed=42)
_PL_ORACLE = oracle_apsp(_PL)

#: a roomier test device so arbitrary parameters rarely hit OOM
_BIG_TEST = DeviceSpec(
    name="prop-gpu",
    memory_bytes=8 * 1024 * 1024,
    minplus_rate=1e9,
    relax_rate=1e6,
    mem_bandwidth=1e9,
    transfer_throughput=1e8,
    transfer_latency=1e-5,
)


class TestParameterIndependence:
    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(st.integers(4, 80), st.booleans())
    def test_fw_any_block_size(self, block_size, overlap):
        # block_size >= 4: tiny tiles are legal but the n_d³ Python-loop
        # cost makes them pathological to sweep under hypothesis
        res = ooc_floyd_warshall(
            _ER, Device(_BIG_TEST), block_size=block_size, overlap=overlap
        )
        assert np.allclose(res.to_array(), _ER_ORACLE)

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(st.integers(2, 75), st.booleans(), st.booleans())
    def test_johnson_any_batch_size(self, batch_size, dp, overlap):
        res = ooc_johnson(
            _ER, Device(_BIG_TEST), batch_size=batch_size,
            dynamic_parallelism=dp, overlap=overlap,
        )
        assert np.allclose(res.to_array(), _ER_ORACLE)

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(st.floats(5.0, 400.0), st.integers(1, 200))
    def test_johnson_any_delta_and_heavy_threshold(self, delta, heavy):
        # delta floor of 5.0 (a tenth of the mean weight): smaller values
        # stay correct but multiply split advances into pathological wall
        # time under a 25-example sweep
        res = ooc_johnson(
            _ER, Device(_BIG_TEST), delta=delta, heavy_degree=heavy
        )
        assert np.allclose(res.to_array(), _ER_ORACLE)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(st.integers(2, 20), st.booleans(), st.booleans())
    def test_boundary_any_component_count(self, k, batching, overlap):
        res = ooc_boundary(
            _PL, Device(V100.scaled(1 / 64)), num_components=k,
            batch_transfers=batching, overlap=overlap, seed=0,
        )
        assert np.allclose(res.to_array(), _PL_ORACLE)
        assert res.stats["num_components"] == k

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(st.integers(0, 2**31 - 1))
    def test_boundary_any_partition_seed(self, seed):
        res = ooc_boundary(_PL, Device(V100.scaled(1 / 64)), seed=seed)
        assert np.allclose(res.to_array(), _PL_ORACLE)
