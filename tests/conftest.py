"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse.csgraph import shortest_path

from repro.gpu.device import TEST_DEVICE, Device
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, planar_like, random_geometric, rmat, road_like

try:  # hypothesis is optional for most of the suite
    import os

    from hypothesis import settings

    # CI selects this with HYPOTHESIS_PROFILE=ci: derandomised example
    # generation so property-test failures reproduce across runs
    settings.register_profile("ci", derandomize=True)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
except ImportError:  # pragma: no cover
    pass


def oracle_apsp(graph: CSRGraph) -> np.ndarray:
    """Reference APSP distances via scipy (Dijkstra per source)."""
    return shortest_path(graph.to_scipy(), method="D")


def oracle_sssp(graph: CSRGraph, sources) -> np.ndarray:
    return shortest_path(graph.to_scipy(), method="D", indices=sources)


@pytest.fixture
def device() -> Device:
    """A tiny device that forces out-of-core behaviour at n≈100."""
    return Device(TEST_DEVICE)


@pytest.fixture
def small_rmat() -> CSRGraph:
    return rmat(120, 900, seed=7)


@pytest.fixture
def small_planar() -> CSRGraph:
    return planar_like(150, seed=8)


@pytest.fixture
def small_road() -> CSRGraph:
    return road_like(200, 2.6, seed=9)


@pytest.fixture
def small_geometric() -> CSRGraph:
    return random_geometric(140, 0.14, seed=10)


@pytest.fixture(
    params=["rmat", "planar", "road", "geometric", "erdos", "two-components"]
)
def any_graph(request) -> CSRGraph:
    """One representative graph per family, including a disconnected one."""
    name = request.param
    if name == "rmat":
        return rmat(110, 800, seed=3)
    if name == "planar":
        return planar_like(120, seed=4)
    if name == "road":
        return road_like(150, 2.8, seed=5)
    if name == "geometric":
        return random_geometric(100, 0.15, seed=6)
    if name == "erdos":
        return erdos_renyi(100, 500, seed=7)
    # two disconnected Erdős blobs
    a = erdos_renyi(50, 300, seed=8)
    src_a, dst_a, w_a = a.edge_array()
    b = erdos_renyi(50, 300, seed=9)
    src_b, dst_b, w_b = b.edge_array()
    return CSRGraph.from_edges(
        100,
        np.concatenate([src_a, src_b + 50]),
        np.concatenate([dst_a, dst_b + 50]),
        np.concatenate([w_a, w_b]),
        name="two-components",
    )
