"""Unit tests for the device memory allocator."""

import numpy as np
import pytest

from repro.gpu.errors import OutOfMemoryError
from repro.gpu.memory import DeviceMemory, HostBuffer


class TestAlloc:
    def test_alloc_and_free(self):
        pool = DeviceMemory(capacity=1000)
        arr = pool.alloc((10, 10), np.float32)
        assert pool.used == 400
        arr.free()
        assert pool.used == 0
        assert arr.freed

    def test_oom_raises(self):
        pool = DeviceMemory(capacity=100)
        with pytest.raises(OutOfMemoryError) as exc:
            pool.alloc(200, np.uint8)
        assert exc.value.requested == 200
        assert exc.value.capacity == 100

    def test_oom_accounts_existing(self):
        pool = DeviceMemory(capacity=100)
        pool.alloc(80, np.uint8)
        with pytest.raises(OutOfMemoryError):
            pool.alloc(30, np.uint8)

    def test_capacity_never_exceeded(self):
        pool = DeviceMemory(capacity=1000)
        live = []
        rng = np.random.default_rng(0)
        for _ in range(200):
            size = int(rng.integers(1, 300))
            try:
                live.append(pool.alloc(size, np.uint8))
            except OutOfMemoryError:
                if live:
                    live.pop(int(rng.integers(len(live)))).free()
            assert 0 <= pool.used <= 1000

    def test_peak_tracking(self):
        pool = DeviceMemory(capacity=1000)
        a = pool.alloc(300, np.uint8)
        b = pool.alloc(400, np.uint8)
        a.free()
        b.free()
        assert pool.peak == 700
        assert pool.used == 0

    def test_double_free_is_idempotent(self):
        pool = DeviceMemory(capacity=100)
        arr = pool.alloc(10, np.uint8)
        arr.free()
        arr.free()
        assert pool.used == 0

    def test_fill_value(self):
        pool = DeviceMemory(capacity=1000)
        arr = pool.alloc((3, 3), np.float32, fill=np.inf)
        assert np.all(np.isinf(arr.data))

    def test_context_manager_frees(self):
        pool = DeviceMemory(capacity=100)
        with pool.alloc(10, np.uint8):
            assert pool.used == 10
        assert pool.used == 0

    def test_upload_copies_contents(self):
        pool = DeviceMemory(capacity=1000)
        src = np.arange(12, dtype=np.float32).reshape(3, 4)
        arr = pool.upload(src)
        assert np.array_equal(arr.data, src)
        src[0, 0] = 99  # device copy must not alias
        assert arr.data[0, 0] == 0

    def test_num_live(self):
        pool = DeviceMemory(capacity=1000)
        a = pool.alloc(10, np.uint8)
        b = pool.alloc(10, np.uint8)
        assert pool.num_live == 2
        a.free()
        assert pool.num_live == 1
        b.free()


class TestScope:
    def test_scope_frees_all(self):
        pool = DeviceMemory(capacity=1000)
        with pool.scope() as scope:
            scope.alloc(100, np.uint8)
            scope.alloc(200, np.uint8)
            assert pool.used == 300
        assert pool.used == 0

    def test_scope_frees_on_exception(self):
        pool = DeviceMemory(capacity=1000)
        with pytest.raises(RuntimeError):
            with pool.scope() as scope:
                scope.alloc(100, np.uint8)
                raise RuntimeError("boom")
        assert pool.used == 0


class TestHostBuffer:
    def test_empty_constructor(self):
        buf = HostBuffer.empty((4, 4), np.float32, pinned=False)
        assert buf.data.shape == (4, 4)
        assert not buf.pinned
        assert buf.nbytes == 64

    def test_pinned_default(self):
        assert HostBuffer.empty((2,)).pinned
