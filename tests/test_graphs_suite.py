"""Tests for the paper-suite registry and its stand-in generators."""

import pytest

from repro.graphs.suite import (
    DEFAULT_SCALE,
    get_suite_graph,
    list_suite,
    suite_entry,
)


class TestRegistry:
    def test_table3_has_19_graphs(self):
        assert len(list_suite(tier="cpu-fit")) == 19

    def test_table4_has_10_graphs(self):
        assert len(list_suite(tier="cpu-exceed")) == 10

    def test_small_separator_split_matches_paper(self):
        # the paper classifies 11 of the 19 Table III graphs as small-separator
        small = list_suite(tier="cpu-fit", small_separator=True)
        assert len(small) == 11

    def test_lookup_by_name(self):
        e = suite_entry("usroads")
        assert e.small_separator
        assert e.paper_n == 129_000

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown suite graph"):
            suite_entry("nonexistent")

    def test_family_filter(self):
        roads = list_suite(family="road")
        assert all(e.family == "road" for e in roads)
        assert any(e.name == "luxembourg_osm" for e in roads)


class TestGeneration:
    @pytest.mark.parametrize("name", ["usroads", "wi2010", "onera_dual", "stanford"])
    def test_scaled_sizes(self, name):
        e = suite_entry(name)
        g = e.generate(DEFAULT_SCALE)
        # vertex count within 35% of the scaled paper size
        assert g.num_vertices == pytest.approx(e.paper_n * DEFAULT_SCALE, rel=0.35)

    def test_deterministic(self):
        a = get_suite_graph("usroads")
        b = get_suite_graph("usroads")
        assert a.num_edges == b.num_edges

    def test_avg_degree_tracks_paper(self):
        for name in ["usroads", "wi2010", "onera_dual"]:
            e = suite_entry(name)
            g = e.generate(DEFAULT_SCALE)
            paper_deg = e.paper_m / e.paper_n
            ours = g.num_edges / g.num_vertices
            assert ours == pytest.approx(paper_deg, rel=0.45), name

    def test_effective_density_recovers_paper_band(self):
        e = suite_entry("usroads")
        g = e.generate(DEFAULT_SCALE)
        eff = e.effective_density(g, DEFAULT_SCALE)
        # paper reports 0.0020% for usroads
        assert eff == pytest.approx(e.paper_density_pct / 100.0, rel=0.6)

    def test_names_propagate(self):
        assert get_suite_graph("usroads").name == "usroads"


class TestSeparatorClasses:
    """The stand-ins must land in the paper's separator classes, because the
    whole selection story depends on it."""

    @pytest.mark.parametrize("name", ["usroads", "luxembourg_osm", "wi2010"])
    def test_small_separator_standins(self, name):
        from repro.partition import classify_separator

        g = get_suite_graph(name, 1 / 128)
        info = classify_separator(g, seed=0)
        assert info.small_separator, f"{name}: NB ratio {info.ratio:.2f}"

    @pytest.mark.parametrize("name", ["fe_tooth", "net4-1"])
    def test_large_separator_standins(self, name):
        # onera_dual is excluded: its 3-D mesh separator ratio scales as
        # n^(1/6) and falls below the classification threshold at reduced
        # scale (see EXPERIMENTS.md, "known scaling artifacts").
        from repro.partition import classify_separator

        g = get_suite_graph(name, 1 / 128)
        info = classify_separator(g, seed=0)
        assert not info.small_separator, f"{name}: NB ratio {info.ratio:.2f}"
