"""The checked-in transfer baseline is a CI regression gate.

``BENCH_transfers.json`` pins the static plan verifier's byte-exact
predictions for the standard configurations; a driver change that moves
different bytes (or starts wasting bus bandwidth on redundant copies)
fails here before any wall-clock benchmark would notice.
"""

from repro.bench.transfers import (
    STANDARD_CONFIGS,
    bench_transfers_path,
    collect_baseline,
    compare_baseline,
    load_baseline,
)


class TestBaselineFile:
    def test_checked_in_baseline_exists(self):
        path = bench_transfers_path()
        assert path.exists(), "run `python -m repro bench-transfers` to record it"
        baseline = load_baseline()
        assert set(baseline["configs"]) == {c["name"] for c in STANDARD_CONFIGS}

    def test_no_drift_from_baseline(self):
        drifts = compare_baseline()
        assert drifts == []

    def test_compare_detects_drift(self):
        baseline = load_baseline()
        entry = baseline["configs"]["road220-test"]["algorithms"]["floyd-warshall"]
        entry["bytes_h2d"] += 4
        drifts = compare_baseline(baseline)
        assert any("road220-test/floyd-warshall: bytes_h2d" in d for d in drifts)


class TestZeroRedundancy:
    def test_all_current_drivers_waste_no_bytes(self):
        # the ISSUE acceptance invariant: every feasible plan of every
        # standard configuration moves zero redundant bytes
        current = collect_baseline()
        for name, entry in current["configs"].items():
            for algo, audit in entry["algorithms"].items():
                if audit["feasible"]:
                    assert audit["redundant_bytes"] == 0, (name, algo)
                    assert audit["verified"], (name, algo)

    def test_every_standard_config_verifies(self):
        current = collect_baseline()
        for name, entry in current["configs"].items():
            assert entry["ok"], name
