"""Unit tests for the CSR graph type."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph


def build(n, edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges], dtype=np.float64)
    return CSRGraph.from_edges(n, src, dst, w)


class TestConstruction:
    def test_basic_counts(self):
        g = build(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)])
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.density == pytest.approx(3 / 16)

    def test_self_loops_dropped(self):
        g = build(3, [(0, 0, 1.0), (0, 1, 2.0), (2, 2, 5.0)])
        assert g.num_edges == 1

    def test_duplicate_edges_keep_min(self):
        g = build(3, [(0, 1, 5.0), (0, 1, 2.0), (0, 1, 9.0)])
        assert g.num_edges == 1
        _, w = g.neighbors(0)
        assert w[0] == 2.0

    def test_duplicate_edges_sum_mode(self):
        g = CSRGraph.from_edges(
            3,
            np.array([0, 0]),
            np.array([1, 1]),
            np.array([2.0, 3.0]),
            dedupe="sum",
        )
        _, w = g.neighbors(0)
        assert w[0] == 5.0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, np.array([]), np.array([]), np.array([]))
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.to_dense().shape == (5, 5)

    def test_vertex_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build(2, [(0, 5, 1.0)])
        with pytest.raises(ValueError):
            build(2, [(5, 0, 1.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            build(2, [(0, 1, -1.0)])

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_indices_weights_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0, 1]), np.array([1.0]))


class TestAccessors:
    def test_neighbors_sorted_within_row(self):
        g = build(4, [(0, 3, 1.0), (0, 1, 2.0), (0, 2, 3.0)])
        nbrs, w = g.neighbors(0)
        assert list(nbrs) == [1, 2, 3]
        assert list(w) == [2.0, 3.0, 1.0]

    def test_out_degree(self):
        g = build(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)])
        assert g.out_degree(0) == 2
        assert g.out_degree(2) == 0
        assert list(g.out_degree()) == [2, 1, 0]

    def test_edge_array_round_trip(self):
        g = build(5, [(0, 1, 2.0), (3, 4, 7.0), (1, 0, 1.0)])
        src, dst, w = g.edge_array()
        g2 = CSRGraph.from_edges(5, src, dst, w)
        assert np.array_equal(g.indptr, g2.indptr)
        assert np.array_equal(g.indices, g2.indices)
        assert np.array_equal(g.weights, g2.weights)

    def test_to_dense(self):
        g = build(3, [(0, 1, 4.0), (1, 2, 5.0)])
        d = g.to_dense()
        assert d[0, 1] == 4.0
        assert d[1, 2] == 5.0
        assert d[0, 2] == np.inf
        assert d[0, 0] == 0.0 and d[1, 1] == 0.0

    def test_to_dense_dtype(self):
        g = build(2, [(0, 1, 4.0)])
        assert g.to_dense(dtype=np.float32).dtype == np.float32

    def test_nbytes_positive(self):
        g = build(3, [(0, 1, 1.0)])
        assert g.nbytes > 0


class TestTransforms:
    def test_reverse(self):
        g = build(3, [(0, 1, 2.0), (1, 2, 3.0)])
        r = g.reverse()
        nbrs, w = r.neighbors(1)
        assert list(nbrs) == [0]
        assert w[0] == 2.0

    def test_reverse_involution(self):
        g = build(4, [(0, 1, 2.0), (1, 3, 3.0), (2, 0, 1.0)])
        rr = g.reverse().reverse()
        assert np.array_equal(g.indices, rr.indices)
        assert np.array_equal(g.weights, rr.weights)

    def test_symmetrize(self):
        g = build(3, [(0, 1, 2.0)])
        s = g.symmetrize()
        assert s.num_edges == 2
        nbrs, _ = s.neighbors(1)
        assert list(nbrs) == [0]

    def test_symmetrize_keeps_min_of_antiparallel(self):
        g = build(2, [(0, 1, 5.0), (1, 0, 2.0)])
        s = g.symmetrize()
        _, w01 = s.neighbors(0)
        _, w10 = s.neighbors(1)
        assert w01[0] == 2.0 and w10[0] == 2.0

    def test_permute_identity(self):
        g = build(3, [(0, 1, 2.0), (1, 2, 3.0)])
        p = g.permute(np.arange(3))
        assert np.array_equal(p.indices, g.indices)

    def test_permute_relabels(self):
        g = build(3, [(0, 1, 2.0)])
        p = g.permute(np.array([2, 0, 1]))  # old 0 -> new 2, old 1 -> new 0
        nbrs, w = p.neighbors(2)
        assert list(nbrs) == [0]
        assert w[0] == 2.0

    def test_permute_rejects_non_permutation(self):
        g = build(3, [(0, 1, 2.0)])
        with pytest.raises(ValueError):
            g.permute(np.array([0, 0, 1]))

    def test_subgraph(self):
        g = build(5, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 3.0), (1, 4, 9.0)])
        sub = g.subgraph(np.array([1, 2, 4]))
        # local ids: 1->0, 2->1, 4->2; edges (1,2) and (1,4) survive
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        nbrs, _ = sub.neighbors(0)
        assert sorted(nbrs.tolist()) == [1, 2]

    def test_scipy_round_trip(self):
        g = build(4, [(0, 1, 1.5), (2, 3, 2.5), (3, 0, 0.5)])
        g2 = CSRGraph.from_scipy(g.to_scipy())
        assert np.allclose(g.to_dense(), g2.to_dense())

    def test_with_name(self):
        g = build(2, [(0, 1, 1.0)]).with_name("xyz")
        assert g.name == "xyz"
