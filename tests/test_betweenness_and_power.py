"""Tests for Brandes betweenness and min-plus repeated-squaring APSP."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.betweenness import betweenness_centrality
from repro.core.minplus_power import minplus_power_apsp, squarings_needed
from repro.gpu.device import TEST_DEVICE, Device
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, planar_like, rmat
from tests.conftest import oracle_apsp
from tests.test_analysis import to_networkx


class TestBetweenness:
    @pytest.mark.parametrize("maker", [
        lambda: planar_like(60, seed=1),
        lambda: rmat(70, 600, seed=2),
        lambda: erdos_renyi(50, 400, seed=3),
    ])
    def test_matches_networkx(self, maker):
        g = maker()
        ours = betweenness_centrality(g, normalized=True)
        theirs = nx.betweenness_centrality(
            to_networkx(g), weight="weight", normalized=True
        )
        for v, b in theirs.items():
            assert ours[v] == pytest.approx(b, abs=1e-9), v

    def test_path_graph_analytic(self):
        # directed path 0->1->2->3: betweenness counts interior pairs
        g = CSRGraph.from_edges(
            4, np.array([0, 1, 2]), np.array([1, 2, 3]), np.ones(3)
        )
        b = betweenness_centrality(g, normalized=False)
        # vertex 1 lies on paths 0->2, 0->3; vertex 2 on 0->3, 1->3
        assert b[0] == 0 and b[3] == 0
        assert b[1] == pytest.approx(2.0)
        assert b[2] == pytest.approx(2.0)

    def test_equal_path_splitting(self):
        # diamond: 0->1->3 and 0->2->3 with equal weight: sigma splits
        g = CSRGraph.from_edges(
            4,
            np.array([0, 0, 1, 2]),
            np.array([1, 2, 3, 3]),
            np.ones(4),
        )
        b = betweenness_centrality(g, normalized=False)
        assert b[1] == pytest.approx(0.5)
        assert b[2] == pytest.approx(0.5)

    def test_sampled_estimate_close(self):
        g = planar_like(150, seed=4)
        exact = betweenness_centrality(g)
        approx = betweenness_centrality(g, num_pivots=60, seed=5)
        # unbiased estimator: top-decile overlap and bounded error
        top_exact = set(np.argsort(-exact)[:15].tolist())
        top_approx = set(np.argsort(-approx)[:15].tolist())
        assert len(top_exact & top_approx) >= 8
        assert np.abs(approx - exact).max() < 0.15

    def test_tiny_graphs(self):
        g = CSRGraph.from_edges(2, np.array([0]), np.array([1]), np.ones(1))
        assert np.all(betweenness_centrality(g) == 0)

    def test_pivots_ge_n_equals_exact(self):
        g = rmat(40, 250, seed=6)
        assert np.allclose(
            betweenness_centrality(g, num_pivots=1000),
            betweenness_centrality(g),
        )


class TestMinplusPower:
    def test_squarings_needed(self):
        assert squarings_needed(2) == 1
        assert squarings_needed(5) == 2
        assert squarings_needed(1025) == 10

    @pytest.mark.parametrize("maker", [
        lambda: planar_like(80, seed=7),
        lambda: rmat(90, 700, seed=8),
    ])
    def test_matches_oracle_host_only(self, maker):
        g = maker()
        res = minplus_power_apsp(g)
        assert np.allclose(res.to_array(), oracle_apsp(g))

    def test_matches_oracle_on_device(self, small_rmat):
        res = minplus_power_apsp(small_rmat, Device(TEST_DEVICE))
        assert np.allclose(res.to_array(), oracle_apsp(small_rmat))
        assert 1 <= res.stats["squarings"] <= res.stats["max_squarings"]

    def test_early_convergence(self):
        # unit weights: shortest paths = hop paths, so a dense graph with
        # hop-diameter 2 settles after the second squaring detects no change
        g = erdos_renyi(50, 2200, seed=9, weight_range=(1.0, 1.0))
        res = minplus_power_apsp(g, Device(TEST_DEVICE))
        assert res.stats["squarings"] <= 2

    def test_costlier_than_fw_in_model(self, small_rmat):
        """The log-n work factor shows up in simulated time (Table I's
        regular-but-more-work tradeoff)."""
        from repro.core import incore_apsp

        power = minplus_power_apsp(small_rmat, Device(TEST_DEVICE))
        fw = incore_apsp(small_rmat, Device(TEST_DEVICE))
        assert power.simulated_seconds > fw.simulated_seconds
