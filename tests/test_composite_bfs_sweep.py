"""Tests for composite graph constructors, BFS hops, and model sweeps."""

import numpy as np
import pytest

from repro.graphs.composite import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    grid_2d,
    grid_3d,
    path_graph,
    star_graph,
)
from repro.graphs.generators import erdos_renyi
from repro.gpu.device import TEST_DEVICE
from repro.gpu.sweep import sweep_constant
from repro.sssp import near_far
from repro.sssp.bfs import bfs_hops, bfs_levels, hop_diameter
from tests.conftest import oracle_sssp


class TestComposite:
    def test_grid_2d_shape(self):
        g = grid_2d(4, 5)
        assert g.num_vertices == 20
        # undirected edge count: 4*(5-1) + 5*(4-1) = 31 -> 62 directed
        assert g.num_edges == 62

    def test_grid_3d_shape(self):
        g = grid_3d(3, 3, 3)
        assert g.num_vertices == 27
        # 3 directions * 2*3*3 faces... 2*(3*3*2)*3 = 108 directed
        assert g.num_edges == 108

    def test_path_distances_linear(self):
        g = path_graph(10, weight=2.0)
        d = bfs_hops(g, 0)
        assert d[9] == 9
        dist, _ = near_far(g, 0)
        assert dist[9] == 18.0

    def test_path_directed_one_way(self):
        g = path_graph(5, directed=True)
        dist, _ = near_far(g, 4)
        assert np.isinf(dist[0])

    def test_cycle_wraps(self):
        g = cycle_graph(8)
        dist, _ = near_far(g, 0)
        assert dist[4] == 4.0  # either way round
        assert dist[7] == 1.0

    def test_star_center_and_leaves(self):
        g = star_graph(12)
        dist, _ = near_far(g, 0)
        assert np.all(dist[1:] == 1.0)
        dist, _ = near_far(g, 3)
        assert dist[0] == 1.0 and dist[7] == 2.0

    def test_complete_density(self):
        g = complete_graph(10)
        assert g.num_edges == 90
        dist, _ = near_far(g, 2)
        assert np.all(np.delete(dist, 2) == 1.0)

    def test_disjoint_union_offsets(self):
        a = path_graph(3)
        b = cycle_graph(4)
        u = disjoint_union([a, b])
        assert u.num_vertices == 7
        d = bfs_hops(u, 0)
        assert np.isinf(d[4])  # no crossing
        d2 = bfs_hops(u, 3)
        assert d2[6] == 1

    def test_disjoint_union_empty(self):
        assert disjoint_union([]).num_vertices == 0


class TestBfs:
    def test_matches_oracle_unit_weights(self):
        g = erdos_renyi(80, 500, seed=1, weight_range=(1.0, 1.0))
        expected = oracle_sssp(g, [0])[0]
        assert np.allclose(bfs_hops(g, 0), expected)

    def test_levels_partition_reachable(self):
        g = grid_2d(5, 5)
        levels = bfs_levels(g, 0)
        assert levels[0].tolist() == [0]
        all_vertices = np.concatenate(levels)
        assert sorted(all_vertices.tolist()) == list(range(25))
        # grid hop distance from the corner is manhattan distance
        assert len(levels) == 9  # (4 + 4) + 1

    def test_hop_diameter_exact(self):
        assert hop_diameter(path_graph(10)) == 9
        assert hop_diameter(cycle_graph(8)) == 4
        assert hop_diameter(grid_2d(3, 4)) == 5

    def test_hop_diameter_sampled_is_lower_bound(self):
        g = grid_2d(6, 6)
        exact = hop_diameter(g)
        sampled = hop_diameter(g, sample=5, seed=2)
        assert sampled <= exact

    def test_source_out_of_range(self):
        with pytest.raises(ValueError):
            bfs_hops(path_graph(3), 5)

    def test_disconnected_inf(self):
        u = disjoint_union([path_graph(3), path_graph(3)])
        hops = bfs_hops(u, 0)
        assert np.isinf(hops[3:]).all()


class TestSweep:
    def test_elasticity_of_pure_scaling(self):
        # metric exactly proportional to the constant -> elasticity +1
        res = sweep_constant(
            TEST_DEVICE, "transfer_throughput", lambda s: s.transfer_throughput
        )
        assert res.elasticity == pytest.approx(1.0, abs=0.01)

    def test_elasticity_of_invariant_metric(self):
        res = sweep_constant(TEST_DEVICE, "minplus_rate", lambda s: 42.0)
        assert res.elasticity == pytest.approx(0.0, abs=1e-9)
        assert res.spread == pytest.approx(1.0)

    def test_inverse_metric(self):
        res = sweep_constant(
            TEST_DEVICE, "minplus_rate", lambda s: 1e9 / s.minplus_rate
        )
        assert res.elasticity == pytest.approx(-1.0, abs=0.01)

    def test_baseline_recorded(self):
        res = sweep_constant(TEST_DEVICE, "relax_rate", lambda s: s.relax_rate * 2)
        assert res.baseline == pytest.approx(TEST_DEVICE.relax_rate * 2)

    def test_non_numeric_field_rejected(self):
        with pytest.raises(TypeError):
            sweep_constant(TEST_DEVICE, "name", lambda s: 1.0)

    def test_describe(self):
        res = sweep_constant(TEST_DEVICE, "relax_rate", lambda s: s.relax_rate)
        assert "elasticity" in res.describe()
