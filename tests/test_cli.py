"""Tests for the ``python -m repro`` command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.backends.jit import KERNEL_TEMPLATES
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import write_edge_list, write_matrix_market


class TestSolve:
    def test_generator_spec(self, capsys):
        rc = main(["solve", "rmat:n=150,m=1000,seed=2", "--device", "test",
                   "--scale", "1", "--algorithm", "johnson"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "algorithm: johnson" in out
        assert "simulated time:" in out

    def test_verify_and_query(self, capsys):
        rc = main(["solve", "er:n=100,m=600,seed=3", "--device", "test",
                   "--scale", "1", "--algorithm", "floyd-warshall",
                   "--verify", "3", "--query", "0,5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verification (3 rows): ok" in out
        assert "dist(0, 5)" in out

    def test_auto_selection(self, capsys):
        rc = main(["solve", "road:n=600,deg=2.6,seed=4", "--scale", "0.015625"])
        assert rc == 0
        assert "algorithm: boundary" in capsys.readouterr().out

    def test_mtx_file(self, tmp_path, capsys):
        g = erdos_renyi(80, 500, seed=5)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        rc = main(["solve", str(path), "--device", "test", "--scale", "1",
                   "--algorithm", "johnson", "--verify", "2"])
        assert rc == 0
        assert "verification (2 rows): ok" in capsys.readouterr().out

    def test_edge_list_file(self, tmp_path, capsys):
        g = erdos_renyi(60, 300, seed=6)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        rc = main(["info", str(path)])
        assert rc == 0
        assert "vertices:        60" in capsys.readouterr().out

    def test_trace_output(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        rc = main(["solve", "er:n=80,m=400,seed=7", "--device", "test",
                   "--scale", "1", "--algorithm", "johnson",
                   "--trace", str(trace)])
        assert rc == 0
        assert trace.exists()
        assert "busy" in capsys.readouterr().out

    def test_bad_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["solve", "nonsense:abc"])


class TestInfo:
    def test_separator_classification(self, capsys):
        rc = main(["info", "road:n=500,deg=2.6,seed=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-> small" in out

    def test_suite_spec(self, capsys):
        rc = main(["info", "suite:luxembourg_osm", "--scale", "0.0078125"])
        assert rc == 0
        assert "density" in capsys.readouterr().out


class TestOthers:
    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "usroads" in out and "af_shell1" in out
        assert out.count("\n") >= 30  # header + 29 graphs

    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "K80" in out
        assert "11.75 GB/s" in out

    def test_select_command(self, capsys):
        rc = main(["select", "road:n=500,deg=2.6,seed=9", "--scale", "0.015625"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected:   boundary" in out


class TestSelectJson:
    def test_json_output_parses(self, capsys):
        import json

        from repro.cli import SCHEMA_VERSION, main

        rc = main(["select", "road:n=400,deg=2.6,seed=1",
                   "--scale", "0.015625", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["algorithm"] in ("johnson", "boundary", "floyd-warshall")
        assert "band" in data and "candidates" in data

    def test_analytic_mode(self, capsys):
        import json

        rc = main(["select", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1",
                   "--analytic", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["method"] == "analytic"
        for est in data["estimates"].values():
            assert est["detail"]["model"] == "schedule-dag"

    def test_json_sparse_band_has_estimates(self, capsys):
        import json

        from repro.cli import main

        rc = main(["select", "road:n=900,deg=2.6,seed=2",
                   "--scale", "0.015625", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["band"] == "sparse"
        assert set(data["estimates"]) == {"johnson", "boundary"}
        for est in data["estimates"].values():
            assert est["total_seconds"] > 0


class TestVerifyPlan:
    def test_human_output_and_exit_zero(self, capsys):
        rc = main(["verify-plan", "rmat:n=110,m=800,seed=2",
                   "--device", "test", "--scale", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all feasible plans verified" in out
        assert "floyd-warshall: VERIFIED" in out
        assert "multi-gpu: VERIFIED" in out

    def test_json_output_parses(self, capsys):
        import json

        from repro.cli import SCHEMA_VERSION

        rc = main(["verify-plan", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["ok"] is True
        audit = data["audits"]["floyd-warshall"]
        assert audit["verified"] and audit["redundant_bytes"] == 0
        assert audit["bytes_h2d"] > 0 and audit["peak_bytes"] <= audit["capacity"]

    def test_single_algorithm_flag(self, capsys):
        rc = main(["verify-plan", "rmat:n=110,m=800,seed=2",
                   "--device", "test", "--scale", "1", "--algorithm", "fw"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "floyd-warshall" in out and "johnson" not in out

    def test_failing_bound_exits_one(self, capsys):
        # an impossible tolerance turns the square-tile paper-form
        # cross-check into a failure: documented exit code 1
        rc = main(["verify-plan", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1",
                   "--algorithm", "fw", "--tolerance", "1e-9"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verification FAILED" in out
        assert "fw-h2d-paper-form" in out


class TestSanitizeJson:
    def test_json_output_parses(self, capsys):
        import json

        from repro.cli import SCHEMA_VERSION

        rc = main(["sanitize", "rmat:n=110,m=800,seed=2",
                   "--device", "test", "--scale", "1", "--driver", "fw",
                   "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["clean"] is True
        assert data["drivers"]["fw"]["hazards"] == []
        assert data["drivers"]["fw"]["num_ops"] > 0


class TestCheckSchedule:
    def test_human_output_pass(self, capsys):
        rc = main(["check-schedule", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule check: PASS" in out
        assert "race/deadlock-free in every interleaving" in out
        assert "predicted makespan" in out

    def test_json_output(self, capsys):
        import json

        from repro.cli import SCHEMA_VERSION

        rc = main(["check-schedule", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["ok"] is True
        for audit in data["audits"].values():
            if not audit["feasible"]:
                continue
            assert audit["hb"]["findings"] == []
            assert audit["timing"]["makespan_seconds"] > 0

    def test_no_overlap_mode(self, capsys):
        rc = main(["check-schedule", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1",
                   "--algorithm", "fw", "--no-overlap"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 event(s)" in out

    def test_injected_defect_exits_one(self, capsys, monkeypatch):
        # strip every wait edge from the FW emitter: the checker must
        # catch the resulting races and flip the exit code to 1
        import dataclasses

        import repro.core.ooc_fw as ooc_fw
        from repro.verifyplan.ir import WaitOp

        real = ooc_fw.emit_fw_ir

        def broken(*args, **kwargs):
            ir = real(*args, **kwargs)
            ops = tuple(op for op in ir.ops if not isinstance(op, WaitOp))
            return dataclasses.replace(ir, ops=ops)

        monkeypatch.setattr(ooc_fw, "emit_fw_ir", broken)
        rc = main(["check-schedule", "road:n=220,deg=2.6,seed=1",
                   "--device", "test", "--scale", "1", "--algorithm", "fw"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "schedule check: FAIL" in out
        assert "unordered-conflict" in out

    def test_bad_usage_exits_two(self):
        with pytest.raises(SystemExit) as exc:
            main(["check-schedule", "road:n=220,deg=2.6,seed=1",
                  "--algorithm", "bogus"])
        assert exc.value.code == 2


class TestBenchTransfers:
    def test_check_mode_clean(self, capsys):
        rc = main(["bench-transfers", "--check"])
        assert rc == 0
        assert "no drift" in capsys.readouterr().out


class TestLintJson:
    def test_schema_and_violations(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text('"""Doc."""\ndef pub():\n    return 2\n')
        rc = main(["lint", str(tmp_path), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["ok"] is False
        assert payload["count"] == len(payload["violations"]) >= 1
        v = payload["violations"][0]
        assert {"rule", "name", "file", "line", "message"} <= set(v)

    def test_clean_tree_json(self, tmp_path, capsys):
        ok = tmp_path / "repro" / "good.py"
        ok.parent.mkdir(parents=True)
        ok.write_text('"""Doc."""\n__all__ = []\n')
        rc = main(["lint", str(tmp_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["violations"] == []


class TestVerifyKernels:
    def test_static_json_schema(self, capsys):
        rc = main(["verify-kernels", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert set(payload["kernels"]) == {t.name for t in KERNEL_TEMPLATES}

    def test_static_text_mode(self, capsys):
        rc = main(["verify-kernels"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out
