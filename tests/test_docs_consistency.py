"""Docs/code consistency gates.

A reproduction's documentation is part of its deliverable: the DESIGN.md
experiment index must reference benchmark files that exist, every benchmark
file must be indexed, and the claims-bearing docs must mention every
experiment id they promise.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = ROOT / "benchmarks"


def bench_files_on_disk() -> set[str]:
    return {
        p.name
        for p in BENCH_DIR.glob("test_*.py")
    }


def test_design_index_references_existing_benches():
    design = (ROOT / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/(test_\w+\.py)", design))
    assert referenced, "DESIGN.md lists no benchmark targets"
    missing = referenced - bench_files_on_disk()
    assert not missing, f"DESIGN.md references nonexistent benches: {missing}"


def test_every_bench_is_documented():
    design = (ROOT / "DESIGN.md").read_text()
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    docs = design + experiments
    undocumented = [
        name for name in bench_files_on_disk()
        if name not in docs
    ]
    assert not undocumented, f"benches missing from DESIGN/EXPERIMENTS: {undocumented}"


def test_experiments_covers_every_paper_artifact():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for artifact in [
        "Table I", "Table II", "Table III", "Table IV", "Table V",
        "Table VI", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Figs 6", "Fig 8",
        "selector accuracy", "batch variance",
    ]:
        assert artifact.lower() in experiments.lower(), artifact


def test_readme_links_resolve():
    readme = (ROOT / "README.md").read_text()
    for link in re.findall(r"\]\(([\w./]+\.md)\)", readme):
        assert (ROOT / link).exists(), link


def test_examples_listed_in_readme():
    readme = (ROOT / "README.md").read_text()
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in readme, f"{example.name} not mentioned in README"
