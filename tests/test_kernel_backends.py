"""Cross-backend equivalence and contract tests for the kernel engine.

Every backend registered in :mod:`repro.core.backends` must produce results
**bit-identical** to the naive rank-1 reference loop — min is
order-independent and float32 ``a + b`` rounds identically regardless of
tiling, chunking, JIT compilation, or threading, so equality here is exact
``array_equal``, not ``allclose``. The suite covers random, inf-heavy,
empty, degenerate, and non-square tiles (parametrized and property-based),
Floyd–Warshall closure, the engine's dtype/layout coercion rules, the
environment/API selection knobs, and the graceful numba→C→numpy fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import available_backends, backend_names, create_backend
from repro.core.backends.base import finite_column_indices, numpy_fw_inplace, rank1_update
from repro.core.backends.jit import JITBackend
from repro.core.backends.threaded import ThreadedBackend
from repro.core.blocked_fw import blocked_floyd_warshall, floyd_warshall_inplace
from repro.core.engine import (
    ENV_BACKEND,
    KernelEngine,
    calibrate,
    default_engine,
    reset_default_engine,
    set_default_backend,
)
from repro.core.minplus import DIST_DTYPE, minplus, minplus_update

BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _clean_default_engine():
    """Isolate the process-wide engine from per-test env manipulation."""
    reset_default_engine()
    yield
    reset_default_engine()


def naive_update(c, a, b):
    """Ground-truth rank-1 loop: no column skipping, no tiling."""
    out = c.copy()
    for k in range(a.shape[1]):
        np.minimum(out, a[:, k, None] + b[k, None, :], out=out)
    return out


def random_tiles(shape, inf_frac=0.0, seed=0, integer=True):
    """Random (c, a, b) operands with optional +inf entries."""
    bi, bk, bj = shape
    rng = np.random.default_rng(seed)

    def mat(r, c):
        if integer:
            m = rng.integers(0, 100, (r, c)).astype(DIST_DTYPE)
        else:
            m = (rng.random((r, c)) * 100).astype(DIST_DTYPE)
        if inf_frac:
            m[rng.random((r, c)) < inf_frac] = np.inf
        return m

    return mat(bi, bj), mat(bi, bk), mat(bk, bj)


SHAPES = [(17, 23, 11), (64, 64, 64), (1, 5, 1), (3, 1, 4), (128, 200, 96)]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("inf_frac", [0.0, 0.3])
def test_backend_bit_identical(backend, shape, inf_frac):
    c, a, b = random_tiles(shape, inf_frac, seed=hash((shape, inf_frac)) % 2**32)
    expected = naive_update(c, a, b)
    got = c.copy()
    KernelEngine(backend).update(got, a, b)
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_all_inf_operands(backend):
    """Entirely-+inf A (every column dead) must leave C untouched."""
    c, _, _ = random_tiles((9, 7, 9), seed=5)
    a = np.full((9, 7), np.inf, dtype=DIST_DTYPE)
    b = np.full((7, 9), np.inf, dtype=DIST_DTYPE)
    before = c.copy()
    KernelEngine(backend).update(c, a, b)
    assert np.array_equal(c, before)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape", [(0, 5, 3), (4, 0, 3), (3, 5, 0), (0, 0, 0)])
def test_backend_empty_tiles(backend, shape):
    bi, bk, bj = shape
    c = np.zeros((bi, bj), dtype=DIST_DTYPE)
    a = np.zeros((bi, bk), dtype=DIST_DTYPE)
    b = np.zeros((bk, bj), dtype=DIST_DTYPE)
    before = c.copy()
    KernelEngine(backend).update(c, a, b)
    assert np.array_equal(c, before)  # k == 0 or no output elements


@settings(max_examples=40, deadline=None)
@given(
    bi=st.integers(1, 24),
    bk=st.integers(1, 24),
    bj=st.integers(1, 24),
    inf_frac=st.sampled_from([0.0, 0.2, 0.9]),
    seed=st.integers(0, 2**16),
)
def test_backends_agree_property(bi, bk, bj, inf_frac, seed):
    """Property: all backends agree bit-for-bit on arbitrary tiles."""
    c, a, b = random_tiles((bi, bk, bj), inf_frac, seed)
    expected = naive_update(c, a, b)
    for name in BACKENDS:
        got = c.copy()
        KernelEngine(name).update(got, a, b)
        assert np.array_equal(got, expected), name


@pytest.mark.parametrize("backend", BACKENDS)
def test_fw_inplace_bit_identical(backend, rng=np.random.default_rng(7)):
    d = rng.integers(1, 50, (97, 97)).astype(DIST_DTYPE)
    d[rng.random((97, 97)) < 0.5] = np.inf
    np.fill_diagonal(d, 0.0)
    expected = numpy_fw_inplace(d.copy())
    got = KernelEngine(backend).fw_inplace(d.copy())
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("block_size", [1, 13, 64, 200])
def test_blocked_fw_engine_equivalence(backend, block_size):
    """Blocked FW (aliased stage-2 tiles) agrees exactly on integer weights."""
    rng = np.random.default_rng(11)
    d = rng.integers(1, 100, (75, 75)).astype(DIST_DTYPE)
    d[rng.random((75, 75)) < 0.6] = np.inf
    np.fill_diagonal(d, 0.0)
    expected = numpy_fw_inplace(d.copy())
    eng = KernelEngine(backend)
    got = blocked_floyd_warshall(d.copy(), block_size, engine=eng)
    assert np.array_equal(got, expected)


def test_inf_column_skip_fast_path():
    """Satellite: dead columns are skipped without changing the result."""
    c, a, b = random_tiles((31, 19, 23), inf_frac=0.0, seed=3)
    a[:, ::2] = np.inf  # kill every even column of A
    idx = finite_column_indices(a)
    assert idx is not None and np.array_equal(idx, np.arange(1, 19, 2))
    got = rank1_update(c.copy(), a, b, skip_inf_columns=True)
    assert np.array_equal(got, naive_update(c, a, b))
    assert finite_column_indices(np.zeros((3, 3), dtype=DIST_DTYPE)) is None


# ----------------------------------------------------------------------
# Engine contract: dtype / layout coercion
# ----------------------------------------------------------------------
def test_engine_coerces_fortran_operands():
    c, a, b = random_tiles((20, 16, 12), inf_frac=0.2, seed=9)
    expected = naive_update(c, a, b)
    got = c.copy()
    KernelEngine("jit").update(got, np.asfortranarray(a), np.asfortranarray(b))
    assert np.array_equal(got, expected)
    assert got.dtype == DIST_DTYPE


def test_engine_float64_accumulator_keeps_dtype():
    c, a, b = random_tiles((10, 8, 6), seed=13)
    c64 = c.astype(np.float64)
    got = KernelEngine("tiled").update(c64, a, b)
    assert got is c64 and got.dtype == np.float64
    assert np.array_equal(got, naive_update(c, a, b).astype(np.float64))


def test_engine_strided_output_updated_in_place():
    c, a, b = random_tiles((15, 15, 15), inf_frac=0.3, seed=17)
    base = c.T.copy()  # c-view through a transpose: non-unit last stride
    view = base.T
    expected = naive_update(view.copy(), a, b)
    got = KernelEngine("jit").update(view, a, b)
    assert got is view
    assert np.array_equal(view, expected)


def test_engine_shape_validation():
    eng = KernelEngine("reference")
    with pytest.raises(ValueError, match="incompatible shapes"):
        eng.update(
            np.zeros((2, 2), DIST_DTYPE),
            np.zeros((2, 3), DIST_DTYPE),
            np.zeros((4, 2), DIST_DTYPE),
        )
    with pytest.raises(ValueError, match="square"):
        eng.fw_inplace(np.zeros((2, 3), DIST_DTYPE))
    with pytest.raises(ValueError, match="unknown kernel backend"):
        KernelEngine("nope")


def test_minplus_module_dispatch():
    c, a, b = random_tiles((12, 9, 14), inf_frac=0.2, seed=23)
    expected = naive_update(np.full_like(c, np.inf), a, b)
    assert np.array_equal(minplus(a, b), expected)
    assert np.array_equal(minplus(a, b, engine=KernelEngine("chunked")), expected)
    got = np.full_like(c, np.inf)
    minplus_update(got, a, b, engine=KernelEngine("threaded"))
    assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Selection knobs
# ----------------------------------------------------------------------
def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "tiled")
    reset_default_engine()
    assert default_engine().name == "tiled"
    monkeypatch.setenv(ENV_BACKEND, "reference")
    assert default_engine().name == "reference"  # re-resolves on env change


def test_set_default_backend_pins(monkeypatch):
    set_default_backend("chunked")
    monkeypatch.setenv(ENV_BACKEND, "reference")
    assert default_engine().name == "chunked"  # pinned beats the env


def test_jit_off_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_JIT", "off")
    backend = JITBackend()
    assert backend.flavor == "fallback" and not backend.compiled
    c, a, b = random_tiles((9, 9, 9), inf_frac=0.2, seed=29)
    got = c.copy()
    backend.update(got, a, b)
    assert np.array_equal(got, naive_update(c, a, b))


# ----------------------------------------------------------------------
# Compiled-C flavors: simd fast path, OpenMP fan-out, reduced precision
# ----------------------------------------------------------------------
HAVE_CC = JITBackend(flavor="cc").flavor == "cc"

cc_only = pytest.mark.skipif(
    not HAVE_CC, reason="no C compiler available for the cc flavor"
)


@cc_only
@pytest.mark.parametrize("flavor", ["cc", "cc-omp"])
@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("inf_frac", [0.0, 0.3])
def test_cc_flavor_bit_identical(flavor, shape, inf_frac):
    c, a, b = random_tiles(shape, inf_frac, seed=hash((flavor, shape)) % 2**32)
    expected = naive_update(c, a, b)
    got = c.copy()
    JITBackend(flavor=flavor, threads=3).update(got, a, b)
    assert np.array_equal(got, expected)


@cc_only
@settings(max_examples=40, deadline=None)
@given(
    bi=st.integers(1, 24),
    bk=st.integers(1, 24),
    bj=st.integers(1, 24),
    pad=st.integers(0, 7),
    tile=st.sampled_from([3, 7, 64, 256]),
    inf_frac=st.sampled_from([0.0, 0.2, 0.9]),
    seed=st.integers(0, 2**16),
)
def test_cc_flavors_agree_on_strided_views(bi, bk, bj, pad, tile, inf_frac, seed):
    """Property: the register-blocked and OpenMP kernels are bit-identical
    to the naive loop on *views* with arbitrary row strides (tile views of
    a larger matrix), across tile sizes that exercise the unroll tails."""
    c, a, b = random_tiles((bi, bk, bj), inf_frac, seed)

    def padded(m):
        rows, cols = m.shape
        store = np.full((rows, cols + pad), np.inf, dtype=DIST_DTYPE)
        store[:, :cols] = m
        return store[:, :cols]  # unit last stride, row stride cols+pad

    expected = naive_update(c, a, b)
    for flavor, threads in (("cc", None), ("cc-omp", 2)):
        got = padded(c)
        JITBackend(flavor=flavor, tile=tile, threads=threads).update(
            got, padded(a), padded(b)
        )
        assert np.array_equal(got, expected), flavor


@cc_only
def test_cc_inf_column_fast_path():
    """Dead (all-inf) A columns are skipped by the unrolled kernel group
    check without changing the result."""
    c, a, b = random_tiles((31, 19, 23), inf_frac=0.0, seed=3)
    a[:, ::2] = np.inf
    got = c.copy()
    JITBackend(flavor="cc").update(got, a, b)
    assert np.array_equal(got, naive_update(c, a, b))


@cc_only
def test_cc_omp_degrades_without_threads(monkeypatch):
    """cc-omp on a 1-thread budget resolves to the serial cc flavor."""
    monkeypatch.setenv("REPRO_JIT_THREADS", "1")
    backend = JITBackend(flavor="cc-omp")
    assert backend.flavor == "cc" and backend.threads == 1


@cc_only
@pytest.mark.parametrize("fw_block", [32, 48])
def test_cc_blocked_fw_matches_plain(fw_block):
    """Multi-stage blocked FW (opt-in fw_block) is exact on the library's
    integer-weight distance domain, for any block size."""
    rng = np.random.default_rng(23)
    d = rng.integers(1, 80, (143, 143)).astype(DIST_DTYPE)
    d[rng.random((143, 143)) < 0.5] = np.inf
    np.fill_diagonal(d, 0.0)
    expected = numpy_fw_inplace(d.copy())
    got = JITBackend(fw_block=fw_block).fw_inplace(d.copy())
    assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Reduced-precision semiring (int32 exact, float16 toleranced)
# ----------------------------------------------------------------------
def test_int32_semiring_matches_oracle():
    """int32 min-plus is exact: INT32_INF sentinel, saturating add.

    Values near INT32_MAX exercise the saturation clamp — a wrapping
    implementation would produce negative candidates and corrupt mins.
    """
    from repro.core.backends.base import INT32_INF, int32_rank1_update

    rng = np.random.default_rng(41)
    n = 33
    big = np.int64(INT32_INF)

    def mat():
        m = rng.integers(0, big, (n, n), dtype=np.int64)
        m[rng.random((n, n)) < 0.3] = big  # sentinel entries
        return m.astype(np.int32)

    a, b, c = mat(), mat(), mat()
    expected = int32_rank1_update(c.copy(), a, b)
    for backend in (JITBackend(), create_backend("reference")):
        got = backend.update_i32(c.copy(), a, b)
        assert np.array_equal(got, expected), backend
    got = KernelEngine("jit").update_i32(c.copy(), a, b)
    assert np.array_equal(got, expected)
    assert expected.max() <= INT32_INF and expected.min() >= 0


def test_float16_semiring_documented_tolerance():
    """float16 update == float32 result rounded once to float16 (the
    documented tolerance — one float16 rounding step, rel err ≤ 2^-11)."""
    rng = np.random.default_rng(43)
    n = 21
    a16 = (rng.random((n, n)) * 100).astype(np.float16)
    b16 = (rng.random((n, n)) * 100).astype(np.float16)
    c16 = (rng.random((n, n)) * 100).astype(np.float16)
    a16[rng.random((n, n)) < 0.2] = np.inf
    expected32 = naive_update(
        c16.astype(np.float32), a16.astype(np.float32), b16.astype(np.float32)
    )
    for backend in (JITBackend(), create_backend("reference")):
        got = backend.update_f16(c16.copy(), a16, b16)
        assert got.dtype == np.float16
        assert np.array_equal(got, expected32.astype(np.float16)), backend
        finite = np.isfinite(expected32)
        rel = np.abs(got[finite].astype(np.float32) - expected32[finite])
        assert (rel <= np.abs(expected32[finite]) * 2.0**-10).all()
    got = KernelEngine("jit").update_f16(c16.copy(), a16, b16)
    assert np.array_equal(got, expected32.astype(np.float16))


def test_threaded_matches_serial_inner():
    backend = ThreadedBackend(workers=3)
    c, a, b = random_tiles((40, 30, 500), inf_frac=0.2, seed=31)
    got = c.copy()
    backend.update(got, a, b)
    assert np.array_equal(got, naive_update(c, a, b))
    assert backend.flavor.startswith("threaded(") and backend.workers == 3


def test_calibration_smoke(monkeypatch, tmp_path):
    # point the tuned-winner store at a missing file so "auto" exercises
    # the live micro-calibration path regardless of the committed winner
    monkeypatch.setenv("REPRO_BENCH_KERNELS", str(tmp_path / "missing.json"))
    result = calibrate(shape=(48, 48, 48))
    assert {r["backend"] for r in result.rows} == set(BACKENDS)
    assert result.best in BACKENDS
    assert all(r["seconds"] >= 0 and r["gops"] >= 0 for r in result.rows)
    eng = KernelEngine("auto")
    assert eng.calibration is not None and eng.name == eng.calibration.best


def test_calibration_demotes_tiled(monkeypatch, tmp_path):
    """Satellite: tiled can never win auto-calibration over a measured
    alternative, and the result says why."""
    from repro.core.engine import CalibrationResult

    result = CalibrationResult(shape=(4, 4, 4))
    result.add("tiled", "tiled", 0.001)       # fastest on paper...
    result.add("reference", "reference", 0.002)
    assert result.best == "reference"          # ...but demoted
    only_tiled = CalibrationResult(shape=(4, 4, 4))
    only_tiled.add("tiled", "tiled", 0.001)
    assert only_tiled.best == "tiled"          # sole survivor still allowed
    monkeypatch.setenv("REPRO_BENCH_KERNELS", str(tmp_path / "missing.json"))
    live = calibrate(shape=(32, 32, 32))
    assert any("demoted" in note for note in live.notes)
    assert live.best != "tiled"


def test_registry_contents():
    assert backend_names() == ("reference", "tiled", "chunked", "jit", "threaded")
    # every registered backend is constructible in this environment
    # (jit degrades to its fallback flavor rather than dropping out)
    assert set(BACKENDS) == set(backend_names())
    for name in BACKENDS:
        assert create_backend(name).name == name


def test_solve_apsp_kernel_backend_arg():
    from repro.core import solve_apsp
    from repro.graphs.generators import erdos_renyi

    g = erdos_renyi(60, 300, seed=1)
    base = solve_apsp(g, algorithm="floyd-warshall", kernel_backend="reference")
    fast = solve_apsp(g, algorithm="floyd-warshall", kernel_backend="jit")
    assert fast.stats["kernel_backend"].startswith("jit")
    assert np.array_equal(base.store.data, fast.store.data)
