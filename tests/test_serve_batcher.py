"""Keyed-dedup coalescing: per-query source ordering must survive batching.

The regression this file pins down (ISSUE satellite): when tenants submit
*overlapping* source sets in non-sorted order, a naive
``sorted(set(sources))`` dedup reorders the launch's source vector out
from under row assignments made in arrival order — queries get some other
tenant's row. :func:`repro.serve.batcher.coalesce` keys every assignment
by source id instead; the foil implementation below demonstrates the
failure mode the real batcher must not have.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import erdos_renyi
from repro.gpu.device import TEST_DEVICE
from repro.serve import APSPService, Query, SourceBatch, Ticket, coalesce
from repro.serve.batcher import coalesce as coalesce_direct
from tests.conftest import oracle_apsp


def _ticket(ticket_id: int, source: int, tenant: str = "default") -> Ticket:
    return Ticket(
        ticket_id=ticket_id,
        query=Query.sssp(source, tenant=tenant),
        arrival=0.0,
        cost_estimate=0.0,
        vfinish=float(ticket_id),
    )


def _naive_sorted_set_dedup(tickets, batch_size):
    """The buggy foil: distinct sources emitted *sorted*, rows assigned in
    arrival order — the classic mismatch the keyed dedup exists to avoid."""
    batches = []
    for lo in range(0, len(tickets), batch_size):
        chunk = tickets[lo : lo + batch_size]
        rows: dict[int, int] = {}
        assignments = []
        for ticket in chunk:
            row = rows.setdefault(ticket.query.source, len(rows))
            assignments.append((ticket, row))
        sources = np.array(sorted(rows), dtype=np.int64)
        batches.append(SourceBatch(sources=sources, assignments=tuple(assignments)))
    return batches


def _assignments_consistent(batches) -> bool:
    return all(
        int(batch.sources[row]) == ticket.query.source
        for batch in batches
        for ticket, row in batch.assignments
    )


# overlapping tenant source sets, deliberately not in sorted order
OVERLAP = [
    _ticket(0, 5, "alpha"),
    _ticket(1, 2, "beta"),
    _ticket(2, 5, "beta"),   # alpha's source again, other tenant
    _ticket(3, 9, "alpha"),
    _ticket(4, 2, "alpha"),
]


class TestKeyedDedupRegression:
    def test_every_assignment_maps_to_its_own_source(self):
        batches = coalesce(OVERLAP, 8)
        assert _assignments_consistent(batches)
        (batch,) = batches
        # shared sources coalesce into one launch row each, in arrival order
        assert batch.sources.tolist() == [5, 2, 9]
        assert batch.num_sources == 3
        assert batch.num_queries == 5
        rows = {t.ticket_id: row for t, row in batch.assignments}
        assert rows == {0: 0, 1: 1, 2: 0, 3: 2, 4: 1}

    def test_naive_sorted_set_dedup_fails_this_exact_case(self):
        """Keeps the regression honest: the foil mis-assigns on the same
        input the real batcher handles, so this test would fail if
        ``coalesce`` ever regressed to sorted-set dedup."""
        assert not _assignments_consistent(_naive_sorted_set_dedup(OVERLAP, 8))

    @given(
        sources=st.lists(st.integers(0, 9), min_size=1, max_size=30),
        batch_size=st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None, derandomize=True)
    def test_property_rows_always_consistent(self, sources, batch_size):
        tickets = [_ticket(i, s) for i, s in enumerate(sources)]
        batches = coalesce(tickets, batch_size)
        assert _assignments_consistent(batches)
        # every ticket appears exactly once, in order
        flat = [t.ticket_id for b in batches for t, _ in b.assignments]
        assert flat == list(range(len(tickets)))
        for batch in batches:
            assert 1 <= batch.num_sources <= batch_size
            assert len(set(batch.sources.tolist())) == batch.num_sources


class TestBatchBoundaries:
    def test_closes_at_batch_size_distinct_sources(self):
        tickets = [_ticket(i, s) for i, s in enumerate([1, 1, 2, 3, 2, 4])]
        batches = coalesce(tickets, 3)
        assert [b.sources.tolist() for b in batches] == [[1, 2, 3], [4]]
        # duplicates of an already-batched source don't consume a slot
        assert batches[0].num_queries == 5

    def test_rejects_full_queries_and_bad_batch_size(self):
        with pytest.raises(ValueError):
            coalesce([_ticket(0, 1)], 0)
        full = Ticket(
            ticket_id=0, query=Query.full(), arrival=0.0,
            cost_estimate=0.0, vfinish=0.0,
        )
        with pytest.raises(ValueError):
            coalesce([full], 4)

    def test_reexport_is_the_same_object(self):
        assert coalesce is coalesce_direct


class TestEndToEndOverlap:
    def test_overlapping_tenants_get_their_own_rows(self):
        """The service-level surface of the regression: interleaved tenants
        querying an overlapping, unsorted source set must each receive the
        row for *their* source."""
        graph = erdos_renyi(20, 70, seed=30)
        truth = oracle_apsp(graph)
        service = APSPService(graph, spec=TEST_DEVICE, row_budget=0)
        pattern = [(5, "alpha"), (2, "beta"), (5, "beta"), (9, "alpha"),
                   (2, "alpha"), (11, "beta"), (9, "beta"), (5, "alpha")]
        for source, tenant in pattern:
            service.submit(Query.sssp(source, tenant=tenant))
        responses = service.drain()
        assert len(responses) == len(pattern)
        for resp in responses:
            assert np.array_equal(
                np.asarray(resp.value, dtype=np.float64),
                truth[resp.query.source],
            ), (resp.query.source, resp.query.tenant)
