"""Property-based tests for the schedule sanitizer (hypothesis).

Random schedules are executed twice: once through the real runtime with the
sanitizer attached, and once through a brute-force vector-clock oracle
implemented independently here. The two must agree on whether the schedule
races:

* schedules built *legal by construction* (every conflicting cross-stream
  pair gets an event edge) are always hazard-free;
* deleting one sync edge must flag the schedule exactly when the oracle
  says the deleted edge was load-bearing (no transitive ordering remains).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.stream import Event

NUM_STREAMS = 3
NUM_BUFFERS = 3

# one op = (stream, buffer, kind)
_ops = st.lists(
    st.tuples(
        st.integers(0, NUM_STREAMS - 1),
        st.integers(0, NUM_BUFFERS - 1),
        st.sampled_from(["read", "write"]),
    ),
    min_size=2,
    max_size=14,
)


def _run_sanitized(ops, waits):
    """Drive the real runtime: annotate accesses, record/wait real events."""
    device = Device(TEST_DEVICE, sanitize=True)
    streams = [device.default_stream] + [
        device.create_stream(f"s{i}") for i in range(1, NUM_STREAMS)
    ]
    buffers = [
        device.memory.alloc((4, 4), np.float32, name=f"buf{b}", fill=0.0)
        for b in range(NUM_BUFFERS)
    ]
    events: list[Event] = []
    for i, (s, b, kind) in enumerate(ops):
        stream = streams[s]
        for w in waits.get(i, ()):
            stream.wait(events[w])
        access = {("reads" if kind == "read" else "writes"): (buffers[b],)}
        stream.annotate(f"op{i}", **access)
        events.append(stream.record(Event(f"e{i}")))
    return device.hazard_report()


def _oracle_clean(ops, waits):
    """Independent happens-before closure over the same schedule."""
    stream_clock: dict[int, dict[int, int]] = {s: {} for s in range(NUM_STREAMS)}
    stream_pos = {s: 0 for s in range(NUM_STREAMS)}
    placed = []  # (stream, index-on-stream, clock-snapshot)
    for i, (s, b, kind) in enumerate(ops):
        clock = stream_clock[s]
        for w in waits.get(i, ()):
            for key, idx in placed[w][2].items():
                if clock.get(key, -1) < idx:
                    clock[key] = idx
        index = stream_pos[s]
        stream_pos[s] = index + 1
        clock[s] = index
        placed.append((s, index, dict(clock)))

    def ordered(a, b):
        return placed[b][2].get(placed[a][0], -1) >= placed[a][1]

    for i in range(len(ops)):
        for j in range(i + 1, len(ops)):
            if ops[i][0] == ops[j][0]:
                continue  # program order
            if ops[i][1] != ops[j][1]:
                continue  # different buffers
            if ops[i][2] == "read" and ops[j][2] == "read":
                continue
            if not ordered(i, j):
                return False
    return True


def _legal_waits(ops):
    """Insert one event edge per unordered conflicting cross-stream pair."""
    waits: dict[int, list[int]] = {}
    for i in range(len(ops)):
        for j in range(i):
            if ops[j][0] == ops[i][0] or ops[j][1] != ops[i][1]:
                continue
            if ops[j][2] == "read" and ops[i][2] == "read":
                continue
            waits.setdefault(i, []).append(j)
    # prune edges already implied transitively, keeping the schedule legal
    return waits


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_legal_schedules_are_hazard_free(ops):
    waits = _legal_waits(ops)
    assert _oracle_clean(ops, waits)
    report = _run_sanitized(ops, waits)
    assert report.clean, report.describe()


@settings(max_examples=60, deadline=None)
@given(_ops, st.randoms(use_true_random=False))
def test_deleting_one_sync_edge_matches_oracle(ops, rng):
    waits = _legal_waits(ops)
    edges = [(i, w) for i, ws in waits.items() for w in ws]
    if not edges:
        return  # nothing to delete: schedule has no cross-stream dependency
    i, w = rng.choice(edges)
    mutated = {k: [x for x in ws if not (k == i and x == w)] for k, ws in waits.items()}
    report = _run_sanitized(ops, mutated)
    assert report.clean == _oracle_clean(ops, mutated), report.describe()


@settings(max_examples=60, deadline=None)
@given(st.integers(0, NUM_STREAMS - 1), st.integers(1, NUM_STREAMS - 1))
def test_unique_dependency_deletion_is_always_flagged(s1, delta):
    """A single producer→consumer pair with its only edge removed must race."""
    s2 = (s1 + delta) % NUM_STREAMS
    ops = [(s1, 0, "write"), (s2, 0, "read")]
    assert _run_sanitized(ops, {1: [0]}).clean
    report = _run_sanitized(ops, {})
    assert not report.clean
    assert any(h.kind == "write-read-race" for h in report.hazards)


@settings(max_examples=40, deadline=None)
@given(_ops)
def test_fully_racy_schedule_matches_oracle(ops):
    """No sync edges at all: sanitizer and oracle agree exactly."""
    report = _run_sanitized(ops, {})
    assert report.clean == _oracle_clean(ops, {}), report.describe()
