"""Unit tests for Matrix Market and edge-list I/O."""

import gzip

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(60, 300, seed=1)
        path = tmp_path / "g.mtx"
        write_matrix_market(g, path)
        g2 = read_matrix_market(path)
        assert np.allclose(g.to_dense(), g2.to_dense())

    def test_round_trip_gzip(self, tmp_path):
        g = erdos_renyi(40, 150, seed=2)
        path = tmp_path / "g.mtx.gz"
        write_matrix_market(g, path)
        assert gzip.open(path, "rt").readline().startswith("%%MatrixMarket")
        g2 = read_matrix_market(path)
        assert np.allclose(g.to_dense(), g2.to_dense())

    def test_symmetric_storage_expands(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 2 7.0\n"
        )
        g = read_matrix_market(path)
        d = g.to_dense()
        assert d[1, 0] == 5.0 and d[0, 1] == 5.0
        assert d[2, 1] == 7.0 and d[1, 2] == 7.0

    def test_pattern_field_weight_one(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = read_matrix_market(path)
        assert g.to_dense()[0, 1] == 1.0

    def test_negative_values_become_positive_weights(self, tmp_path):
        path = tmp_path / "neg.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 -3.5\n"
        )
        g = read_matrix_market(path)
        assert g.to_dense()[0, 1] == 3.5

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "1 2 4.0\n"
        )
        assert read_matrix_market(path).num_edges == 1

    def test_rejects_non_square(self, tmp_path):
        path = tmp_path / "ns.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 2 1\n1 2 4.0\n"
        )
        with pytest.raises(ValueError, match="square"):
            read_matrix_market(path)

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%NotMatrixMarket\n1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "tr.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 4.0\n"
        )
        with pytest.raises(ValueError, match="expected 2 entries"):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1.0\n")
        with pytest.raises(ValueError, match="coordinate"):
            read_matrix_market(path)

    def test_name_defaults_to_stem(self, tmp_path):
        g = erdos_renyi(10, 30, seed=3)
        path = tmp_path / "mygraph.mtx"
        write_matrix_market(g, path)
        assert read_matrix_market(path).name == "mygraph"


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(50, 200, seed=4)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert np.allclose(g.to_dense(), g2.to_dense())

    def test_default_weight(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path, default_weight=7.0)
        assert g.to_dense()[0, 1] == 7.0

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("0 1 2.0\n")
        g = read_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10

    def test_hash_comments_skipped(self, tmp_path):
        path = tmp_path / "e.txt"
        path.write_text("# header\n0 1 2.0\n")
        assert read_edge_list(path).num_edges == 1
