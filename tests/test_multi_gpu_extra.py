"""Extra multi-GPU coverage: heterogeneous devices and barrier semantics."""

import numpy as np
import pytest

from repro.core.multi_gpu import ooc_boundary_multi
from repro.gpu.device import K80, Device, V100
from repro.gpu.timeline import Timeline
from repro.graphs.generators import road_like
from tests.conftest import oracle_apsp


class TestHeterogeneousDevices:
    def test_v100_plus_k80_correct(self):
        g = road_like(600, 2.6, seed=11)
        devices = [Device(V100.scaled(1 / 64)), Device(K80.scaled(1 / 64))]
        res = ooc_boundary_multi(g, devices, seed=0)
        assert np.allclose(res.to_array(), oracle_apsp(g))

    def test_plan_validated_against_smallest_device(self):
        g = road_like(600, 2.6, seed=11)
        devices = [Device(V100.scaled(1 / 64)), Device(K80.scaled(1 / 64))]
        res = ooc_boundary_multi(g, devices, seed=0)
        # K80 has less scaled memory; neither device may exceed its own
        for dev in devices:
            assert dev.memory.peak <= dev.memory.capacity

    def test_slow_device_bounds_makespan(self):
        g = road_like(600, 2.6, seed=11)
        fast_pair = [Device(V100.scaled(1 / 64)) for _ in range(2)]
        mixed_pair = [Device(V100.scaled(1 / 64)), Device(K80.scaled(1 / 64))]
        t_fast = ooc_boundary_multi(g, fast_pair, seed=0).simulated_seconds
        t_mixed = ooc_boundary_multi(g, mixed_pair, seed=0).simulated_seconds
        assert t_mixed > t_fast  # the K80 straggles at every barrier


class TestBarrierSemantics:
    def test_advance_to_floors_engines(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 1.0)
        tl.advance_to(5.0)
        op = tl.schedule("compute", 0.0, 1.0)
        assert op.start >= 5.0
        op2 = tl.schedule("h2d", 0.0, 1.0)
        assert op2.start >= 5.0

    def test_advance_to_never_rewinds(self):
        tl = Timeline()
        tl.schedule("compute", 0.0, 10.0)
        tl.advance_to(3.0)
        assert tl.engine_ready("compute") == 10.0

    def test_devices_aligned_after_barrier(self):
        from repro.core.multi_gpu import _barrier

        a, b = Device(V100.scaled(1 / 64)), Device(V100.scaled(1 / 64))
        a.default_stream.launch("k", 2.0)
        t = _barrier([a, b])
        assert t >= 2.0
        assert b.host_ready == t
        assert b.timeline.engine_ready("compute") >= t
