"""Unit tests for the multilevel k-way partitioner and separator analysis."""

import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import erdos_renyi, planar_like, rmat, road_like
from repro.partition import (
    boundary_nodes,
    classify_separator,
    coarsen_graph,
    heavy_edge_matching,
    partition_kway,
    refine_partition,
    separator_info,
)
from repro.partition.refine import edge_cut


class TestMatching:
    def test_matching_is_symmetric(self):
        g = planar_like(200, seed=1).symmetrize()
        rng = np.random.default_rng(0)
        match = heavy_edge_matching(g, rng=rng)
        for v in range(g.num_vertices):
            assert match[match[v]] == v

    def test_matched_pairs_are_neighbors(self):
        g = planar_like(200, seed=2).symmetrize()
        match = heavy_edge_matching(g, rng=np.random.default_rng(1))
        for v in range(g.num_vertices):
            u = match[v]
            if u != v:
                nbrs, _ = g.neighbors(v)
                assert u in nbrs


class TestCoarsen:
    def test_vertex_weight_conserved(self):
        g = planar_like(300, seed=3).symmetrize()
        w = np.ones(g.num_vertices)
        level = coarsen_graph(g, w, rng=np.random.default_rng(2))
        assert level.vertex_weight.sum() == pytest.approx(g.num_vertices)

    def test_graph_shrinks(self):
        g = planar_like(300, seed=4).symmetrize()
        level = coarsen_graph(
            g, np.ones(g.num_vertices), rng=np.random.default_rng(3)
        )
        assert level.graph.num_vertices < g.num_vertices

    def test_fine_to_coarse_is_total(self):
        g = planar_like(200, seed=5).symmetrize()
        level = coarsen_graph(
            g, np.ones(g.num_vertices), rng=np.random.default_rng(4)
        )
        assert level.fine_to_coarse.shape == (g.num_vertices,)
        assert level.fine_to_coarse.max() == level.graph.num_vertices - 1
        assert level.fine_to_coarse.min() == 0


class TestPartition:
    @pytest.mark.parametrize("k", [2, 5, 16])
    def test_labels_cover_all_parts(self, k):
        g = planar_like(400, seed=6)
        res = partition_kway(g, k, seed=0)
        assert res.labels.shape == (400,)
        assert set(np.unique(res.labels)) == set(range(k))

    def test_balance(self):
        g = planar_like(600, seed=7)
        res = partition_kway(g, 8, seed=0, balance_tol=1.10)
        # greedy fallback for stragglers can nudge past the growth budget
        assert res.imbalance <= 1.25

    def test_part_sizes_sum(self):
        g = planar_like(300, seed=8)
        res = partition_kway(g, 6, seed=0)
        assert res.part_sizes.sum() == 300

    def test_k1_trivial(self):
        g = planar_like(100, seed=9)
        res = partition_kway(g, 1)
        assert np.all(res.labels == 0)
        assert res.edge_cut == 0

    def test_k_ge_n(self):
        g = erdos_renyi(10, 40, seed=10)
        res = partition_kway(g, 10, seed=0)
        assert res.num_parts == 10

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_kway(planar_like(50, seed=11), 0)

    def test_deterministic(self):
        g = planar_like(300, seed=12)
        a = partition_kway(g, 8, seed=5)
        b = partition_kway(g, 8, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_cut_quality_on_grid(self):
        """A k-way cut of a planar lattice should be within a small factor
        of the O(√(n/k)·k) optimum."""
        g = planar_like(900, seed=13, extra_edge_fraction=0.0, drop_fraction=0.0)
        k = 9
        res = partition_kway(g, k, seed=0)
        ideal = k * np.sqrt(900 / k)  # ~perimeter edges of square parts
        assert res.edge_cut <= 4 * ideal

    def test_handles_disconnected(self):
        a = planar_like(100, seed=14)
        sa, da, wa = a.edge_array()
        g = CSRGraph.from_edges(
            200,
            np.concatenate([sa, sa + 100]),
            np.concatenate([da, da + 100]),
            np.concatenate([wa, wa]),
        )
        res = partition_kway(g, 4, seed=0)
        assert set(np.unique(res.labels)) == {0, 1, 2, 3}


class TestRefine:
    def test_refinement_never_worsens_cut(self):
        g = planar_like(400, seed=15).symmetrize()
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=400)
        before = edge_cut(g, labels)
        refined = refine_partition(g, labels, 4, rng=np.random.default_rng(1))
        assert edge_cut(g, refined) <= before

    def test_refinement_improves_random_labels(self):
        g = planar_like(400, seed=16).symmetrize()
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 4, size=400)
        refined = refine_partition(g, labels, 4, rng=np.random.default_rng(3))
        assert edge_cut(g, refined) < edge_cut(g, labels) * 0.8

    def test_no_part_emptied(self):
        g = erdos_renyi(60, 600, seed=17)
        labels = np.arange(60) % 3
        refined = refine_partition(
            g.symmetrize(), labels, 3, rng=np.random.default_rng(4)
        )
        assert np.bincount(refined, minlength=3).min() >= 1


class TestSeparator:
    def test_boundary_definition(self):
        # path 0-1-2-3 cut between 1 and 2: both endpoints are boundary
        g = CSRGraph.from_edges(
            4,
            np.array([0, 1, 2, 1, 2, 3]),
            np.array([1, 2, 3, 0, 1, 2]),
            np.ones(6),
        )
        labels = np.array([0, 0, 1, 1])
        assert boundary_nodes(g, labels).tolist() == [1, 2]

    def test_no_cut_no_boundary(self):
        g = CSRGraph.from_edges(4, np.array([0, 2]), np.array([1, 3]), np.ones(2))
        labels = np.array([0, 0, 1, 1])
        assert boundary_nodes(g, labels).size == 0

    def test_info_fields(self):
        g = planar_like(400, seed=18)
        res = partition_kway(g, 10, seed=0)
        info = separator_info(g, res.labels)
        assert info.num_parts == 10
        assert info.num_boundary == boundary_nodes(g, res.labels).size
        assert info.ideal_boundary == pytest.approx(np.sqrt(10 * 400))
        assert info.boundary_per_part.sum() == info.num_boundary

    def test_range_index_bins(self):
        g = planar_like(400, seed=19)
        res = partition_kway(g, 10, seed=0)
        info = separator_info(g, res.labels)
        assert info.range_index == int(np.floor(np.log2(max(info.ratio, 1.0))))

    def test_classify_planar_small(self):
        assert classify_separator(planar_like(900, seed=20), seed=0).small_separator

    def test_classify_rmat_large(self):
        g = rmat(800, 8000, seed=21)
        assert not classify_separator(g, seed=0).small_separator

    def test_classify_road_small(self):
        assert classify_separator(road_like(800, 2.6, seed=22), seed=0).small_separator
