"""API-quality gates: docstring coverage and export consistency.

These meta-tests keep the library release-worthy: every public module,
class, and function must carry a docstring, and every name in a package's
``__all__`` must actually resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.bench",
    "repro.core",
    "repro.cpumodel",
    "repro.faults",
    "repro.gpu",
    "repro.graphs",
    "repro.partition",
    "repro.sanitize",
    "repro.select",
    "repro.sssp",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name.startswith("_"):  # incl. __main__, which exits
                    continue
                yield importlib.import_module(f"{pkg_name}.{info.name}")


ALL_MODULES = sorted({m.__name__: m for m in iter_modules()}.items())


@pytest.mark.parametrize("name,module", ALL_MODULES, ids=[n for n, _ in ALL_MODULES])
def test_module_docstring(name, module):
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name,module", ALL_MODULES, ids=[n for n, _ in ALL_MODULES])
def test_public_items_documented(name, module):
    undocumented = []
    for attr_name in getattr(module, "__all__", []):
        obj = getattr(module, attr_name, None)
        if obj is None:
            continue
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(attr_name)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


@pytest.mark.parametrize("name,module", ALL_MODULES, ids=[n for n, _ in ALL_MODULES])
def test_all_names_resolve(name, module):
    missing = [a for a in getattr(module, "__all__", []) if not hasattr(module, a)]
    assert not missing, f"{name}: __all__ names missing {missing}"


def test_version_string():
    assert repro.__version__.count(".") == 2
