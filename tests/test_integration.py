"""End-to-end integration tests: full user flows across subsystems."""

import numpy as np
import pytest

from repro.core import solve_apsp
from repro.core.paths import path_length, reconstruct_path
from repro.core.verify import verify_result
from repro.gpu.device import Device, V100
from repro.gpu.trace import utilization_report
from repro.graphs.io import read_matrix_market, write_matrix_market
from repro.graphs.suite import get_suite_graph
from tests.conftest import oracle_apsp


SPEC = V100.scaled(1 / 64)


class TestFullFlows:
    def test_file_to_distances_pipeline(self, tmp_path, small_planar):
        """mtx file -> load -> auto-solve -> verify -> query a path."""
        path = tmp_path / "mesh.mtx"
        write_matrix_market(small_planar, path)
        graph = read_matrix_market(path)
        result = solve_apsp(
            graph, algorithm="auto", device=Device(SPEC), density_scale=1 / 64
        )
        verify_result(graph, result, num_rows=4).raise_on_failure()
        p = reconstruct_path(graph, result, 0, graph.num_vertices - 1)
        assert path_length(graph, p) == pytest.approx(
            result.distance(0, graph.num_vertices - 1), rel=1e-5
        )

    def test_suite_graph_auto_flow(self):
        """Suite stand-in -> selector -> solve -> oracle check."""
        graph = get_suite_graph("luxembourg_osm", 1 / 128)
        device = Device(V100.scaled(1 / 128))
        result = solve_apsp(
            graph, algorithm="auto", device=device, density_scale=1 / 128
        )
        assert result.stats["selection"].algorithm == "boundary"
        assert np.allclose(result.to_array(), oracle_apsp(graph))

    def test_device_reuse_across_runs(self, small_rmat, small_planar):
        """One device object can serve several solves; clocks reset."""
        device = Device(SPEC)
        r1 = solve_apsp(small_rmat, algorithm="johnson", device=device)
        used_after_first = device.memory.used
        r2 = solve_apsp(small_planar, algorithm="johnson", device=device)
        assert used_after_first == 0  # runs free their allocations
        assert np.allclose(r1.to_array(), oracle_apsp(small_rmat))
        assert np.allclose(r2.to_array(), oracle_apsp(small_planar))

    def test_trace_after_solve(self, small_rmat):
        device = Device(SPEC)
        solve_apsp(small_rmat, algorithm="floyd-warshall", device=device)
        rep = utilization_report(device)
        busy = {e.engine: e.busy_fraction for e in rep.engines}
        assert busy["compute"] > 0
        assert busy["h2d"] > 0 and busy["d2h"] > 0

    def test_disk_flow_row_queries(self, small_road, tmp_path):
        result = solve_apsp(
            small_road,
            algorithm="johnson",
            device=Device(SPEC),
            store_mode="disk",
            store_dir=tmp_path,
        )
        oracle = oracle_apsp(small_road)
        for v in (0, 17, small_road.num_vertices - 1):
            assert np.allclose(result.row(v), oracle[v])

    def test_simulated_time_reproducible(self, small_rmat):
        """Identical runs give bit-identical simulated times."""
        t1 = solve_apsp(small_rmat, algorithm="johnson", device=Device(SPEC)).simulated_seconds
        t2 = solve_apsp(small_rmat, algorithm="johnson", device=Device(SPEC)).simulated_seconds
        assert t1 == t2

    def test_three_algorithms_disagree_on_time_not_distances(self, small_road):
        times = {}
        arrays = {}
        for alg in ("floyd-warshall", "johnson", "boundary"):
            res = solve_apsp(small_road, algorithm=alg, device=Device(SPEC), seed=0)
            times[alg] = res.simulated_seconds
            arrays[alg] = res.to_array()
        assert np.allclose(arrays["floyd-warshall"], arrays["johnson"])
        assert np.allclose(arrays["johnson"], arrays["boundary"])
        assert len({round(t, 12) for t in times.values()}) == 3  # distinct times
