"""Unit tests for streams, events, and copy semantics."""

import numpy as np
import pytest

from repro.gpu.device import TEST_DEVICE, Device
from repro.gpu.memory import HostBuffer
from repro.gpu.stream import Event
from repro.gpu.transfer import copy_duration


@pytest.fixture
def device():
    return Device(TEST_DEVICE)


class TestKernels:
    def test_launch_is_async(self, device):
        s = device.default_stream
        s.launch("k", 1.0)
        # host only pays the launch overhead, not the kernel duration
        assert device.host_ready == pytest.approx(TEST_DEVICE.kernel_launch_overhead)
        assert device.synchronize() >= 1.0

    def test_same_stream_serialises(self, device):
        s = device.default_stream
        s.launch("a", 1.0)
        s.launch("b", 1.0)
        assert device.synchronize() >= 2.0

    def test_kernels_serialise_across_streams(self, device):
        # one compute engine: kernels from different streams still queue
        s1 = device.default_stream
        s2 = device.create_stream()
        s1.launch("a", 1.0)
        s2.launch("b", 1.0)
        assert device.synchronize() >= 2.0


class TestCopies:
    def test_sync_copy_blocks_host(self, device):
        arr = device.memory.alloc((8, 8), np.float32)
        host = HostBuffer.empty((8, 8), np.float32)
        host.data[...] = 3.0
        device.default_stream.copy_h2d(arr, host)
        assert np.all(arr.data == 3.0)
        expected = copy_duration(device.spec, host.nbytes, pinned=True)
        assert device.host_ready == pytest.approx(expected)

    def test_async_copy_does_not_block_host(self, device):
        arr = device.memory.alloc((8, 8), np.float32)
        host = HostBuffer.empty((8, 8), np.float32)
        device.default_stream.copy_h2d_async(arr, host)
        dur = copy_duration(device.spec, host.nbytes, pinned=True)
        assert device.host_ready < dur

    def test_d2h_moves_data(self, device):
        arr = device.memory.alloc((4,), np.float32)
        arr.data[...] = 7.0
        out = np.zeros(4, dtype=np.float32)
        device.default_stream.copy_d2h(out, arr, pinned=True)
        assert np.all(out == 7.0)

    def test_pageable_slower_than_pinned(self, device):
        nbytes = 10**6
        fast = copy_duration(device.spec, nbytes, pinned=True)
        slow = copy_duration(device.spec, nbytes, pinned=False)
        assert slow > fast

    def test_bare_ndarray_is_pageable_by_default(self, device):
        arr = device.memory.alloc((64, 64), np.float32)
        host = np.zeros((64, 64), dtype=np.float32)
        device.default_stream.copy_h2d(arr, host)
        t_pageable = device.host_ready
        device.reset_clock()
        device.default_stream.copy_h2d(arr, host, pinned=True)
        assert device.host_ready < t_pageable

    def test_copy_engines_direction_specific(self, device):
        # h2d and d2h run on separate engines and can overlap
        a = device.memory.alloc((128,), np.float32)
        b = device.memory.alloc((128,), np.float32)
        out = np.zeros(128, dtype=np.float32)
        host = np.zeros(128, dtype=np.float32)
        s1, s2 = device.create_stream(), device.create_stream()
        s1.copy_h2d_async(a, host, pinned=True)
        s2.copy_d2h_async(out, b, pinned=True)
        # the two copies overlap: makespan ≈ one copy (+ one async-issue
        # overhead on the host before the second is enqueued)
        dur = copy_duration(device.spec, 512, pinned=True)
        overhead = device.spec.kernel_launch_overhead
        assert device.timeline.makespan <= dur + overhead + 1e-12
        assert device.timeline.makespan < 2 * dur

    def test_strided_2d_copy_slower_than_contiguous(self, device):
        src = device.memory.alloc((64, 16), np.float32)
        dst = np.zeros((64, 16), dtype=np.float32)
        s = device.default_stream
        s.copy_d2h_2d(dst, src, pinned=True)
        strided = device.timeline.makespan
        device.reset_clock()
        s.ready_at = 0.0
        s.copy_d2h(dst, src, pinned=True)
        contiguous = device.timeline.makespan
        assert strided > contiguous

    def test_2d_copy_requires_2d(self, device):
        src = device.memory.alloc((4,), np.float32)
        with pytest.raises(ValueError):
            device.default_stream.copy_d2h_2d(np.zeros(4, dtype=np.float32), src)


class TestEvents:
    def test_event_ordering_across_streams(self, device):
        s1 = device.create_stream()
        s2 = device.create_stream()
        s1.launch("a", 2.0)
        ev = s1.record(Event("done"))
        s2.wait(ev)
        start_floor = s2.ready_at
        assert start_floor >= 2.0

    def test_wait_without_record_is_noop(self, device):
        s = device.create_stream()
        s.wait(Event())
        assert s.ready_at == 0.0

    def test_stream_synchronize_blocks_host(self, device):
        s = device.create_stream()
        s.launch("a", 3.0)
        t = s.synchronize()
        assert t >= 3.0
        assert device.host_ready >= 3.0


class TestDevice:
    def test_reset_clock_keeps_memory(self, device):
        arr = device.memory.alloc((4,), np.float32)
        device.default_stream.launch("k", 1.0)
        device.synchronize()
        device.reset_clock()
        assert device.elapsed == 0.0
        assert not arr.freed
        assert device.memory.used > 0

    def test_elapsed_without_sync(self, device):
        device.default_stream.launch("k", 5.0)
        assert device.elapsed >= 5.0
