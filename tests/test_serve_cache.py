"""DistanceCache/ClosureCache behaviour under the serving layer.

Covers the ISSUE's cache satellite: LRU eviction at the RAM budget (the
durable disk copy survives), a fingerprint-stale bind is *refused* rather
than degraded to a miss, and revalidation hits vs misses are counted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic.patch import EdgeUpdate
from repro.faults.checkpoint import CheckpointError, graph_fingerprint
from repro.graphs.generators import erdos_renyi
from repro.gpu.device import TEST_DEVICE
from repro.serve import APSPService, ClosureCache, Query
from tests.conftest import oracle_apsp

N = 10  # closure = 10*10 float32 = 400 bytes


def _graph(seed: int):
    return erdos_renyi(N, 30, seed=seed)


def _closure(graph) -> np.ndarray:
    return oracle_apsp(graph).astype(np.float32)


class TestResidencyLru:
    def test_eviction_at_budget_keeps_disk_copy(self, tmp_path):
        cache = ClosureCache(tmp_path, memory_budget=1000)  # fits 2 closures
        graphs = [_graph(seed) for seed in (1, 2, 3)]
        fps = [cache.put(g, _closure(g)) for g in graphs]

        assert cache.stats.evictions == 1
        assert cache.resident_fingerprints == (fps[1], fps[2])
        assert cache.resident_bytes <= 1000

        # the evicted entry is still durable: disk hit, promoted back,
        # displacing the now-least-recently-used residency
        dist = cache.get(graphs[0])
        assert np.array_equal(np.asarray(dist, dtype=np.float64), oracle_apsp(graphs[0]))
        assert cache.stats.disk_hits == 1
        assert cache.stats.evictions == 2
        assert cache.resident_fingerprints == (fps[2], fps[0])

        cache.get(graphs[0])
        assert cache.stats.ram_hits == 1

    def test_get_refreshes_recency(self, tmp_path):
        cache = ClosureCache(tmp_path, memory_budget=1000)
        g1, g2, g3 = (_graph(seed) for seed in (4, 5, 6))
        fp1 = cache.put(g1, _closure(g1))
        fp2 = cache.put(g2, _closure(g2))
        cache.get(g1)  # g2 becomes the LRU entry
        fp3 = cache.put(g3, _closure(g3))
        assert fp2 not in cache.resident_fingerprints
        assert cache.resident_fingerprints == (fp1, fp3)

    def test_oversized_entry_stays_disk_only(self, tmp_path):
        cache = ClosureCache(tmp_path, memory_budget=300)  # < one closure
        graph = _graph(7)
        cache.put(graph, _closure(graph))
        assert cache.resident_fingerprints == ()
        assert cache.stats.evictions == 0
        assert cache.get(graph) is not None
        assert cache.stats.disk_hits == 1
        assert cache.resident_fingerprints == ()  # never admitted

    def test_contains_peeks_without_counting(self, tmp_path):
        cache = ClosureCache(tmp_path)
        graph = _graph(8)
        assert not cache.contains(graph)
        cache.put(graph, _closure(graph))
        assert cache.contains(graph)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ClosureCache(tmp_path, memory_budget=-1)


class TestStaleBindRefused:
    def test_foreign_fingerprint_directory_raises(self, tmp_path):
        """An entry whose on-disk metadata names a different graph must be
        refused (CheckpointError), never served and never silently treated
        as a miss."""
        cache = ClosureCache(tmp_path)
        victim, impostor = _graph(10), _graph(11)
        cache.put(victim, _closure(victim))

        # graft victim's entry into the directory slot keyed by impostor's
        # fingerprint — the store's bind validation must catch the mismatch
        victim_dir = tmp_path / graph_fingerprint(victim)[:16]
        impostor_dir = tmp_path / graph_fingerprint(impostor)[:16]
        victim_dir.rename(impostor_dir)

        with pytest.raises(CheckpointError):
            cache.get(impostor)
        with pytest.raises(CheckpointError):
            cache.revalidate(impostor, [EdgeUpdate(0, 1, 5.0)])


class TestRevalidation:
    def test_miss_counts_and_returns_none(self, tmp_path):
        cache = ClosureCache(tmp_path)
        assert cache.revalidate(_graph(12), [EdgeUpdate(0, 1, 5.0)]) is None
        assert cache.stats.revalidate_misses == 1
        assert cache.stats.revalidate_hits == 0

    def test_hit_patches_forward_and_refiles(self, tmp_path):
        cache = ClosureCache(tmp_path)
        graph = _graph(13)
        old_fp = cache.put(graph, _closure(graph))
        updates = [EdgeUpdate(0, 1, 2.0), EdgeUpdate(3, 4, float("inf"))]

        hit = cache.revalidate(graph, updates)
        assert hit is not None
        new_graph, new_dist, result = hit
        assert cache.stats.revalidate_hits == 1
        assert result.applied + result.noops == 2
        # patched closure is bit-identical to a fresh solve of the new graph
        assert np.array_equal(
            np.asarray(new_dist, dtype=np.float64), oracle_apsp(new_graph)
        )
        # filed under the NEW fingerprint; old residency dropped
        new_fp = graph_fingerprint(new_graph)
        assert new_fp != old_fp
        assert new_fp in cache.resident_fingerprints
        assert old_fp not in cache.resident_fingerprints
        cache.get(new_graph)
        assert cache.stats.ram_hits == 1


class TestServiceWiring:
    def test_closure_cache_serves_repeat_queries(self, tmp_path):
        graph = erdos_renyi(24, 90, seed=20)
        service = APSPService(
            graph, spec=TEST_DEVICE, cache_dir=tmp_path, algorithm="johnson"
        )
        service.submit(Query.full())
        (first,) = service.drain()
        assert first.served_from == "solve"
        assert service.cache.stats.stores == 1

        service.submit(Query.full())
        service.submit(Query.sssp(3))
        service.submit(Query.point(1, 2))
        repeats = service.drain()
        assert [r.served_from for r in repeats] == ["closure-cache"] * 3
        assert service.cache.stats.hits >= 1
        assert service.served["solve"] == 1  # no second solve happened

    def test_mutation_revalidates_then_serves_from_cache(self, tmp_path):
        graph = erdos_renyi(24, 90, seed=21)
        service = APSPService(
            graph, spec=TEST_DEVICE, cache_dir=tmp_path, algorithm="johnson"
        )
        service.submit(Query.full())
        service.drain()

        result = service.mutate([EdgeUpdate(2, 3, 1.0)])
        assert result is not None  # patched forward, not recomputed
        assert service.cache.stats.revalidate_hits == 1

        service.submit(Query.sssp(2))
        (resp,) = service.drain()
        assert resp.served_from == "closure-cache"
        assert np.array_equal(
            np.asarray(resp.value, dtype=np.float64), oracle_apsp(service.graph)[2]
        )
        assert "solve" not in service.served or service.served["solve"] == 1

    def test_row_cache_budget_and_hits(self):
        graph = erdos_renyi(24, 90, seed=22)
        service = APSPService(graph, spec=TEST_DEVICE, row_budget=2)
        for source in (0, 1, 2):
            service.submit(Query.sssp(source))
        assert all(r.served_from == "batch" for r in service.drain())
        assert service.stats()["cached_rows"] == 2  # LRU kept sources 1, 2

        service.submit(Query.sssp(1))
        (hit,) = service.drain()
        assert hit.served_from == "row-cache"

        service.submit(Query.sssp(0))  # evicted earlier: recomputed
        (refill,) = service.drain()
        assert refill.served_from == "batch"
        assert np.array_equal(
            np.asarray(refill.value, dtype=np.float64), oracle_apsp(graph)[0]
        )
