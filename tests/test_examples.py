"""Smoke tests for the example scripts.

Each example is a real scenario taking tens of seconds to minutes, so by
default only the fastest (currency_arbitrage) runs; set
``REPRO_RUN_ALL_EXAMPLES=1`` to execute the full set (used before releases,
and by the benchmark CI lane).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

FAST = ["currency_arbitrage.py"]
SLOW = [
    "quickstart.py",
    "road_network_analysis.py",
    "algorithm_selection.py",
    "streaming_large_output.py",
    "device_comparison.py",
    "network_centrality.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=900,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


@pytest.mark.parametrize("name", SLOW)
@pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_ALL_EXAMPLES"),
    reason="set REPRO_RUN_ALL_EXAMPLES=1 to run the long examples",
)
def test_slow_examples(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_every_example_has_a_smoke_entry():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST) | set(SLOW)
