"""Tests for the extension modules: path reconstruction, verification,
negative-weight reweighting, multi-GPU boundary, trace export."""

import json

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.csgraph import shortest_path

from repro.core import ooc_johnson, solve_apsp
from repro.core.api import solve_apsp_negative
from repro.core.multi_gpu import ooc_boundary_multi
from repro.core.paths import path_length, reconstruct_path
from repro.core.verify import verify_result
from repro.gpu.device import TEST_DEVICE, Device, V100
from repro.gpu.trace import export_chrome_trace, utilization_report
from repro.graphs.generators import road_like
from repro.sssp.reweight import (
    NegativeCycleError,
    johnson_potentials,
    restore_distances,
    reweight_graph,
)
from tests.conftest import oracle_apsp


class TestPathReconstruction:
    @pytest.fixture
    def solved(self, small_rmat):
        return small_rmat, ooc_johnson(small_rmat, Device(TEST_DEVICE))

    def test_path_endpoints_and_length(self, solved):
        g, res = solved
        for (u, v) in [(0, 50), (3, 99), (10, 10)]:
            if not np.isfinite(res.distance(u, v)):
                continue
            path = reconstruct_path(g, res, u, v)
            assert path[0] == u and path[-1] == v
            assert path_length(g, path) == pytest.approx(res.distance(u, v), rel=1e-5)

    def test_trivial_path(self, solved):
        g, res = solved
        assert reconstruct_path(g, res, 4, 4) == [4]

    def test_unreachable_raises(self):
        from repro.graphs.csr import CSRGraph

        g = CSRGraph.from_edges(3, np.array([0]), np.array([1]), np.array([1.0]))
        res = ooc_johnson(g, Device(TEST_DEVICE))
        with pytest.raises(ValueError, match="no path"):
            reconstruct_path(g, res, 0, 2)

    def test_deterministic(self, solved):
        g, res = solved
        a = reconstruct_path(g, res, 0, 70)
        b = reconstruct_path(g, res, 0, 70)
        assert a == b

    def test_works_with_permuted_result(self, small_road):
        from repro.core import ooc_boundary

        res = ooc_boundary(small_road, Device(V100.scaled(1 / 64)), seed=0)
        path = reconstruct_path(small_road, res, 0, small_road.num_vertices - 1)
        assert path_length(small_road, path) == pytest.approx(
            res.distance(0, small_road.num_vertices - 1), rel=1e-5
        )

    def test_path_length_missing_edge(self, small_rmat):
        assert path_length(small_rmat, [0, 0]) == np.inf or True  # self edge absent
        # a definitely-nonexistent hop
        assert np.isinf(path_length(small_rmat, [0, 0]))


class TestVerify:
    def test_passes_on_correct_result(self, small_rmat):
        res = ooc_johnson(small_rmat, Device(TEST_DEVICE))
        report = verify_result(small_rmat, res, num_rows=5)
        assert report.ok
        assert report.max_abs_error <= 1e-3
        report.raise_on_failure()

    def test_fails_on_corrupted_result(self, small_rmat):
        res = ooc_johnson(small_rmat, Device(TEST_DEVICE))
        res.store.data[...] = 1.0  # corrupt everything
        report = verify_result(small_rmat, res, num_rows=3)
        assert not report.ok
        assert report.mismatched_entries > 0
        with pytest.raises(AssertionError):
            report.raise_on_failure()

    def test_row_count_clamped(self, small_rmat):
        res = ooc_johnson(small_rmat, Device(TEST_DEVICE))
        report = verify_result(small_rmat, res, num_rows=10**6)
        assert report.checked_rows == small_rmat.num_vertices


class TestReweighting:
    def _random_negative(self, seed, n=50, m=350):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        w = rng.integers(1, 40, m).astype(float)
        pot = rng.integers(0, 25, n).astype(float)
        return n, src, dst, w + pot[src] - pot[dst]

    def test_potentials_make_weights_nonnegative(self):
        n, src, dst, w = self._random_negative(1)
        assert (w < 0).any()
        graph, h = reweight_graph(n, src, dst, w)
        assert graph.weights.min() >= 0

    def test_restore_round_trip(self):
        n, src, dst, w = self._random_negative(2)
        graph, h = reweight_graph(n, src, dst, w)
        dist_rw = oracle_apsp(graph)
        restored = restore_distances(dist_rw, h)
        # oracle on the same (min-deduped, loop-free) edge set with the
        # *original* signed weights recovered from the reweighted graph
        s2, d2, w2 = graph.edge_array()
        mat = sp.csr_matrix((w2 - h[s2] + h[d2], (s2, d2)), shape=(n, n))
        oracle = shortest_path(mat, method="J")
        assert np.allclose(restored, oracle, atol=1e-6)

    def test_negative_cycle_detected(self):
        with pytest.raises(NegativeCycleError):
            johnson_potentials(
                3,
                np.array([0, 1, 2]),
                np.array([1, 2, 0]),
                np.array([1.0, -3.0, 1.0]),
            )

    def test_nonnegative_input_identity_potentials(self):
        n, src, dst = 10, np.array([0, 1]), np.array([1, 2])
        w = np.array([2.0, 3.0])
        h = johnson_potentials(n, src, dst, w)
        assert np.all(h == 0)

    def test_solve_apsp_negative_end_to_end(self):
        n, src, dst, w = self._random_negative(3, n=40, m=250)
        res = solve_apsp_negative(
            n, src, dst, w, algorithm="johnson", device=TEST_DEVICE
        )
        assert res.stats["reweighted"]
        graph, h = reweight_graph(n, src, dst, w)
        s2, d2, w2 = graph.edge_array()
        mat = sp.csr_matrix((w2 - h[s2] + h[d2], (s2, d2)), shape=(n, n))
        oracle = shortest_path(mat, method="J")
        assert np.allclose(res.to_array().astype(float), oracle, atol=1e-3)

    def test_negative_distances_possible(self):
        # a graph where some shortest distances are genuinely negative
        src = np.array([0, 1])
        dst = np.array([1, 2])
        w = np.array([-5.0, 2.0])
        res = solve_apsp_negative(3, src, dst, w, algorithm="johnson", device=TEST_DEVICE)
        assert res.distance(0, 1) == -5.0
        assert res.distance(0, 2) == -3.0


class TestMultiGpu:
    @pytest.fixture
    def graph(self):
        return road_like(700, 2.6, seed=9)

    def test_matches_oracle_any_device_count(self, graph):
        oracle = oracle_apsp(graph)
        spec = V100.scaled(1 / 64)
        for nd in (1, 2, 3):
            devs = [Device(spec) for _ in range(nd)]
            res = ooc_boundary_multi(graph, devs, seed=0)
            assert np.allclose(res.to_array(), oracle), f"{nd} devices"

    def test_more_devices_not_slower(self, graph):
        spec = V100.scaled(1 / 64)
        t1 = ooc_boundary_multi(graph, [Device(spec)], seed=0).simulated_seconds
        t4 = ooc_boundary_multi(
            graph, [Device(spec) for _ in range(4)], seed=0
        ).simulated_seconds
        assert t4 < t1

    def test_empty_device_list_rejected(self, graph):
        with pytest.raises(ValueError):
            ooc_boundary_multi(graph, [])

    def test_stats(self, graph):
        spec = V100.scaled(1 / 64)
        res = ooc_boundary_multi(graph, [Device(spec), Device(spec)], seed=0)
        assert res.stats["num_devices"] == 2
        assert len(res.stats["per_device_compute"]) == 2
        assert res.stats["imbalance"] >= 1.0


class TestTrace:
    def test_utilization_report(self, small_rmat):
        dev = Device(TEST_DEVICE)
        ooc_johnson(small_rmat, dev)
        rep = utilization_report(dev)
        assert rep.makespan > 0
        names = {e.engine for e in rep.engines}
        assert names == {"compute", "h2d", "d2h"}
        assert 0 < rep.overlap_factor
        assert rep.top_ops and rep.top_ops[0][1] > 0
        assert "makespan" in str(rep)

    def test_chrome_trace_export(self, small_rmat, tmp_path):
        dev = Device(TEST_DEVICE)
        ooc_johnson(small_rmat, dev)
        path = export_chrome_trace(dev, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        events = [e for e in data["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == len(dev.timeline.ops)
        assert all(e["dur"] >= 0 for e in events)


class TestSolveApi:
    def test_auto_middle_band_skips_estimation(self, small_rmat):
        res = solve_apsp(
            small_rmat, algorithm="auto", device=TEST_DEVICE, density_scale=1.0
        )
        # rmat(120, 900): density ~6% -> dense band would estimate; check
        # the report is attached either way
        assert "selection" in res.stats
