"""Distance-matrix metrics: eccentricity, diameter, path-length statistics.

Conventions for disconnected graphs: unreachable pairs are excluded from
averages; eccentricity considers only reachable targets (a vertex that
reaches nothing has eccentricity 0); diameter/radius are over vertices that
reach at least one other vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis._stream import BLOCK_ROWS, iter_row_blocks, num_vertices_of

__all__ = [
    "DistanceStatistics",
    "average_path_length",
    "center_vertices",
    "diameter",
    "distance_statistics",
    "eccentricity",
    "periphery_vertices",
    "radius",
    "reachability_matrix_density",
]


def eccentricity(result, *, block_rows: int = BLOCK_ROWS) -> np.ndarray:
    """Per-vertex eccentricity: max finite distance to any other vertex."""
    n = num_vertices_of(result)
    ecc = np.zeros(n)
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        finite = np.where(np.isfinite(block), block, 0.0)
        ecc[lo:hi] = finite.max(axis=1) if n else 0.0
    return ecc


def diameter(result, **kw) -> float:
    """Largest finite shortest distance (0 for edgeless graphs)."""
    ecc = eccentricity(result, **kw)
    return float(ecc.max()) if ecc.size else 0.0


def radius(result, **kw) -> float:
    """Smallest eccentricity among vertices that reach something."""
    ecc = eccentricity(result, **kw)
    active = ecc[ecc > 0]
    return float(active.min()) if active.size else 0.0


def center_vertices(result, **kw) -> np.ndarray:
    """Vertices whose eccentricity equals the radius."""
    ecc = eccentricity(result, **kw)
    r = radius(result, **kw)
    if r == 0.0:
        return np.nonzero(ecc == ecc.min())[0]
    return np.nonzero(ecc == r)[0]


def periphery_vertices(result, **kw) -> np.ndarray:
    """Vertices whose eccentricity equals the diameter."""
    ecc = eccentricity(result, **kw)
    return np.nonzero(ecc == ecc.max())[0] if ecc.size else np.empty(0, dtype=np.int64)


def average_path_length(result, *, block_rows: int = BLOCK_ROWS) -> float:
    """Mean finite distance over ordered reachable pairs (u ≠ v)."""
    total = 0.0
    count = 0
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        # exclude the diagonal (distance 0 to self)
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        finite = np.isfinite(block)
        total += block[finite].sum()
        count += int(finite.sum())
    return total / count if count else 0.0


def reachability_matrix_density(result, *, block_rows: int = BLOCK_ROWS) -> float:
    """Fraction of ordered pairs (incl. self) with a finite distance."""
    n = num_vertices_of(result)
    reachable = 0
    for _lo, _hi, block in iter_row_blocks(result, block_rows=block_rows):
        reachable += int(np.isfinite(block).sum())
    return reachable / (n * n) if n else 1.0


@dataclass(frozen=True)
class DistanceStatistics:
    """One-pass summary of a distance matrix."""

    num_vertices: int
    reachable_pairs: int  # ordered, excluding self
    mean: float
    p50: float
    p95: float
    max: float  # == diameter

    @property
    def reachable_fraction(self) -> float:
        n = self.num_vertices
        return self.reachable_pairs / (n * (n - 1)) if n > 1 else 1.0


def distance_statistics(
    result, *, block_rows: int = BLOCK_ROWS, sample_quantiles: int = 200_000, seed: int = 0
) -> DistanceStatistics:
    """Summary statistics; quantiles via reservoir sampling so the pass
    stays O(n·block) in memory even for disk-backed stores."""
    n = num_vertices_of(result)
    rng = np.random.default_rng(seed)
    total = 0.0
    count = 0
    maxval = 0.0
    reservoir: list[np.ndarray] = []
    seen = 0
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        vals = block[np.isfinite(block)]
        if vals.size == 0:
            continue
        total += vals.sum()
        count += vals.size
        maxval = max(maxval, float(vals.max()))
        # uniform subsample of this block, sized to its share
        take = min(vals.size, max(1, sample_quantiles // max(1, (n // max(1, hi - lo)))))
        if vals.size > take:
            vals = rng.choice(vals, size=take, replace=False)
        reservoir.append(vals)
        seen += vals.size
    if count == 0:
        return DistanceStatistics(n, 0, 0.0, 0.0, 0.0, 0.0)
    sample = np.concatenate(reservoir)
    return DistanceStatistics(
        num_vertices=n,
        reachable_pairs=count,
        mean=total / count,
        p50=float(np.percentile(sample, 50)),
        p95=float(np.percentile(sample, 95)),
        max=maxval,
    )
