"""Centrality measures and facility-location pickers from APSP output.

Out-directed conventions (distance *from* the vertex); run the solve on
``graph.reverse()`` for in-centralities. Disconnected graphs follow the
Wasserman–Faust correction for closeness (scale by the reachable fraction)
and the standard harmonic definition (unreachable contributes 0).
"""

from __future__ import annotations

import numpy as np

from repro.analysis._stream import BLOCK_ROWS, iter_row_blocks, num_vertices_of

__all__ = ["closeness_centrality", "harmonic_centrality", "one_median", "one_center"]


def closeness_centrality(result, *, block_rows: int = BLOCK_ROWS) -> np.ndarray:
    """Wasserman–Faust closeness: ``((r−1)/(n−1)) · ((r−1)/Σd)`` with ``r``
    the vertex's reachable-set size. 0 for vertices reaching nothing."""
    n = num_vertices_of(result)
    out = np.zeros(n)
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        finite = np.isfinite(block)
        r = finite.sum(axis=1)  # reachable others
        sums = np.where(finite, block, 0.0).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            c = (r / max(1, n - 1)) * (r / sums)
        out[lo:hi] = np.where((r > 0) & (sums > 0), c, 0.0)
    return out


def harmonic_centrality(result, *, block_rows: int = BLOCK_ROWS) -> np.ndarray:
    """``Σ_{v≠u, reachable} 1/d(u,v) / (n−1)``; robust to disconnection."""
    n = num_vertices_of(result)
    out = np.zeros(n)
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        with np.errstate(divide="ignore"):
            inv = np.where(np.isfinite(block) & (block > 0), 1.0 / block, 0.0)
        out[lo:hi] = inv.sum(axis=1) / max(1, n - 1)
    return out


def one_median(result, *, candidates: np.ndarray | None = None, block_rows: int = BLOCK_ROWS) -> tuple[int, float]:
    """Best single facility by *total* distance to all reachable vertices
    (1-median). Returns ``(vertex, mean distance)``; unreachable targets are
    penalised by excluding vertices that don't reach everything the best
    competitor reaches (ties broken by coverage, then id)."""
    n = num_vertices_of(result)
    cand = np.arange(n) if candidates is None else np.asarray(candidates)
    cand_set = set(cand.tolist())
    best = (-1, np.inf, -1)  # (vertex, mean, coverage) with coverage maximised
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        for i in range(block.shape[0]):
            v = lo + i
            if v not in cand_set:
                continue
            row = block[i]
            finite = np.isfinite(row)
            cover = int(finite.sum())
            if cover == 0:
                continue
            mean = float(row[finite].mean())
            # maximise coverage first, then minimise mean distance
            if (cover > best[2]) or (cover == best[2] and mean < best[1]):
                best = (v, mean, cover)
    if best[0] < 0:
        raise ValueError("no candidate reaches any vertex")
    return best[0], best[1]


def one_center(result, *, candidates: np.ndarray | None = None, block_rows: int = BLOCK_ROWS) -> tuple[int, float]:
    """Best single facility by *worst-case* distance (1-center): the vertex
    of minimum eccentricity among the candidates (max coverage first)."""
    n = num_vertices_of(result)
    cand = np.arange(n) if candidates is None else np.asarray(candidates)
    cand_set = set(cand.tolist())
    best = (-1, np.inf, -1)
    for lo, hi, block in iter_row_blocks(result, block_rows=block_rows):
        for i in range(block.shape[0]):
            block[i, lo + i] = np.inf
        for i in range(block.shape[0]):
            v = lo + i
            if v not in cand_set:
                continue
            row = block[i]
            finite = np.isfinite(row)
            cover = int(finite.sum())
            if cover == 0:
                continue
            ecc = float(row[finite].max())
            if (cover > best[2]) or (cover == best[2] and ecc < best[1]):
                best = (v, ecc, cover)
    if best[0] < 0:
        raise ValueError("no candidate reaches any vertex")
    return best[0], best[1]
