"""Betweenness centrality (Brandes' algorithm), exact and sampled.

Unlike the closeness family, betweenness cannot be read off the distance
matrix — it needs shortest-path *counts*, so this module runs its own
per-source Dijkstra passes with Brandes' dependency accumulation
[Brandes 2001]. Exact betweenness costs one pass per vertex (the same
``n × SSSP`` shape as Johnson's algorithm); :func:`betweenness_centrality`
also supports the standard pivot-sampling approximation
[Brandes & Pich 2007] for large graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["betweenness_centrality"]


def _single_source_accumulate(
    graph: CSRGraph, source: int, score: np.ndarray
) -> None:
    """One Brandes pass: Dijkstra from ``source``, then back-propagate the
    pair dependencies along the shortest-path DAG into ``score``."""
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    sigma = np.zeros(n)  # number of shortest paths from source
    preds: list[list[int]] = [[] for _ in range(n)]
    dist[source] = 0.0
    sigma[source] = 1.0
    order: list[int] = []  # vertices in non-decreasing settled distance
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = np.zeros(n, dtype=bool)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    while heap:
        d, u = heapq.heappop(heap)
        if settled[u] or d > dist[u]:
            continue
        settled[u] = True
        order.append(u)
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v] - 1e-12:
                dist[v] = nd
                sigma[v] = sigma[u]
                preds[v] = [u]
                heapq.heappush(heap, (nd, v))
            elif abs(nd - dist[v]) <= 1e-12 and not settled[v]:
                sigma[v] += sigma[u]
                preds[v].append(u)

    delta = np.zeros(n)
    for w in reversed(order):
        for u in preds[w]:
            delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w])
        if w != source:
            score[w] += delta[w]


def betweenness_centrality(
    graph: CSRGraph,
    *,
    normalized: bool = True,
    num_pivots: int | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Betweenness centrality of every vertex.

    ``num_pivots=None`` runs the exact algorithm (one pass per vertex);
    otherwise ``num_pivots`` uniformly sampled sources give the unbiased
    pivot estimate scaled by ``n / num_pivots``. ``normalized`` divides by
    the directed pair count ``(n−1)(n−2)``.
    """
    n = graph.num_vertices
    score = np.zeros(n)
    if n < 3:
        return score
    if num_pivots is None or num_pivots >= n:
        sources = np.arange(n)
        scale = 1.0
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=num_pivots, replace=False)
        scale = n / num_pivots
    for s in sources:
        _single_source_accumulate(graph, int(s), score)
    score *= scale
    if normalized:
        score /= (n - 1) * (n - 2)
    return score
