"""Row-block streaming over APSP results.

All analysis functions iterate the distance matrix in bounded row blocks in
*external* vertex order, so they work identically on RAM-backed results,
disk-backed (memmap) results, permuted results from the boundary algorithm,
and plain numpy matrices — without materialising more than one block.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.result import APSPResult

__all__ = ["iter_row_blocks", "num_vertices_of"]

#: default rows per streamed block
BLOCK_ROWS = 256


def num_vertices_of(result: "APSPResult | np.ndarray") -> int:
    if isinstance(result, APSPResult):
        return result.n
    if result.ndim != 2 or result.shape[0] != result.shape[1]:
        raise ValueError("distance matrix must be square")
    return result.shape[0]


def iter_row_blocks(
    result: "APSPResult | np.ndarray", *, block_rows: int = BLOCK_ROWS
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(row_start, row_stop, block)`` with rows/columns in external
    vertex order; ``block`` is float64 and safe to mutate."""
    n = num_vertices_of(result)
    if isinstance(result, APSPResult):
        data = result.store.data
        perm = result.perm
        for lo in range(0, n, block_rows):
            hi = min(lo + block_rows, n)
            if perm is None:
                block = np.asarray(data[lo:hi, :], dtype=np.float64)
            else:
                # external rows lo..hi map to internal rows perm[lo..hi];
                # columns come back to external order via perm as well
                block = np.asarray(data[perm[lo:hi], :], dtype=np.float64)
                block = block[:, perm]
            yield lo, hi, block
    else:
        for lo in range(0, n, block_rows):
            hi = min(lo + block_rows, n)
            yield lo, hi, np.array(result[lo:hi, :], dtype=np.float64)
