"""Graph analytics over APSP results.

The paper motivates APSP with applications — traffic simulation, routing,
sensor networks (§I) — that consume the distance matrix through aggregate
queries. This subpackage provides them as a public API over
:class:`~repro.core.result.APSPResult` (or a plain distance matrix):

* :mod:`~repro.analysis.metrics` — eccentricity, diameter/radius,
  center/periphery, average path length, reachability;
* :mod:`~repro.analysis.centrality` — closeness and harmonic centrality,
  plus facility-location pickers (1-median/1-center);
* :mod:`~repro.analysis.betweenness` — Brandes betweenness (exact and
  pivot-sampled), which needs its own SSSP passes rather than the matrix.

Every function streams the matrix in row blocks, so results spilled to a
disk-backed store (the paper's Table IV regime) are analysed without ever
materialising n² values in RAM.
"""

from repro.analysis.betweenness import betweenness_centrality
from repro.analysis.centrality import (
    closeness_centrality,
    harmonic_centrality,
    one_center,
    one_median,
)
from repro.analysis.metrics import (
    DistanceStatistics,
    average_path_length,
    center_vertices,
    diameter,
    distance_statistics,
    eccentricity,
    periphery_vertices,
    radius,
    reachability_matrix_density,
)

__all__ = [
    "DistanceStatistics",
    "average_path_length",
    "betweenness_centrality",
    "center_vertices",
    "closeness_centrality",
    "diameter",
    "distance_statistics",
    "eccentricity",
    "harmonic_centrality",
    "one_center",
    "one_median",
    "periphery_vertices",
    "radius",
    "reachability_matrix_density",
]
