"""Dynamic-graph APSP: incremental updates with static O(n²) proofs.

The patch engine (:mod:`repro.dynamic.patch`) applies batched edge
mutations to a solved distance matrix — rank-1 min-plus sweeps for
decreases, SSSP affected-region recomputation for increases — through
one canonical op generator mirrored into a symbolic
:class:`~repro.verifyplan.ir.PlanIR`. The static proof layer lives in
:mod:`repro.verifyplan.updatebounds` and the ``repro verify-update``
driver in :mod:`repro.dynamic.verify`; :mod:`repro.dynamic.cache`
revalidates content-hash keyed closure caches instead of discarding
them. This package is the only place solved distance matrices and graph
weight arrays may be mutated in place (lint rule RPR011).
"""

from repro.dynamic.cache import DistanceCache
from repro.dynamic.patch import (
    DynamicAPSP,
    EdgeUpdate,
    PatchPass,
    TransferRecord,
    UpdatePlan,
    UpdateResult,
    apply_edge_updates,
    emit_ops_ir,
    emit_update_ir,
    trace_tally,
    update_ops,
)
from repro.dynamic.verify import (
    DEFAULT_UPDATE_CONFIGS,
    DefectCheck,
    UpdateAudit,
    UpdateVerification,
    seed_defect,
    verify_update,
)

__all__ = [
    "DEFAULT_UPDATE_CONFIGS",
    "DefectCheck",
    "DistanceCache",
    "DynamicAPSP",
    "EdgeUpdate",
    "PatchPass",
    "TransferRecord",
    "UpdateAudit",
    "UpdatePlan",
    "UpdateResult",
    "UpdateVerification",
    "apply_edge_updates",
    "emit_ops_ir",
    "emit_update_ir",
    "seed_defect",
    "trace_tally",
    "update_ops",
    "verify_update",
]
