"""Content-hash keyed distance-closure cache with incremental revalidation.

A solved closure is expensive; a :class:`DistanceCache` keys each one by
its graph's content hash (:func:`repro.faults.checkpoint.graph_fingerprint`)
in a per-fingerprint :class:`~repro.faults.checkpoint.CheckpointStore`
subdirectory. A graph mutation rotates the fingerprint, so stale entries
can never be served for the wrong graph — the store's own ``bind``
validation refuses a directory written for a different fingerprint.

Instead of discarding the old entry on mutation, :meth:`revalidate`
*patches* it through :class:`~repro.dynamic.patch.DynamicAPSP` and
re-files the result under the new fingerprint — an ``O(n²)`` transfer
instead of an ``O(n³)`` re-solve, bit-identical for integer weights.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.engine import DIST_DTYPE, KernelEngine
from repro.dynamic.patch import DynamicAPSP, EdgeUpdate, UpdateResult
from repro.faults.checkpoint import CheckpointError, CheckpointStore, graph_fingerprint
from repro.graphs.csr import CSRGraph

__all__ = ["DistanceCache"]

_ALGORITHM = "dynamic-dist"


class DistanceCache:
    """Directory of solved distance closures, keyed by graph content hash."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _subdir(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:16]

    def _store(self, fingerprint: str) -> CheckpointStore:
        store = CheckpointStore(self._subdir(fingerprint))
        store.bind(algorithm=_ALGORITHM, fingerprint=fingerprint)
        return store

    def store(self, graph: CSRGraph, dist: np.ndarray) -> Path:
        """File ``dist`` as the closure of ``graph`` (by content hash)."""
        dist = np.ascontiguousarray(dist, dtype=DIST_DTYPE)
        return self._store(graph_fingerprint(graph)).save("dist", dist=dist)

    def lookup(self, graph: CSRGraph) -> np.ndarray | None:
        """The cached closure of exactly this graph, or ``None``.

        Raises :class:`~repro.faults.checkpoint.CheckpointError` if the
        entry's metadata names a different graph or algorithm (a stale or
        foreign checkpoint is refused, never returned).
        """
        fingerprint = graph_fingerprint(graph)
        if not self._subdir(fingerprint).exists():
            return None
        data = self._store(fingerprint).load("dist")
        return None if data is None else np.ascontiguousarray(data["dist"], dtype=DIST_DTYPE)

    def revalidate(
        self,
        graph: CSRGraph,
        updates: Sequence[EdgeUpdate],
        *,
        engine: KernelEngine | None = None,
        block_size: int | None = None,
    ) -> tuple[CSRGraph, np.ndarray, UpdateResult]:
        """Patch the cached closure of ``graph`` under ``updates`` and
        re-file it under the mutated graph's fingerprint.

        Returns ``(new_graph, new_dist, result)``. Raises
        :class:`~repro.faults.checkpoint.CheckpointError` when no entry
        for ``graph`` exists — revalidation never solves from scratch.
        """
        dist = self.lookup(graph)
        if dist is None:
            raise CheckpointError(
                "no cached closure to revalidate for graph "
                f"{graph_fingerprint(graph)[:12]}",
                path=self.directory,
            )
        apsp = DynamicAPSP(graph, dist, engine=engine, block_size=block_size)
        result = apsp.apply(updates)
        self.store(apsp.graph, apsp.dist)
        return apsp.graph, apsp.dist, result
