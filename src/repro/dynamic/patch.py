"""Incremental APSP: patch a solved distance matrix under edge updates.

ROADMAP item 3: dynamic workloads (road traffic, network routing) mutate
edge weights continuously, and re-running the full out-of-core solve per
mutation wastes an ``O(n_d · n²)`` bus budget on an ``O(n²)`` change. This
module patches a solved ``dist`` in place:

* **decreases / insertions** — the rank-1 min-plus update
  ``dist = min(dist, dist[:, u] + w + dist[v, :])`` generalised to a
  *batch* of ``k`` simultaneous decreases. A new shortest path may chain
  several decreased edges, so the naive per-edge rank-1 sweep is not
  exact for batches; instead we fold the ``k × k`` transition matrix
  ``T[e, f] = dist[v_e, u_f] + w_f`` to its min-plus closure ``T*``
  (diagonal clamped to 0, allowing any number of decreased-edge hops) and
  apply ``dist = min(dist, (A ⊗ T*) ⊗ B)`` with ``A[:, e] = dist[:, u_e]
  + w_e`` and ``B[e, :] = dist[v_e, :]``. Every term is a real path cost
  in the updated graph (upper-bound validity), and any new-optimal path
  decomposes into old-graph segments separated by decreased-edge hops
  (completeness), so the batched patch is *exact* — and bit-identical to
  a re-solve for the integer-valued weights the generators produce;

* **increases / deletions** — edge ``(u, v)`` with old weight ``w`` lies
  on a shortest path from ``x`` iff ``dist[x, u] + w == dist[x, v]``
  (shortest-path prefix property), so the affected sources are one
  vectorised ``O(n)`` test per edge; only those rows can change and they
  are recomputed exactly by SSSP (:func:`repro.sssp.dijkstra.dijkstra`)
  on the updated graph;

* **mixed batches** — increases run first (their SSSP rows are exact for
  the *full* updated graph, decreases included), then the batched
  decrease pass patches the remaining rows; the decrease terms are valid
  upper bounds everywhere so already-exact rows are left untouched.

Each pass is driven by one canonical op generator (:func:`update_ops`)
that both the numeric executor and the static :func:`emit_update_ir`
mirror walk — the same discipline as :mod:`repro.cluster.simulate`, so
the transfer trace and the symbolic schedule cannot drift (RPR010 canary
registered in :mod:`repro.sanitize.drift`). The static proofs over the
emitted ``PlanIR`` live in :mod:`repro.verifyplan.updatebounds` and
:mod:`repro.dynamic.verify`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.blocked_fw import floyd_warshall
from repro.core.engine import DIST_DTYPE, KernelEngine, default_engine
from repro.graphs.csr import CSRGraph
from repro.sssp.dijkstra import dijkstra
from repro.verifyplan.ir import IREmitter, PlanIR, Rect, SymBuffer, SymEvent

__all__ = [
    "DynamicAPSP",
    "EdgeUpdate",
    "PatchPass",
    "TransferRecord",
    "UpdatePlan",
    "UpdateResult",
    "apply_edge_updates",
    "emit_ops_ir",
    "emit_update_ir",
    "trace_tally",
    "update_ops",
]

OpDict = dict[str, Any]

#: per-update decrease batches are capped at ``n // 2`` edges so the patch
#: traffic ``(2n² + 2nk + k²)`` elements stays under the ``4n²`` O(n²)
#: gate in :mod:`repro.verifyplan.updatebounds`; larger batches split into
#: sequential exact chunks (decreases compose).
def _decrease_chunk(n: int) -> int:
    return max(1, n // 2)


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation: set ``(u, v)`` to ``weight`` (``inf`` deletes).

    Inserting a missing edge is just a decrease from the implicit ``inf``;
    deleting a missing edge is a no-op.
    """

    u: int
    v: int
    weight: float

    @classmethod
    def delete(cls, u: int, v: int) -> "EdgeUpdate":
        return cls(u, v, math.inf)


# ---------------------------------------------------------------------------
# graph mutation (CSRGraph is frozen: updates build a new graph)
# ---------------------------------------------------------------------------
def _canonical_changes(
    graph: CSRGraph, updates: Sequence[EdgeUpdate]
) -> dict[tuple[int, int], float]:
    """Validate and dedupe updates to one target weight per edge (last wins)."""
    n = graph.num_vertices
    changes: dict[tuple[int, int], float] = {}
    for upd in updates:
        u, v, w = int(upd.u), int(upd.v), float(upd.weight)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            raise ValueError("self-loop updates carry no APSP information")
        if math.isnan(w) or w < 0:
            raise ValueError(f"edge weight must be >= 0 or inf, got {w}")
        changes[(u, v)] = w
    return changes


def _current_weights(
    graph: CSRGraph, pairs: Iterable[tuple[int, int]]
) -> dict[tuple[int, int], float]:
    """Current weight per pair (``inf`` where the edge does not exist)."""
    out: dict[tuple[int, int], float] = {}
    for u, v in pairs:
        lo, hi = int(graph.indptr[u]), int(graph.indptr[u + 1])
        hit = np.flatnonzero(graph.indices[lo:hi] == v)
        out[(u, v)] = float(graph.weights[lo + hit[0]]) if hit.size else math.inf
    return out


def apply_edge_updates(
    graph: CSRGraph, changes: Mapping[tuple[int, int], float]
) -> CSRGraph:
    """New :class:`CSRGraph` with every ``(u, v) -> weight`` applied
    (``inf`` removes the edge); the input graph is untouched."""
    n = graph.num_vertices
    src, dst, w = graph.edge_array()
    keep = np.ones(len(src), dtype=bool)
    if len(src) and changes:
        key = src * np.int64(n) + dst
        changed = np.array([u * n + v for u, v in changes], dtype=np.int64)
        keep = ~np.isin(key, changed)
    added = [(u, v, wt) for (u, v), wt in sorted(changes.items()) if math.isfinite(wt)]
    new_src = np.concatenate([src[keep], np.array([e[0] for e in added], dtype=np.int64)])
    new_dst = np.concatenate([dst[keep], np.array([e[1] for e in added], dtype=np.int64)])
    new_w = np.concatenate([w[keep], np.array([e[2] for e in added], dtype=np.float64)])
    return CSRGraph.from_edges(
        n, new_src, new_dst, new_w, name=getattr(graph, "name", "")
    )


# ---------------------------------------------------------------------------
# the blocked update plan — shared by executor, emitter, and bounds
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UpdatePlan:
    """Parameters of one blocked patch sweep.

    ``kind == "decrease"`` sweeps every block of ``dist`` through the
    batched rank-1 kernel; ``kind == "increase"`` uploads the updated CSR
    graph once and writes back only the affected block-rows.
    """

    kind: str
    n: int
    block_size: int
    #: batched-decrease width (number of simultaneously decreased edges)
    k: int = 0
    #: sorted affected source rows (increase pass only)
    affected_rows: tuple[int, ...] = ()
    #: edge count of the *updated* graph (increase pass upload volume)
    graph_m: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("decrease", "increase"):
            raise ValueError(f"unknown update kind {self.kind!r}")
        if self.n < 1 or not (1 <= self.block_size <= self.n):
            raise ValueError("need 1 <= block_size <= n")
        if self.kind == "decrease" and self.k < 1:
            raise ValueError("decrease pass needs k >= 1")
        if self.kind == "increase" and not self.affected_rows:
            raise ValueError("increase pass needs a non-empty affected set")

    @property
    def spans(self) -> tuple[tuple[int, int], ...]:
        b = self.block_size
        return tuple((s, min(s + b, self.n)) for s in range(0, self.n, b))

    @property
    def num_blocks(self) -> int:
        return len(self.spans)

    def affected_in_row(self, i: int) -> tuple[int, ...]:
        r0, r1 = self.spans[i]
        return tuple(r for r in self.affected_rows if r0 <= r < r1)

    @property
    def affected_block_rows(self) -> tuple[int, ...]:
        return tuple(
            i for i in range(self.num_blocks) if self.affected_in_row(i)
        )

    @property
    def csr_bytes(self) -> int:
        """Upload volume of the updated graph (int64 indptr/indices +
        float64 weights)."""
        return 8 * (self.n + 1) + (16 * self.graph_m if self.graph_m else 0)

    def touched_blocks(self) -> frozenset[tuple[int, int]]:
        """The statically planned touched-block over-approximation."""
        if self.kind == "decrease":
            nb = self.num_blocks
            return frozenset((i, j) for i in range(nb) for j in range(nb))
        return frozenset(
            (i, j) for i in self.affected_block_rows for j in range(self.num_blocks)
        )


# ---------------------------------------------------------------------------
# canonical op generator: ONE source of truth for executor and emitter
# ---------------------------------------------------------------------------
def update_ops(plan: UpdatePlan) -> Iterator[OpDict]:
    """Yield the primitive op stream of one patch sweep.

    Both :func:`_execute_ops` (real numerics + transfer trace) and
    :func:`emit_update_ir` (symbolic ``PlanIR``) walk this exact stream,
    so the dynamic trace and the static schedule are structurally
    identical by construction.
    """
    if plan.kind == "decrease":
        yield from _decrease_ops(plan)
    else:
        yield from _increase_ops(plan)


def _decrease_ops(plan: UpdatePlan) -> Iterator[OpDict]:
    n, k, b = plan.n, plan.k, plan.block_size
    spans = plan.spans
    yield {"kind": "alloc", "buf": "colpanel", "shape": (n, k), "itemsize": 4}
    yield {"kind": "alloc", "buf": "rowpanel", "shape": (k, n), "itemsize": 4}
    yield {"kind": "alloc", "buf": "kk", "shape": (k, k), "itemsize": 4}
    yield {"kind": "alloc", "buf": "blk0", "shape": (b, b), "itemsize": 4}
    yield {"kind": "alloc", "buf": "blk1", "shape": (b, b), "itemsize": 4}
    yield {"kind": "h2d", "buf": "colpanel", "rect": (0, n, 0, k), "key": ("panel", "col"), "stream": "copy"}
    yield {"kind": "h2d", "buf": "rowpanel", "rect": (0, k, 0, n), "key": ("panel", "row"), "stream": "copy"}
    yield {"kind": "h2d", "buf": "kk", "rect": (0, k, 0, k), "key": ("panel", "kk"), "stream": "copy"}
    yield {"kind": "record", "event": "panels-up", "stream": "copy"}
    yield {"kind": "wait", "event": "panels-up", "stream": "compute"}
    # fold the k×k transition matrix to its closure, then fold it into the
    # column panel: A' = A ⊗ T*. Both run before any block kernel reads
    # the panels — the ordering the stale-pivot-panel soundness rule checks.
    yield {
        "kind": "kernel", "name": "fold_closure", "stream": "compute",
        "reads": [("kk", (0, k, 0, k))], "writes": [("kk", (0, k, 0, k))],
    }
    yield {
        "kind": "kernel", "name": "fold_panel", "stream": "compute",
        "reads": [("colpanel", (0, n, 0, k)), ("kk", (0, k, 0, k))],
        "writes": [("colpanel", (0, n, 0, k))],
    }
    t = 0
    for i, (r0, r1) in enumerate(spans):
        for j, (c0, c1) in enumerate(spans):
            slot = f"blk{t % 2}"
            rect = (0, r1 - r0, 0, c1 - c0)
            yield {"kind": "h2d", "buf": slot, "rect": rect, "key": ("A", i, j), "stream": "copy"}
            yield {"kind": "record", "event": f"up:{i}:{j}", "stream": "copy"}
            yield {"kind": "wait", "event": f"up:{i}:{j}", "stream": "compute"}
            yield {
                "kind": "kernel", "name": "rank1_patch", "block": (i, j), "stream": "compute",
                "reads": [
                    (slot, rect),
                    ("colpanel", (r0, r1, 0, k)),
                    ("rowpanel", (0, k, c0, c1)),
                ],
                "writes": [(slot, rect)],
            }
            yield {"kind": "record", "event": f"done:{i}:{j}", "stream": "compute"}
            yield {"kind": "wait", "event": f"done:{i}:{j}", "stream": "copy"}
            yield {"kind": "d2h", "buf": slot, "rect": rect, "key": ("A", i, j), "stream": "copy"}
            t += 1
    for name in ("blk1", "blk0", "kk", "rowpanel", "colpanel"):
        yield {"kind": "free", "buf": name}


def _increase_ops(plan: UpdatePlan) -> Iterator[OpDict]:
    n, m = plan.n, plan.graph_m
    yield {"kind": "alloc", "buf": "indptr", "shape": (n + 1,), "itemsize": 8}
    yield {"kind": "h2d", "buf": "indptr", "rect": (0, n + 1, 0, 1), "key": ("csr", "indptr"), "stream": "copy"}
    if m:
        yield {"kind": "alloc", "buf": "indices", "shape": (m,), "itemsize": 8}
        yield {"kind": "alloc", "buf": "weights", "shape": (m,), "itemsize": 8}
        yield {"kind": "h2d", "buf": "indices", "rect": (0, m, 0, 1), "key": ("csr", "indices"), "stream": "copy"}
        yield {"kind": "h2d", "buf": "weights", "rect": (0, m, 0, 1), "key": ("csr", "weights"), "stream": "copy"}
    yield {"kind": "record", "event": "csr-up", "stream": "copy"}
    yield {"kind": "wait", "event": "csr-up", "stream": "compute"}
    csr_reads = [("indptr", None)] + ([("indices", None), ("weights", None)] if m else [])
    for i in plan.affected_block_rows:
        rows = plan.affected_in_row(i)
        buf = f"rows{i}"
        yield {"kind": "alloc", "buf": buf, "shape": (len(rows), n), "itemsize": 4}
        yield {
            "kind": "kernel", "name": "sssp_rows", "block_row": i, "rows": rows,
            "stream": "compute", "reads": list(csr_reads), "writes": [(buf, None)],
        }
        yield {"kind": "record", "event": f"rows-done:{i}", "stream": "compute"}
        yield {"kind": "wait", "event": f"rows-done:{i}", "stream": "copy"}
        yield {"kind": "d2h", "buf": buf, "rect": (0, len(rows), 0, n), "key": ("rows", i), "stream": "copy"}
        yield {"kind": "free", "buf": buf}
    if m:
        yield {"kind": "free", "buf": "weights"}
        yield {"kind": "free", "buf": "indices"}
    yield {"kind": "free", "buf": "indptr"}


# ---------------------------------------------------------------------------
# static mirror: ops -> PlanIR
# ---------------------------------------------------------------------------
def _operand(
    bufs: Mapping[str, SymBuffer], ref: tuple[str, tuple[int, int, int, int] | None]
) -> SymBuffer | tuple[SymBuffer, Rect]:
    name, rect = ref
    buf = bufs[name]
    return buf if rect is None else (buf, Rect(*rect))


def emit_ops_ir(ops: Iterable[OpDict], plan: UpdatePlan, spec: Any) -> PlanIR:
    """Lower an op stream to a :class:`PlanIR` (the static mirror)."""
    emitter = IREmitter(f"dynamic-{plan.kind}", spec.name, spec.memory_bytes)
    bufs: dict[str, SymBuffer] = {}
    events: dict[str, SymEvent] = {}
    for op in ops:
        kind = op["kind"]
        if kind == "alloc":
            bufs[op["buf"]] = emitter.alloc(
                op["buf"], op["shape"], itemsize=op.get("itemsize", 4)
            )
        elif kind == "free":
            emitter.free(bufs[op["buf"]])
        elif kind == "h2d":
            emitter.h2d(
                bufs[op["buf"]], Rect(*op["rect"]), key=op["key"],
                stream=op["stream"], sync=False,
            )
        elif kind == "d2h":
            emitter.d2h(
                bufs[op["buf"]], Rect(*op["rect"]), key=op["key"],
                stream=op["stream"], sync=False,
            )
        elif kind == "record":
            events[op["event"]] = emitter.record(op["event"], stream=op["stream"])
        elif kind == "wait":
            emitter.wait(events[op["event"]], stream=op["stream"])
        elif kind == "kernel":
            emitter.kernel(
                op["name"],
                reads=[_operand(bufs, r) for r in op["reads"]],
                writes=[_operand(bufs, w) for w in op["writes"]],
                stream=op["stream"],
            )
        else:  # pragma: no cover - generator and emitter share the vocabulary
            raise ValueError(f"unknown op kind {kind!r}")
    return emitter.finish()


def emit_update_ir(plan: UpdatePlan, spec: Any) -> PlanIR:
    """Static block-sweep mirror of one patch pass."""
    return emit_ops_ir(update_ops(plan), plan, spec)


# ---------------------------------------------------------------------------
# dynamic executor: same op stream, real numerics + transfer trace
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TransferRecord:
    """One bus transfer the executor performed (mirrors a ``CopyOp``)."""

    kind: str
    key: tuple
    nbytes: int


def trace_tally(trace: Sequence[TransferRecord]) -> dict[str, Any]:
    """Aggregate a transfer trace into the same shape as the IR tally."""
    h2d_by_key: dict[tuple, int] = {}
    d2h_by_key: dict[tuple, int] = {}
    for rec in trace:
        table = h2d_by_key if rec.kind == "h2d" else d2h_by_key
        table[rec.key] = table.get(rec.key, 0) + rec.nbytes
    return {
        "bytes_h2d": sum(h2d_by_key.values()),
        "bytes_d2h": sum(d2h_by_key.values()),
        "num_h2d": sum(1 for r in trace if r.kind == "h2d"),
        "num_d2h": sum(1 for r in trace if r.kind == "d2h"),
        "h2d_by_key": h2d_by_key,
        "d2h_by_key": d2h_by_key,
    }


def _buf_dtype(name: str) -> Any:
    if name in ("indptr", "indices"):
        return np.int64
    if name == "weights":
        return np.float64
    return DIST_DTYPE


def _rect_view(arr: np.ndarray, rect: tuple[int, int, int, int]) -> np.ndarray:
    r0, r1, c0, c1 = rect
    if arr.ndim == 1:
        return arr[r0:r1]
    return arr[r0:r1, c0:c1]


def _execute_ops(
    ops: Iterable[OpDict],
    plan: UpdatePlan,
    dist: np.ndarray,
    *,
    engine: KernelEngine,
    panels: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    graph: CSRGraph | None = None,
) -> tuple[list[TransferRecord], set[tuple[int, int]], int]:
    """Execute one patch sweep on ``dist`` in place.

    Returns ``(trace, changed_blocks, num_kernels)``; ``changed_blocks``
    is the *measured* set of blocks whose bytes actually changed — the
    dynamic ground truth the static touched-block over-approximation is
    checked against.
    """
    spans = plan.spans
    device: dict[str, np.ndarray] = {}
    trace: list[TransferRecord] = []
    changed: set[tuple[int, int]] = set()
    kernels = 0

    def host_source(key: tuple) -> np.ndarray:
        if key[0] == "panel":
            assert panels is not None
            return {"col": panels[0], "kk": panels[1], "row": panels[2]}[key[1]]
        if key[0] == "A":
            (r0, r1), (c0, c1) = spans[key[1]], spans[key[2]]
            return dist[r0:r1, c0:c1]
        assert key[0] == "csr" and graph is not None
        return {
            "indptr": graph.indptr, "indices": graph.indices, "weights": graph.weights,
        }[key[1]]

    for op in ops:
        kind = op["kind"]
        if kind == "alloc":
            device[op["buf"]] = np.empty(op["shape"], dtype=_buf_dtype(op["buf"]))
        elif kind == "free":
            del device[op["buf"]]
        elif kind in ("record", "wait"):
            continue  # host-side ordering; numerics are sequential here
        elif kind == "h2d":
            view = _rect_view(device[op["buf"]], op["rect"])
            view[...] = host_source(op["key"]).reshape(view.shape)
            trace.append(TransferRecord("h2d", tuple(op["key"]), view.size * view.itemsize))
        elif kind == "d2h":
            view = _rect_view(device[op["buf"]], op["rect"])
            key = tuple(op["key"])
            if key[0] == "A":
                i, j = key[1], key[2]
                (r0, r1), (c0, c1) = spans[i], spans[j]
                target = dist[r0:r1, c0:c1]
                if not np.array_equal(target, view):
                    changed.add((i, j))
                target[...] = view
            else:  # ("rows", i): write back the recomputed block-row
                i = key[1]
                rows = np.asarray(plan.affected_in_row(i), dtype=np.int64)
                old = dist[rows, :]
                for j, (c0, c1) in enumerate(spans):
                    if not np.array_equal(old[:, c0:c1], view[:, c0:c1]):
                        changed.add((i, j))
                dist[rows, :] = view
            trace.append(TransferRecord("d2h", key, view.size * view.itemsize))
        elif kind == "kernel":
            kernels += 1
            name = op["name"]
            if name == "fold_closure":
                kk = device["kk"]
                np.fill_diagonal(kk, np.minimum(np.diagonal(kk), 0.0))
                engine.fw_inplace(kk)
            elif name == "fold_panel":
                device["colpanel"][...] = engine.minplus(device["colpanel"], device["kk"])
            elif name == "rank1_patch":
                i, j = op["block"]
                (r0, r1), (c0, c1) = spans[i], spans[j]
                slot, rect = op["writes"][0]
                view = _rect_view(device[slot], rect)
                blk = np.ascontiguousarray(view)
                engine.update(
                    blk,
                    np.ascontiguousarray(device["colpanel"][r0:r1]),
                    np.ascontiguousarray(device["rowpanel"][:, c0:c1]),
                )
                view[...] = blk
            elif name == "sssp_rows":
                assert graph is not None
                buf = device[op["writes"][0][0]]
                for idx, x in enumerate(op["rows"]):
                    row = dijkstra(graph, int(x))[0]
                    buf[idx, :] = row  # float64 -> float32; exact for int weights
            else:  # pragma: no cover
                raise ValueError(f"unknown kernel {name!r}")
        else:  # pragma: no cover
            raise ValueError(f"unknown op kind {kind!r}")
    return trace, changed, kernels


# ---------------------------------------------------------------------------
# the user-facing engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PatchPass:
    """One executed sweep: its plan, trace, and measured block deltas."""

    plan: UpdatePlan
    trace: tuple[TransferRecord, ...]
    touched_blocks: frozenset[tuple[int, int]]
    changed_blocks: frozenset[tuple[int, int]]
    num_kernels: int


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one :meth:`DynamicAPSP.apply` batch."""

    applied: int
    noops: int
    passes: tuple[PatchPass, ...]
    old_fingerprint: str
    new_fingerprint: str

    @property
    def bytes_moved(self) -> int:
        return sum(rec.nbytes for p in self.passes for rec in p.trace)


class DynamicAPSP:
    """A solved APSP instance that accepts incremental edge updates.

    Holds the current :class:`CSRGraph` and its float32 distance closure;
    :meth:`apply` patches both under a batch of mutations, amortising all
    simultaneous changes into at most one SSSP pass plus one blocked
    rank-1 sweep. All in-place mutation of solved state lives *here* —
    everywhere else it is a stale-cache hazard (lint rule RPR011).
    """

    def __init__(
        self,
        graph: CSRGraph,
        dist: np.ndarray | None = None,
        *,
        engine: KernelEngine | None = None,
        block_size: int | None = None,
    ) -> None:
        self._engine = engine if engine is not None else default_engine()
        n = graph.num_vertices
        if dist is None:
            dist = floyd_warshall(graph.to_dense(DIST_DTYPE), engine=self._engine)
        dist = np.ascontiguousarray(dist, dtype=DIST_DTYPE)
        if dist.shape != (n, n):
            raise ValueError(f"dist shape {dist.shape} does not match n={n}")
        self.graph = graph
        self.dist = dist
        self.block_size = int(block_size) if block_size else n
        if not 1 <= self.block_size <= n:
            raise ValueError(f"need 1 <= block_size <= {n}")

    # -- convenience wrappers ------------------------------------------------
    def decrease_edge(self, u: int, v: int, weight: float) -> UpdateResult:
        return self.apply([EdgeUpdate(u, v, weight)])

    def increase_edge(self, u: int, v: int, weight: float) -> UpdateResult:
        return self.apply([EdgeUpdate(u, v, weight)])

    def delete_edge(self, u: int, v: int) -> UpdateResult:
        return self.apply([EdgeUpdate.delete(u, v)])

    # -- the batched update --------------------------------------------------
    def apply(self, updates: Sequence[EdgeUpdate]) -> UpdateResult:
        """Apply a batch of edge updates; exact (and bit-identical to a
        full re-solve for integer weights below 2²⁴)."""
        from repro.faults.checkpoint import graph_fingerprint

        n = self.graph.num_vertices
        changes = _canonical_changes(self.graph, updates)
        current = _current_weights(self.graph, changes)
        decreases = {p: w for p, w in changes.items() if w < current[p]}
        increases = {p: w for p, w in changes.items() if w > current[p]}
        old_fp = graph_fingerprint(self.graph)
        if not decreases and not increases:
            return UpdateResult(0, len(changes), (), old_fp, old_fp)
        new_graph = apply_edge_updates(self.graph, changes)
        passes: list[PatchPass] = []
        if increases:
            rows = self._affected_sources(increases, current)
            if rows.size:
                plan = UpdatePlan(
                    kind="increase", n=n, block_size=self.block_size,
                    affected_rows=tuple(int(r) for r in rows),
                    graph_m=new_graph.num_edges,
                )
                passes.append(self._run(plan, graph=new_graph))
        if decreases:
            pairs = sorted(decreases)
            chunk = _decrease_chunk(n)
            for off in range(0, len(pairs), chunk):
                part = pairs[off : off + chunk]
                plan = UpdatePlan(
                    kind="decrease", n=n, block_size=self.block_size, k=len(part)
                )
                passes.append(
                    self._run(plan, panels=self._decrease_panels(part, decreases))
                )
        self.graph = new_graph
        return UpdateResult(
            applied=len(decreases) + len(increases),
            noops=len(changes) - len(decreases) - len(increases),
            passes=tuple(passes),
            old_fingerprint=old_fp,
            new_fingerprint=graph_fingerprint(new_graph),
        )

    def _affected_sources(
        self,
        increases: Mapping[tuple[int, int], float],
        current: Mapping[tuple[int, int], float],
    ) -> np.ndarray:
        """Sources whose rows can change under the increases: ``x`` with
        ``dist[x, u] + w_old == dist[x, v]`` for some increased edge —
        the shortest-path prefix property, one vectorised test per edge."""
        mask = np.zeros(self.graph.num_vertices, dtype=bool)
        for (u, v), _w_new in increases.items():
            w_old = DIST_DTYPE(current[(u, v)])
            col = self.dist[:, u]
            mask |= np.isfinite(col) & (col + w_old == self.dist[:, v])
        return np.flatnonzero(mask)

    def _decrease_panels(
        self,
        pairs: Sequence[tuple[int, int]],
        weights: Mapping[tuple[int, int], float],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Host panels of the batched decrease: ``A[:, e] = dist[:, u_e] +
        w_e``, ``T[e, f] = dist[v_e, u_f] + w_f``, ``B[e, :] = dist[v_e, :]``."""
        U = np.array([u for u, _ in pairs], dtype=np.int64)
        V = np.array([v for _, v in pairs], dtype=np.int64)
        w = np.array([weights[p] for p in pairs], dtype=DIST_DTYPE)
        col = np.ascontiguousarray(self.dist[:, U] + w[None, :])
        kk = np.ascontiguousarray(self.dist[np.ix_(V, U)] + w[None, :])
        row = np.ascontiguousarray(self.dist[V, :])
        return col, kk, row

    def _run(
        self,
        plan: UpdatePlan,
        *,
        panels: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        graph: CSRGraph | None = None,
    ) -> PatchPass:
        trace, changed, kernels = _execute_ops(
            update_ops(plan), plan, self.dist,
            engine=self._engine, panels=panels, graph=graph,
        )
        return PatchPass(
            plan=plan,
            trace=tuple(trace),
            touched_blocks=plan.touched_blocks(),
            changed_blocks=frozenset(changed),
            num_kernels=kernels,
        )
