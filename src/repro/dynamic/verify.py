"""End-to-end verifier for the dynamic-update schedules (``verify-update``).

For every sweep configuration this driver replays a scripted sequence of
edge-update batches through :class:`~repro.dynamic.patch.DynamicAPSP`
and, for **every** emitted patch pass:

* audits the static :class:`~repro.verifyplan.ir.PlanIR` mirror
  (residency/def-use/redundancy via
  :func:`~repro.verifyplan.analyze.audit_ir`);
* proves the closed-form transfer bounds of
  :mod:`repro.verifyplan.updatebounds` equal — byte for byte — both the
  IR tally and the dynamic transfer trace, with the O(n²) asymptotic
  gates;
* proves the per-host-key transfer maps of trace and IR identical (the
  canonical-generator discipline, cross-checked);
* runs the happens-before model checker over the two-stream sweep;
* runs the patch-soundness checker against the measured changed-block
  set.

After each batch the patched matrix is compared bit-for-bit against a
full re-solve of the mutated graph, and one cache-revalidation leg
exercises :class:`~repro.dynamic.cache.DistanceCache` end to end.
Finally the seeded-defect suite corrupts the op stream three ways —
shrunken affected region, dropped writeback, stale pivot panel — and
requires each defect caught *statically* with block attribution.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.blocked_fw import floyd_warshall
from repro.core.engine import DIST_DTYPE, KernelEngine, default_engine
from repro.dynamic.cache import DistanceCache
from repro.dynamic.patch import (
    DynamicAPSP,
    EdgeUpdate,
    OpDict,
    PatchPass,
    UpdatePlan,
    emit_ops_ir,
    emit_update_ir,
    trace_tally,
    update_ops,
)
from repro.faults.checkpoint import CheckpointError, CheckpointStore, graph_fingerprint
from repro.gpu.device import TEST_DEVICE, DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.verifyplan.analyze import PlanFinding, audit_ir
from repro.verifyplan.bounds import BoundCheck
from repro.verifyplan.hb import HBReport, analyze_hb
from repro.verifyplan.updatebounds import (
    SoundnessFinding,
    check_patch_soundness,
    ir_transfer_maps,
    update_bound_checks,
)

__all__ = [
    "DEFAULT_UPDATE_CONFIGS",
    "DefectCheck",
    "UpdateAudit",
    "UpdateVerification",
    "seed_defect",
    "verify_update",
]

#: sweep configurations: every update kind, ragged and even partitions,
#: and an in-core (single-block) layout. ``nd`` is the block-row count.
DEFAULT_UPDATE_CONFIGS: tuple[dict[str, Any], ...] = (
    {"name": "road220-mixed", "kind": "road", "n": 220, "deg": 2.6, "seed": 1, "nd": 3},
    {"name": "rmat120-batch", "kind": "rmat", "n": 120, "m": 800, "seed": 2, "nd": 4},
    {"name": "er200-ragged", "kind": "er", "n": 200, "m": 1200, "seed": 3, "nd": 2},
)


def _build_graph(cfg: dict[str, Any]) -> CSRGraph:
    from repro.graphs.generators import erdos_renyi, rmat, road_like

    if cfg["kind"] == "road":
        return road_like(cfg["n"], cfg["deg"], seed=cfg["seed"])
    if cfg["kind"] == "rmat":
        return rmat(cfg["n"], cfg["m"], seed=cfg["seed"])
    return erdos_renyi(cfg["n"], cfg["m"], seed=cfg["seed"])


def _non_edge(graph: CSRGraph, u: int) -> int:
    row = set(graph.indices[graph.indptr[u] : graph.indptr[u + 1]].tolist())
    row.add(u)
    for v in range(graph.num_vertices - 1, -1, -1):
        if v not in row:
            return v
    raise ValueError(f"vertex {u} is connected to every other vertex")


def _update_script(graph: CSRGraph, seed: int) -> list[list[EdgeUpdate]]:
    """Three deterministic batches: decreases + an insertion, increases +
    a deletion, then a mixed batch. Integer weights keep every float32
    patch bit-identical to a re-solve."""
    rng = np.random.default_rng(seed)
    src, dst, w = graph.edge_array()
    idx = rng.choice(len(src), size=min(8, len(src)), replace=False)
    pick = [(int(src[i]), int(dst[i]), float(w[i])) for i in idx]
    batch1 = [EdgeUpdate(u, v, max(0.0, wt // 2)) for u, v, wt in pick[:3]]
    batch1.append(EdgeUpdate(pick[0][0], _non_edge(graph, pick[0][0]), 1.0))
    batch2 = [EdgeUpdate(u, v, wt + 9.0) for u, v, wt in pick[3:5]]
    batch2.append(EdgeUpdate.delete(*pick[5][:2]))
    batch3 = [EdgeUpdate(u, v, max(0.0, wt - 1.0)) for u, v, wt in pick[6:8]]
    batch3.append(EdgeUpdate(pick[3][0], pick[3][1], pick[3][2] + 11.0))
    batch3.append(EdgeUpdate.delete(*pick[4][:2]))
    return [batch1, batch2, batch3]


# ---------------------------------------------------------------------------
# seeded defects: controlled corruptions of the canonical op stream
# ---------------------------------------------------------------------------
DEFECT_NAMES = ("shrunken-region", "dropped-writeback", "stale-pivot-panel")


def seed_defect(
    ops: Sequence[OpDict],
    defect: str,
    plan: UpdatePlan,
    block: tuple[int, int],
) -> list[OpDict]:
    """Corrupt an op stream the way a buggy incremental driver would.

    ``block`` targets the corruption (for ``shrunken-region`` and
    ``dropped-writeback``: the block whose coverage/writeback is lost).
    """
    out = list(ops)
    i, j = block
    if defect == "shrunken-region":
        if plan.kind == "decrease":
            drop_events = {f"up:{i}:{j}", f"done:{i}:{j}"}

            def dropped(op: OpDict) -> bool:
                if op.get("key") == ("A", i, j):
                    return True
                if op.get("event") in drop_events:
                    return True
                return op.get("block") == (i, j)

        else:
            buf = f"rows{i}"

            def dropped(op: OpDict) -> bool:
                if op.get("buf") == buf or op.get("key") == ("rows", i):
                    return True
                if op.get("event") == f"rows-done:{i}":
                    return True
                return op.get("block_row") == i

        return [op for op in out if not dropped(op)]
    if defect == "dropped-writeback":
        key = ("A", i, j) if plan.kind == "decrease" else ("rows", i)
        for pos, op in enumerate(out):
            if op["kind"] == "d2h" and op.get("key") == key:
                del out[pos]
                return out
        raise ValueError(f"no writeback for {key} to drop")
    if defect == "stale-pivot-panel":
        if plan.kind != "decrease":
            raise ValueError("stale-pivot-panel only applies to decrease sweeps")
        fold = next(
            pos for pos, op in enumerate(out)
            if op["kind"] == "kernel" and op["name"] == "fold_panel"
        )
        op = out.pop(fold)
        last_patch = max(
            pos for pos, o in enumerate(out)
            if o["kind"] == "kernel" and o["name"] == "rank1_patch"
        )
        out.insert(last_patch + 1, op)
        return out
    raise ValueError(f"unknown defect {defect!r}")


@dataclass(frozen=True)
class DefectCheck:
    """One seeded defect and whether the static layer caught it."""

    name: str
    config: str
    caught: bool
    block: tuple[int, int] | None
    detail: str

    def describe(self) -> str:
        status = "caught" if self.caught else "MISSED"
        return f"defect {self.name} [{self.config}]: {status} — {self.detail}"


# ---------------------------------------------------------------------------
# per-pass audit
# ---------------------------------------------------------------------------
@dataclass
class UpdateAudit:
    """Static + dynamic cross-audit of one executed patch pass."""

    config: str
    batch: int
    kind: str
    n: int
    block_size: int
    num_blocks: int
    k: int
    affected_rows: int
    peak_bytes: int
    capacity: int
    bytes_h2d: int
    bytes_d2h: int
    num_h2d: int
    num_d2h: int
    findings: list[PlanFinding] = field(default_factory=list)
    bounds: list[BoundCheck] = field(default_factory=list)
    soundness: list[SoundnessFinding] = field(default_factory=list)
    hb: HBReport | None = None
    trace_match: bool = False

    @property
    def verified(self) -> bool:
        return (
            not self.findings
            and not self.soundness
            and all(c.ok for c in self.bounds)
            and (self.hb is None or self.hb.ok)
            and self.trace_match
            and self.peak_bytes <= self.capacity
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "batch": self.batch,
            "kind": self.kind,
            "n": self.n,
            "block_size": self.block_size,
            "num_blocks": self.num_blocks,
            "k": self.k,
            "affected_rows": self.affected_rows,
            "peak_bytes": self.peak_bytes,
            "capacity": self.capacity,
            "bytes_h2d": self.bytes_h2d,
            "bytes_d2h": self.bytes_d2h,
            "num_h2d": self.num_h2d,
            "num_d2h": self.num_d2h,
            "findings": [f.describe() for f in self.findings],
            "bounds": {c.name: c.ok for c in self.bounds},
            "soundness": [s.describe() for s in self.soundness],
            "hb_ok": None if self.hb is None else self.hb.ok,
            "trace_match": self.trace_match,
            "verified": self.verified,
        }


def audit_pass(
    config: str, batch: int, patch: PatchPass, spec: DeviceSpec
) -> UpdateAudit:
    """Run every static analysis over one executed pass."""
    plan = patch.plan
    ir = emit_update_ir(plan, spec)
    peak, tally, findings = audit_ir(ir)
    dyn = trace_tally(patch.trace)
    ir_h2d, ir_d2h = ir_transfer_maps(ir)
    audit = UpdateAudit(
        config=config,
        batch=batch,
        kind=plan.kind,
        n=plan.n,
        block_size=plan.block_size,
        num_blocks=plan.num_blocks,
        k=plan.k,
        affected_rows=len(plan.affected_rows),
        peak_bytes=peak,
        capacity=spec.memory_bytes,
        bytes_h2d=tally.bytes_h2d,
        bytes_d2h=tally.bytes_d2h,
        num_h2d=tally.num_h2d,
        num_d2h=tally.num_d2h,
        findings=list(findings),
    )
    ir_tally = {
        "bytes_h2d": tally.bytes_h2d,
        "bytes_d2h": tally.bytes_d2h,
        "num_h2d": tally.num_h2d,
        "num_d2h": tally.num_d2h,
    }
    audit.bounds = update_bound_checks(plan, ir_tally, dyn)
    audit.soundness = check_patch_soundness(plan, ir, patch.changed_blocks)
    audit.hb = analyze_hb(ir)
    audit.trace_match = (
        ir_h2d == dyn["h2d_by_key"] and ir_d2h == dyn["d2h_by_key"]
    )
    return audit


# ---------------------------------------------------------------------------
# the full verification
# ---------------------------------------------------------------------------
@dataclass
class UpdateVerification:
    """Everything ``repro verify-update`` proves, in one report."""

    device: str
    audits: list[UpdateAudit] = field(default_factory=list)
    defects: list[DefectCheck] = field(default_factory=list)
    differential: dict[str, bool] = field(default_factory=dict)
    revalidation: dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            bool(self.audits)
            and all(a.verified for a in self.audits)
            and bool(self.defects)
            and all(d.caught for d in self.defects)
            and bool(self.differential)
            and all(self.differential.values())
            and bool(self.revalidation)
            and all(self.revalidation.values())
        )

    def describe(self) -> str:
        lines = [f"verify-update on {self.device}:"]
        for audit in self.audits:
            status = "ok" if audit.verified else "FAILED"
            lines.append(
                f"  {audit.config} batch {audit.batch} [{audit.kind}] "
                f"n={audit.n} b={audit.block_size} k={audit.k} "
                f"rows={audit.affected_rows}: h2d={audit.bytes_h2d} "
                f"d2h={audit.bytes_d2h} peak={audit.peak_bytes} [{status}]"
            )
            for check in audit.bounds:
                if not check.ok:
                    lines.append(f"    bound {check.describe()}")
            for finding in audit.findings:
                lines.append(f"    finding {finding.describe()}")
            for sound in audit.soundness:
                lines.append(f"    soundness {sound.describe()}")
            if audit.hb is not None and not audit.hb.ok:
                lines.append("    happens-before FAILED")
            if not audit.trace_match:
                lines.append("    trace/IR per-key transfer maps diverge")
        for defect in self.defects:
            lines.append(f"  {defect.describe()}")
        for name, match in sorted(self.differential.items()):
            status = "bit-identical" if match else "DIVERGED"
            lines.append(f"  differential {name}: incremental vs re-solve {status}")
        for name, passed in sorted(self.revalidation.items()):
            lines.append(f"  revalidation {name}: {'ok' if passed else 'FAILED'}")
        lines.append(f"overall: {'ok' if self.ok else 'FAILED'}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "ok": self.ok,
            "audits": [a.to_dict() for a in self.audits],
            "defects": [
                {
                    "name": d.name,
                    "config": d.config,
                    "caught": d.caught,
                    "block": list(d.block) if d.block else None,
                    "detail": d.detail,
                }
                for d in self.defects
            ],
            "differential": dict(self.differential),
            "revalidation": dict(self.revalidation),
        }


def _defect_checks(
    config: str, patch: PatchPass, spec: DeviceSpec
) -> list[DefectCheck]:
    """Seed the three defects into one pass's op stream and require each
    caught statically with the right block attribution."""
    plan = patch.plan
    checks: list[DefectCheck] = []
    target = max(patch.changed_blocks) if patch.changed_blocks else (0, 0)
    defects = ["shrunken-region", "dropped-writeback"]
    if plan.kind == "decrease":
        defects.append("stale-pivot-panel")
    for name in defects:
        ops = seed_defect(list(update_ops(plan)), name, plan, target)
        ir = emit_ops_ir(ops, plan, spec)
        findings = check_patch_soundness(plan, ir, patch.changed_blocks)
        _peak, tally, _plan_findings = audit_ir(ir)
        ir_tally = {
            "bytes_h2d": tally.bytes_h2d,
            "bytes_d2h": tally.bytes_d2h,
            "num_h2d": tally.num_h2d,
            "num_d2h": tally.num_d2h,
        }
        bounds = update_bound_checks(plan, ir_tally, trace_tally(patch.trace))
        bounds_caught = any(not c.ok for c in bounds)
        if name == "stale-pivot-panel":
            hits = [f for f in findings if f.kind == "stale-pivot-panel"]
            caught = bool(hits)
            block = hits[0].block if hits else None
        elif name == "dropped-writeback":
            hits = [
                f for f in findings
                if f.kind in ("missing-writeback", "uncovered-block")
                and f.block == target
            ]
            caught = bool(hits) and bounds_caught
            block = hits[0].block if hits else None
        else:
            hits = [
                f for f in findings
                if f.kind == "uncovered-block" and f.block == target
            ]
            caught = bool(hits)
            block = hits[0].block if hits else None
        detail = (
            "; ".join(f.describe() for f in hits[:2])
            if hits
            else "no soundness finding attributed to the seeded block"
        )
        if name == "dropped-writeback":
            detail += (
                "; bound tally "
                + ("also diverged" if bounds_caught else "DID NOT diverge")
            )
        checks.append(
            DefectCheck(name=name, config=config, caught=caught, block=block, detail=detail)
        )
    return checks


def _revalidation_checks(
    graph: CSRGraph,
    block_size: int,
    engine: KernelEngine,
) -> dict[str, bool]:
    """One end-to-end :class:`DistanceCache` leg: rotate, refuse, reuse."""
    checks: dict[str, bool] = {}
    src, dst, w = graph.edge_array()
    updates = [EdgeUpdate(int(src[0]), int(dst[0]), max(0.0, float(w[0]) // 2))]
    with tempfile.TemporaryDirectory(prefix="repro-dyncache-") as tmp:
        cache = DistanceCache(tmp)
        apsp = DynamicAPSP(graph, engine=engine, block_size=block_size)
        baseline = apsp.dist.copy()
        cache.store(graph, baseline)
        new_graph, new_dist, _result = cache.revalidate(
            graph, updates, engine=engine, block_size=block_size
        )
        # content-hash key rotated with the mutation
        checks["fingerprint-rotates"] = graph_fingerprint(new_graph) != graph_fingerprint(graph)
        # revalidated entry is served for the new graph, bit-identically
        reloaded = cache.lookup(new_graph)
        checks["revalidated-entry-reused"] = (
            reloaded is not None and np.array_equal(reloaded, new_dist)
        )
        # and it equals a from-scratch solve of the mutated graph
        resolved = floyd_warshall(new_graph.to_dense(DIST_DTYPE), engine=engine)
        checks["revalidated-bit-identical"] = np.array_equal(new_dist, resolved)
        # a store bound to another graph's fingerprint is refused
        try:
            CheckpointStore(cache._subdir(graph_fingerprint(graph))).bind(
                algorithm="dynamic-dist", fingerprint=graph_fingerprint(new_graph)
            )
            checks["stale-checkpoint-refused"] = False
        except CheckpointError:
            checks["stale-checkpoint-refused"] = True
    return checks


def verify_update(
    spec: DeviceSpec | None = None,
    configs: Sequence[dict[str, Any]] = DEFAULT_UPDATE_CONFIGS,
    *,
    engine: KernelEngine | None = None,
) -> UpdateVerification:
    """Verify every dynamic-update schedule on the sweep configurations."""
    spec = spec if spec is not None else TEST_DEVICE
    engine = engine if engine is not None else default_engine()
    ver = UpdateVerification(device=spec.name)
    defect_sources: dict[str, tuple[str, PatchPass]] = {}
    for cfg in configs:
        graph = _build_graph(cfg)
        n = graph.num_vertices
        block_size = -(-n // int(cfg["nd"]))
        apsp = DynamicAPSP(graph, engine=engine, block_size=block_size)
        differential = True
        for batch_no, batch in enumerate(_update_script(graph, cfg["seed"])):
            result = apsp.apply(batch)
            for patch in result.passes:
                ver.audits.append(audit_pass(cfg["name"], batch_no, patch, spec))
                # remember one changed pass per kind for the defect suite
                if patch.changed_blocks and patch.plan.kind not in defect_sources:
                    defect_sources[patch.plan.kind] = (cfg["name"], patch)
            reference = floyd_warshall(apsp.graph.to_dense(DIST_DTYPE), engine=engine)
            differential = differential and bool(np.array_equal(apsp.dist, reference))
        ver.differential[cfg["name"]] = differential
    for kind in ("decrease", "increase"):
        entry = defect_sources.get(kind)
        if entry is not None:
            ver.defects.extend(_defect_checks(entry[0], entry[1], spec))
    first = configs[0]
    graph = _build_graph(first)
    ver.revalidation = _revalidation_checks(
        graph, -(-graph.num_vertices // int(first["nd"])), engine
    )
    return ver
