"""Empirical parameter tuning (extension).

The paper fixes two knobs by observation — Δ for Near-Far (implicit) and
``k = √n/4`` for the boundary algorithm (§V-F). This module turns both
observations into *procedures*, using the same sampled-measurement idea as
the paper's Johnson cost model:

* :func:`tune_delta` — time a few sampled MSSP batches per candidate Δ and
  keep the fastest;
* :func:`tune_components` — run the boundary algorithm per candidate ``k``
  (these runs are cheap at component granularity) and keep the fastest.

Both return the winning parameter plus the full sweep for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.core.ooc_boundary import BoundaryInfeasibleError, ooc_boundary
from repro.core.ooc_johnson import plan_batch_size, run_mssp_batch
from repro.gpu.device import Device, DeviceSpec
from repro.sssp.frontier import suggest_delta

__all__ = ["SweepPoint", "TuningResult", "tune_components", "tune_delta"]


@dataclass(frozen=True)
class SweepPoint:
    value: float
    seconds: float
    feasible: bool = True


@dataclass(frozen=True)
class TuningResult:
    parameter: str
    best: float
    sweep: tuple[SweepPoint, ...]

    def describe(self) -> str:
        rows = ", ".join(
            f"{p.value:g}→{p.seconds:.4g}s" if p.feasible else f"{p.value:g}→infeasible"
            for p in self.sweep
        )
        return f"{self.parameter}: best={self.best:g} ({rows})"


def tune_delta(
    graph,
    spec: DeviceSpec,
    *,
    factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
    num_sample_batches: int = 3,
    seed: int = 0,
) -> TuningResult:
    """Pick Δ by timing sampled MSSP batches per candidate.

    Candidates are multiples of the :func:`suggest_delta` heuristic; the
    winner minimises summed simulated kernel time over the same sampled
    source batches (correctness is Δ-independent, so only time matters).
    """
    base = suggest_delta(graph)
    n = graph.num_vertices
    device = Device(spec)
    bat = plan_batch_size(graph, spec)
    n_b = (n + bat - 1) // bat
    rng = np.random.default_rng(seed)
    chosen = rng.choice(n_b, size=min(num_sample_batches, n_b), replace=False)
    out = np.empty((bat, n), dtype=DIST_DTYPE)

    sweep = []
    for factor in factors:
        delta = base * factor
        device.reset_clock()
        stream = device.default_stream
        for b in chosen:
            lo, hi = int(b) * bat, min((int(b) + 1) * bat, n)
            sources = np.arange(lo, hi, dtype=np.int64)
            run_mssp_batch(
                graph, device, stream, sources, out[: sources.size],
                bat=bat, delta=delta, dynamic_parallelism=True, heavy_degree=32,
            )
        sweep.append(SweepPoint(value=delta, seconds=device.timeline.busy_time("compute")))
        device.reset_clock()
    best = min(sweep, key=lambda p: p.seconds)
    return TuningResult("delta", best.value, tuple(sweep))


def tune_components(
    graph,
    spec: DeviceSpec,
    *,
    factors: tuple[float, ...] = (1 / 8, 1 / 4, 1 / 2, 1.0),
    seed: int = 0,
) -> TuningResult:
    """Pick the boundary algorithm's ``k`` by measuring candidate runs.

    Candidates are multiples of √n (the paper's √n/4 is ``factor=0.25``).
    Infeasible candidates (working set exceeds device memory) are recorded
    and skipped.
    """
    root_n = np.sqrt(max(1, graph.num_vertices))
    sweep = []
    for factor in factors:
        k = max(2, int(round(root_n * factor)))
        try:
            res = ooc_boundary(graph, Device(spec), num_components=k, seed=seed)
        except BoundaryInfeasibleError:
            sweep.append(SweepPoint(value=float(k), seconds=np.inf, feasible=False))
            continue
        sweep.append(SweepPoint(value=float(k), seconds=res.simulated_seconds))
    feasible = [p for p in sweep if p.feasible]
    if not feasible:
        raise BoundaryInfeasibleError(0, 0, spec.memory_bytes, "no feasible k in sweep")
    best = min(feasible, key=lambda p: p.seconds)
    return TuningResult("num_components", best.value, tuple(sweep))
