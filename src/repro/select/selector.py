"""The full selection methodology (paper Section IV).

:class:`Selector` combines the density filter with the cost models:

1. classify the graph's (paper-equivalent) density into a band;
2. if the band leaves a single candidate, select it without modelling;
3. otherwise estimate each candidate's execution time and pick the minimum.

For the sparse band the boundary candidate may turn out *infeasible* (the
working set of every balanced partition exceeds device memory — the
paper's "maximal number of components ... is small" case); the selector
then falls back to Johnson's algorithm, which is exactly the behaviour the
paper describes for "other sparse graphs".

Two ranking backends are available. The default (``method="measured"``)
is the paper's: calibration runs plus sampled batches on a scratch
device. ``analytic=True`` instead prices each candidate off its schedule
IR — the symbolic critical-path makespan from
:func:`repro.verifyplan.timing.predict_timing` — which needs no device
time at all and can be re-rated from measured benchmarks via a
:class:`~repro.verifyplan.timing.TimingCalibration`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ooc_boundary import BoundaryInfeasibleError
from repro.gpu.device import Device, DeviceSpec
from repro.select.calibrate import Calibration
from repro.select.cost_models import (
    CostEstimate,
    analytic_estimate_boundary,
    analytic_estimate_fw,
    analytic_estimate_johnson,
    estimate_boundary,
    estimate_fw,
    estimate_johnson,
)
from repro.select.density_filter import density_band, filter_candidates
from repro.verifyplan.timing import TimingCalibration

__all__ = ["SelectionReport", "Selector"]


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of one selection: the pick plus everything it considered."""

    algorithm: str
    density: float
    band: str
    candidates: tuple[str, ...]
    estimates: dict[str, CostEstimate] = field(default_factory=dict)
    infeasible: tuple[str, ...] = ()
    #: ranking backend: ``"measured"`` (paper-style sampling) or
    #: ``"analytic"`` (schedule-DAG critical path)
    method: str = "measured"

    def estimated_seconds(self, algorithm: str | None = None) -> float:
        alg = algorithm or self.algorithm
        return self.estimates[alg].total_seconds

    def to_dict(self) -> dict:
        """JSON-serialisable view (used by ``python -m repro select --json``)."""
        return {
            "algorithm": self.algorithm,
            "density": self.density,
            "band": self.band,
            "method": self.method,
            "candidates": list(self.candidates),
            "infeasible": list(self.infeasible),
            "estimates": {
                name: {
                    "compute_seconds": est.compute_seconds,
                    "transfer_seconds": est.transfer_seconds,
                    "total_seconds": est.total_seconds,
                    "detail": {k: v for k, v in est.detail.items()
                               if isinstance(v, (int, float, str, bool))},
                }
                for name, est in self.estimates.items()
            },
        }


class Selector:
    """Select the best out-of-core APSP implementation for a graph."""

    def __init__(
        self,
        spec: DeviceSpec,
        calibration: Calibration | None = None,
        *,
        density_scale: float = 1.0,
        seed: int = 0,
        analytic: bool = False,
        timing_calibration: TimingCalibration | None = None,
    ) -> None:
        """``density_scale`` converts scaled stand-in densities back to
        paper-equivalent units (see :mod:`repro.graphs.suite`).

        ``analytic=True`` ranks candidates by the symbolic critical-path
        makespan of their schedule IRs instead of calibration/sampling
        runs — no scratch-device time is spent (the up-front
        :meth:`Calibration.run` is skipped entirely);
        ``timing_calibration`` optionally re-rates the device model from
        measured benchmark files.
        """
        self.spec = spec
        self.analytic = analytic
        self.timing_calibration = timing_calibration
        self.calibration = (
            None if analytic else (calibration or Calibration(spec)).run()
        )
        self.density_scale = density_scale
        self.seed = seed

    @property
    def method(self) -> str:
        return "analytic" if self.analytic else "measured"

    def select(self, graph, *, device: Device | None = None) -> SelectionReport:
        """Run the methodology on ``graph``; sampling runs use ``device``
        (a scratch device is created when omitted; never used in
        analytic mode)."""
        density = graph.density * self.density_scale
        band = density_band(density)
        candidates = filter_candidates(graph, density_scale=self.density_scale)

        if candidates == ("johnson",):
            return SelectionReport(
                algorithm="johnson", density=density, band=band,
                candidates=candidates, method=self.method,
            )

        if self.analytic:
            estimates, infeasible = self._estimate_analytic(graph, candidates)
        else:
            estimates, infeasible = self._estimate_measured(
                graph, candidates, device
            )
        best = min(estimates, key=lambda a: estimates[a].total_seconds)
        return SelectionReport(
            algorithm=best,
            density=density,
            band=band,
            candidates=candidates,
            estimates=estimates,
            infeasible=tuple(infeasible),
            method=self.method,
        )

    def _estimate_measured(
        self, graph, candidates: tuple[str, ...], device: Device | None
    ) -> tuple[dict[str, CostEstimate], list[str]]:
        assert self.calibration is not None
        dev = device or Device(self.spec)
        estimates: dict[str, CostEstimate] = {}
        infeasible: list[str] = []
        for cand in candidates:
            if cand == "johnson":
                estimates[cand] = estimate_johnson(graph, dev, seed=self.seed)
            elif cand == "floyd-warshall":
                estimates[cand] = estimate_fw(graph, self.spec, self.calibration)
            elif cand == "boundary":
                try:
                    estimates[cand] = estimate_boundary(
                        graph, self.spec, self.calibration, seed=self.seed
                    )
                except BoundaryInfeasibleError:
                    infeasible.append(cand)
        return estimates, infeasible

    def _estimate_analytic(
        self, graph, candidates: tuple[str, ...]
    ) -> tuple[dict[str, CostEstimate], list[str]]:
        cal = self.timing_calibration
        estimates: dict[str, CostEstimate] = {}
        infeasible: list[str] = []
        for cand in candidates:
            if cand == "johnson":
                estimates[cand] = analytic_estimate_johnson(
                    graph, self.spec, calibration=cal, seed=self.seed
                )
            elif cand == "floyd-warshall":
                estimates[cand] = analytic_estimate_fw(
                    graph, self.spec, calibration=cal
                )
            elif cand == "boundary":
                try:
                    estimates[cand] = analytic_estimate_boundary(
                        graph, self.spec, calibration=cal, seed=self.seed
                    )
                except BoundaryInfeasibleError:
                    infeasible.append(cand)
        return estimates, infeasible
