"""One-time per-device calibration for the cost models (paper §IV-B.2).

The paper seeds its models with measured reference runs:

* FW — "for a randomly generated graph with n₀ vertices, we can observe the
  computation time T₀";
* boundary, small separator — same idea with a small-separator reference
  graph and ``n^{3/2}`` scaling;
* boundary, large separator — a ``c_unit`` (seconds per operation) per
  ``NB``-range bin, fit on a set of training graphs.

:class:`Calibration` performs those runs on a fresh device with the target
spec and stores the constants. Calibration uses *compute-engine busy time*
(kernel seconds), because the models add their own transfer terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.device import Device, DeviceSpec

__all__ = ["Calibration"]


@dataclass
class Calibration:
    """Reference timings + c_unit table for one device spec."""

    spec: DeviceSpec
    #: reference graphs are sized relative to the target workloads
    fw_n0: int = 384
    boundary_n0: int = 768
    small_separator_factor: float = 4.0
    seed: int = 0
    fw_reference: tuple[float, float] = field(init=False, default=(0.0, 1.0))
    boundary_reference: tuple[float, float] = field(init=False, default=(0.0, 1.0))
    #: c_unit (seconds/op) per NB-range bin index (0 → [n^¾, 2n^¾), …)
    c_unit_bins: dict[int, float] = field(init=False, default_factory=dict)
    _calibrated: bool = field(init=False, default=False)

    # ------------------------------------------------------------------
    def run(self, *, with_large_separator_bins: bool = True) -> "Calibration":
        """Execute all calibration runs (idempotent)."""
        if self._calibrated:
            return self
        self._run_fw_reference()
        self._run_boundary_reference()
        if with_large_separator_bins:
            self._fit_c_unit_bins()
        self._calibrated = True
        return self

    def _device(self) -> Device:
        return Device(self.spec, record_trace=True)

    def _run_fw_reference(self) -> None:
        from repro.core.ooc_fw import ooc_floyd_warshall
        from repro.graphs.generators import erdos_renyi

        n0 = self.fw_n0
        g = erdos_renyi(n0, 8 * n0, seed=self.seed, name="fw-calib")
        dev = self._device()
        ooc_floyd_warshall(g, dev)
        self.fw_reference = (dev.timeline.busy_time("compute"), float(n0))

    def _run_boundary_reference(self) -> None:
        from repro.core.ooc_boundary import ooc_boundary
        from repro.graphs.generators import planar_like

        n0 = self.boundary_n0
        g = planar_like(n0, seed=self.seed, name="boundary-calib")
        dev = self._device()
        ooc_boundary(g, dev, seed=self.seed)
        self.boundary_reference = (dev.timeline.busy_time("compute"), float(n0))

    def _fit_c_unit_bins(self) -> None:
        """Train c_unit per NB-range on geometric graphs of rising degree.

        Denser geometric graphs partition with progressively larger
        boundary sets, populating successive NB bins.
        """
        from repro.core.ooc_boundary import (
            BoundaryInfeasibleError,
            ooc_boundary,
            plan_boundary,
        )
        from repro.graphs.generators import random_geometric
        from repro.select.cost_models import boundary_n_op

        n0 = self.boundary_n0
        for idx, deg in enumerate((6.0, 12.0, 24.0, 48.0)):
            radius = float(np.sqrt(deg / (np.pi * n0)))
            g = random_geometric(n0, radius, seed=self.seed + idx, name=f"cunit-{idx}")
            try:
                plan = plan_boundary(g, self.spec, seed=self.seed)
                dev = self._device()
                ooc_boundary(g, dev, plan=plan, seed=self.seed)
            except BoundaryInfeasibleError:
                continue
            compute = dev.timeline.busy_time("compute")
            nb = plan.num_boundary
            k = plan.num_components
            n_op = boundary_n_op(g.num_vertices, k, nb / k)
            self.c_unit_bins[self._bin_index(g.num_vertices, nb)] = compute / n_op

    # ------------------------------------------------------------------
    @staticmethod
    def _bin_index(n: int, nb: int) -> int:
        """NB-range index: 0 → [n^¾, 2n^¾), 1 → [2n^¾, 4n^¾), … (§IV-B.2)."""
        ideal = n**0.75
        ratio = max(nb / ideal, 1.0)
        return int(np.floor(np.log2(ratio)))

    def c_unit_for(self, n: int, nb: int) -> float:
        """c_unit for a graph with ``nb`` boundary vertices (nearest bin)."""
        if not self.c_unit_bins:
            raise RuntimeError("calibration has no c_unit bins; call run() first")
        idx = self._bin_index(n, nb)
        if idx in self.c_unit_bins:
            return self.c_unit_bins[idx]
        nearest = min(self.c_unit_bins, key=lambda b: abs(b - idx))
        return self.c_unit_bins[nearest]
