"""Density-based candidate filtering (paper Section IV-C).

``density = m/n²``. The paper's rules:

* density > 1% — choose between **Johnson** and **Floyd–Warshall** (a graph
  this dense will have a huge boundary set, disqualifying the boundary
  algorithm);
* density < 0.01% — choose between **Johnson** and the **boundary**
  algorithm (FW's n³ cannot compete at this sparsity);
* otherwise — select **Johnson** outright.

Scaled stand-ins are ``1/scale`` denser than their full-size originals
(both ``n`` and ``m`` scale linearly while density divides by ``n²``), so
the filter accepts a ``density_scale`` multiplier that converts a scaled
graph's density back to paper-equivalent units; see
:mod:`repro.graphs.suite`.
"""

from __future__ import annotations

__all__ = ["CANDIDATES_BY_BAND", "DENSE_THRESHOLD", "SPARSE_THRESHOLD", "density_band", "filter_candidates"]

#: paper thresholds, as fractions (1% and 0.01%)
DENSE_THRESHOLD = 0.01
SPARSE_THRESHOLD = 0.0001

CANDIDATES_BY_BAND: dict[str, tuple[str, ...]] = {
    "dense": ("johnson", "floyd-warshall"),
    "sparse": ("johnson", "boundary"),
    "middle": ("johnson",),
}


def density_band(density: float) -> str:
    """Classify a (paper-equivalent) density into the filter's three bands."""
    if density > DENSE_THRESHOLD:
        return "dense"
    if density < SPARSE_THRESHOLD:
        return "sparse"
    return "middle"


def filter_candidates(graph, *, density_scale: float = 1.0) -> tuple[str, ...]:
    """Candidate algorithms for ``graph`` after the density filter."""
    return CANDIDATES_BY_BAND[density_band(graph.density * density_scale)]
