"""Per-algorithm execution-time estimators (paper Section IV-B).

Each estimator returns a :class:`CostEstimate` splitting the prediction
into computation and data-transfer terms, mirroring the paper's structure:
transfer terms follow §IV-B.1 (volumes over the measured PCIe throughput,
plus per-call latencies our transfer model charges), computation terms
follow §IV-B.2.

The **computation** models:

* Floyd–Warshall — cost is ``O(n³)`` with graph-independent constants, so a
  single calibration run at ``n₀`` extrapolates:
  ``T = T₀ · (n/n₀)³``.
* Johnson — per-batch times are near-uniform (the paper measures batch
  std-dev at 1.67–13.4% of the mean), so run ``k`` randomly chosen batches
  for real and scale: ``T = (n_b / k) · T_sampled``.
* boundary, small separator — operation count is ``O(n^{3/2})`` at
  ``k = √n`` [Djidjev], with graph-independent unit costs:
  ``T = T₀ · (n/n₀)^{3/2}``.
* boundary, large separator — ``N_op = n³/k² + (kB)³ + nkB² + n²B`` (steps
  2, 3, 4 with ``B`` boundary vertices per component), priced by a unit
  cost ``c_unit`` that *grows with the total boundary count* ``NB``; the
  paper bins ``NB`` into ranges ``[n^{3/4}, 2n^{3/4})``, ``[2n^{3/4},
  4n^{3/4})``, … and learns one ``c_unit`` per bin from training graphs
  (:class:`repro.select.calibrate.Calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.core.ooc_boundary import BoundaryPlan, plan_boundary
from repro.core.ooc_fw import plan_fw_block_size
from repro.core.ooc_johnson import plan_batch_size, run_mssp_batch
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.transfer import copy_duration

if TYPE_CHECKING:  # pragma: no cover
    from repro.select.calibrate import Calibration
    from repro.verifyplan.timing import TimingCalibration, TimingReport

__all__ = [
    "CostEstimate",
    "analytic_estimate_boundary",
    "analytic_estimate_fw",
    "analytic_estimate_johnson",
    "boundary_n_op",
    "estimate_boundary",
    "estimate_fw",
    "estimate_johnson",
]

_ELEM = np.dtype(DIST_DTYPE).itemsize

#: batches sampled by the Johnson estimator ("In our experiments we set k to
#: be 5 as that achieved sufficient accuracy", §IV-B.2 footnote)
JOHNSON_SAMPLE_BATCHES = 5


@dataclass(frozen=True)
class CostEstimate:
    """Predicted execution time, split the way the paper's models are."""

    algorithm: str
    compute_seconds: float
    transfer_seconds: float
    detail: dict

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.transfer_seconds


# ----------------------------------------------------------------------
# Floyd–Warshall
# ----------------------------------------------------------------------
def fw_transfer_seconds(n: int, spec: DeviceSpec, *, overlap: bool = True) -> float:
    """Transfer term of Algorithm 1, mirroring the driver's copy schedule.

    Walks the exact block layout (ragged last blocks included): per outer
    iteration the diagonal block moves up+down, ``2(n_d−1)`` panels move
    up+down, and stage 3 uploads one column block per ``i`` plus a row and
    a work block per ``(i, j)`` with the work block coming back — the
    paper's ``n_d·W·(3b² + n²)/TH`` with both directions counted.
    """
    from repro.core.tiling import BlockLayout

    b = plan_fw_block_size(n, spec, overlap=overlap)
    layout = BlockLayout(n, b)
    nd = layout.num_blocks
    sizes = [layout.size(i) for i in range(nd)]
    total_bytes = 0
    total_copies = 0
    for k in range(nd):
        bk = sizes[k]
        total_bytes += 2 * bk * bk  # stage 1 up + down
        total_copies += 2
        for j in range(nd):  # stage 2 row+col panels, up + down each
            if j != k:
                total_bytes += 4 * bk * sizes[j]
                total_copies += 4
        for i in range(nd):  # stage 3
            if i == k:
                continue
            total_bytes += sizes[i] * bk  # column upload
            total_copies += 1
            for j in range(nd):
                if j == k:
                    continue
                total_bytes += bk * sizes[j] + 2 * sizes[i] * sizes[j]
                total_copies += 3
    return (
        total_bytes * _ELEM / spec.transfer_throughput
        + total_copies * spec.transfer_latency
    )


def estimate_fw(graph, spec: DeviceSpec, calibration: "Calibration") -> CostEstimate:
    """``T₀·(n/n₀)³`` compute + modelled transfers."""
    n = graph.num_vertices
    t0, n0 = calibration.fw_reference
    compute = t0 * (n / n0) ** 3
    transfer = fw_transfer_seconds(n, spec)
    return CostEstimate(
        "floyd-warshall", compute, transfer, {"n0": n0, "t0": t0}
    )


# ----------------------------------------------------------------------
# Johnson
# ----------------------------------------------------------------------
def estimate_johnson(
    graph,
    device: Device,
    *,
    num_sample_batches: int = JOHNSON_SAMPLE_BATCHES,
    dynamic_parallelism: bool = True,
    seed: int = 0,
) -> CostEstimate:
    """Run ``k`` random batches for real, scale by the batch count (§IV-B.2).

    The sampled kernels execute on ``device`` (that *is* the selection
    overhead the paper pays); the device clock is reset afterwards.
    """
    n = graph.num_vertices
    spec = device.spec
    bat = plan_batch_size(graph, spec)
    n_b = (n + bat - 1) // bat
    k = min(num_sample_batches, n_b)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(n_b, size=k, replace=False)

    device.reset_clock()
    stream = device.default_stream
    out = np.empty((bat, n), dtype=DIST_DTYPE)
    for b in chosen:
        lo, hi = int(b) * bat, min((int(b) + 1) * bat, n)
        sources = np.arange(lo, hi, dtype=np.int64)
        run_mssp_batch(
            graph, device, stream, sources, out[: sources.size],
            bat=bat, delta=None,
            dynamic_parallelism=dynamic_parallelism, heavy_degree=64,
        )
    sampled = device.timeline.busy_time("compute")
    device.reset_clock()

    compute = (n_b / k) * sampled
    transfer = (
        _ELEM * n * n / spec.transfer_throughput  # the paper's W·n²/TH
        + n_b * spec.transfer_latency
        + copy_duration(spec, 8 * graph.num_edges)  # one-time CSR upload
    )
    return CostEstimate(
        "johnson", compute, transfer,
        {"bat": bat, "n_b": n_b, "sampled_batches": k, "sampled_seconds": sampled},
    )


# ----------------------------------------------------------------------
# boundary
# ----------------------------------------------------------------------
def boundary_n_op(n: int, k: int, b_avg: float) -> float:
    """The paper's operation count for a large-separator graph:

    ``N_op = n³/k² + (kB)³ + nkB² + n²B`` (steps 2, 3, 4).
    """
    return n**3 / k**2 + (k * b_avg) ** 3 + n * k * b_avg**2 + n**2 * b_avg


def boundary_transfer_seconds(n: int, plan: BoundaryPlan, spec: DeviceSpec) -> float:
    """Transfer term of Algorithm 3 with batching: per-component blocks
    up+down (steps 2), the boundary matrix up, C2B/B2C uploads, and the
    batched output strips (``k/N_row`` large copies moving ``n²`` bytes)."""
    k = plan.num_components
    nb = plan.num_boundary
    sizes = np.diff(plan.comp_start)
    step2_bytes = 2 * int((sizes.astype(np.int64) ** 2).sum()) * _ELEM
    bound_bytes = nb * nb * _ELEM
    c2b_bytes = int((sizes * plan.comp_boundary).sum()) * _ELEM
    b2c_bytes = k * c2b_bytes  # B2C[j] re-uploaded for every i
    out_bytes = n * n * _ELEM
    n_flushes = max(1, int(np.ceil(k / max(1, plan.n_row))))
    volume = step2_bytes + bound_bytes + c2b_bytes + b2c_bytes + out_bytes
    calls = 2 * k + 1 + k + k * k + n_flushes
    return volume / spec.transfer_throughput + calls * spec.transfer_latency


def estimate_boundary(
    graph,
    spec: DeviceSpec,
    calibration: "Calibration",
    *,
    plan: BoundaryPlan | None = None,
    seed: int = 0,
) -> CostEstimate:
    """Small-separator graphs extrapolate ``n^{3/2}``; large-separator
    graphs price ``N_op`` with the binned ``c_unit`` (§IV-B.2)."""
    n = graph.num_vertices
    if plan is None:
        plan = plan_boundary(graph, spec, seed=seed)
    k = plan.num_components
    nb = plan.num_boundary
    ideal = float(np.sqrt(k * n))
    small = nb <= calibration.small_separator_factor * ideal

    if small:
        t0, n0 = calibration.boundary_reference
        compute = t0 * (n / n0) ** 1.5
        detail = {"model": "small-separator", "n0": n0, "t0": t0}
    else:
        b_avg = nb / k
        n_op = boundary_n_op(n, k, b_avg)
        c_unit = calibration.c_unit_for(n, nb)
        compute = n_op * c_unit
        detail = {"model": "large-separator", "n_op": n_op, "c_unit": c_unit}
    transfer = boundary_transfer_seconds(n, plan, spec)
    detail.update({"k": k, "num_boundary": nb})
    return CostEstimate("boundary", compute, transfer, detail)


# ----------------------------------------------------------------------
# analytic estimators (schedule-DAG critical path, no calibration runs)
# ----------------------------------------------------------------------
def _estimate_from_timing(algorithm: str, report: "TimingReport") -> CostEstimate:
    """A :class:`CostEstimate` whose total is the predicted makespan.

    The compute term is the compute engine's busy time; everything the
    critical path adds on top (exposed transfer time, launch overheads)
    lands in the transfer term, so ``total_seconds`` equals the symbolic
    makespan exactly.
    """
    compute = report.compute_seconds
    transfer = max(0.0, report.makespan - compute)
    return CostEstimate(
        algorithm, compute, transfer,
        {
            "model": "schedule-dag",
            "makespan_seconds": report.makespan,
            "overlap_efficiency": report.overlap_efficiency,
            "critical_path_length": len(report.critical_path),
        },
    )


def analytic_estimate_fw(
    graph, spec: DeviceSpec, *, calibration: "TimingCalibration | None" = None
) -> CostEstimate:
    """Price Algorithm 1 off its own schedule IR: emit the plan, replay it
    symbolically, and report the critical-path makespan. No device runs."""
    from repro.core.ooc_fw import emit_fw_ir
    from repro.verifyplan.timing import predict_timing

    n = graph.num_vertices
    b = plan_fw_block_size(n, spec, overlap=True)
    ir = emit_fw_ir(n, spec, block_size=b, overlap=True)
    return _estimate_from_timing(
        "floyd-warshall", predict_timing(ir, spec, calibration=calibration)
    )


def analytic_estimate_johnson(
    graph,
    spec: DeviceSpec,
    *,
    calibration: "TimingCalibration | None" = None,
    num_sample_batches: int = JOHNSON_SAMPLE_BATCHES,
    seed: int = 0,
) -> CostEstimate:
    """Johnson via the schedule IR: sample ``k`` batch workloads on the
    CPU frontier simulator (no device time), price every ``mssp`` launch
    with the modelled cost, and take the symbolic makespan."""
    from repro.core.ooc_johnson import collect_mssp_workloads, emit_johnson_ir
    from repro.verifyplan.timing import predict_timing

    n = graph.num_vertices
    bat = max(1, min(plan_batch_size(graph, spec, num_row_buffers=2), n))
    workloads = collect_mssp_workloads(
        graph, batch_size=bat, sample=num_sample_batches, seed=seed
    )
    ir = emit_johnson_ir(graph, spec, batch_size=bat, workloads=workloads)
    return _estimate_from_timing(
        "johnson", predict_timing(ir, spec, calibration=calibration)
    )


def analytic_estimate_boundary(
    graph,
    spec: DeviceSpec,
    *,
    calibration: "TimingCalibration | None" = None,
    plan: BoundaryPlan | None = None,
    seed: int = 0,
) -> CostEstimate:
    """Boundary method via the schedule IR critical path. Raises
    :class:`~repro.core.ooc_boundary.BoundaryInfeasibleError` like
    :func:`estimate_boundary` when no partition fits the device."""
    from repro.core.ooc_boundary import emit_boundary_ir
    from repro.verifyplan.timing import predict_timing

    if plan is None:
        plan = plan_boundary(graph, spec, seed=seed)
    ir = emit_boundary_ir(graph, spec, plan=plan, seed=seed)
    return _estimate_from_timing(
        "boundary", predict_timing(ir, spec, calibration=calibration)
    )
