"""Algorithm selection methodology (paper Section IV).

Given a graph, pick the best out-of-core implementation:

1. the **density filter** (:mod:`~repro.select.density_filter`, §IV-C)
   prunes candidates from the graph's ``m/n²`` density alone —
   density > 1% rules out the boundary algorithm, density < 0.01% rules out
   Floyd–Warshall, anything in between selects Johnson's directly;
2. the **cost models** (:mod:`~repro.select.cost_models`, §IV-B) estimate
   each surviving candidate's execution time:
   FW extrapolates a calibration run cubically; Johnson runs a few sampled
   batches and scales by the batch count; the boundary algorithm
   extrapolates ``n^{3/2}`` for small-separator graphs and otherwise prices
   the operation count ``N_op = n³/k² + (kB)³ + nkB² + n²B`` with a
   per-``NB``-range unit cost learned from training graphs;
3. :class:`~repro.select.selector.Selector` wires both together and returns
   a :class:`~repro.select.selector.SelectionReport`.

Calibration state (reference timings, ``c_unit`` table) is produced once
per device by :class:`~repro.select.calibrate.Calibration`.
"""

from repro.select.calibrate import Calibration
from repro.select.cost_models import (
    CostEstimate,
    estimate_boundary,
    estimate_fw,
    estimate_johnson,
)
from repro.select.density_filter import CANDIDATES_BY_BAND, density_band, filter_candidates
from repro.select.selector import SelectionReport, Selector
from repro.select.tuning import TuningResult, tune_components, tune_delta

__all__ = [
    "CANDIDATES_BY_BAND",
    "Calibration",
    "CostEstimate",
    "SelectionReport",
    "Selector",
    "density_band",
    "estimate_boundary",
    "estimate_fw",
    "estimate_johnson",
    "filter_candidates",
    "TuningResult",
    "tune_components",
    "tune_delta",
]
