"""Single-source shortest path algorithms.

The paper's GPU SSSP is the **Near-Far** worklist method [Davidson et al.,
PPoPP'14], a two-bucket simplification of delta-stepping; it powers the
out-of-core Johnson implementation. Dijkstra (binary heap) backs the
BGL-plus CPU baseline, delta-stepping backs the Galois baseline, and
Bellman-Ford is kept as the fully parallel extreme of the design space the
paper discusses in Section II-B.

Every implementation returns exact shortest distances (verified against the
scipy oracle in the tests) and an operation-count record that the machine
models consume.
"""

from repro.sssp.bellman_ford import BellmanFordStats, bellman_ford
from repro.sssp.bfs import bfs_hops, bfs_levels, hop_diameter
from repro.sssp.delta_stepping import DeltaSteppingStats, delta_stepping
from repro.sssp.dijkstra import DijkstraStats, dijkstra
from repro.sssp.frontier import expand_frontier, scatter_min, suggest_delta
from repro.sssp.near_far import NearFarStats, near_far, near_far_batch

__all__ = [
    "BellmanFordStats",
    "DeltaSteppingStats",
    "DijkstraStats",
    "NearFarStats",
    "bellman_ford",
    "bfs_hops",
    "bfs_levels",
    "delta_stepping",
    "hop_diameter",
    "dijkstra",
    "expand_frontier",
    "near_far",
    "near_far_batch",
    "scatter_min",
    "suggest_delta",
]
