"""Unweighted BFS distances (hop counts), vectorised.

Hop distances back several structural analyses (hop diameter, level
structure) and are the unweighted special case every weighted SSSP must
agree with when all weights equal 1 (property-tested). The implementation
is the frontier-expansion pattern of the GPU worklist kernels with Δ
effectively 1.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sssp.frontier import expand_frontier

__all__ = ["bfs_hops", "bfs_levels", "hop_diameter"]


def bfs_hops(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop count from ``source`` to every vertex (inf when unreachable)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    hops = np.full(n, np.inf)
    hops[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, heads, _ = expand_frontier(graph, frontier)
        fresh = np.unique(heads[~np.isfinite(hops[heads])])
        if fresh.size == 0:
            break
        hops[fresh] = level
        frontier = fresh
    return hops


def bfs_levels(graph: CSRGraph, source: int) -> list[np.ndarray]:
    """Vertices grouped by hop distance: ``levels[k]`` = vertices at k hops."""
    hops = bfs_hops(graph, source)
    finite = np.isfinite(hops)
    if not finite.any():
        return []
    max_level = int(hops[finite].max())
    return [np.nonzero(hops == k)[0] for k in range(max_level + 1)]


def hop_diameter(graph: CSRGraph, *, sample: int | None = None, seed: int = 0) -> int:
    """Largest finite hop distance over (sampled) sources.

    ``sample=None`` sweeps every source (exact); an integer samples that
    many sources uniformly — a lower bound, standard for large graphs.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if sample is None:
        sources = np.arange(n)
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(n, size=min(sample, n), replace=False)
    best = 0
    for s in sources:
        hops = bfs_hops(graph, int(s))
        finite = hops[np.isfinite(hops)]
        if finite.size:
            best = max(best, int(finite.max()))
    return best
