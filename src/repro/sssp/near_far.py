"""Near-Far worklist SSSP — the paper's GPU method (Section II-B).

Near-Far [Davidson et al., PPoPP'14] simplifies delta-stepping to two
queues: the *Near* queue holds vertices whose tentative distance is below
the current split ``(i+1)·Δ``, the *Far* queue holds everything else.
Near is drained with repeated relax iterations; when empty, the split
advances and Far is filtered into Near (stale entries — whose distance
improved since insertion — are dropped).

Two entry points:

* :func:`near_far` — one source, mirroring the per-thread-block procedure
  ``Near_Far_TB`` of the paper's Algorithm 2.
* :func:`near_far_batch` — ``bat`` sources at once, vectorised over a
  ``(bat, n)`` distance matrix exactly as the MSSP kernel processes one
  batch. Collects the workload statistics (relaxations, heavy-vertex
  relaxations, iteration count, would-be child-kernel launches) that
  :func:`repro.gpu.kernels.mssp_batch_cost` turns into simulated kernel
  time.

Both are label-correcting and exact for non-negative weights (property
tests compare against Dijkstra and scipy under Δ sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sssp.frontier import expand_frontier, scatter_min, segmented_arange, suggest_delta

__all__ = ["NearFarStats", "near_far", "near_far_batch", "DEFAULT_HEAVY_DEGREE", "EDGES_PER_CHILD_BLOCK"]

#: out-degree above which the paper's dynamic-parallelism path would launch a
#: child kernel for the vertex's edge list ("vertices with a large
#: out-degree", §III-B — one warp's worth of edges)
DEFAULT_HEAVY_DEGREE = 32
#: edge-list partition size handed to each child thread block (Section III-B
#: partitions concatenated heavy edge lists into equal chunks)
EDGES_PER_CHILD_BLOCK = 256


@dataclass(frozen=True)
class NearFarStats:
    """Workload record of a Near-Far execution (single source or batch)."""

    relaxations: int
    heavy_relaxations: int
    iterations: int
    child_launches: int
    splits_advanced: int


def near_far(
    graph: CSRGraph,
    source: int,
    *,
    delta: float | None = None,
    heavy_degree: int = DEFAULT_HEAVY_DEGREE,
) -> tuple[np.ndarray, NearFarStats]:
    """Exact shortest distances from one source via Near-Far."""
    dist, stats = near_far_batch(graph, np.array([source]), delta=delta, heavy_degree=heavy_degree)
    return dist[0], stats


def near_far_batch(
    graph: CSRGraph,
    sources: np.ndarray,
    *,
    delta: float | None = None,
    heavy_degree: int = DEFAULT_HEAVY_DEGREE,
) -> tuple[np.ndarray, NearFarStats]:
    """Shortest distances from every source in ``sources`` (one MSSP batch).

    Returns ``(dist, stats)`` where ``dist`` has shape ``(len(sources), n)``.
    The batch shares a split level: each relax iteration processes the union
    of all sources' Near queues, matching one grid-wide iteration of the
    MSSP kernel (per-block queues, grid-level synchronisation).
    """
    sources = np.asarray(sources, dtype=np.int64)
    n = graph.num_vertices
    if sources.size == 0:
        return np.empty((0, n)), NearFarStats(0, 0, 0, 0, 0)
    if sources.min() < 0 or sources.max() >= n:
        raise ValueError("source out of range")
    if delta is None:
        delta = suggest_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    bat = sources.size
    deg = np.diff(graph.indptr)
    heavy_vertex = deg > heavy_degree

    dist = np.full((bat, n), np.inf)
    dist[np.arange(bat), sources] = 0.0
    flat = dist.ravel()

    near = np.zeros((bat, n), dtype=bool)
    near[np.arange(bat), sources] = True
    far = np.zeros((bat, n), dtype=bool)

    split = float(delta)
    relaxations = 0
    heavy_relax = 0
    iterations = 0
    child_launches = 0
    splits_advanced = 0

    while True:
        rows, cols = np.nonzero(near)
        if rows.size == 0:
            # Near exhausted: advance the split past the smallest Far
            # distance (skipping empty Δ ranges) and refill Near.
            frows, fcols = np.nonzero(far)
            if frows.size == 0:
                break
            fdist = dist[frows, fcols]
            # Drop stale Far entries (distance may have improved below the
            # current split — those were already processed via Near).
            fresh = fdist >= split
            far[frows[~fresh], fcols[~fresh]] = False
            frows, fcols, fdist = frows[fresh], fcols[fresh], fdist[fresh]
            if frows.size == 0:
                break
            min_far = fdist.min()
            split = (np.floor(min_far / delta) + 1.0) * delta
            splits_advanced += 1
            move = fdist < split
            near[frows[move], fcols[move]] = True
            far[frows[move], fcols[move]] = False
            continue

        near[rows, cols] = False
        iterations += 1

        tails, heads, w = expand_frontier(graph, cols)
        relaxations += heads.size
        if heads.size == 0:
            continue
        src_rows = rows[tails]
        cand = dist[rows[tails], cols[tails]] + w

        # Dynamic-parallelism accounting: relaxations sourced at heavy
        # vertices, and the child blocks needed for their edge lists.
        hmask = heavy_vertex[cols]
        if hmask.any():
            heavy_deg = deg[cols[hmask]]
            heavy_relax += int(heavy_deg.sum())
            child_launches += 2 + int(
                np.ceil(heavy_deg.sum() / EDGES_PER_CHILD_BLOCK)
            )

        improved_flat, improved_vals = scatter_min(flat, src_rows * n + heads, cand)
        if improved_flat.size == 0:
            continue
        irows = improved_flat // n
        icols = improved_flat % n
        go_near = improved_vals < split
        near[irows[go_near], icols[go_near]] = True
        far[irows[~go_near], icols[~go_near]] = True

    return dist, NearFarStats(
        relaxations=relaxations,
        heavy_relaxations=heavy_relax,
        iterations=iterations,
        child_launches=child_launches,
        splits_advanced=splits_advanced,
    )
