"""Delta-stepping [Meyer & Sanders, 2003].

The generalisation bridging Dijkstra and Bellman-Ford (Section II-B):
vertices are bucketed by ``floor(dist/Δ)``; the lowest non-empty bucket is
settled with light-edge (w < Δ) inner iterations, then heavy edges relax
once. This implementation backs the **Galois** baseline comparison (the
Galois library's APSP runs delta-stepping per source) and serves as a
reference for the Near-Far simplification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sssp.frontier import expand_frontier, scatter_min, suggest_delta

__all__ = ["DeltaSteppingStats", "delta_stepping"]


@dataclass(frozen=True)
class DeltaSteppingStats:
    """Operation counts of one delta-stepping run."""

    buckets_processed: int
    inner_iterations: int
    relaxations: int


def delta_stepping(
    graph: CSRGraph, source: int, *, delta: float | None = None
) -> tuple[np.ndarray, DeltaSteppingStats]:
    """Exact shortest distances from ``source`` (non-negative weights)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    if delta is None:
        delta = suggest_delta(graph)
    if delta <= 0:
        raise ValueError("delta must be positive")

    light_mask = graph.weights < delta
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    # pending[v]: v has an unprocessed update
    pending = np.zeros(n, dtype=bool)
    pending[source] = True

    relaxations = 0
    inner = 0
    buckets = 0

    def relax_edges(frontier: np.ndarray, use_light: bool) -> np.ndarray:
        nonlocal relaxations
        tails, heads, w = expand_frontier(graph, frontier)
        deg = graph.indptr[frontier + 1] - graph.indptr[frontier]
        sel = light_mask if use_light else ~light_mask
        pick = np.repeat(graph.indptr[frontier], deg) + _seg_arange(deg)
        mask = sel[pick]
        tails, heads, w = tails[mask], heads[mask], w[mask]
        relaxations += heads.size
        cand = dist[frontier[tails]] + w
        improved, _ = scatter_min(dist, heads, cand)
        return improved

    while pending.any():
        pend_idx = np.nonzero(pending)[0]
        cur = int(np.floor(dist[pend_idx].min() / delta))
        hi = (cur + 1) * delta
        buckets += 1
        settled_this_bucket: list[np.ndarray] = []
        while True:
            in_bucket = pend_idx[dist[pend_idx] < hi]
            if in_bucket.size == 0:
                break
            pending[in_bucket] = False
            settled_this_bucket.append(in_bucket)
            improved = relax_edges(in_bucket, use_light=True)
            inner += 1
            pending[improved] = True
            pend_idx = np.nonzero(pending)[0]
        if settled_this_bucket:
            bucket_all = np.unique(np.concatenate(settled_this_bucket))
            improved = relax_edges(bucket_all, use_light=False)
            pending[improved] = True
    return dist, DeltaSteppingStats(
        buckets_processed=buckets, inner_iterations=inner, relaxations=relaxations
    )


def _seg_arange(counts: np.ndarray) -> np.ndarray:
    from repro.sssp.frontier import segmented_arange

    return segmented_arange(counts)
