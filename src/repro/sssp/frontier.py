"""Vectorised worklist primitives shared by the SSSP implementations.

These are the numpy equivalents of the GPU kernels' data-parallel steps:
:func:`expand_frontier` gathers the out-edges of every frontier vertex
(the coalesced edge-list walk) and :func:`scatter_min` performs the
``atomicMin`` reduction into the distance array. ``scatter_min`` sorts and
uses ``np.minimum.reduceat`` instead of ``np.minimum.at`` — same semantics,
an order of magnitude faster at the batch sizes Johnson's algorithm
produces.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["expand_frontier", "scatter_min", "segmented_arange", "suggest_delta"]


def segmented_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` without a Python loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


def expand_frontier(
    graph: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather all out-edges of ``vertices``.

    Returns ``(tails, heads, weights)`` — ``tails[i]`` is the *position in
    the input array* (not the vertex id) owning edge ``i``, so callers can
    map edges back to per-frontier-entry state (e.g. the source row in a
    batched MSSP).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    deg = graph.indptr[vertices + 1] - graph.indptr[vertices]
    pos = np.repeat(graph.indptr[vertices], deg) + segmented_arange(deg)
    tails = np.repeat(np.arange(vertices.size, dtype=np.int64), deg)
    return tails, graph.indices[pos], graph.weights[pos]


def scatter_min(
    target: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``target[idx] = min(target[idx], vals)`` with duplicate indices.

    Returns ``(improved_idx, improved_vals)`` — the positions whose value
    actually decreased, already deduplicated. This is the vectorised
    ``atomicMin`` + "did I win" check of the GPU relax kernel.
    """
    if idx.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=target.dtype)
    order = np.argsort(idx, kind="stable")
    idx_s = idx[order]
    vals_s = vals[order]
    first = np.ones(idx_s.size, dtype=bool)
    first[1:] = idx_s[1:] != idx_s[:-1]
    starts = np.nonzero(first)[0]
    reduced = np.minimum.reduceat(vals_s, starts)
    uniq = idx_s[starts]
    better = reduced < target[uniq]
    winners = uniq[better]
    target[winners] = reduced[better]
    return winners, reduced[better]


def suggest_delta(graph: CSRGraph) -> float:
    """Heuristic Δ for Near-Far / delta-stepping: mean edge weight.

    Davidson et al. recommend Δ near the average weight divided by the
    average degree for dense frontiers; the paper does not report its Δ, and
    the mean weight is a robust default across our graph families (tests
    sweep Δ to confirm correctness is Δ-independent).
    """
    if graph.num_edges == 0:
        return 1.0
    mean_w = float(graph.weights.mean())
    avg_deg = graph.num_edges / max(1, graph.num_vertices)
    return max(mean_w / max(1.0, np.sqrt(avg_deg)), 1e-6)
