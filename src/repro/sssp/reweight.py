"""Johnson reweighting: negative-edge support (classic Johnson's, step 1).

The paper's graphs have non-negative weights, so its Johnson variant skips
the reweighting phase; we implement it as the natural extension. Given a
digraph with (possibly negative) edge weights and no negative cycle,
Bellman–Ford from a virtual super-source yields potentials ``h`` with
``w'(u,v) = w(u,v) + h[u] − h[v] ≥ 0``; any non-negative-weights APSP then
runs on ``w'`` and original distances are restored as
``dist(u,v) = dist'(u,v) − h[u] + h[v]``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["NegativeCycleError", "johnson_potentials", "reweight_graph", "restore_distances"]


class NegativeCycleError(ValueError):
    """The graph contains a cycle of negative total weight."""


def johnson_potentials(
    num_vertices: int, src: np.ndarray, dst: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Bellman–Ford potentials from a virtual source connected to every
    vertex with weight 0. Raises :class:`NegativeCycleError`.

    Operates on raw edge arrays because :class:`CSRGraph` (deliberately)
    rejects negative weights.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    h = np.zeros(num_vertices)  # virtual source: dist 0 to everyone
    for _round in range(max(1, num_vertices)):
        cand = h[src] + weights
        nxt = h.copy()
        np.minimum.at(nxt, dst, cand)
        if np.array_equal(nxt, h):
            return h
        h = nxt
    # one extra round: any further improvement proves a negative cycle
    cand = h[src] + weights
    nxt = h.copy()
    np.minimum.at(nxt, dst, cand)
    if not np.array_equal(nxt, h):
        raise NegativeCycleError("graph contains a negative-weight cycle")
    return h


def reweight_graph(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    *,
    name: str = "",
) -> tuple[CSRGraph, np.ndarray]:
    """Build the non-negative reweighted graph; returns ``(graph, h)``."""
    h = johnson_potentials(num_vertices, src, dst, weights)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    w = np.asarray(weights, dtype=np.float64) + h[src] - h[dst]
    # clamp float noise: reweighted weights are ≥ 0 by construction
    w = np.maximum(w, 0.0)
    return CSRGraph.from_edges(num_vertices, src, dst, w, name=name), h


def restore_distances(dist: np.ndarray, h: np.ndarray, *, out=None) -> np.ndarray:
    """Undo the reweighting on a distance matrix (rows = sources):
    ``dist(u,v) = dist'(u,v) − h[u] + h[v]``. Infinite entries stay inf."""
    if out is None:
        out = np.array(dist, dtype=np.float64, copy=True)
    else:
        out[...] = dist
    out += h[None, :] - h[:, None]
    return out
