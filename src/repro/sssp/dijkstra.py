"""Dijkstra's algorithm with a binary heap.

This is the work-optimal sequential SSSP (Section II-B of the paper) and the
engine of the **BGL-plus** CPU baseline: one Dijkstra instance per source,
parallelised across sources with OpenMP in the paper, modelled by
:mod:`repro.cpumodel` here. The returned stats (heap pushes/pops, edge
relaxations) feed that model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["DijkstraStats", "dijkstra"]


@dataclass(frozen=True)
class DijkstraStats:
    """Operation counts of one Dijkstra run (for the CPU cost model)."""

    pushes: int
    pops: int
    relaxations: int

    @property
    def heap_ops(self) -> int:
        return self.pushes + self.pops


def dijkstra(
    graph: CSRGraph, source: int, *, with_predecessors: bool = False
) -> tuple[np.ndarray, DijkstraStats] | tuple[np.ndarray, np.ndarray, DijkstraStats]:
    """Exact shortest distances from ``source``.

    Returns ``(dist, stats)`` or ``(dist, pred, stats)`` when
    ``with_predecessors`` is set (``pred[v] = -1`` for unreachable/source).
    Uses the lazy-deletion binary-heap formulation (stale entries skipped on
    pop), matching what Boost's ``dijkstra_shortest_paths`` costs.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf)
    pred = np.full(n, -1, dtype=np.int64) if with_predecessors else None
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    pushes = 1
    pops = 0
    relaxations = 0
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        pops += 1
        if d > dist[u]:
            continue  # stale entry
        for e in range(indptr[u], indptr[u + 1]):
            relaxations += 1
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                if pred is not None:
                    pred[v] = u
                heapq.heappush(heap, (nd, v))
                pushes += 1
    stats = DijkstraStats(pushes=pushes, pops=pops, relaxations=relaxations)
    if pred is not None:
        return dist, pred, stats
    return dist, stats
