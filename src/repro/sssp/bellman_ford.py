"""Bellman-Ford: the fully parallel, work-inefficient end of the spectrum.

Section II-B of the paper positions Bellman-Ford as maximally parallel
(every edge relaxes independently each round) but ``O(nm)`` in the worst
case. We implement the standard frontier-pruned variant: only edges out of
vertices whose distance changed last round are relaxed, fully vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sssp.frontier import expand_frontier, scatter_min

__all__ = ["BellmanFordStats", "bellman_ford"]


@dataclass(frozen=True)
class BellmanFordStats:
    """Operation counts of one Bellman-Ford run."""

    rounds: int
    relaxations: int


def bellman_ford(
    graph: CSRGraph, source: int, *, max_rounds: int | None = None
) -> tuple[np.ndarray, BellmanFordStats]:
    """Exact shortest distances from ``source`` (non-negative weights).

    Converges in at most ``n − 1`` rounds; raises ``RuntimeError`` if it has
    not (which with non-negative weights indicates a bug, not a negative
    cycle — the graph type forbids negative weights).
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    limit = max_rounds if max_rounds is not None else max(1, n - 1)
    relaxations = 0
    rounds = 0
    while frontier.size:
        if rounds >= limit + 1:
            raise RuntimeError("Bellman-Ford failed to converge")
        tails, heads, w = expand_frontier(graph, frontier)
        relaxations += heads.size
        cand = dist[frontier[tails]] + w
        improved, _ = scatter_min(dist, heads, cand)
        frontier = improved
        rounds += 1
    return dist, BellmanFordStats(rounds=rounds, relaxations=relaxations)
