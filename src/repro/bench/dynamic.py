"""Update-latency vs re-solve crossover baseline (``repro bench-dynamic``).

Everything here is closed-form: the transfer volumes come from
:mod:`repro.verifyplan.updatebounds` (proven equal to the IR and the
dynamic trace by ``verify-update``) and the time model prices them
against a :class:`~repro.gpu.device.DeviceSpec`'s bus and min-plus
rates. No device is instantiated and nothing executes, so the baseline
is exact, machine-independent, and committable —
``bench-dynamic --check`` gates CI on the recorded crossover without
rewriting anything.

Per configuration the record answers the selection question the paper
asks of every method pair: *when does patching stop paying?* A batch of
``k`` decreases costs one ``O(n²)`` sweep amortised over ``k`` edges;
``crossover_updates`` is the number of sequential single-edge patches
whose summed cost reaches one full blocked-FW re-solve.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.verifyplan.bounds import fw_exact_h2d_bytes
from repro.verifyplan.updatebounds import (
    decrease_d2h_bytes,
    decrease_h2d_bytes,
    increase_d2h_bytes,
)

__all__ = [
    "DYNAMIC_CONFIGS",
    "bench_dynamic_path",
    "collect_dynamic",
    "compare_dynamic",
    "load_dynamic",
    "save_dynamic",
]

_ELEM = 4

#: modeled configurations: (vertices, block rows, edges, device). Sizes
#: bracket the paper's single-GPU out-of-core range on both Table II cards.
DYNAMIC_CONFIGS = (
    {"name": "n1000-v100", "n": 1000, "nd": 4, "m": 2600, "device": "v100"},
    {"name": "n5000-v100", "n": 5000, "nd": 8, "m": 13000, "device": "v100"},
    {"name": "n2000-k80", "n": 2000, "nd": 4, "m": 5200, "device": "k80"},
)

#: batched-decrease widths recorded per configuration
BATCH_SIZES = (1, 4, 16)

#: audited fields that must match the baseline exactly
BASELINE_FIELDS = (
    "decrease_us",
    "per_update_us",
    "resolve_us",
    "speedup",
    "crossover_updates",
    "increase_us",
)


def bench_dynamic_path() -> Path:
    """Canonical location of ``BENCH_dynamic.json`` (repo root, or
    ``REPRO_BENCH_DYNAMIC`` when set)."""
    override = os.environ.get("REPRO_BENCH_DYNAMIC")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_dynamic.json"


def _device_spec(name: str) -> Any:
    from repro.gpu.device import K80, V100

    return {"v100": V100, "k80": K80}[name]


def _block_sizes(n: int, nd: int) -> list[int]:
    b = -(-n // nd)
    return [min(b, n - i * b) for i in range(nd) if n - i * b > 0]


def _seconds(spec: Any, nbytes: int, num_copies: int, flops: int) -> float:
    return (
        nbytes / spec.transfer_throughput
        + num_copies * spec.transfer_latency
        + flops / spec.minplus_rate
    )


def _decrease_seconds(spec: Any, n: int, nd: int, k: int) -> float:
    nbytes = decrease_h2d_bytes(n, k) + decrease_d2h_bytes(n)
    copies = 3 + 2 * nd * nd  # panels up + every block up and back
    flops = 2 * k**3 + 2 * n * k * k + 2 * n * n * k
    return _seconds(spec, nbytes, copies, flops)


def _increase_seconds(spec: Any, n: int, nd: int, m: int, affected: int) -> float:
    csr_bytes = 8 * (n + 1) + 16 * m
    nbytes = csr_bytes + increase_d2h_bytes(n, affected)
    copies = 3 + nd
    # SSSP rows priced at the relax rate: |X| runs over m edges, log n heap
    flops = affected * m * max(1, n.bit_length())
    return nbytes / spec.transfer_throughput + copies * spec.transfer_latency + flops / spec.relax_rate


def _resolve_seconds(spec: Any, n: int, nd: int) -> float:
    sizes = _block_sizes(n, nd)
    nbytes = fw_exact_h2d_bytes(sizes) + nd * n * n * _ELEM
    copies = nd * (2 + 3 * (nd - 1) + (nd - 1) ** 2)
    flops = 2 * n**3
    return _seconds(spec, nbytes, copies, flops)


def collect_dynamic(configs=DYNAMIC_CONFIGS) -> dict:
    """Model every configuration; returns the baseline payload."""
    entries: dict[str, Any] = {}
    for cfg in configs:
        spec = _device_spec(cfg["device"])
        n, nd, m = cfg["n"], cfg["nd"], cfg["m"]
        resolve = _resolve_seconds(spec, n, nd)
        single = _decrease_seconds(spec, n, nd, 1)
        rows = {}
        for k in BATCH_SIZES:
            dec = _decrease_seconds(spec, n, nd, k)
            rows[str(k)] = {
                "decrease_us": round(dec * 1e6, 3),
                "per_update_us": round(dec * 1e6 / k, 3),
                "resolve_us": round(resolve * 1e6, 3),
                "speedup": round(resolve / dec, 3),
                "crossover_updates": -(-round(resolve, 12) // round(single, 12)),
                "increase_us": round(
                    _increase_seconds(spec, n, nd, m, n // 4) * 1e6, 3
                ),
            }
        entries[cfg["name"]] = {"config": dict(cfg), "batches": rows}
    return {
        "experiment": "dynamic",
        "title": "incremental-update latency vs full re-solve crossover (modeled)",
        "generated_by": "python -m repro bench-dynamic",
        "fields": list(BASELINE_FIELDS),
        "configs": entries,
    }


def save_dynamic(payload: dict | None = None, path: Path | str | None = None) -> Path:
    """Write the baseline to ``BENCH_dynamic.json`` (stable key order)
    and mirror the crossover table into ``benchmarks/results/`` — the
    mirror is only refreshed for the canonical (non-redirected) path,
    and only when its gated content actually changed."""
    payload = payload or collect_dynamic()
    path = Path(path) if path else bench_dynamic_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    canonical = Path(__file__).resolve().parents[3] / "BENCH_dynamic.json"
    if path.resolve() == canonical:
        _mirror_record(payload)
    return path


def _mirror_record(payload: dict) -> None:
    from repro.bench.kernels import _write_if_changed
    from repro.bench.runner import results_dir

    rows = []
    for name, entry in sorted(payload["configs"].items()):
        for k, row in sorted(entry["batches"].items(), key=lambda kv: int(kv[0])):
            rows.append({"graph": name, "batch_k": int(k), **row})
    record = {
        "experiment": "dynamic",
        "title": payload["title"],
        "generated_by": payload["generated_by"],
        "paper_expectation": (
            "incremental updates amortise: a batched O(n²) patch beats the "
            "O(n_d·n²)-movement re-solve until hundreds of sequential updates"
        ),
        "rows": rows,
        "notes": ["modeled (closed-form) — canonical copy: BENCH_dynamic.json"],
    }
    _write_if_changed(results_dir() / "dynamic.json", record)


def load_dynamic(path: Path | str | None = None) -> dict:
    """Read the checked-in baseline."""
    path = Path(path) if path else bench_dynamic_path()
    return json.loads(path.read_text())


def compare_dynamic(baseline: dict | None = None) -> list[str]:
    """Recompute the model and diff it against ``baseline``; empty list
    means every modeled figure matches the recorded crossover exactly."""
    baseline = baseline or load_dynamic()
    current = collect_dynamic()
    drifts: list[str] = []
    for name, entry in baseline.get("configs", {}).items():
        cur = current["configs"].get(name)
        if cur is None:
            drifts.append(f"{name}: configuration missing from current model")
            continue
        for k, recorded in entry["batches"].items():
            actual = cur["batches"].get(k)
            if actual is None:
                drifts.append(f"{name}/k={k}: batch size missing from current model")
                continue
            for fld in BASELINE_FIELDS:
                if recorded.get(fld) != actual.get(fld):
                    drifts.append(
                        f"{name}/k={k}: {fld} drifted "
                        f"{recorded.get(fld)!r} -> {actual.get(fld)!r}"
                    )
    for name in current["configs"]:
        if name not in baseline.get("configs", {}):
            drifts.append(f"{name}: new configuration not in baseline (re-record)")
    return drifts
