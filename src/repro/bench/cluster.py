"""Cluster scaling baseline (``python -m repro bench-cluster``).

Pins the distributed blocked-FW model's **strong-scaling** (fixed
``n``, growing node/device count) and **weak-scaling** (``n ∝ √N``,
constant matrix share per node) curves into ``BENCH_cluster.json`` at
the repo root. For every configuration the sweep records the statically
predicted makespan (α–β link replay,
:func:`repro.verifyplan.timing.predict_cluster_timing`), the network
busy time, and the exact communication volume — and *also* executes the
dynamic cluster simulator, asserting its simulated makespan equals the
static prediction bit-for-bit (``exact`` per entry).

Both sides are deterministic models (simulated clocks, not wall
clocks), so the baseline is machine-independent and ``--check`` can
demand exact equality: any schedule or cost-model drift fails CI before
a wall-clock benchmark would notice.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "SCALING_CONFIGS",
    "bench_cluster_path",
    "collect_baseline",
    "compare_baseline",
    "load_baseline",
    "save_baseline",
]

#: per-entry fields that must match the recorded baseline exactly (the
#: models are deterministic, so even the float makespans are pinned)
BASELINE_FIELDS = (
    "ok",
    "exact",
    "block_size",
    "num_messages",
    "total_bytes",
    "peak_bytes",
    "num_kernels",
    "makespan",
    "net_seconds",
)

#: (entry name, vertices, nodes, devices/node, edge seed) — strong
#: scaling holds n fixed while the fleet grows; weak scaling grows the
#: matrix with the node count (n ∝ √N keeps the per-node share flat)
SCALING_CONFIGS = (
    {"name": "strong-n180-1x1", "curve": "strong", "n": 180, "nodes": 1, "devices": 1, "seed": 5},
    {"name": "strong-n180-2x1", "curve": "strong", "n": 180, "nodes": 2, "devices": 1, "seed": 5},
    {"name": "strong-n180-2x2", "curve": "strong", "n": 180, "nodes": 2, "devices": 2, "seed": 5},
    {"name": "strong-n180-4x1", "curve": "strong", "n": 180, "nodes": 4, "devices": 1, "seed": 5},
    {"name": "strong-n180-4x2", "curve": "strong", "n": 180, "nodes": 4, "devices": 2, "seed": 5},
    {"name": "weak-n120-1x1", "curve": "weak", "n": 120, "nodes": 1, "devices": 1, "seed": 6},
    {"name": "weak-n170-2x1", "curve": "weak", "n": 170, "nodes": 2, "devices": 1, "seed": 6},
    {"name": "weak-n240-4x1", "curve": "weak", "n": 240, "nodes": 4, "devices": 1, "seed": 6},
)


def bench_cluster_path() -> Path:
    """Canonical location of ``BENCH_cluster.json`` (repo root, or
    ``REPRO_BENCH_CLUSTER`` when set)."""
    override = os.environ.get("REPRO_BENCH_CLUSTER")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_cluster.json"


def _run_config(cfg: dict) -> dict:
    from repro.cluster import ClusterSpec, verify_cluster
    from repro.graphs.generators import rmat

    graph = rmat(cfg["n"], 6 * cfg["n"], seed=cfg["seed"])
    cluster = ClusterSpec.make(cfg["nodes"], cfg["devices"])
    ver = verify_cluster(cfg["n"], cluster, graph=graph)
    cross = ver.cross_validation or {}
    timing = ver.timing
    return {
        "config": dict(cfg),
        "cluster": ver.cluster,
        "grid": list(ver.grid),
        "ok": ver.ok,
        "exact": bool(cross) and all(cross.values()),
        "block_size": ver.block_size,
        "num_messages": ver.comm.num_messages if ver.comm else 0,
        "total_bytes": ver.comm.total_bytes if ver.comm else 0,
        "peak_bytes": ver.peak_bytes,
        "num_kernels": ver.num_kernels,
        "makespan": timing.makespan if timing else 0.0,
        "net_seconds": timing.net_seconds if timing else 0.0,
        "compute_seconds": timing.compute_seconds if timing else 0.0,
    }


def collect_baseline(configs=SCALING_CONFIGS) -> dict:
    """Verify + simulate every scaling configuration; return the payload."""
    entries = {cfg["name"]: _run_config(cfg) for cfg in configs}
    return {
        "experiment": "cluster",
        "title": "distributed blocked-FW scaling baseline (predicted == simulated)",
        "generated_by": "python -m repro bench-cluster",
        "fields": list(BASELINE_FIELDS),
        "configs": entries,
    }


def save_baseline(payload: dict | None = None, path: Path | str | None = None) -> Path:
    """Write the baseline to ``BENCH_cluster.json``."""
    payload = payload or collect_baseline()
    path = Path(path) if path else bench_cluster_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_baseline(path: Path | str | None = None) -> dict:
    """Read the checked-in baseline."""
    path = Path(path) if path else bench_cluster_path()
    return json.loads(path.read_text())


def compare_baseline(baseline: dict | None = None) -> list[str]:
    """Recompute the sweep and diff it against ``baseline`` exactly."""
    baseline = baseline or load_baseline()
    current = collect_baseline()
    drifts: list[str] = []
    for name, entry in baseline.get("configs", {}).items():
        cur = current["configs"].get(name)
        if cur is None:
            drifts.append(f"{name}: configuration missing from current sweep")
            continue
        for field in BASELINE_FIELDS:
            if entry.get(field) != cur.get(field):
                drifts.append(
                    f"{name}: {field} drifted "
                    f"{entry.get(field)!r} -> {cur.get(field)!r}"
                )
    for name in current["configs"]:
        if name not in baseline.get("configs", {}):
            drifts.append(f"{name}: new configuration not in baseline (re-record)")
    return drifts
