"""Serving-layer latency/throughput baseline (``repro bench-serve``).

A deterministic load generator drives the real :class:`~repro.serve.service.
APSPService` — admission, keyed-dedup coalescing, the persistent simulated
device, the modelled MSSP kernel cost — at fixed offered loads of
*distinct-source* SSSP queries, once with the paper's ``bat`` batching and
once with the batch size capped at 1 (the per-query path). Everything runs
on the service's modeled clock, so p50/p99 latency and throughput are
machine-independent and ``bench-serve --check`` gates CI with exact
equality, plus the issue's hard floor: batched throughput must stay
**≥ 3×** the unbatched path at offered loads ≥ 64.

Distinct sources make this the *adversarial* shape for batching — keyed
dedup never merges two queries, so the whole win must come from occupancy
(``mssp_batch_cost``: a 1-source launch leaves the grid at ``1/384`` of
the V100's saturation point).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.graphs.generators import rmat, road_like
from repro.serve.loadgen import generate_queries
from repro.serve.service import APSPService

__all__ = [
    "OFFERED_LOADS",
    "SERVE_CONFIGS",
    "SPEEDUP_FLOOR",
    "SPEEDUP_GATE_LOAD",
    "bench_serve_path",
    "collect_serve",
    "compare_serve",
    "load_serve",
    "save_serve",
]

#: benchmark graphs (V100 spec: the occupancy story needs the real
#: ``max_active_blocks`` ceiling, not the shrunken test device)
SERVE_CONFIGS = (
    {"name": "rmat-n244-v100", "kind": "rmat", "n": 244, "m": 1600,
     "device": "v100", "seed": 7},
    {"name": "road-n300-v100", "kind": "road", "n": 300, "deg": 2.5,
     "device": "v100", "seed": 11},
)

#: offered loads: concurrent distinct-source SSSP queries arriving at t=0
OFFERED_LOADS = (16, 64, 128)

#: CI floor on batched/unbatched throughput, applied at loads >= the gate
SPEEDUP_FLOOR = 3.0
SPEEDUP_GATE_LOAD = 64

#: audited fields that must match the baseline exactly
BASELINE_FIELDS = (
    "batched_p50_us",
    "batched_p99_us",
    "batched_qps",
    "unbatched_p50_us",
    "unbatched_p99_us",
    "unbatched_qps",
    "speedup",
)


def bench_serve_path() -> Path:
    """Canonical location of ``BENCH_serve.json`` (repo root, or
    ``REPRO_BENCH_SERVE`` when set)."""
    override = os.environ.get("REPRO_BENCH_SERVE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_serve.json"


def _build_graph(cfg: dict) -> Any:
    if cfg["kind"] == "rmat":
        return rmat(cfg["n"], cfg["m"], seed=cfg["seed"], name=cfg["name"])
    return road_like(cfg["n"], cfg["deg"], seed=cfg["seed"], name=cfg["name"])


def _device_spec(name: str) -> Any:
    from repro.gpu.device import K80, V100

    return {"v100": V100, "k80": K80}[name]


def _run_leg(graph: Any, spec: Any, load: int, *, batch_size: "int | None") -> dict:
    """One offered-load leg: submit ``load`` distinct-source SSSP queries
    at t=0, drain, and summarise the modeled latency distribution."""
    service = APSPService(graph, spec=spec, batch_size=batch_size, row_budget=0)
    for query in generate_queries(
        graph, num_queries=load, seed=0,
        point_fraction=0.0, full_fraction=0.0, distinct_sources=True,
    ):
        service.submit(query, at=0.0)
    responses = service.drain()
    assert len(responses) == load
    latencies = np.array([r.latency for r in responses], dtype=np.float64)
    makespan = service.now
    return {
        "p50_us": float(np.percentile(latencies, 50) * 1e6),
        "p99_us": float(np.percentile(latencies, 99) * 1e6),
        "qps": load / makespan,
    }


def collect_serve(configs=None, loads=None) -> dict:
    """Drive every configuration at every offered load; returns the
    baseline payload. Defaults resolve at call time (so tests can
    monkeypatch the module-level tables)."""
    configs = SERVE_CONFIGS if configs is None else configs
    loads = OFFERED_LOADS if loads is None else loads
    entries: dict[str, Any] = {}
    for cfg in configs:
        graph = _build_graph(cfg)
        spec = _device_spec(cfg["device"])
        rows: dict[str, Any] = {}
        for load in loads:
            batched = _run_leg(graph, spec, load, batch_size=None)
            unbatched = _run_leg(graph, spec, load, batch_size=1)
            rows[str(load)] = {
                "batched_p50_us": round(batched["p50_us"], 3),
                "batched_p99_us": round(batched["p99_us"], 3),
                "batched_qps": round(batched["qps"], 3),
                "unbatched_p50_us": round(unbatched["p50_us"], 3),
                "unbatched_p99_us": round(unbatched["p99_us"], 3),
                "unbatched_qps": round(unbatched["qps"], 3),
                "speedup": round(batched["qps"] / unbatched["qps"], 3),
            }
        entries[cfg["name"]] = {
            "config": dict(cfg),
            "num_edges": graph.num_edges,
            "loads": rows,
        }
    return {
        "experiment": "serve",
        "title": "service throughput/latency vs offered load, batched vs per-query (modeled)",
        "generated_by": "python -m repro bench-serve",
        "fields": list(BASELINE_FIELDS),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gate_load": SPEEDUP_GATE_LOAD,
        "configs": entries,
    }


def save_serve(payload: dict | None = None, path: Path | str | None = None) -> Path:
    """Write the baseline to ``BENCH_serve.json`` (stable key order) and
    mirror the table into ``benchmarks/results/`` — the mirror is only
    refreshed for the canonical (non-redirected) path, and only when its
    gated content actually changed."""
    payload = payload or collect_serve()
    path = Path(path) if path else bench_serve_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    canonical = Path(__file__).resolve().parents[3] / "BENCH_serve.json"
    if path.resolve() == canonical:
        _mirror_record(payload)
    return path


def _mirror_record(payload: dict) -> None:
    from repro.bench.kernels import _write_if_changed
    from repro.bench.runner import results_dir

    rows = []
    for name, entry in sorted(payload["configs"].items()):
        for load, row in sorted(entry["loads"].items(), key=lambda kv: int(kv[0])):
            rows.append({"graph": name, "offered_load": int(load), **row})
    record = {
        "experiment": "serve",
        "title": payload["title"],
        "generated_by": payload["generated_by"],
        "paper_expectation": (
            "amortising many SSSP sources per MSSP launch restores occupancy: "
            "batched serving sustains >= 3x the per-query throughput at "
            "offered loads >= 64"
        ),
        "rows": rows,
        "notes": ["modeled clock — canonical copy: BENCH_serve.json"],
    }
    _write_if_changed(results_dir() / "serve.json", record)


def load_serve(path: Path | str | None = None) -> dict:
    """Read the checked-in baseline."""
    path = Path(path) if path else bench_serve_path()
    return json.loads(path.read_text())


def compare_serve(baseline: dict | None = None) -> list[str]:
    """Re-drive the service and diff against ``baseline``; empty list
    means every modeled figure matches exactly AND the ≥ 3× batching
    floor holds at every gated load."""
    baseline = baseline or load_serve()
    current = collect_serve()
    drifts: list[str] = []
    for name, entry in baseline.get("configs", {}).items():
        cur = current["configs"].get(name)
        if cur is None:
            drifts.append(f"{name}: configuration missing from current bench")
            continue
        for load, recorded in entry["loads"].items():
            actual = cur["loads"].get(load)
            if actual is None:
                drifts.append(f"{name}/load={load}: load missing from current bench")
                continue
            for fld in BASELINE_FIELDS:
                if recorded.get(fld) != actual.get(fld):
                    drifts.append(
                        f"{name}/load={load}: {fld} drifted "
                        f"{recorded.get(fld)!r} -> {actual.get(fld)!r}"
                    )
            if int(load) >= SPEEDUP_GATE_LOAD and actual["speedup"] < SPEEDUP_FLOOR:
                drifts.append(
                    f"{name}/load={load}: batched speedup {actual['speedup']} "
                    f"below the {SPEEDUP_FLOOR}x floor"
                )
    for name in current["configs"]:
        if name not in baseline.get("configs", {}):
            drifts.append(f"{name}: new configuration not in baseline (re-record)")
    return drifts
