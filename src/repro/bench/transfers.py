"""Transfer-volume baseline (``python -m repro bench-transfers``).

The static plan verifier (:mod:`repro.verifyplan`) predicts, per
algorithm, exactly how many bytes each OOC schedule moves across PCIe
and how much device memory it peaks at. This module pins those symbolic
predictions for a fixed set of graph/device configurations into
``BENCH_transfers.json`` at the repo root so CI can catch *transfer
regressions* — a driver change that silently starts re-uploading
resident blocks or doubles its download volume fails the
``--check`` gate (and ``tests/test_transfer_baseline.py``) before any
wall-clock benchmark would notice.

Everything here is static: no :class:`~repro.gpu.device.Device` is
instantiated and nothing executes, so the baseline is exact and
machine-independent.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "STANDARD_CONFIGS",
    "bench_transfers_path",
    "collect_baseline",
    "compare_baseline",
    "load_baseline",
    "save_baseline",
]

#: audited fields that must match the baseline exactly (all byte-exact
#: integers — the plan IR is deterministic)
BASELINE_FIELDS = (
    "feasible",
    "peak_bytes",
    "bytes_h2d",
    "bytes_d2h",
    "num_h2d",
    "num_d2h",
    "redundant_bytes",
)

#: (config name, graph builder args, device) — small enough to audit in
#: milliseconds, varied enough to exercise every driver code path
#: (multi-block FW incl. the nd=3 buffer-reuse case, batched boundary
#: output, Johnson row batching, the scaled-V100 charge model).
STANDARD_CONFIGS = (
    {"name": "road220-test", "kind": "road", "n": 220, "deg": 2.6, "seed": 1, "device": "test"},
    {"name": "rmat110-test", "kind": "rmat", "n": 110, "m": 800, "seed": 2, "device": "test"},
    {"name": "er200-test", "kind": "er", "n": 200, "m": 1200, "seed": 3, "device": "test"},
    {"name": "road400-test", "kind": "road", "n": 400, "deg": 2.6, "seed": 7, "device": "test"},
    {"name": "road900-v100", "kind": "road", "n": 900, "deg": 2.6, "seed": 3, "device": "v100/64"},
)


def bench_transfers_path() -> Path:
    """Canonical location of ``BENCH_transfers.json`` (repo root, or
    ``REPRO_BENCH_TRANSFERS`` when set)."""
    override = os.environ.get("REPRO_BENCH_TRANSFERS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_transfers.json"


def _build_graph(cfg: dict):
    from repro.graphs.generators import erdos_renyi, rmat, road_like

    if cfg["kind"] == "road":
        return road_like(cfg["n"], cfg["deg"], seed=cfg["seed"])
    if cfg["kind"] == "rmat":
        return rmat(cfg["n"], cfg["m"], seed=cfg["seed"])
    return erdos_renyi(cfg["n"], cfg["m"], seed=cfg["seed"])


def _device_spec(name: str):
    from repro.gpu.device import TEST_DEVICE, V100

    if name == "test":
        return TEST_DEVICE
    if name == "v100/64":
        return V100.scaled(1 / 64)
    raise ValueError(f"unknown baseline device {name!r}")


def collect_baseline(configs=STANDARD_CONFIGS) -> dict:
    """Audit every standard configuration with the plan verifier and
    return the baseline payload (without writing it)."""
    from repro.verifyplan import verify_plan

    entries = {}
    for cfg in configs:
        graph = _build_graph(cfg)
        ver = verify_plan(graph, _device_spec(cfg["device"]))
        entries[cfg["name"]] = {
            "config": dict(cfg),
            "n": ver.n,
            "m": ver.m,
            "ok": ver.ok,
            "algorithms": {
                name: {
                    "verified": audit.verified,
                    **{f: getattr(audit, f) for f in BASELINE_FIELDS},
                }
                for name, audit in ver.audits.items()
            },
        }
    return {
        "experiment": "transfers",
        "title": "static transfer-volume and peak-residency baseline",
        "generated_by": "python -m repro bench-transfers",
        "fields": list(BASELINE_FIELDS),
        "configs": entries,
    }


def save_baseline(payload: dict | None = None, path: Path | str | None = None) -> Path:
    """Write the baseline to ``BENCH_transfers.json``."""
    payload = payload or collect_baseline()
    path = Path(path) if path else bench_transfers_path()
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_baseline(path: Path | str | None = None) -> dict:
    """Read the checked-in baseline."""
    path = Path(path) if path else bench_transfers_path()
    return json.loads(path.read_text())


def compare_baseline(baseline: dict | None = None) -> list[str]:
    """Recompute the audits and diff them against ``baseline``.

    Returns a list of human-readable drift messages — empty means every
    byte count, copy count, and peak matches the recorded baseline
    exactly.
    """
    baseline = baseline or load_baseline()
    current = collect_baseline()
    drifts: list[str] = []
    for name, entry in baseline.get("configs", {}).items():
        cur = current["configs"].get(name)
        if cur is None:
            drifts.append(f"{name}: configuration missing from current sweep")
            continue
        for algo, recorded in entry["algorithms"].items():
            actual = cur["algorithms"].get(algo)
            if actual is None:
                drifts.append(f"{name}/{algo}: algorithm missing from current audit")
                continue
            for field in ("verified", *BASELINE_FIELDS):
                if recorded.get(field) != actual.get(field):
                    drifts.append(
                        f"{name}/{algo}: {field} drifted "
                        f"{recorded.get(field)!r} -> {actual.get(field)!r}"
                    )
    for name in current["configs"]:
        if name not in baseline.get("configs", {}):
            drifts.append(f"{name}: new configuration not in baseline (re-record)")
    return drifts
