"""Consolidated results report generator.

Reads every JSON record under ``benchmarks/results/`` (written by the
benchmark files) and renders one markdown document — a regenerable
companion to EXPERIMENTS.md holding the actual numbers of the latest run.

Usage::

    python -m repro report            # writes benchmarks/results/RESULTS.md
    python -m repro report --stdout
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.runner import format_bars, format_table, results_dir

__all__ = ["collect_records", "render_markdown", "write_report"]

#: canonical ordering of experiments in the report
_ORDER = [
    "table1", "table3", "table4", "fig2", "fig3", "fig4", "fig5",
    "table5", "fig6", "fig7", "table6", "fig8", "selector_accuracy",
    "batch_variance", "weight_sensitivity", "model_sensitivity", "ablation_components",
    "ablation_dp", "ablation_transfer_modes", "ext_multi_gpu", "ext_incore",
    "kernels", "dynamic",
]


def collect_records(directory: str | Path | None = None) -> list[dict]:
    """Load all saved experiment records, canonical order first."""
    directory = Path(directory) if directory else results_dir()
    records = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        if isinstance(data, dict) and "experiment" in data:
            records.append(data)
    rank = {name: i for i, name in enumerate(_ORDER)}
    records.sort(key=lambda r: rank.get(r["experiment"], len(_ORDER)))
    return records


def render_markdown(records: list[dict]) -> str:
    """Render the records as one markdown document."""
    lines = [
        "# Benchmark results",
        "",
        "Regenerated from `benchmarks/results/*.json` "
        "(`pytest benchmarks/ --benchmark-only`, then `python -m repro report`).",
        "",
    ]
    for rec in records:
        lines.append(f"## {rec['experiment']} — {rec['title']}")
        lines.append("")
        lines.append(f"*Paper expectation:* {rec['paper_expectation']}")
        lines.append("")
        if rec["rows"]:
            lines.append("```")
            lines.append(format_table(rec["rows"]))
            bar_key = next(
                (k for k in ("speedup", "dp_speedup", "batching_speedup", "johnson_s")
                 if rec["rows"] and k in rec["rows"][0]),
                None,
            )
            label_key = next(
                (k for k in ("graph", "device", "edge_factor", "quantity", "n")
                 if rec["rows"] and k in rec["rows"][0]),
                None,
            )
            if bar_key and label_key and rec["experiment"].startswith(("fig", "ablation", "ext")):
                lines.append("")
                lines.append(format_bars(rec["rows"], label_key, bar_key))
            lines.append("```")
        for note in rec.get("notes", []):
            lines.append(f"> {note}")
        lines.append("")
    if not records:
        lines.append("_No records found — run the benchmarks first._")
    return "\n".join(lines)


def write_report(directory: str | Path | None = None, *, output: str | Path | None = None) -> Path:
    """Collect, render, and write ``RESULTS.md``; returns the path."""
    directory = Path(directory) if directory else results_dir()
    text = render_markdown(collect_records(directory))
    out = Path(output) if output else directory / "RESULTS.md"
    out.write_text(text)
    return out
