"""Wall-clock microbenchmark + per-machine autotuner for the kernel engine.

Two layers share this module:

* :func:`sweep_backends` — the historical sweep: time every registered
  backend (per tile size, where the backend has one) on ``n³`` float32
  min-plus products, verify each result bit-identical to the reference
  backend, persist to ``BENCH_kernels.json`` at the repository root.
* :func:`tune_kernels` — the autotuner (``python -m repro tune-kernels``):
  search tile/thread/flavor configurations of the *fast* backends on the
  local machine, and persist the winner into the same file under
  ``"tuned"``, keyed by :func:`machine_fingerprint` (compiler version,
  resolved compile flags, cpu count). ``KernelEngine("auto")`` consumes
  the persisted winner at construction — no re-sweeping — so every solver
  path (blocked FW, OOC drivers, Johnson batching) inherits the tuned
  kernel; :class:`~repro.verifyplan.timing.TimingCalibration` and the
  opt-in cpumodel calibration price analytic selection off the same
  number.

Winners must be **bit-identical** to the reference backend to qualify —
a fast-but-wrong config can never be persisted.

Entry points: ``python -m repro bench-kernels``,
``python -m repro tune-kernels``, and
``benchmarks/test_kernel_backends.py``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.runner import results_dir
from repro.core.backends import available_backends, create_backend
from repro.core.minplus import DIST_DTYPE, minplus_ops

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_TILES",
    "DEFAULT_TUNE_SIZE",
    "bench_kernels_path",
    "check_regression",
    "fingerprint_class",
    "load_tuned_winner",
    "machine_fingerprint",
    "machine_info",
    "record_tuned",
    "save_sweep",
    "sweep_backends",
    "tune_kernels",
    "tuned_minplus_gops",
]

#: problem sizes (cubes) of the default sweep; 1024 matches the repo's
#: headline Gop/s target
DEFAULT_SIZES = (256, 1024)

#: tile sizes tried for the backends that expose one (``tiled``, ``jit``)
DEFAULT_TILES = (64, 128, 256)

#: backends whose constructor takes the sweep's tile parameter
_TILED_BACKENDS = {"tiled", "jit"}

#: problem size (cube) of the default autotune search — big enough that
#: tile/thread choices separate, small enough to finish in seconds
DEFAULT_TUNE_SIZE = 1024


def bench_kernels_path() -> Path:
    """Canonical location of ``BENCH_kernels.json`` (repo root, or
    ``REPRO_BENCH_KERNELS`` when set)."""
    override = os.environ.get("REPRO_BENCH_KERNELS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_kernels.json"


def machine_info() -> dict:
    """Context needed to compare sweeps across machines/commits."""
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    from repro.core.backends.jit import cc_compiler

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "cc": cc_compiler(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "platform": platform.platform(),
    }


def _make_backend(name: str, tile: int | None):
    if tile is None or name not in _TILED_BACKENDS:
        return create_backend(name)
    if name == "tiled":
        # wide tiles: short rows for L2 residency, long rows for SIMD runs
        return create_backend(name, tile_i=tile, tile_j=4 * tile)
    return create_backend(name, tile=tile)


def sweep_backends(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    tiles: tuple[int, ...] = DEFAULT_TILES,
    backends: tuple[str, ...] | None = None,
    *,
    repeats: int = 1,
    seed: int = 0,
    verify: bool = True,
) -> list[dict]:
    """Time every backend × tile × size; returns one row dict per config.

    Rows carry ``backend, flavor, n, tile, seconds, gops, speedup,
    identical`` — ``speedup`` is against the reference backend at the same
    ``n``, ``identical`` the bit-identity check against the reference
    result. The reference row is always measured first so speedups exist.
    """
    names = list(backends or available_backends())
    if "reference" in names:  # the yardstick always runs first
        names.remove("reference")
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    for n in sizes:
        a = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
        b = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
        ops = minplus_ops(n, n, n)

        def timed(backend):
            best = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                c = np.full((n, n), np.inf, dtype=DIST_DTYPE)
                t0 = perf_counter()
                backend.update(c, a, b)
                best = min(best, perf_counter() - t0)
                result = c
            return best, result

        ref_backend = create_backend("reference")
        ref_seconds, ref_c = timed(ref_backend)
        ref_gops = ops / ref_seconds / 1e9
        rows.append(
            {
                "backend": "reference",
                "flavor": ref_backend.flavor,
                "n": n,
                "tile": None,
                "seconds": ref_seconds,
                "gops": ref_gops,
                "speedup": 1.0,
                "identical": True,
            }
        )
        for name in names:
            tile_options = tiles if name in _TILED_BACKENDS else (None,)
            for tile in tile_options:
                backend = _make_backend(name, tile)
                # warm-up triggers one-time JIT/thread-pool costs
                backend.update(
                    np.full((32, 32), np.inf, dtype=DIST_DTYPE),
                    a[:32, :32].copy(),
                    b[:32, :32].copy(),
                )
                seconds, c = timed(backend)
                rows.append(
                    {
                        "backend": name,
                        "flavor": backend.flavor,
                        "n": n,
                        "tile": tile,
                        "seconds": seconds,
                        "gops": ops / seconds / 1e9,
                        "speedup": ref_seconds / seconds,
                        "identical": bool(np.array_equal(c, ref_c)) if verify else None,
                    }
                )
    return rows


#: per-row fields mirrored into ``benchmarks/results/kernels.json`` — the
#: *gated* subset (configuration + bit-identity), never measured timings,
#: so re-running the sweep only rewrites the mirror when a contract
#: actually changed
GATED_ROW_FIELDS = ("backend", "flavor", "n", "tile", "identical")


def _gated_row(row: dict) -> dict:
    return {k: row[k] for k in GATED_ROW_FIELDS if k in row}


def _gated_tuned(tuned: dict) -> dict:
    """Tuned winners reduced to their regression class + configuration —
    the fields ``tune-kernels --check`` gates on, sans measured Gop/s."""
    out: dict = {}
    for fp, entry in tuned.items():
        if not isinstance(entry, dict):
            continue
        out[fp] = {
            "class": fingerprint_class(fp),
            "backend": entry.get("backend"),
            "flavor": entry.get("flavor"),
            "options": entry.get("options"),
        }
    return out


def save_sweep(rows: list[dict], path: Path | str | None = None) -> Path:
    """Write the sweep to ``BENCH_kernels.json`` (and mirror a record into
    ``benchmarks/results/`` so ``python -m repro report`` includes it).

    Preserves any ``"tuned"`` winners already recorded in the file — a
    sweep refresh must never throw away autotune results.

    Both files are emitted with a stable key order, and the mirror
    carries only the gated fields (:data:`GATED_ROW_FIELDS`, tuned
    regression classes) — measured timings, machine info, and build
    notes stay in the canonical root file, so benchmark re-runs leave
    the committed mirror byte-identical unless a configuration or
    bit-identity verdict actually changed.
    """
    path = Path(path) if path else bench_kernels_path()
    tuned = {}
    if path.exists():
        try:
            tuned = json.loads(path.read_text()).get("tuned", {}) or {}
        except (OSError, ValueError):
            tuned = {}
    non_ref = [r for r in rows if r["backend"] != "reference"]
    best = max(non_ref, key=lambda r: r["gops"]) if non_ref else None
    payload = {
        "experiment": "kernels",
        "title": "min-plus kernel backend wall-clock sweep",
        "generated_by": "python -m repro bench-kernels",
        "machine": machine_info(),
        "rows": rows,
        "best": best,
        "best_speedup": best["speedup"] if best else None,
        "tuned": tuned,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    # mirror only the canonical file — a test- or env-redirected sweep
    # must not touch the committed report record
    canonical = Path(__file__).resolve().parents[3] / "BENCH_kernels.json"
    if path.resolve() == canonical:
        _write_if_changed(results_dir() / "kernels.json", _mirror_payload(payload))
    return path


def _mirror_payload(payload: dict) -> dict:
    """The gated-fields report record derived from a full sweep payload."""
    best = payload.get("best")
    return {
        "experiment": "kernels",
        "title": payload["title"],
        "generated_by": payload["generated_by"],
        "paper_expectation": (
            "repo target: best non-reference backend ≥ 3× the reference "
            "rank-1 loop's Gop/s at n=1024 (ISSUE 1 acceptance)"
        ),
        "rows": [_gated_row(r) for r in payload["rows"]],
        "best": _gated_row(best) if best else None,
        "tuned": _gated_tuned(payload.get("tuned", {}) or {}),
        "notes": [
            "gated fields only (config + bit-identity) — measured timings "
            "live in the canonical copy: BENCH_kernels.json"
        ],
    }


def _write_if_changed(path: Path, payload: dict) -> None:
    """Write ``payload`` only when its serialized form differs — keeps
    mtimes (and VCS status) quiet across no-op benchmark re-runs."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if path.exists() and path.read_text() == text:
        return
    path.write_text(text)


# ----------------------------------------------------------------------
# Autotuner: per-machine config search, fingerprint-keyed persistence
# ----------------------------------------------------------------------
def machine_fingerprint() -> str:
    """Key identifying what the tuned winner was measured on.

    ``compiler-version|flags|cpus=N`` from the cc build actually loaded
    (:func:`repro.core.backends.jit.cc_build_info`), so a compiler
    upgrade, a flag-probe change (e.g. ``-march=native`` now rejected),
    or a different core count each invalidates the stored winner —
    ``KernelEngine`` then falls back to live micro-calibration.
    """
    from repro.core.backends.jit import cc_build_info

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    info = cc_build_info()
    if info is None:
        return f"nocc|cpus={cpus}"
    return f"{info.fingerprint_key}|cpus={cpus}"


def fingerprint_class(fingerprint: str) -> str:
    """Fingerprint with the cpu count stripped — the CI regression gate
    compares within this class (same compiler + flags), so runners with
    a different core count than the committed baseline still gate."""
    return fingerprint.rsplit("|cpus=", 1)[0]


def _tune_candidates(tiles: tuple[int, ...], cpus: int) -> list[tuple[str, dict]]:
    """Configurations worth trying on this machine.

    ``tiled`` is deliberately absent — the committed sweeps show it at
    0.65–0.95× reference for every tile at 1024³ (the demoted default);
    ``reference`` anchors the search so a compiler-less machine still
    gets a correct winner.
    """
    from repro.core.backends.jit import JITBackend, load_cc_kernels

    candidates: list[tuple[str, dict]] = [("reference", {}), ("chunked", {})]
    probe = JITBackend()
    if probe.flavor == "numba":
        candidates += [("jit", {"flavor": "numba", "tile": t}) for t in tiles]
    if load_cc_kernels() is not None:
        candidates += [("jit", {"flavor": "cc", "tile": t}) for t in tiles]
        if load_cc_kernels().openmp and cpus > 1:
            threads = sorted({2, max(2, cpus // 2), cpus})
            candidates += [
                ("jit", {"flavor": "cc-omp", "tile": t, "threads": w})
                for t in tiles
                for w in threads
            ]
    if cpus > 1:
        workers = sorted({2, cpus})
        candidates += [("threaded", {"workers": w}) for w in workers]
    return candidates


def tune_kernels(
    n: int = DEFAULT_TUNE_SIZE,
    tiles: tuple[int, ...] = (128, 192, 256, 384),
    *,
    repeats: int = 2,
    seed: int = 0,
) -> dict:
    """Search backend configurations; return rows plus the verified winner.

    Every config is timed on the same ``n³`` product (best of ``repeats``)
    and bit-checked against the reference backend — only bit-identical
    configs can win. Before anything native runs, the C kernel templates
    must pass the :mod:`repro.verifykernel` static proofs — a kernel the
    analyzer cannot prove in-bounds and alias-safe is never priced, let
    alone recorded as a winner (the result carries the verification
    verdict under ``"verification"``). The returned dict carries
    ``fingerprint``, ``rows``, and ``winner``
    (``backend``/``options``/``flavor``/``gops``) ready for
    :func:`record_tuned`.
    """
    from repro.verifykernel import static_findings

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    findings = static_findings()
    verification = {
        "ok": not findings,
        "findings": [f.describe() for f in findings],
    }
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
    b = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
    ops = minplus_ops(n, n, n)

    ref = create_backend("reference")
    ref_c = np.full((n, n), np.inf, dtype=DIST_DTYPE)
    t0 = perf_counter()
    ref.update(ref_c, a, b)
    ref_seconds = perf_counter() - t0

    candidates = _tune_candidates(tiles, cpus)
    if not verification["ok"]:
        # refuse every natively-compiled candidate: unproven C kernels
        # are not priced, the tuner falls back to the managed backends
        candidates = [
            (name, options)
            for name, options in candidates
            if not (name == "jit" and options.get("flavor") in ("cc", "cc-omp"))
        ]
    rows: list[dict] = []
    for name, options in candidates:
        backend = create_backend(name, **options)
        backend.update(
            np.full((32, 32), np.inf, dtype=DIST_DTYPE),
            a[:32, :32].copy(),
            b[:32, :32].copy(),
        )
        best = ref_seconds if name == "reference" else float("inf")
        result = ref_c if name == "reference" else None
        for _ in range(max(1, repeats) - (1 if name == "reference" else 0)):
            c = np.full((n, n), np.inf, dtype=DIST_DTYPE)
            t0 = perf_counter()
            backend.update(c, a, b)
            best = min(best, perf_counter() - t0)
            result = c
        rows.append(
            {
                "backend": name,
                "options": options,
                "flavor": backend.flavor,
                "n": n,
                "seconds": best,
                "gops": ops / best / 1e9,
                "identical": bool(np.array_equal(result, ref_c)),
            }
        )
    # normalise speedups to the reference row's best-of-repeats time (its
    # own extra repeats may beat the initial yardstick run)
    ref_best = next(r["seconds"] for r in rows if r["backend"] == "reference")
    for r in rows:
        r["speedup"] = ref_best / r["seconds"]
    eligible = [r for r in rows if r["identical"]]
    winner_row = max(eligible, key=lambda r: r["gops"])
    return {
        "fingerprint": machine_fingerprint(),
        "machine": machine_info(),
        "n": n,
        "verification": verification,
        "rows": rows,
        "winner": {
            "backend": winner_row["backend"],
            "options": winner_row["options"],
            "flavor": winner_row["flavor"],
            "gops": winner_row["gops"],
            "speedup": winner_row["speedup"],
            "n": n,
        },
    }


def record_tuned(result: dict, path: Path | str | None = None) -> Path:
    """Merge one :func:`tune_kernels` result into ``BENCH_kernels.json``.

    Only the ``"tuned"`` map is touched — sweeps for other machines and
    the historical rows survive — and the entry is keyed by the result's
    fingerprint so one file can carry winners for several machines.
    """
    path = Path(path) if path else bench_kernels_path()
    payload: dict = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            payload = {}
    payload.setdefault("experiment", "kernels")
    tuned = payload.setdefault("tuned", {})
    tuned[result["fingerprint"]] = {
        **result["winner"],
        "machine": result["machine"],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_tuned_winner(path: Path | str | None = None) -> dict | None:
    """Tuned winner for *this* machine's fingerprint, or ``None``.

    ``None`` (missing file, corrupt JSON, or no entry for the current
    fingerprint) sends ``KernelEngine("auto")`` to live micro-calibration.
    """
    path = Path(path) if path else bench_kernels_path()
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    tuned = payload.get("tuned") or {}
    entry = tuned.get(machine_fingerprint())
    if not isinstance(entry, dict) or "backend" not in entry:
        return None
    return entry


def tuned_minplus_gops(path: Path | str | None = None) -> float | None:
    """Gop/s of this machine's tuned winner (``None`` when untuned)."""
    entry = load_tuned_winner(path)
    if entry is None:
        return None
    gops = float(entry.get("gops", 0.0))
    return gops if gops > 0 else None


def check_regression(
    result: dict,
    baseline_path: Path | str | None = None,
    *,
    tolerance: float = 0.20,
) -> tuple[bool, str]:
    """CI gate: has the tuned rate regressed vs the committed baseline?

    Compares the fresh winner's Gop/s against every committed ``tuned``
    entry in the same :func:`fingerprint_class` (compiler + flags,
    ignoring cpu count). Returns ``(ok, message)`` — ``ok`` is False when
    the fresh rate is more than ``tolerance`` below the baseline. No
    committed entry for the class passes vacuously (first run on a new
    machine class records, it cannot gate).
    """
    path = Path(baseline_path) if baseline_path else bench_kernels_path()
    cls = fingerprint_class(result["fingerprint"])
    fresh = result["winner"]["gops"]
    if not path.exists():
        return True, f"no baseline file at {path}; recording only"
    try:
        tuned = json.loads(path.read_text()).get("tuned", {}) or {}
    except (OSError, ValueError):
        return True, f"unreadable baseline at {path}; recording only"
    peers = {
        fp: entry
        for fp, entry in tuned.items()
        if fingerprint_class(fp) == cls and float(entry.get("gops", 0)) > 0
    }
    if not peers:
        return True, f"no committed baseline for fingerprint class {cls!r}"
    base_fp, base = max(peers.items(), key=lambda kv: float(kv[1]["gops"]))
    floor = float(base["gops"]) * (1.0 - tolerance)
    msg = (
        f"fresh winner {fresh:.2f} Gop/s vs committed "
        f"{float(base['gops']):.2f} Gop/s ({base_fp}); "
        f"floor at -{tolerance:.0%} = {floor:.2f}"
    )
    return fresh >= floor, msg
