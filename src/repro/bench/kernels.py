"""Wall-clock microbenchmark of the min-plus kernel backends.

Times every registered backend (per tile size, where the backend has one)
on ``n³`` float32 min-plus products, verifies each result bit-identical to
the reference backend, and persists the sweep to ``BENCH_kernels.json`` at
the repository root — the seed of the repo's wall-clock performance
trajectory. Later PRs re-run the sweep and diff the Gop/s columns to show
regressions or wins on real hardware (the experiment benchmarks report
*simulated* device seconds instead; see ``docs/PERFORMANCE.md``).

Entry points: ``python -m repro bench-kernels`` and
``benchmarks/test_kernel_backends.py``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bench.runner import results_dir
from repro.core.backends import available_backends, create_backend
from repro.core.minplus import DIST_DTYPE, minplus_ops

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_TILES",
    "bench_kernels_path",
    "machine_info",
    "save_sweep",
    "sweep_backends",
]

#: problem sizes (cubes) of the default sweep; 1024 matches the repo's
#: headline Gop/s target
DEFAULT_SIZES = (256, 1024)

#: tile sizes tried for the backends that expose one (``tiled``, ``jit``)
DEFAULT_TILES = (64, 128, 256)

#: backends whose constructor takes the sweep's tile parameter
_TILED_BACKENDS = {"tiled", "jit"}


def bench_kernels_path() -> Path:
    """Canonical location of ``BENCH_kernels.json`` (repo root, or
    ``REPRO_BENCH_KERNELS`` when set)."""
    override = os.environ.get("REPRO_BENCH_KERNELS")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "BENCH_kernels.json"


def machine_info() -> dict:
    """Context needed to compare sweeps across machines/commits."""
    try:
        import numba

        numba_version = numba.__version__
    except ImportError:
        numba_version = None
    from repro.core.backends.jit import cc_compiler

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "cc": cc_compiler(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "platform": platform.platform(),
    }


def _make_backend(name: str, tile: int | None):
    if tile is None or name not in _TILED_BACKENDS:
        return create_backend(name)
    if name == "tiled":
        # wide tiles: short rows for L2 residency, long rows for SIMD runs
        return create_backend(name, tile_i=tile, tile_j=4 * tile)
    return create_backend(name, tile=tile)


def sweep_backends(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    tiles: tuple[int, ...] = DEFAULT_TILES,
    backends: tuple[str, ...] | None = None,
    *,
    repeats: int = 1,
    seed: int = 0,
    verify: bool = True,
) -> list[dict]:
    """Time every backend × tile × size; returns one row dict per config.

    Rows carry ``backend, flavor, n, tile, seconds, gops, speedup,
    identical`` — ``speedup`` is against the reference backend at the same
    ``n``, ``identical`` the bit-identity check against the reference
    result. The reference row is always measured first so speedups exist.
    """
    names = list(backends or available_backends())
    if "reference" in names:  # the yardstick always runs first
        names.remove("reference")
    rng = np.random.default_rng(seed)
    rows: list[dict] = []
    for n in sizes:
        a = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
        b = (rng.random((n, n), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
        ops = minplus_ops(n, n, n)

        def timed(backend):
            best = float("inf")
            result = None
            for _ in range(max(1, repeats)):
                c = np.full((n, n), np.inf, dtype=DIST_DTYPE)
                t0 = perf_counter()
                backend.update(c, a, b)
                best = min(best, perf_counter() - t0)
                result = c
            return best, result

        ref_backend = create_backend("reference")
        ref_seconds, ref_c = timed(ref_backend)
        ref_gops = ops / ref_seconds / 1e9
        rows.append(
            {
                "backend": "reference",
                "flavor": ref_backend.flavor,
                "n": n,
                "tile": None,
                "seconds": ref_seconds,
                "gops": ref_gops,
                "speedup": 1.0,
                "identical": True,
            }
        )
        for name in names:
            tile_options = tiles if name in _TILED_BACKENDS else (None,)
            for tile in tile_options:
                backend = _make_backend(name, tile)
                # warm-up triggers one-time JIT/thread-pool costs
                backend.update(
                    np.full((32, 32), np.inf, dtype=DIST_DTYPE),
                    a[:32, :32].copy(),
                    b[:32, :32].copy(),
                )
                seconds, c = timed(backend)
                rows.append(
                    {
                        "backend": name,
                        "flavor": backend.flavor,
                        "n": n,
                        "tile": tile,
                        "seconds": seconds,
                        "gops": ops / seconds / 1e9,
                        "speedup": ref_seconds / seconds,
                        "identical": bool(np.array_equal(c, ref_c)) if verify else None,
                    }
                )
    return rows


def save_sweep(rows: list[dict], path: Path | str | None = None) -> Path:
    """Write the sweep to ``BENCH_kernels.json`` (and mirror a record into
    ``benchmarks/results/`` so ``python -m repro report`` includes it)."""
    path = Path(path) if path else bench_kernels_path()
    non_ref = [r for r in rows if r["backend"] != "reference"]
    best = max(non_ref, key=lambda r: r["gops"]) if non_ref else None
    payload = {
        "experiment": "kernels",
        "title": "min-plus kernel backend wall-clock sweep",
        "generated_by": "python -m repro bench-kernels",
        "machine": machine_info(),
        "rows": rows,
        "best": best,
        "best_speedup": best["speedup"] if best else None,
    }
    path.write_text(json.dumps(payload, indent=2))
    mirror = {
        **payload,
        "paper_expectation": (
            "repo target: best non-reference backend ≥ 3× the reference "
            "rank-1 loop's Gop/s at n=1024 (ISSUE 1 acceptance)"
        ),
        "notes": [f"canonical copy: {path}"],
    }
    (results_dir() / "kernels.json").write_text(json.dumps(mirror, indent=2))
    return path
