"""Benchmark harness: device profiles, experiment records, table output.

Each file under ``benchmarks/`` regenerates one table or figure of the
paper. This package supplies the shared machinery:

* :func:`device_profile` — the per-experiment scaled device operating
  points (see EXPERIMENTS.md, "device profiles");
* :class:`ExperimentRecord` — rows + paper-expectation metadata, saved as
  JSON under ``benchmarks/results/`` so EXPERIMENTS.md can be regenerated;
* :func:`format_table` — aligned text tables for terminal output.
"""

from repro.bench.runner import (
    ExperimentRecord,
    cpu_profile,
    device_profile,
    format_bars,
    format_table,
    results_dir,
)

__all__ = [
    "ExperimentRecord",
    "cpu_profile",
    "device_profile",
    "format_bars",
    "format_table",
    "results_dir",
]
