"""Experiment runner utilities shared by all benchmark files."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.cpumodel.model import HASWELL_32, XEON_E5_2680, CpuSpec
from repro.gpu.device import K80, V100, DeviceSpec

__all__ = [
    "ExperimentRecord",
    "cpu_profile",
    "device_profile",
    "format_bars",
    "format_table",
    "results_dir",
]

#: default linear scale for benchmark experiments (matches the suite)
BENCH_SCALE = 1.0 / 64.0


def device_profile(
    profile: str = "ratio",
    *,
    base: DeviceSpec = V100,
    scale: float = BENCH_SCALE,
) -> DeviceSpec:
    """Per-experiment device operating points.

    * ``"ratio"`` — the default: compute rates and PCIe throughput both
      scale with ``s``, preserving every cross-device/cross-algorithm ratio
      whose work terms share a scaling exponent (Figs 2–7, Table V).
    * ``"transfer"`` — physical PCIe speed retained (``transfer_exponent=0``)
      so the boundary algorithm's small strided copies stay in the paper's
      latency-bound regime (Fig 8's ablation).
    * ``"crossover"`` — ``relax_exponent=0.5`` positions the FW/Johnson
      crossover at the paper's average-degree operating point (Table VI).
    """
    if profile == "ratio":
        return base.scaled(scale)
    if profile == "transfer":
        return base.scaled(scale, transfer_exponent=0.0)
    if profile == "crossover":
        return base.scaled(scale, relax_exponent=0.5)
    raise ValueError(f"unknown device profile {profile!r}")


def cpu_profile(*, base: CpuSpec = XEON_E5_2680, scale: float = BENCH_SCALE) -> CpuSpec:
    """The CPU model matching :func:`device_profile`'s scale."""
    return base.scaled(scale)


def results_dir() -> Path:
    """Directory where experiment records are written (created on demand).

    Overridable with ``REPRO_RESULTS_DIR`` so CI can redirect output.
    """
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class ExperimentRecord:
    """Rows of one regenerated table/figure plus paper-expectation metadata."""

    experiment: str  # e.g. "fig2"
    title: str
    paper_expectation: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> dict:
        self.rows.append(row)
        return row

    def note(self, text: str) -> None:
        self.notes.append(text)

    def save(self) -> Path:
        path = results_dir() / f"{self.experiment}.json"
        payload = {
            "experiment": self.experiment,
            "title": self.title,
            "paper_expectation": self.paper_expectation,
            "rows": self.rows,
            "notes": self.notes,
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path

    def print(self) -> None:
        print(f"\n=== {self.experiment}: {self.title} ===")
        print(f"paper: {self.paper_expectation}")
        if self.rows:
            print(format_table(self.rows))
        for note in self.notes:
            print(f"note: {note}")


def format_bars(
    rows: list[dict],
    label_key: str,
    value_key: str,
    *,
    width: int = 48,
) -> str:
    """ASCII bar chart — the terminal rendering of the paper's figures."""
    vals = [float(r.get(value_key, 0) or 0) for r in rows]
    if not vals:
        return "(no rows)"
    peak = max(vals) or 1.0
    label_w = max(len(str(r.get(label_key, ""))) for r in rows)
    lines = []
    for row, v in zip(rows, vals):
        bar = "█" * max(1 if v > 0 else 0, round(width * v / peak))
        lines.append(f"{str(row.get(label_key, '')):<{label_w}}  {bar} {v:.3g}")
    return "\n".join(lines)


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Align a list of row dicts into a text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:  # union of keys, first-seen order
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000 or abs(v) < 0.001:
                return f"{v:.3g}"
            return f"{v:.3f}"
        return str(v)

    table = [[fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(r[i]) for r in table)) for i in range(len(columns))
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in table]
    return "\n".join(lines)
