"""Top-level facade: ``solve_apsp``.

One call runs the full pipeline a user of the paper's system would run:
optionally auto-select the algorithm (density filter + cost models), then
execute the chosen out-of-core implementation on the simulated device.
"""

from __future__ import annotations

from repro.core.ooc_boundary import ooc_boundary
from repro.core.ooc_fw import ooc_floyd_warshall
from repro.core.ooc_johnson import ooc_johnson
from repro.core.result import APSPResult
from repro.gpu.device import Device, DeviceSpec, V100

__all__ = ["ALGORITHMS", "solve_apsp", "solve_apsp_negative"]

ALGORITHMS = ("auto", "floyd-warshall", "johnson", "boundary")


def solve_apsp(
    graph,
    *,
    algorithm: str = "auto",
    device: Device | DeviceSpec | None = None,
    density_scale: float = 1.0,
    store_mode: str = "ram",
    store_dir=None,
    seed: int = 0,
    kernel_backend=None,
    faults=None,
    retry=None,
    checkpoint_dir=None,
    resume_from=None,
    **algorithm_options,
) -> APSPResult:
    """Solve all-pairs shortest paths out-of-core.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.csr.CSRGraph` with non-negative weights.
    algorithm:
        ``"auto"`` (the paper's selector), ``"floyd-warshall"``,
        ``"johnson"``, or ``"boundary"``.
    device:
        A :class:`~repro.gpu.device.Device`, a spec, or ``None`` for a
        fresh V100.
    density_scale:
        Converts scaled stand-in densities to paper-equivalent units for
        the selector's density filter (see :mod:`repro.graphs.suite`).
    store_mode:
        ``"ram"`` or ``"disk"`` for the output matrix (Table IV regime).
    kernel_backend:
        A kernel backend name (``"reference"``, ``"tiled"``, ``"chunked"``,
        ``"jit"``, ``"threaded"``, ``"auto"``) or a prebuilt
        :class:`~repro.core.engine.KernelEngine` for the host-side min-plus
        and FW tile kernels; ``None`` uses the process-wide default.
    faults:
        A :class:`~repro.faults.FaultPlan` injected into the device — chosen
        transfers, kernel launches, or allocations raise transient errors
        that the drivers retry with capped exponential backoff.
    retry:
        A :class:`~repro.faults.RetryPolicy` overriding the default retry
        budget/backoff schedule.
    checkpoint_dir:
        Directory for per-outer-iteration checkpoints; a later call with
        ``resume_from`` pointing at the same directory resumes the run.
    resume_from:
        Existing checkpoint directory to resume from (implies
        ``checkpoint_dir=resume_from``). Raises
        :class:`~repro.faults.CheckpointError` if the directory does not
        exist or belongs to a different graph/algorithm.
    algorithm_options:
        Forwarded to the chosen driver (e.g. ``overlap``,
        ``batch_transfers``, ``dynamic_parallelism``, ``num_components``,
        ``block_size``, ``batch_size``).

    Returns
    -------
    APSPResult
        Distances plus the simulated execution record; when the selector
        ran, its :class:`~repro.select.selector.SelectionReport` is under
        ``result.stats["selection"]``.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
    if resume_from is not None:
        from pathlib import Path

        from repro.faults import CheckpointError

        if not Path(resume_from).is_dir():
            raise CheckpointError(
                f"resume_from directory does not exist [{resume_from}]"
            )
        checkpoint_dir = resume_from
    if device is None:
        device = Device(V100, faults=faults, retry=retry)
    elif isinstance(device, DeviceSpec):
        device = Device(device, faults=faults, retry=retry)
    elif faults is not None or retry is not None:
        if faults is not None:
            device.faults = faults
        if retry is not None:
            device.retry = retry
    if kernel_backend is not None:
        from repro.core.engine import KernelEngine

        engine = (
            kernel_backend
            if isinstance(kernel_backend, KernelEngine)
            else KernelEngine(kernel_backend)
        )
    else:
        engine = None

    report = None
    if algorithm == "auto":
        from repro.select.selector import Selector

        report = Selector(device.spec, density_scale=density_scale, seed=seed).select(
            graph, device=device
        )
        algorithm = report.algorithm

    common = dict(store_mode=store_mode, store_dir=store_dir)
    if checkpoint_dir is not None:
        common["checkpoint"] = checkpoint_dir
    if algorithm == "floyd-warshall":
        result = ooc_floyd_warshall(
            graph, device, engine=engine, **common, **algorithm_options
        )
    elif algorithm == "johnson":
        # SSSP-based: no dense min-plus tiles, so no kernel engine to pass
        result = ooc_johnson(graph, device, **common, **algorithm_options)
    else:
        result = ooc_boundary(
            graph, device, seed=seed, engine=engine, **common, **algorithm_options
        )
    if report is not None:
        result.stats["selection"] = report
    return result


def solve_apsp_negative(
    num_vertices: int,
    src,
    dst,
    weights,
    *,
    name: str = "",
    **solve_options,
) -> APSPResult:
    """Solve APSP on a digraph that may contain **negative** edge weights.

    Classic Johnson's algorithm, phase 1: Bellman–Ford potentials reweight
    every edge non-negative (raising
    :class:`~repro.sssp.reweight.NegativeCycleError` if impossible), any
    :func:`solve_apsp` configuration runs on the reweighted graph, and the
    stored distances are shifted back to original weights in place.

    Takes raw edge arrays because :class:`~repro.graphs.csr.CSRGraph`
    rejects negative weights by construction.
    """
    from repro.sssp.reweight import reweight_graph

    graph, h = reweight_graph(num_vertices, src, dst, weights, name=name)
    result = solve_apsp(graph, **solve_options)
    # Undo the reweighting on the host store, respecting the internal
    # vertex order (the boundary algorithm permutes vertices).
    h_internal = h if result.perm is None else h[result.inv_perm]
    shift = (h_internal[None, :] - h_internal[:, None]).astype(
        result.store.data.dtype
    )
    result.store.data[...] = result.store.data + shift
    result.stats["reweighted"] = True
    result.stats["potentials"] = h
    return result
