"""Unified execution-plan explanation ("EXPLAIN" for out-of-core APSP).

:func:`explain_plan` dry-runs the planning stage of every algorithm for a
graph/device pair and reports the derived parameters — block size and count
for FW, batch size and count for Johnson, component count / boundary size /
transfer batching for the boundary algorithm — plus the memory footprints
and which constraints bind. Nothing executes; this is the tool for
answering "why did the planner pick these numbers?" before an expensive
run (exposed as ``python -m repro plan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.core.ooc_boundary import BoundaryInfeasibleError, plan_boundary
from repro.core.ooc_fw import plan_fw_block_size
from repro.core.ooc_johnson import graph_device_bytes, plan_batch_size
from repro.gpu.device import DeviceSpec
from repro.gpu.errors import OutOfMemoryError

__all__ = ["AlgorithmPlan", "PlanReport", "explain_plan"]

_ELEM = np.dtype(DIST_DTYPE).itemsize


@dataclass(frozen=True)
class AlgorithmPlan:
    """Planning outcome for one algorithm."""

    algorithm: str
    feasible: bool
    parameters: dict = field(default_factory=dict)
    #: device bytes the working set occupies at its peak
    working_set_bytes: int = 0
    #: human-readable reason when infeasible
    reason: str = ""

    def describe(self) -> str:
        if not self.feasible:
            return f"{self.algorithm}: infeasible — {self.reason}"
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        return (
            f"{self.algorithm}: {params} "
            f"(working set {self.working_set_bytes / 2**20:.2f} MiB)"
        )


@dataclass(frozen=True)
class PlanReport:
    """Plans for all three algorithms plus shared sizing facts."""

    n: int
    m: int
    output_bytes: int
    device_bytes: int
    plans: dict[str, AlgorithmPlan]

    @property
    def output_fits_device(self) -> bool:
        return self.output_bytes <= self.device_bytes

    def describe(self) -> str:
        lines = [
            f"graph: n={self.n}, m={self.m}; output "
            f"{self.output_bytes / 2**20:.1f} MiB vs device "
            f"{self.device_bytes / 2**20:.1f} MiB "
            f"({'fits in core' if self.output_fits_device else 'out of core'})"
        ]
        lines += ["  " + plan.describe() for plan in self.plans.values()]
        return "\n".join(lines)


def explain_plan(graph, spec: DeviceSpec, *, seed: int = 0) -> PlanReport:
    """Plan all three algorithms without executing anything."""
    n, m = graph.num_vertices, graph.num_edges
    plans: dict[str, AlgorithmPlan] = {}

    # --- blocked Floyd–Warshall ----------------------------------------
    try:
        b = plan_fw_block_size(n, spec, overlap=True)
        nd = max(1, (n + b - 1) // b)
        plans["floyd-warshall"] = AlgorithmPlan(
            "floyd-warshall",
            True,
            {"block_size": b, "num_blocks": nd, "tiles_resident": 5},
            working_set_bytes=5 * b * b * _ELEM,
        )
    except (ValueError, OutOfMemoryError) as exc:  # pragma: no cover - tiny devices
        plans["floyd-warshall"] = AlgorithmPlan("floyd-warshall", False, reason=str(exc))

    # --- Johnson ---------------------------------------------------------
    try:
        bat = plan_batch_size(graph, spec)
        nb = (n + bat - 1) // bat
        s = graph_device_bytes(graph, spec)
        sat = max(1, int(spec.occupancy_saturation * spec.max_active_blocks))
        plans["johnson"] = AlgorithmPlan(
            "johnson",
            True,
            {
                "batch_size": bat,
                "num_batches": nb,
                "occupancy": f"{min(1.0, bat / sat):.0%}",
            },
            working_set_bytes=int(
                s + bat * 4 * m * _ELEM * spec.sparse_charge_factor + 2 * bat * n * _ELEM * spec.sparse_charge_factor
            ),
        )
    except OutOfMemoryError as exc:
        plans["johnson"] = AlgorithmPlan("johnson", False, reason=str(exc))

    # --- boundary ---------------------------------------------------------
    try:
        bp = plan_boundary(graph, spec, seed=seed)
        nmax = bp.max_component
        working = (
            bp.num_boundary**2 * _ELEM
            + 3 * nmax * max(1, int(bp.comp_boundary.max())) * _ELEM
            + bp.num_buffers * max(bp.n_row, 1) * nmax * graph.num_vertices * _ELEM
        )
        plans["boundary"] = AlgorithmPlan(
            "boundary",
            True,
            {
                "num_components": bp.num_components,
                "num_boundary": bp.num_boundary,
                "max_component": nmax,
                "n_row": bp.n_row,
                "buffers": bp.num_buffers,
                "batched": bp.n_row >= 1,
            },
            working_set_bytes=working,
        )
    except BoundaryInfeasibleError as exc:
        plans["boundary"] = AlgorithmPlan("boundary", False, reason=exc.detail)

    return PlanReport(
        n=n,
        m=m,
        output_bytes=n * n * _ELEM,
        device_bytes=spec.memory_bytes,
        plans=plans,
    )
