"""Out-of-core boundary algorithm (paper Algorithm 3, after Djidjev et al.).

Four steps:

1. **partition** the graph into ``k`` components with the multilevel k-way
   partitioner (METIS stand-in); vertices are *permuted* so each component
   is contiguous and its boundary vertices come first (paper Figure 1a);
2. **dist2** — solve APSP independently inside each component: upload the
   component's dense block ``A(i,i)``, close it with FW on the device,
   download;
3. **dist3** — build the boundary graph ``bound``: nodes are all boundary
   vertices, entries are cross-component edge weights plus *virtual edges*
   ``dist2(b, b')`` between same-component boundary pairs; close it with FW
   on the device (it stays resident);
4. **dist4** — every off-diagonal block is two successive min-plus products
   (paper Eq. 1, Fig 1b):
   ``A(i,j) = C2B[i] ⊗ bound(i,j) ⊗ B2C[j]`` where ``C2B[i] = A(i,i)[:, :bᵢ]``
   (component→boundary distances) and ``B2C[j] = A(j,j)[:bⱼ, :]``; diagonal
   blocks take the elementwise min with ``dist2``.

Two optimisations from Section III-C, both togglable for the Fig 8
ablation:

* ``batch_transfers`` — instead of ``k²`` small D2H copies (one per block,
  latency-bound), results accumulate in a device buffer holding ``N_row``
  block-rows (``N_row = S_rem / (N_max · n · W)``) and transfer in one
  bandwidth-bound copy;
* ``overlap`` — double buffering: two accumulation buffers on two streams,
  so the transfer of one buffer overlaps the products filling the other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.minplus import DIST_DTYPE, minplus_update
from repro.core.result import APSPResult
from repro.core.tiling import HostStore
from repro.faults.checkpoint import CheckpointError, open_checkpoint
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.errors import OutOfMemoryError
from repro.gpu.kernels import extract_cost, fw_tile_cost, minplus_cost
from repro.gpu.stream import Event
from repro.partition.kway import partition_kway
from repro.partition.separator import boundary_nodes

__all__ = [
    "BoundaryInfeasibleError",
    "BoundaryPlan",
    "default_num_components",
    "emit_boundary_ir",
    "ooc_boundary",
    "plan_boundary",
]

_ELEM = np.dtype(DIST_DTYPE).itemsize


class BoundaryInfeasibleError(OutOfMemoryError):
    """No component count makes the boundary algorithm's working set fit.

    Raised for graphs whose separator is so large that the boundary matrix
    cannot reside on the device at any balanced ``k`` — the paper's "the
    maximal number of components allowed ... is small" failure mode that
    pushes such graphs to Johnson's algorithm.
    """

    def __init__(self, requested: int, free: int, capacity: int, detail: str) -> None:
        super().__init__(requested, free, capacity)
        self.detail = detail

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"boundary algorithm infeasible: {self.detail}"


def default_num_components(n: int) -> int:
    """The paper's best-performing component count ``k = √n / 4`` (§V-F)."""
    return max(2, int(round(np.sqrt(n) / 4.0)))


@dataclass(frozen=True)
class BoundaryPlan:
    """A feasible execution plan for the boundary algorithm."""

    labels: np.ndarray  # component id per original vertex
    perm: np.ndarray  # internal id of original vertex
    inv_perm: np.ndarray  # original id of internal vertex
    comp_start: np.ndarray  # internal start offset per component (k+1,)
    comp_boundary: np.ndarray  # number of boundary vertices per component
    num_components: int
    num_boundary: int
    n_row: int  # block-rows accumulated per batched transfer
    num_buffers: int  # output accumulation buffers (2 = double-buffered)

    @property
    def max_component(self) -> int:
        return int(np.diff(self.comp_start).max())


def _build_permutation(
    graph, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Order vertices component-major, boundary-first inside each component."""
    n = graph.num_vertices
    bnd = boundary_nodes(graph, labels)
    is_bnd = np.zeros(n, dtype=bool)
    is_bnd[bnd] = True
    # Sort by (component, interior-after-boundary, id) — stable and cheap.
    order = np.lexsort((np.arange(n), ~is_bnd, labels))
    inv_perm = order  # internal -> original
    perm = np.empty(n, dtype=np.int64)
    perm[order] = np.arange(n)  # original -> internal
    sizes = np.bincount(labels, minlength=k)
    comp_start = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(sizes, out=comp_start[1:])
    comp_boundary = np.bincount(labels[bnd], minlength=k) if bnd.size else np.zeros(k, dtype=np.int64)
    return perm, inv_perm, comp_start, comp_boundary


def plan_boundary(
    graph,
    spec: DeviceSpec,
    *,
    num_components: int | None = None,
    batch_transfers: bool = True,
    overlap: bool = True,
    seed: int = 0,
    max_attempts: int = 8,
) -> BoundaryPlan:
    """Partition and check the device memory budget; search ``k`` if needed.

    Tries the requested/default ``k`` first; on memory failure, halves or
    doubles ``k`` (whichever constraint is violated) up to ``max_attempts``
    times before raising :class:`BoundaryInfeasibleError`.
    """
    n = graph.num_vertices
    k = num_components if num_components is not None else default_num_components(n)
    budget = spec.memory_bytes
    last_detail = ""
    tried: set[int] = set()
    fallback: BoundaryPlan | None = None  # single-buffer plan found en route
    for _attempt in range(max_attempts):
        k = max(2, min(k, n // 2 if n >= 4 else 2))
        if k in tried:
            break
        tried.add(k)
        part = partition_kway(graph, k, seed=seed)
        perm, inv_perm, comp_start, comp_bnd = _build_permutation(graph, part.labels, k)
        nmax = int(np.diff(comp_start).max())
        nb = int(comp_bnd.sum())
        bmax = int(comp_bnd.max()) if k else 0

        bound_bytes = nb * nb * _ELEM
        step2_bytes = nmax * nmax * _ELEM
        # step 4 residents: bound + C2B + B2C + tmp1 (+ output buffers below)
        step4_fixed = bound_bytes + (2 * nmax * bmax + nmax * bmax) * _ELEM
        strip_bytes = nmax * n * _ELEM  # one block-row of output

        if step2_bytes > budget:
            last_detail = (
                f"component block {nmax}² exceeds device memory at k={k}; "
                f"need {step2_bytes}B of {budget}B"
            )
            k = int(np.ceil(k * 1.5))  # more components -> smaller blocks
            continue
        if bound_bytes > budget or step4_fixed > budget:
            last_detail = (
                f"boundary matrix {nb}² (+{step4_fixed - bound_bytes}B residents) "
                f"exceeds device memory at k={k}"
            )
            k = max(2, int(k / 1.5))  # fewer components -> fewer boundary vertices
            continue
        if batch_transfers:
            # Prefer double buffering (overlap); fall back to one buffer
            # when two strips do not fit at this k (the strip-to-memory
            # ratio grows as n^-0.5 under scaling, so scaled runs hit this
            # more often than the paper's full-size runs did).
            n_row = 0
            nbuf = 1
            for cand_nbuf in ((2, 1) if overlap else (1,)):
                rem = budget - step4_fixed
                cand_rows = int(rem // (cand_nbuf * strip_bytes)) if rem > 0 else 0
                cand_rows = min(cand_rows, k)  # never buffer more rows than exist
                if cand_rows >= 1:
                    n_row, nbuf = cand_rows, cand_nbuf
                    break
            if n_row < 1:
                last_detail = (
                    f"no room for {'double-buffered ' if overlap else ''}output "
                    f"block-rows at k={k}"
                )
                if fallback is None:
                    rem = budget - step4_fixed
                    single_rows = min(int(rem // strip_bytes) if rem > 0 else 0, k)
                    if overlap and single_rows >= 1:
                        # single accumulation buffer, batching intact
                        fallback = BoundaryPlan(
                            labels=part.labels, perm=perm, inv_perm=inv_perm,
                            comp_start=comp_start, comp_boundary=comp_bnd,
                            num_components=k, num_boundary=nb,
                            n_row=single_rows, num_buffers=1,
                        )
                    elif step4_fixed + nmax * nmax * _ELEM <= budget:
                        # not even one strip fits anywhere: degrade to the
                        # unbatched per-block path (n_row=0) rather than
                        # declaring the whole algorithm infeasible
                        fallback = BoundaryPlan(
                            labels=part.labels, perm=perm, inv_perm=inv_perm,
                            comp_start=comp_start, comp_boundary=comp_bnd,
                            num_components=k, num_boundary=nb,
                            n_row=0, num_buffers=1,
                        )
                k = int(np.ceil(k * 1.5))
                continue
        else:
            n_row, nbuf = 0, 1
            if step4_fixed + nmax * nmax * _ELEM > budget:
                last_detail = f"no room for the single-block staging buffer at k={k}"
                k = int(np.ceil(k * 1.5))
                continue
        return BoundaryPlan(
            labels=part.labels,
            perm=perm,
            inv_perm=inv_perm,
            comp_start=comp_start,
            comp_boundary=comp_bnd,
            num_components=k,
            num_boundary=nb,
            n_row=n_row,
            num_buffers=nbuf,
        )
    if fallback is not None:
        return fallback
    raise BoundaryInfeasibleError(0, 0, budget, last_detail or "k search exhausted")


def ooc_boundary(
    graph,
    device: Device,
    *,
    num_components: int | None = None,
    batch_transfers: bool = True,
    overlap: bool = True,
    plan: BoundaryPlan | None = None,
    store_mode: str = "ram",
    store_dir=None,
    seed: int = 0,
    engine=None,
    checkpoint=None,
) -> APSPResult:
    """Solve APSP with the out-of-core boundary algorithm.

    ``engine`` overrides the process-wide kernel engine for the host-side
    numeric work (FW closures and the ``dist4`` min-plus chain).
    ``checkpoint`` (a directory path or
    :class:`~repro.faults.CheckpointStore`) saves per-component ``dist2``
    blocks, the closed boundary matrix ``dist3``, and ``dist4`` output
    progress at every flush boundary, resuming from whatever the store
    already holds.
    """
    n = graph.num_vertices
    spec = device.spec
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    if plan is None:
        plan = plan_boundary(
            graph, spec,
            num_components=num_components,
            batch_transfers=batch_transfers, overlap=overlap, seed=seed,
        )
    k = plan.num_components
    nb_total = plan.num_boundary
    pg = graph.permute(plan.perm)  # internal ordering (Fig 1a)
    host = HostStore.empty(n, mode=store_mode, directory=store_dir)
    host.data[...] = np.inf

    device.reset_clock()
    ckpt = open_checkpoint(checkpoint, algorithm="boundary", graph=graph)
    _bind_boundary_plan(ckpt, plan)
    compute = device.default_stream
    copier = device.create_stream("bound-copy") if overlap else compute

    with device.memory.cleanup_on_error():
        return _run_boundary(
            graph, device, compute, copier, host, plan, pg,
            batch_transfers, overlap, engine, ckpt=ckpt,
        )


def _bind_boundary_plan(ckpt, plan: BoundaryPlan) -> None:
    """Reject a checkpoint store whose stages assume a different plan.

    Stage indices are only meaningful under one permutation/partition, so
    resuming under a different seed or component count must fail loudly
    rather than mix blocks from two orderings.
    """
    if ckpt is None:
        return
    state = ckpt.load("plan")
    if state is None:
        ckpt.save("plan", perm=plan.perm, comp_start=plan.comp_start)
        return
    if not (
        np.array_equal(state["perm"], plan.perm)
        and np.array_equal(state["comp_start"], plan.comp_start)
    ):
        raise CheckpointError(
            "checkpoint was written under a different boundary plan "
            "(permutation/partition mismatch)",
            path=ckpt.path_for("plan"),
        )


def _count_output_flushes(starts, k: int, cap: int, *, start: int = 0) -> int:
    """Number of batched output flushes step 4 performs.

    Replays the fill loop of :func:`_run_boundary` without side effects so
    the driver (and its IR mirror) can elide ``strip-down`` records whose
    drain is never waited on again — a record with no consumer would trip
    the happens-before dead-event check. ``start`` skips the block-rows a
    checkpoint-resumed run does not replay.
    """
    flushes = 0
    buf_rows = 0
    for i in range(start, k):
        buf_rows += int(starts[i + 1] - starts[i])
        next_ni = int(starts[min(i + 2, k)] - starts[min(i + 1, k)]) if i + 1 < k else 0
        if i + 1 >= k or buf_rows + next_ni > cap:
            if buf_rows:
                flushes += 1
            buf_rows = 0
    return flushes


def _run_boundary(
    graph, device, compute, copier, host, plan, pg, batch_transfers, overlap, engine,
    *, ckpt=None,
):
    """Steps 2-4 of Algorithm 3 (see module docstring).

    With ``ckpt`` set, each completed unit of work is saved — component
    blocks as ``dist2-{i}``, the closed boundary matrix as ``dist3``,
    output progress as ``dist4`` at every flush boundary — and whatever
    the store already holds is restored instead of recomputed. Stages are
    written in schedule order, so the present stages always form a prefix
    of the schedule and the resumed suffix replays identically.
    """
    n = graph.num_vertices
    spec = device.spec
    k = plan.num_components
    nb_total = plan.num_boundary

    starts = plan.comp_start
    bcounts = plan.comp_boundary
    # boundary vertices are the first b_i internal ids of each component
    bnd_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(bcounts, out=bnd_offsets[1:])

    # ---- step 2: per-component APSP (dist2) ---------------------------
    dist2_blocks: list[np.ndarray] = []
    dist2_done = 0
    if ckpt is not None:
        while dist2_done < k and ckpt.has(f"dist2-{dist2_done}"):
            state = ckpt.load(f"dist2-{dist2_done}")
            dist2_blocks.append(np.asarray(state["block"], dtype=DIST_DTYPE))
            device.fault_report.resumed += 1
            dist2_done += 1
    for i in range(dist2_done, k):
        lo, hi = int(starts[i]), int(starts[i + 1])
        ni = hi - lo
        sub = pg.subgraph(np.arange(lo, hi))
        with device.memory.alloc((ni, ni), DIST_DTYPE, name=f"comp{i}") as tile:
            compute.copy_h2d(tile, sub.to_dense(dtype=DIST_DTYPE), pinned=True)
            engine.fw_inplace(tile.data)
            compute.launch("fw_comp", fw_tile_cost(spec, ni), reads=(tile,), writes=(tile,))
            block = np.empty((ni, ni), dtype=DIST_DTYPE)
            compute.copy_d2h(block, tile, pinned=True)
        dist2_blocks.append(block)
        if ckpt is not None:
            ckpt.save(f"dist2-{i}", block=block)
            device.fault_report.checkpoints_written += 1

    # ---- step 3: boundary graph closure (dist3) ------------------------
    bound_state = ckpt.load("dist3") if ckpt is not None else None
    if bound_state is not None:
        # restored matrix is already closed: upload only, no fw_bound
        bound_host = np.asarray(bound_state["bound"], dtype=DIST_DTYPE)
        device.fault_report.resumed += 1
        bound = device.memory.alloc((nb_total, nb_total), DIST_DTYPE, name="bound")
        compute.copy_h2d(bound, bound_host, pinned=True)
    else:
        bound_host = np.full((nb_total, nb_total), np.inf, dtype=DIST_DTYPE)
        np.fill_diagonal(bound_host, 0.0)
        # virtual edges: same-component boundary-to-boundary dist2
        for i in range(k):
            bi = int(bcounts[i])
            o = int(bnd_offsets[i])
            bound_host[o : o + bi, o : o + bi] = dist2_blocks[i][:bi, :bi]
        # cross edges: all cut edges connect boundary vertices of two components
        src, dst, w = pg.edge_array()
        comp_of = np.searchsorted(starts, np.arange(n), side="right") - 1
        cross = comp_of[src] != comp_of[dst]
        csrc, cdst, cw = src[cross], dst[cross], w[cross]
        # internal id -> boundary index: offset within component + bnd offset
        local = np.arange(n) - starts[comp_of]
        bidx = bnd_offsets[comp_of] + local  # valid only for boundary vertices
        np.minimum.at(bound_host, (bidx[csrc], bidx[cdst]), cw.astype(DIST_DTYPE))

        bound = device.memory.alloc((nb_total, nb_total), DIST_DTYPE, name="bound")
        compute.copy_h2d(bound, bound_host, pinned=True)
        engine.fw_inplace(bound.data)
        compute.launch("fw_bound", fw_tile_cost(spec, nb_total), reads=(bound,), writes=(bound,))
        if ckpt is not None:
            ckpt.save("dist3", bound=np.asarray(bound.data))
            device.fault_report.checkpoints_written += 1

    # ---- step 4: dist4 via two successive min-plus products ------------
    nmax = plan.max_component
    bmax = int(bcounts.max())
    c2b = device.memory.alloc((nmax, max(1, bmax)), DIST_DTYPE, name="c2b")
    b2c = device.memory.alloc((max(1, bmax), nmax), DIST_DTYPE, name="b2c")
    tmp1 = device.memory.alloc((nmax, max(1, bmax)), DIST_DTYPE, name="tmp1")

    if batch_transfers and plan.n_row < 1:
        # the planner found no configuration with room for even one output
        # strip (seen on the smaller-memory K80 at reduced scale): degrade
        # to the per-block path
        batch_transfers = False
    if batch_transfers:
        out_bufs = [
            device.memory.alloc((plan.n_row * nmax, n), DIST_DTYPE, name=f"out{p}")
            for p in range(plan.num_buffers)
        ]
    else:
        out_bufs = [device.memory.alloc((nmax, nmax), DIST_DTYPE, name="out")]
    drain_events: list[Event | None] = [None] * len(out_bufs)

    rows_done = 0
    if ckpt is not None:
        state = ckpt.load("dist4")
        if state is not None:
            host.data[...] = state["dist"]
            rows_done = int(state["rows_done"])
            device.fault_report.resumed += 1

    buf_rows = 0  # filled rows in the active accumulation buffer
    buf_meta: list[tuple[int, int, int]] = []  # (host_lo, host_hi, buf_lo)
    active = 0
    flush_idx = 0
    total_flushes = (
        _count_output_flushes(starts, k, plan.n_row * nmax, start=rows_done)
        if batch_transfers
        else 0
    )

    def flush(active_idx: int) -> None:
        nonlocal buf_rows, buf_meta, flush_idx
        if buf_rows == 0:
            return
        buf = out_bufs[active_idx]
        total = buf_meta[-1][1] - buf_meta[0][0]
        view = buf.data[:buf_rows, :]
        hdst = host.data[buf_meta[0][0] : buf_meta[-1][1], :]
        if overlap:
            copier.wait(compute.record(Event("strip-ready")))
            copier.copy_d2h_async(hdst, view, pinned=True)
            if flush_idx + len(out_bufs) <= total_flushes:
                # Only record drains a later refill actually waits on.
                drain_events[active_idx] = copier.record(Event("strip-down"))
        else:
            compute.copy_d2h(hdst, view, pinned=True)
        assert total == buf_rows
        flush_idx += 1
        buf_rows = 0
        buf_meta = []

    for i in range(rows_done, k):
        lo_i, hi_i = int(starts[i]), int(starts[i + 1])
        ni = hi_i - lo_i
        bi = int(bcounts[i])
        oi = int(bnd_offsets[i])
        # C2B[i]: extract + upload (paper lines 6-8)
        c2b_view = c2b.data[:ni, :bi]
        compute.copy_h2d(c2b_view, dist2_blocks[i][:, :bi], pinned=True)
        compute.launch(
            "extract_c2b", extract_cost(spec, ni, bi),
            reads=(c2b_view,), writes=(c2b_view,),
        )

        if batch_transfers:
            row_base = buf_rows
            buf_meta.append((lo_i, hi_i, row_base))
        for j in range(k):
            lo_j, hi_j = int(starts[j]), int(starts[j + 1])
            nj = hi_j - lo_j
            bj = int(bcounts[j])
            oj = int(bnd_offsets[j])
            b2c_view = b2c.data[:bj, :nj]
            compute.copy_h2d(b2c_view, dist2_blocks[j][:bj, :], pinned=True)
            compute.launch(
                "extract_b2c", extract_cost(spec, bj, nj),
                reads=(b2c_view,), writes=(b2c_view,),
            )

            if batch_transfers:
                dest = out_bufs[active].data[row_base : row_base + ni, lo_j:hi_j]
            else:
                dest = out_bufs[0].data[:ni, :nj]
            dest[...] = np.inf
            compute.annotate("memset_out", writes=(dest,))
            if bi and bj:
                bview = bound.data[oi : oi + bi, oj : oj + bj]
                t1 = tmp1.data[:ni, :bj]
                t1[...] = np.inf
                compute.annotate("memset_tmp1", writes=(t1,))
                minplus_update(t1, c2b_view, bview, engine=engine)
                compute.launch(
                    "mp_c2b_bound", minplus_cost(spec, ni, bi, bj),
                    reads=(c2b_view, bview), writes=(t1,),
                )
                minplus_update(dest, t1, b2c_view, engine=engine)
                compute.launch(
                    "mp_bound_b2c", minplus_cost(spec, ni, bj, nj),
                    reads=(t1, b2c_view), writes=(dest,),
                )
            # else: isolated component — no boundary path in or out
            if i == j:
                np.minimum(dest, dist2_blocks[i], out=dest)
                compute.annotate("min_diag", reads=(dest,), writes=(dest,))

            if not batch_transfers:
                # naive path: strided per-block copy into the host matrix
                compute.copy_d2h_2d(host.data[lo_i:hi_i, lo_j:hi_j], dest, pinned=True)
        at_flush_boundary = not batch_transfers
        if batch_transfers:
            buf_rows += ni
            # Flush when the next block-row would not fit.
            next_ni = int(starts[min(i + 2, k)] - starts[min(i + 1, k)]) if i + 1 < k else 0
            if i + 1 >= k or buf_rows + next_ni > plan.n_row * nmax:
                flush(active)
                active = (active + 1) % len(out_bufs)
                if drain_events[active] is not None:
                    compute.wait(drain_events[active])  # buffer still draining
                at_flush_boundary = True
        if ckpt is not None and at_flush_boundary:
            # host.data holds every flushed block-row (simulated copies move
            # data at enqueue time), so the stage is consistent without a
            # device sync — checkpointing keeps the timeline untouched.
            ckpt.save("dist4", rows_done=i + 1, dist=np.asarray(host.data))
            device.fault_report.checkpoints_written += 1

    elapsed = device.synchronize()
    host.flush()
    for arr in [bound, c2b, b2c, tmp1, *out_bufs]:
        arr.free()

    from repro.core.ooc_fw import transfer_stats

    return APSPResult(
        algorithm="boundary",
        store=host,
        simulated_seconds=elapsed,
        perm=plan.perm,
        inv_perm=plan.inv_perm,
        stats={
            "num_components": k,
            "num_boundary": nb_total,
            "max_component": nmax,
            "n_row": plan.n_row,
            "num_buffers": plan.num_buffers if batch_transfers else 1,
            "batch_transfers": batch_transfers,
            "overlap": overlap,
            "kernel_backend": engine.describe(),
            **transfer_stats(device),
        },
        faults=device.fault_report,
    )

def emit_boundary_ir(
    graph,
    spec: DeviceSpec,
    *,
    num_components: int | None = None,
    batch_transfers: bool = True,
    overlap: bool = True,
    plan: BoundaryPlan | None = None,
    seed: int = 0,
    resume: "tuple[int, bool, int] | None" = None,
):
    """Compile the boundary-algorithm schedule to a symbolic
    :class:`~repro.verifyplan.ir.PlanIR` without executing anything.

    Mirrors :func:`_run_boundary` op for op: per-component dist2 tiles,
    the resident boundary matrix, the C2B/B2C extract uploads, and the
    ``N_row``-batched (or per-block strided) output drains with their
    flush boundaries — with ``overlap=True`` the batched drains run
    async on ``bound-copy`` behind the ``strip-ready``/``strip-down``
    event edges the driver uses. Host-side annotations (``memset_out``
    etc.) are marked ``annotate`` so the timing pass skips them, exactly
    as they occupy no slot on the dynamic timeline.

    ``resume=(dist2_done, bound_done, rows_done)`` emits the schedule
    suffix a checkpoint-resumed run replays: the first ``dist2_done``
    component closures are skipped, ``bound_done`` replaces the boundary
    closure with a plain re-upload of the restored matrix, and step 4
    starts at block-row ``rows_done``. Audit resumed suffixes with
    ``analyze_hb``/``audit_ir`` (they move fewer bytes than the full-run
    paper bounds assume).
    """
    from repro.verifyplan.ir import IREmitter, Rect

    dist2_done, bound_done, rows_done = resume if resume is not None else (0, False, 0)

    n = graph.num_vertices
    if plan is None:
        plan = plan_boundary(
            graph, spec,
            num_components=num_components,
            batch_transfers=batch_transfers, overlap=overlap, seed=seed,
        )
    k = plan.num_components
    nb_total = plan.num_boundary
    starts = plan.comp_start
    bcounts = plan.comp_boundary
    bnd_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(bcounts, out=bnd_offsets[1:])

    em = IREmitter("boundary", spec.name, spec.memory_bytes)
    # step 2: per-component APSP (dist2)
    for i in range(dist2_done, k):
        ni = int(starts[i + 1] - starts[i])
        tile = em.alloc(f"comp{i}", (ni, ni))
        em.h2d(tile, key=("sub", i))
        em.kernel("fw_comp", reads=(tile,), writes=(tile,))
        em.d2h(tile, key=("dist2", i))
        em.free(tile)

    # step 3: boundary graph closure (dist3); stays resident
    bound = em.alloc("bound", (nb_total, nb_total))
    em.h2d(bound, key=("bound",))
    if not bound_done:
        em.kernel("fw_bound", reads=(bound,), writes=(bound,))

    # step 4: two min-plus products per block
    nmax = plan.max_component
    bmax = int(bcounts.max())
    c2b = em.alloc("c2b", (nmax, max(1, bmax)))
    b2c = em.alloc("b2c", (max(1, bmax), nmax))
    tmp1 = em.alloc("tmp1", (nmax, max(1, bmax)))
    if batch_transfers and plan.n_row < 1:
        batch_transfers = False
    if batch_transfers:
        out_bufs = [
            em.alloc(f"out{p}", (plan.n_row * nmax, n))
            for p in range(plan.num_buffers)
        ]
    else:
        out_bufs = [em.alloc("out", (nmax, nmax))]

    copier = "bound-copy" if overlap else "default"
    drain_events: list = [None] * len(out_bufs)
    buf_rows = 0
    buf_meta: list[tuple[int, int, int]] = []
    active = 0
    flush_idx = 0
    total_flushes = (
        _count_output_flushes(starts, k, plan.n_row * nmax, start=rows_done)
        if batch_transfers
        else 0
    )

    def flush(active_idx: int) -> None:
        nonlocal buf_rows, buf_meta, flush_idx
        if buf_rows == 0:
            return
        if overlap:
            em.wait(em.record("strip-ready"), stream=copier)
            em.d2h(
                out_bufs[active_idx], Rect(0, buf_rows, 0, n),
                key=("host-rows", buf_meta[0][0], buf_meta[-1][1]),
                stream=copier, sync=False,
            )
            if flush_idx + len(out_bufs) <= total_flushes:
                drain_events[active_idx] = em.record("strip-down", stream=copier)
        else:
            em.d2h(
                out_bufs[active_idx], Rect(0, buf_rows, 0, n),
                key=("host-rows", buf_meta[0][0], buf_meta[-1][1]),
            )
        flush_idx += 1
        buf_rows = 0
        buf_meta = []

    row_base = 0
    for i in range(rows_done, k):
        lo_i, hi_i = int(starts[i]), int(starts[i + 1])
        ni = hi_i - lo_i
        bi = int(bcounts[i])
        oi = int(bnd_offsets[i])
        cr = Rect(0, ni, 0, bi)
        em.h2d(c2b, cr, key=("dist2", i, "c2b"))
        em.kernel("extract_c2b", reads=((c2b, cr),), writes=((c2b, cr),))
        if batch_transfers:
            row_base = buf_rows
            buf_meta.append((lo_i, hi_i, row_base))
        for j in range(k):
            lo_j, hi_j = int(starts[j]), int(starts[j + 1])
            nj = hi_j - lo_j
            bj = int(bcounts[j])
            oj = int(bnd_offsets[j])
            br = Rect(0, bj, 0, nj)
            em.h2d(b2c, br, key=("dist2", j, "b2c"))
            em.kernel("extract_b2c", reads=((b2c, br),), writes=((b2c, br),))
            if batch_transfers:
                dest = (out_bufs[active], Rect(row_base, row_base + ni, lo_j, hi_j))
            else:
                dest = (out_bufs[0], Rect(0, ni, 0, nj))
            em.kernel("memset_out", writes=(dest,), annotate=True)
            if bi and bj:
                bview = (bound, Rect(oi, oi + bi, oj, oj + bj))
                t1 = (tmp1, Rect(0, ni, 0, bj))
                em.kernel("memset_tmp1", writes=(t1,), annotate=True)
                em.kernel("mp_c2b_bound", reads=((c2b, cr), bview), writes=(t1,))
                em.kernel("mp_bound_b2c", reads=(t1, (b2c, br)), writes=(dest,))
            if i == j:
                em.kernel("min_diag", reads=(dest,), writes=(dest,), annotate=True)
            if not batch_transfers:
                em.d2h(
                    out_bufs[0], Rect(0, ni, 0, nj),
                    key=("host-block", i, j), strided=True,
                )
        if batch_transfers:
            buf_rows += ni
            next_ni = (
                int(starts[min(i + 2, k)] - starts[min(i + 1, k)]) if i + 1 < k else 0
            )
            if i + 1 >= k or buf_rows + next_ni > plan.n_row * nmax:
                flush(active)
                active = (active + 1) % len(out_bufs)
                if overlap and drain_events[active] is not None:
                    em.wait(drain_events[active])  # buffer still draining
    for buf in [bound, c2b, b2c, tmp1, *out_bufs]:
        em.free(buf)
    return em.finish()
