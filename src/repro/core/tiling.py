"""Block layout planning and the host-side distance-matrix store.

Out-of-core APSP produces an ``n × n`` matrix that lives on the *host*
(or, for the paper's Table IV graphs, not even there — it spills to disk).
:class:`HostStore` owns that matrix in one of two modes:

* ``"ram"`` — a pinned host allocation (Table III regime, output fits in
  CPU memory);
* ``"disk"`` — a ``numpy.memmap`` backing file (Table IV regime, output
  exceeds CPU memory; the paper streams such outputs to storage).

:class:`BlockLayout` slices ``[0, n)`` into device-sized blocks and is
shared by all three out-of-core drivers.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.graphs.csr import CSRGraph

__all__ = ["BlockLayout", "HostStore"]


@dataclass(frozen=True)
class BlockLayout:
    """Uniform 1-D blocking of ``[0, n)`` into blocks of size ≤ ``block_size``."""

    n: int
    block_size: int

    def __post_init__(self) -> None:
        if self.n < 0 or self.block_size < 1:
            raise ValueError("need n >= 0 and block_size >= 1")

    @property
    def num_blocks(self) -> int:
        return max(1, (self.n + self.block_size - 1) // self.block_size)

    def start(self, i: int) -> int:
        return i * self.block_size

    def stop(self, i: int) -> int:
        return min((i + 1) * self.block_size, self.n)

    def size(self, i: int) -> int:
        return self.stop(i) - self.start(i)

    def slice(self, i: int) -> slice:
        if not 0 <= i < self.num_blocks:
            raise IndexError(f"block {i} out of range (num_blocks={self.num_blocks})")
        return slice(self.start(i), self.stop(i))

    def __iter__(self):
        return iter(range(self.num_blocks))


class HostStore:
    """The host-resident (or disk-backed) ``n × n`` distance matrix."""

    def __init__(
        self,
        n: int,
        *,
        mode: str = "ram",
        dtype=DIST_DTYPE,
        directory: str | Path | None = None,
        pinned: bool = True,
    ) -> None:
        if mode not in ("ram", "disk"):
            raise ValueError("mode must be 'ram' or 'disk'")
        self.n = n
        self.mode = mode
        self.pinned = pinned if mode == "ram" else False
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if mode == "ram":
            self.data = np.empty((n, n), dtype=dtype)
        else:
            if directory is None:
                self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-apsp-")
                directory = self._tmpdir.name
            path = Path(directory) / f"dist_{n}x{n}.bin"
            self.data = np.memmap(path, dtype=dtype, mode="w+", shape=(n, n))
            self.path = path

    @classmethod
    def from_graph(
        cls, graph: CSRGraph, *, mode: str = "ram", dtype=DIST_DTYPE, directory=None
    ) -> "HostStore":
        """Store initialised with the graph's weight matrix (FW seed)."""
        store = cls(graph.num_vertices, mode=mode, dtype=dtype, directory=directory)
        store.data[...] = graph.to_dense(dtype=dtype)
        return store

    @classmethod
    def empty(cls, graph_or_n, **kwargs) -> "HostStore":
        """Uninitialised store (Johnson/boundary fill rows/blocks directly)."""
        n = graph_or_n.num_vertices if isinstance(graph_or_n, CSRGraph) else int(graph_or_n)
        return cls(n, **kwargs)

    def block(self, layout: BlockLayout, i: int, j: int) -> np.ndarray:
        """Writable view of block ``(i, j)``."""
        return self.data[layout.slice(i), layout.slice(j)]

    def rows(self, start: int, stop: int) -> np.ndarray:
        return self.data[start:stop, :]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def flush(self) -> None:
        """Persist to the backing file (disk mode only)."""
        if self.mode == "disk":
            self.data.flush()

    def close(self) -> None:
        if self._tmpdir is not None:
            # Release the memmap before removing its file.
            del self.data
            self._tmpdir.cleanup()
            self._tmpdir = None
