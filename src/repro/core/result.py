"""Result container for out-of-core APSP runs."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.tiling import HostStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.retry import FaultReport

__all__ = ["APSPResult"]


@dataclass
class APSPResult:
    """Distances plus execution record of one APSP run.

    ``store`` holds the distance matrix in the *internal* vertex order; the
    boundary algorithm permutes vertices (components contiguous, boundary
    first — Figure 1), so lookups go through ``perm``/``inv_perm``.
    ``simulated_seconds`` is the device-model execution time (compute +
    transfers, as scheduled on the simulated timeline); ``stats`` carries
    per-algorithm diagnostics (batch counts, boundary sizes, workloads, …).
    ``faults`` is the run's :class:`~repro.faults.FaultReport` ledger —
    injected faults, retries, checkpoint stages resumed/written — when the
    driver ran on a fault-instrumented or checkpointing device.
    """

    algorithm: str
    store: HostStore
    simulated_seconds: float
    perm: np.ndarray | None = None  # internal id of external vertex v
    inv_perm: np.ndarray | None = None  # external id of internal vertex
    stats: dict = field(default_factory=dict)
    faults: "FaultReport | None" = None

    @property
    def n(self) -> int:
        return self.store.n

    def distance(self, u: int, v: int) -> float:
        """Shortest distance from ``u`` to ``v`` (external ids)."""
        if self.perm is not None:
            u, v = int(self.perm[u]), int(self.perm[v])
        return float(self.store.data[u, v])

    def row(self, u: int) -> np.ndarray:
        """Distances from ``u`` to every vertex, in external order."""
        if self.perm is None:
            return np.asarray(self.store.data[u, :])
        internal = self.store.data[self.perm[u], :]
        return np.asarray(internal[self.perm])

    def to_array(self) -> np.ndarray:
        """Full matrix in external order (materialises disk-backed stores)."""
        data = np.asarray(self.store.data)
        if self.perm is None:
            return data
        return data[np.ix_(self.perm, self.perm)]

    # ------------------------------------------------------------------
    # Persistence: long out-of-core jobs want their output as an artifact
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist distances + metadata under ``directory``.

        Writes ``distances.npy`` (internal order), ``perm.npy`` when the
        result is permuted, and ``meta.json``. Returns the directory.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.save(directory / "distances.npy", np.asarray(self.store.data))
        if self.perm is not None:
            np.save(directory / "perm.npy", self.perm)
        meta = {
            "algorithm": self.algorithm,
            "n": self.n,
            "simulated_seconds": self.simulated_seconds,
            "permuted": self.perm is not None,
        }
        (directory / "meta.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "APSPResult":
        """Reload a result previously written by :meth:`save`."""
        directory = Path(directory)
        meta = json.loads((directory / "meta.json").read_text())
        data = np.load(directory / "distances.npy")
        store = HostStore(meta["n"], dtype=data.dtype)
        store.data[...] = data
        perm = inv = None
        if meta["permuted"]:
            perm = np.load(directory / "perm.npy")
            inv = np.argsort(perm)
        return cls(
            algorithm=meta["algorithm"],
            store=store,
            simulated_seconds=meta["simulated_seconds"],
            perm=perm,
            inv_perm=inv,
            stats={"loaded_from": str(directory)},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"APSPResult(algorithm={self.algorithm!r}, n={self.n}, "
            f"simulated_seconds={self.simulated_seconds:.6f})"
        )
