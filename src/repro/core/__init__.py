"""The paper's primary contribution: out-of-core GPU APSP.

Three out-of-core implementations (Section III):

* :func:`~repro.core.ooc_fw.ooc_floyd_warshall` — Algorithm 1, the blocked
  Floyd–Warshall streamed block-by-block through device memory;
* :func:`~repro.core.ooc_johnson.ooc_johnson` — Algorithm 2, batched
  multi-source Near-Far SSSP with optional dynamic parallelism;
* :func:`~repro.core.ooc_boundary.ooc_boundary` — Algorithm 3, the
  partition-based boundary algorithm with transfer batching and
  compute/transfer overlap.

Plus the in-core numeric kernels (:mod:`~repro.core.minplus`,
:mod:`~repro.core.blocked_fw`), the block/host-store layer
(:mod:`~repro.core.tiling`), and the :func:`~repro.core.api.solve_apsp`
facade that wires in the Section-IV selector.
"""

from repro.core.api import ALGORITHMS, solve_apsp, solve_apsp_negative
from repro.core.blocked_fw import blocked_floyd_warshall, floyd_warshall, fw_ops
from repro.core.minplus import DIST_DTYPE, minplus, minplus_update
from repro.core.ooc_boundary import (
    BoundaryInfeasibleError,
    BoundaryPlan,
    default_num_components,
    ooc_boundary,
    plan_boundary,
)
from repro.core.incore import fits_in_core, incore_apsp
from repro.core.multi_gpu import ooc_boundary_multi
from repro.core.ooc_fw import ooc_floyd_warshall, plan_fw_block_size
from repro.core.ooc_johnson import ooc_johnson, plan_batch_size
from repro.core.paths import path_length, reconstruct_path
from repro.core.result import APSPResult
from repro.core.tiling import BlockLayout, HostStore
from repro.core.verify import VerificationReport, verify_result

__all__ = [
    "ALGORITHMS",
    "APSPResult",
    "BlockLayout",
    "BoundaryInfeasibleError",
    "BoundaryPlan",
    "DIST_DTYPE",
    "HostStore",
    "blocked_floyd_warshall",
    "default_num_components",
    "floyd_warshall",
    "fw_ops",
    "minplus",
    "minplus_update",
    "VerificationReport",
    "fits_in_core",
    "incore_apsp",
    "ooc_boundary",
    "ooc_boundary_multi",
    "ooc_floyd_warshall",
    "ooc_johnson",
    "path_length",
    "plan_batch_size",
    "plan_boundary",
    "plan_fw_block_size",
    "reconstruct_path",
    "solve_apsp",
    "solve_apsp_negative",
    "verify_result",
]
