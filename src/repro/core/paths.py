"""Path reconstruction from a completed distance matrix.

The out-of-core drivers store only distances (an n×n predecessor matrix
would double the already-dominant output). Individual paths can still be
reconstructed *exactly* from distances alone: from ``u``, the next hop
toward ``v`` is any out-neighbour ``x`` with
``dist(u, v) == w(u, x) + dist(x, v)`` — such a neighbour always exists on
a shortest path. Reconstruction costs ``O(path length · max degree)``
lookups, all served from the (possibly disk-backed) host store without
materialising anything.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import APSPResult
from repro.graphs.csr import CSRGraph

__all__ = ["reconstruct_path", "path_length"]


def reconstruct_path(
    graph: CSRGraph, result: APSPResult, source: int, target: int
) -> list[int]:
    """Vertices of one shortest path from ``source`` to ``target``.

    Returns ``[source, ..., target]``; raises ``ValueError`` when no path
    exists. Ties are broken toward the lowest-id neighbour, so the output
    is deterministic.
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("source/target out of range")
    total = result.distance(source, target)
    if not np.isfinite(total):
        raise ValueError(f"no path from {source} to {target}")

    path = [source]
    u = source
    remaining = total
    # float32 stores introduce tiny rounding; integer weights make exact
    # equality safe, but keep a small tolerance for general inputs.
    tol = 1e-4 * max(1.0, abs(total))
    while u != target:
        nbrs, weights = graph.neighbors(u)
        if nbrs.size == 0:
            raise AssertionError("distance matrix inconsistent with graph")
        dists = np.array([result.distance(int(x), target) for x in nbrs])
        slack = weights + dists - remaining
        candidates = np.nonzero(slack <= tol)[0]
        if candidates.size == 0:
            raise AssertionError("distance matrix inconsistent with graph")
        pick = int(candidates[np.argmin(nbrs[candidates])])
        u = int(nbrs[pick])
        remaining = float(dists[pick])
        path.append(u)
        if len(path) > n:
            raise AssertionError("path reconstruction cycled")
    return path


def path_length(graph: CSRGraph, path: list[int]) -> float:
    """Total weight of a vertex path (inf if an edge is missing)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        nbrs, w = graph.neighbors(u)
        hits = np.nonzero(nbrs == v)[0]
        if hits.size == 0:
            return np.inf
        total += float(w[hits].min())
    return total
