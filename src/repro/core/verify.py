"""Result self-verification.

``verify_result`` spot-checks an out-of-core APSP result against
independently computed Dijkstra rows — the cheap integrity check a
downstream user should run after a long out-of-core job (full verification
would cost as much as the job itself). Sampled rows give probabilistic
coverage of every block the drivers streamed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import APSPResult
from repro.graphs.csr import CSRGraph
from repro.sssp.dijkstra import dijkstra

__all__ = ["VerificationReport", "verify_result"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a sampled verification pass."""

    checked_rows: int
    max_abs_error: float
    mismatched_entries: int
    ok: bool

    def raise_on_failure(self) -> "VerificationReport":
        if not self.ok:
            raise AssertionError(
                f"APSP verification failed: {self.mismatched_entries} mismatched "
                f"entries, max |error| {self.max_abs_error:g}"
            )
        return self


def verify_result(
    graph: CSRGraph,
    result: APSPResult,
    *,
    num_rows: int = 8,
    seed: int = 0,
    atol: float = 1e-3,
) -> VerificationReport:
    """Compare ``num_rows`` sampled rows of ``result`` against Dijkstra.

    Tolerance defaults account for float32 storage of integer-weight path
    sums (exact) plus rounding headroom for real-valued weights.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    rows = rng.choice(n, size=min(num_rows, n), replace=False)
    max_err = 0.0
    mismatched = 0
    for r in rows:
        expected, _ = dijkstra(graph, int(r))
        got = result.row(int(r)).astype(np.float64)
        both_inf = np.isinf(expected) & np.isinf(got)
        diff = np.zeros_like(expected)
        mask = ~both_inf
        diff[mask] = np.abs(got[mask] - expected[mask])
        bad = ~both_inf & ~(diff <= atol)
        mismatched += int(bad.sum())
        finite = np.isfinite(diff)
        if finite.any():
            max_err = max(max_err, float(diff[finite].max()))
    return VerificationReport(
        checked_rows=len(rows),
        max_abs_error=max_err,
        mismatched_entries=mismatched,
        ok=mismatched == 0,
    )
