"""Multi-GPU boundary algorithm (extension).

The boundary algorithm descends from Djidjev et al.'s multi-node scheme,
and the paper's conclusion points at scaling beyond one device. This
driver runs Algorithm 3 across several simulated GPUs:

* **step 2** — components are distributed round-robin; each device closes
  its own diagonal blocks (dist2) independently;
* **step 3** — after a barrier, device 0 builds and closes the boundary
  graph; the closed matrix is broadcast (host-staged upload to every other
  device);
* **step 4** — block *rows* are distributed round-robin; each device runs
  its own batched-transfer pipeline into the shared host store over its
  own PCIe link.

Synchronisation is modelled with cross-device barriers (every engine clock
floors at the slowest device's time), so the simulated makespan honestly
includes load imbalance. Distances are identical to the single-device
driver (asserted in the tests).
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.core.blocked_fw import floyd_warshall_inplace
from repro.core.minplus import DIST_DTYPE, minplus_update
from repro.core.ooc_boundary import BoundaryPlan, _bind_boundary_plan, plan_boundary
from repro.core.result import APSPResult
from repro.core.tiling import HostStore
from repro.faults.checkpoint import open_checkpoint
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.kernels import extract_cost, fw_tile_cost, minplus_cost
from repro.gpu.stream import Event

__all__ = ["emit_multi_ir", "ooc_boundary_multi"]

_ELEM = np.dtype(DIST_DTYPE).itemsize


def _barrier(devices: list[Device]) -> float:
    """Advance every device (host, streams, engines) to the global max."""
    t = max(dev.elapsed for dev in devices)
    for dev in devices:
        dev.host_ready = max(dev.host_ready, t)
        dev.timeline.advance_to(t)
        for stream in dev._streams:
            stream.ready_at = max(stream.ready_at, t)
    return t


def ooc_boundary_multi(
    graph,
    devices: list[Device],
    *,
    num_components: int | None = None,
    plan: BoundaryPlan | None = None,
    store_mode: str = "ram",
    store_dir=None,
    seed: int = 0,
    overlap: bool = False,
    checkpoint=None,
) -> APSPResult:
    """Solve APSP with the boundary algorithm across ``devices``.

    All devices must share a spec-compatible memory budget (the plan is
    validated against the smallest device). With ``overlap=True`` each
    device drains its step-4 output strips asynchronously on a
    ``multi-copy`` stream behind ``strip-ready``/``strip-down`` event
    edges, double-buffering two strips so compute on strip ``p+1``
    overlaps the download of strip ``p`` (costs one extra strip of
    device memory per device; off by default to keep the baseline
    footprint).

    ``checkpoint`` saves the same ``dist2-{i}``/``dist3``/``dist4``
    stages as the single-device driver (stamped ``boundary-multi``, so
    the two drivers' stores are not interchangeable) and resumes from
    whatever the store holds; the resumed run may even use a different
    device count, since stages record algorithm progress, not placement.
    """
    if not devices:
        raise ValueError("need at least one device")
    n = graph.num_vertices
    smallest: DeviceSpec = min(devices, key=lambda d: d.spec.memory_bytes).spec
    if plan is None:
        plan = plan_boundary(
            graph, smallest, num_components=num_components, seed=seed
        )
    k = plan.num_components
    nb_total = plan.num_boundary
    pg = graph.permute(plan.perm)
    host = HostStore.empty(n, mode=store_mode, directory=store_dir)
    host.data[...] = np.inf

    for dev in devices:
        dev.reset_clock()
    ckpt = open_checkpoint(checkpoint, algorithm="boundary-multi", graph=graph)
    _bind_boundary_plan(ckpt, plan)
    report = devices[0].fault_report  # resume/checkpoint ledger lives on dev 0

    starts = plan.comp_start
    bcounts = plan.comp_boundary
    bnd_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(bcounts, out=bnd_offsets[1:])
    num_dev = len(devices)

    # A mid-run fault (exhausted retry budget) must not leak device
    # memory on any device of the fleet.
    with contextlib.ExitStack() as cleanup:
        for dev in devices:
            cleanup.enter_context(dev.memory.cleanup_on_error())
        # ---- step 2: per-component APSP, round-robin over devices ----------
        dist2_blocks: list[np.ndarray | None] = [None] * k
        dist2_done = 0
        if ckpt is not None:
            while dist2_done < k and ckpt.has(f"dist2-{dist2_done}"):
                state2 = ckpt.load(f"dist2-{dist2_done}")
                dist2_blocks[dist2_done] = np.asarray(state2["block"], dtype=DIST_DTYPE)
                report.resumed += 1
                dist2_done += 1
        for i in range(dist2_done, k):
            dev = devices[i % num_dev]
            stream = dev.default_stream
            lo, hi = int(starts[i]), int(starts[i + 1])
            ni = hi - lo
            sub = pg.subgraph(np.arange(lo, hi))
            with dev.memory.alloc((ni, ni), DIST_DTYPE, name=f"comp{i}") as tile:
                stream.copy_h2d(tile, sub.to_dense(dtype=DIST_DTYPE), pinned=True)
                floyd_warshall_inplace(tile.data)
                stream.launch("fw_comp", fw_tile_cost(dev.spec, ni), reads=(tile,), writes=(tile,))
                block = np.empty((ni, ni), dtype=DIST_DTYPE)
                stream.copy_d2h(block, tile, pinned=True)
            dist2_blocks[i] = block
            if ckpt is not None:
                ckpt.save(f"dist2-{i}", block=block)
                report.checkpoints_written += 1
        _barrier(devices)

        # ---- step 3: boundary closure on device 0, broadcast ---------------
        bound_state = ckpt.load("dist3") if ckpt is not None else None
        root = devices[0]
        if bound_state is not None:
            # restored matrix is already closed: every device just uploads it
            bound_host = np.asarray(bound_state["bound"], dtype=DIST_DTYPE)
            report.resumed += 1
            bound0 = root.memory.alloc((nb_total, nb_total), DIST_DTYPE, name="bound")
            root.default_stream.copy_h2d(bound0, bound_host, pinned=True)
        else:
            bound_host = np.full((nb_total, nb_total), np.inf, dtype=DIST_DTYPE)
            np.fill_diagonal(bound_host, 0.0)
            for i in range(k):
                bi = int(bcounts[i])
                o = int(bnd_offsets[i])
                bound_host[o : o + bi, o : o + bi] = dist2_blocks[i][:bi, :bi]
            src, dst, w = pg.edge_array()
            comp_of = np.searchsorted(starts, np.arange(n), side="right") - 1
            cross = comp_of[src] != comp_of[dst]
            local = np.arange(n) - starts[comp_of]
            bidx = bnd_offsets[comp_of] + local
            np.minimum.at(
                bound_host, (bidx[src[cross]], bidx[dst[cross]]), w[cross].astype(DIST_DTYPE)
            )

            bound0 = root.memory.alloc((nb_total, nb_total), DIST_DTYPE, name="bound")
            root.default_stream.copy_h2d(bound0, bound_host, pinned=True)
            floyd_warshall_inplace(bound0.data)
            root.default_stream.launch(
                "fw_bound", fw_tile_cost(root.spec, nb_total), reads=(bound0,), writes=(bound0,)
            )
            root.default_stream.copy_d2h(bound_host, bound0, pinned=True)
            if ckpt is not None:
                ckpt.save("dist3", bound=bound_host)
                report.checkpoints_written += 1
        _barrier(devices)
        bounds = [bound0]
        for dev in devices[1:]:
            b = dev.memory.alloc((nb_total, nb_total), DIST_DTYPE, name="bound")
            dev.default_stream.copy_h2d(b, bound_host, pinned=True)
            bounds.append(b)
        _barrier(devices)

        # ---- step 4: block rows round-robin, batched transfers per device --
        nmax = plan.max_component
        bmax = int(bcounts.max()) if k else 1
        nbuf = 2 if overlap else 1
        copiers = [
            dev.create_stream("multi-copy") if overlap else dev.default_stream
            for dev in devices
        ]
        state = []
        out_bufs = []
        for dev in devices:
            state.append(
                dict(
                    c2b=dev.memory.alloc((nmax, max(1, bmax)), DIST_DTYPE, name="c2b"),
                    b2c=dev.memory.alloc((max(1, bmax), nmax), DIST_DTYPE, name="b2c"),
                    tmp=dev.memory.alloc((nmax, max(1, bmax)), DIST_DTYPE, name="tmp1"),
                )
            )
            if overlap:
                out_bufs.append([
                    dev.memory.alloc((nmax, n), DIST_DTYPE, name=f"out{p}")
                    for p in range(nbuf)
                ])
            else:
                out_bufs.append([dev.memory.alloc((nmax, n), DIST_DTYPE, name="out")])
        drain_events: list[list[Event | None]] = [[None] * nbuf for _ in devices]
        strip_count = [0] * num_dev
        rows_done = 0
        if ckpt is not None:
            state4 = ckpt.load("dist4")
            if state4 is not None:
                host.data[...] = state4["dist"]
                rows_done = int(state4["rows_done"])
                report.resumed += 1
        # strips device d handles over the round-robin (for trailing-record
        # elision: the last nbuf drains per device have no future consumer);
        # on resume, only the replayed suffix counts
        strips_per_dev = [
            sum(1 for i in range(rows_done, k) if i % num_dev == d)
            for d in range(num_dev)
        ]

        for i in range(rows_done, k):
            d = i % num_dev
            dev = devices[d]
            st = state[d]
            stream = dev.default_stream
            copier = copiers[d]
            spec = dev.spec
            lo_i, hi_i = int(starts[i]), int(starts[i + 1])
            ni = hi_i - lo_i
            bi = int(bcounts[i])
            oi = int(bnd_offsets[i])
            c2b_view = st["c2b"].data[:ni, :bi]
            stream.copy_h2d(c2b_view, dist2_blocks[i][:, :bi], pinned=True)
            stream.launch(
                "extract_c2b", extract_cost(spec, ni, bi),
                reads=(c2b_view,), writes=(c2b_view,),
            )
            s = strip_count[d]
            p = s % nbuf
            strip_count[d] += 1
            strip = out_bufs[d][p].data[:ni, :]
            if drain_events[d][p] is not None:
                stream.wait(drain_events[d][p])  # strip still draining
            for j in range(k):
                lo_j, hi_j = int(starts[j]), int(starts[j + 1])
                nj = hi_j - lo_j
                bj = int(bcounts[j])
                oj = int(bnd_offsets[j])
                b2c_view = st["b2c"].data[:bj, :nj]
                stream.copy_h2d(b2c_view, dist2_blocks[j][:bj, :], pinned=True)
                stream.launch(
                    "extract_b2c", extract_cost(spec, bj, nj),
                    reads=(b2c_view,), writes=(b2c_view,),
                )
                dest = strip[:, lo_j:hi_j]
                dest[...] = np.inf
                stream.annotate("memset_out", writes=(dest,))
                if bi and bj:
                    bview = bounds[d].data[oi : oi + bi, oj : oj + bj]
                    t1 = st["tmp"].data[:ni, :bj]
                    t1[...] = np.inf
                    stream.annotate("memset_tmp1", writes=(t1,))
                    minplus_update(t1, c2b_view, bview)
                    stream.launch(
                        "mp_c2b_bound", minplus_cost(spec, ni, bi, bj),
                        reads=(c2b_view, bview), writes=(t1,),
                    )
                    minplus_update(dest, t1, b2c_view)
                    stream.launch(
                        "mp_bound_b2c", minplus_cost(spec, ni, bj, nj),
                        reads=(t1, b2c_view), writes=(dest,),
                    )
                if i == j:
                    np.minimum(dest, dist2_blocks[i], out=dest)
                    stream.annotate("min_diag", reads=(dest,), writes=(dest,))
            if overlap:
                copier.wait(stream.record(Event("strip-ready")))
                copier.copy_d2h_async(host.data[lo_i:hi_i, :], strip, pinned=True)
                if s + nbuf < strips_per_dev[d]:
                    drain_events[d][p] = copier.record(Event("strip-down"))
            else:
                stream.copy_d2h(host.data[lo_i:hi_i, :], strip, pinned=True)
            if ckpt is not None:
                # host.data holds every drained strip (simulated copies move
                # data at enqueue time), so the stage is consistent without a
                # fleet sync — checkpointing keeps the timelines untouched.
                ckpt.save("dist4", rows_done=i + 1, dist=np.asarray(host.data))
                report.checkpoints_written += 1

        elapsed = _barrier(devices)
        host.flush()
        for d, dev in enumerate(devices):
            for arr in state[d].values():
                arr.free()
            for arr in out_bufs[d]:
                arr.free()
            bounds[d].free()

        per_device = [dev.timeline.busy_time("compute") for dev in devices]
        merged = devices[0].fault_report
        for dev in devices[1:]:
            merged = merged.merged(dev.fault_report)
        return APSPResult(
            algorithm=f"boundary-multi[{num_dev}]",
            store=host,
            simulated_seconds=elapsed,
            perm=plan.perm,
            inv_perm=plan.inv_perm,
            stats={
                "num_devices": num_dev,
                "num_components": k,
                "num_boundary": nb_total,
                "overlap": overlap,
                "per_device_compute": per_device,
                "imbalance": max(per_device) / max(min(per_device), 1e-30),
            },
            faults=merged,
        )

def emit_multi_ir(
    graph,
    spec: DeviceSpec,
    num_devices: int,
    *,
    num_components: int | None = None,
    plan: BoundaryPlan | None = None,
    seed: int = 0,
    overlap: bool = False,
):
    """Compile the multi-GPU boundary schedule to one symbolic
    :class:`~repro.verifyplan.ir.PlanIR` *per device*, without executing.

    Mirrors :func:`ooc_boundary_multi` op for op on each device: the
    round-robin dist2 tiles, the boundary closure on device 0 with its
    host-staged broadcast, each device's step-4 strip pipeline (async on
    ``multi-copy`` behind ``strip-ready``/``strip-down`` edges when
    ``overlap=True``), and a :class:`~repro.verifyplan.ir.BarrierOp` in
    every device's IR at each of the driver's fleet barriers, so the
    multi-device timing replay synchronises at the same points.
    """
    from repro.verifyplan.ir import IREmitter, Rect

    if num_devices < 1:
        raise ValueError("need at least one device")
    n = graph.num_vertices
    if plan is None:
        plan = plan_boundary(graph, spec, num_components=num_components, seed=seed)
    k = plan.num_components
    nb_total = plan.num_boundary
    starts = plan.comp_start
    bcounts = plan.comp_boundary
    bnd_offsets = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(bcounts, out=bnd_offsets[1:])

    ems = [
        IREmitter(f"boundary-multi[{num_devices}]", f"{spec.name}#{d}", spec.memory_bytes)
        for d in range(num_devices)
    ]

    # step 2: per-component APSP, round-robin over devices
    for i in range(k):
        em = ems[i % num_devices]
        ni = int(starts[i + 1] - starts[i])
        tile = em.alloc(f"comp{i}", (ni, ni))
        em.h2d(tile, key=("sub", i))
        em.kernel("fw_comp", reads=(tile,), writes=(tile,))
        em.d2h(tile, key=("dist2", i))
        em.free(tile)
    for em in ems:
        em.barrier("after-dist2")

    # step 3: boundary closure on device 0, broadcast to the rest
    bounds = []
    root = ems[0]
    bound0 = root.alloc("bound", (nb_total, nb_total))
    root.h2d(bound0, key=("bound",))
    root.kernel("fw_bound", reads=(bound0,), writes=(bound0,))
    root.d2h(bound0, key=("bound",))
    bounds.append(bound0)
    for em in ems:
        em.barrier("after-bound-closure")
    for em in ems[1:]:
        b = em.alloc("bound", (nb_total, nb_total))
        em.h2d(b, key=("bound",))
        bounds.append(b)
    for em in ems:
        em.barrier("after-broadcast")

    # step 4: block rows round-robin, double-buffered strips with overlap
    nmax = plan.max_component
    bmax = int(bcounts.max()) if k else 1
    nbuf = 2 if overlap else 1
    copier = "multi-copy" if overlap else "default"
    state = []
    out_bufs = []
    for em in ems:
        state.append(
            dict(
                c2b=em.alloc("c2b", (nmax, max(1, bmax))),
                b2c=em.alloc("b2c", (max(1, bmax), nmax)),
                tmp=em.alloc("tmp1", (nmax, max(1, bmax))),
            )
        )
        if overlap:
            out_bufs.append([em.alloc(f"out{p}", (nmax, n)) for p in range(nbuf)])
        else:
            out_bufs.append([em.alloc("out", (nmax, n))])
    drain_events: list[list] = [[None] * nbuf for _ in ems]
    strip_count = [0] * num_devices
    strips_per_dev = [len(range(d, k, num_devices)) for d in range(num_devices)]

    for i in range(k):
        d = i % num_devices
        em = ems[d]
        st = state[d]
        lo_i, hi_i = int(starts[i]), int(starts[i + 1])
        ni = hi_i - lo_i
        bi = int(bcounts[i])
        oi = int(bnd_offsets[i])
        cr = Rect(0, ni, 0, bi)
        em.h2d(st["c2b"], cr, key=("dist2", i, "c2b"))
        em.kernel("extract_c2b", reads=((st["c2b"], cr),), writes=((st["c2b"], cr),))
        s = strip_count[d]
        p = s % nbuf
        strip_count[d] += 1
        out = out_bufs[d][p]
        if overlap and drain_events[d][p] is not None:
            em.wait(drain_events[d][p])  # strip still draining
        for j in range(k):
            lo_j, hi_j = int(starts[j]), int(starts[j + 1])
            nj = hi_j - lo_j
            bj = int(bcounts[j])
            oj = int(bnd_offsets[j])
            br = Rect(0, bj, 0, nj)
            em.h2d(st["b2c"], br, key=("dist2", j, "b2c"))
            em.kernel("extract_b2c", reads=((st["b2c"], br),), writes=((st["b2c"], br),))
            dest = (out, Rect(0, ni, lo_j, hi_j))
            em.kernel("memset_out", writes=(dest,), annotate=True)
            if bi and bj:
                bview = (bounds[d], Rect(oi, oi + bi, oj, oj + bj))
                t1 = (st["tmp"], Rect(0, ni, 0, bj))
                em.kernel("memset_tmp1", writes=(t1,), annotate=True)
                em.kernel("mp_c2b_bound", reads=((st["c2b"], cr), bview), writes=(t1,))
                em.kernel("mp_bound_b2c", reads=(t1, (st["b2c"], br)), writes=(dest,))
            if i == j:
                em.kernel("min_diag", reads=(dest,), writes=(dest,), annotate=True)
        if overlap:
            em.wait(em.record("strip-ready"), stream=copier)
            em.d2h(
                out, Rect(0, ni, 0, n), key=("host-rows", lo_i, hi_i),
                stream=copier, sync=False,
            )
            if s + nbuf < strips_per_dev[d]:
                drain_events[d][p] = em.record("strip-down", stream=copier)
        else:
            em.d2h(out, Rect(0, ni, 0, n), key=("host-rows", lo_i, hi_i))
    for em in ems:
        em.barrier("after-output")

    for d, em in enumerate(ems):
        for buf in state[d].values():
            em.free(buf)
        for buf in out_bufs[d]:
            em.free(buf)
        em.free(bounds[d])
    return [em.finish() for em in ems]
