"""Floyd–Warshall: plain and blocked (tiled) in-core variants.

The blocked scheme (Section II-A of the paper, after Venkataraman et al. and
Katz & Kider) partitions ``dist`` into ``num_b × num_b`` tiles and runs, per
outer iteration ``k``:

1. close the diagonal tile ``A(k,k)`` with plain FW;
2. update row tiles ``A(k,j)`` and column tiles ``A(i,k)`` with one min-plus
   against the *closed* diagonal tile (single product suffices because the
   closed tile already contains multi-hop paths through block-``k``
   vertices);
3. rank-update all remaining tiles ``A(i,j) ⊦ A(i,k) ⊗ A(k,j)``.

These run on host arrays; the out-of-core driver (:mod:`repro.core.ooc_fw`)
applies the same three stages across device-resident tiles. All numeric
work dispatches through the kernel engine (:mod:`repro.core.engine`); with
a threaded engine, the independent stage-3 tile updates fan out across the
worker pool (they share only the read-only ``A(i,k)``/``A(k,j)`` panels).
"""

from __future__ import annotations

import numpy as np

from repro.core.minplus import minplus_update

__all__ = ["floyd_warshall", "floyd_warshall_inplace", "blocked_floyd_warshall", "fw_ops"]


def _engine(engine):
    if engine is None:
        from repro.core.engine import default_engine

        return default_engine()
    return engine


def floyd_warshall_inplace(dist: np.ndarray, *, engine=None) -> np.ndarray:
    """Plain FW on a square matrix, vectorised per intermediate vertex."""
    return _engine(engine).fw_inplace(dist)


def floyd_warshall(weights: np.ndarray, *, engine=None) -> np.ndarray:
    """Plain FW on a copy; input is a dense weight matrix (inf = no edge)."""
    dist = np.array(weights, copy=True)
    np.fill_diagonal(dist, np.minimum(np.diag(dist), 0.0))
    return floyd_warshall_inplace(dist, engine=engine)


def blocked_floyd_warshall(dist: np.ndarray, block_size: int, *, engine=None) -> np.ndarray:
    """Blocked FW in place on a host matrix; returns ``dist``.

    Equivalent to :func:`floyd_warshall_inplace` for every block size
    (property-tested); the tiling exists for cache behaviour and because it
    is the unit the out-of-core driver streams.
    """
    n = dist.shape[0]
    if dist.shape != (n, n):
        raise ValueError("dist must be square")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    eng = _engine(engine)
    b = block_size
    nb = (n + b - 1) // b

    def tile(i: int, j: int) -> np.ndarray:
        return dist[i * b : min((i + 1) * b, n), j * b : min((j + 1) * b, n)]

    for k in range(nb):
        diag = tile(k, k)
        eng.fw_inplace(diag)
        for j in range(nb):
            if j != k:
                minplus_update(tile(k, j), diag, tile(k, j), engine=eng)
        for i in range(nb):
            if i != k:
                minplus_update(tile(i, k), tile(i, k), diag, engine=eng)
        eng.map_updates(
            [
                (tile(i, j), tile(i, k), tile(k, j))
                for i in range(nb)
                if i != k
                for j in range(nb)
                if j != k
            ]
        )
    return dist


def fw_ops(n: int) -> int:
    """Scalar operation count of FW on ``n`` vertices (2 per inner iter)."""
    return 2 * n**3
