"""In-core GPU APSP: the small-graph fast path.

The paper positions its work against in-core GPU implementations
[Harish & Narayanan; Katz & Kider] that "only considered small graphs and
cannot handle graphs of the sizes we have considered". When the whole
``n × n`` matrix *does* fit on the device, the in-core blocked FW is the
right tool: one upload, an on-device blocked Floyd–Warshall, one download —
no per-iteration streaming at all.

:func:`fits_in_core` is the planning predicate; :func:`incore_apsp` the
driver; ``solve_apsp(..., algorithm="auto")`` does **not** consider it (the
paper's selector targets out-of-core sizes), but users with mixed workloads
can dispatch on :func:`fits_in_core` themselves — see the crossover
benchmark ``benchmarks/test_ext_incore_crossover.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.core.result import APSPResult
from repro.core.tiling import HostStore
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.kernels import fw_tile_cost

__all__ = ["fits_in_core", "incore_apsp"]

_ELEM = np.dtype(DIST_DTYPE).itemsize


def fits_in_core(n: int, spec: DeviceSpec, *, headroom: float = 0.9) -> bool:
    """True when the full ``n×n`` distance matrix fits in device memory
    (with ``headroom`` slack for the kernel's working state)."""
    return n * n * _ELEM <= headroom * spec.memory_bytes


def incore_apsp(
    graph,
    device: Device,
    *,
    store_mode: str = "ram",
    store_dir=None,
    engine=None,
) -> APSPResult:
    """Solve APSP fully on-device (raises ``OutOfMemoryError`` when the
    matrix does not fit — use the out-of-core drivers then). ``engine``
    overrides the process-wide kernel engine for the host-side FW."""
    n = graph.num_vertices
    spec = device.spec
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    host = HostStore.from_graph(graph, mode=store_mode, directory=store_dir)
    device.reset_clock()
    stream = device.default_stream
    with device.memory.alloc((n, n), DIST_DTYPE, name="dist") as dist:
        stream.copy_h2d(dist, host.data, pinned=True)
        engine.fw_inplace(dist.data)
        stream.launch("fw_incore", fw_tile_cost(spec, n), reads=(dist,), writes=(dist,))
        stream.copy_d2h(host.data, dist, pinned=True)
    elapsed = device.synchronize()
    host.flush()

    from repro.core.ooc_fw import transfer_stats

    return APSPResult(
        algorithm="floyd-warshall-incore",
        store=host,
        simulated_seconds=elapsed,
        stats={"in_core": True, "kernel_backend": engine.describe(), **transfer_stats(device)},
    )
