"""Min-plus (tropical) matrix multiplication.

The workhorse of both the blocked Floyd–Warshall algorithm (stages 2 and 3
of Algorithm 1) and the boundary algorithm's ``dist4`` step (Algorithm 3,
lines 16–17): ``C[i,j] = min(C[i,j], min_k A[i,k] + B[k,j])``.

The GPU implements this with shared-memory tiling [Katz & Kider]; the numpy
equivalent runs ``k`` rank-1 broadcast updates, which profiled fastest of
the candidate formulations (chunked 3-D broadcast, preallocated buffers) at
the tile sizes the out-of-core planner produces — 2.5 Gop/s in float32 vs
0.2 Gop/s for the naive 3-D version.

Dense distance tiles use **float32** throughout the library
(:data:`DIST_DTYPE`): the paper stores 4-byte ``int`` distances, and with
integer edge weights ≤ 100 every finite path length stays far below 2²⁴, so
float32 arithmetic is exact here while halving memory traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DIST_DTYPE", "minplus", "minplus_update", "minplus_ops"]

#: dtype of dense distance tiles (see module docstring)
DIST_DTYPE = np.float32


def minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Return the min-plus product ``A ⊗ B`` (no accumulation)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} ⊗ {b.shape}")
    out = np.full((a.shape[0], b.shape[1]), np.inf, dtype=np.result_type(a, b))
    return minplus_update(out, a, b)


def minplus_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """In-place ``C = min(C, A ⊗ B)``; returns ``C``.

    ``inf + inf = inf`` in IEEE arithmetic, so unreachable entries propagate
    correctly without sentinel handling.
    """
    if c.shape != (a.shape[0], b.shape[1]) or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes C{c.shape} = A{a.shape} ⊗ B{b.shape}")
    if c.size == 0 or a.shape[1] == 0:
        return c
    for k in range(a.shape[1]):
        np.minimum(c, a[:, k : k + 1] + b[k : k + 1, :], out=c)
    return c


def minplus_ops(bi: int, bk: int, bj: int) -> int:
    """Scalar operation count of one product (2 ops per inner element)."""
    return 2 * bi * bk * bj
