"""Min-plus (tropical) matrix multiplication.

The workhorse of both the blocked Floyd–Warshall algorithm (stages 2 and 3
of Algorithm 1) and the boundary algorithm's ``dist4`` step (Algorithm 3,
lines 16–17): ``C[i,j] = min(C[i,j], min_k A[i,k] + B[k,j])``.

The GPU implements this with shared-memory tiling [Katz & Kider]; on the
host the computation is dispatched through the pluggable kernel engine
(:mod:`repro.core.engine`), whose registered backends — the original rank-1
numpy loop, cache-blocked tiles, bounded 3-D broadcast, JIT-compiled
kernels, a thread pool — are bit-identical on distance tiles and differ
only in wall-clock speed. Select one with ``REPRO_KERNEL_BACKEND``, an
explicit ``engine=`` argument, or let first-use auto-calibration pick.

Dense distance tiles use **float32** throughout the library
(:data:`DIST_DTYPE`): the paper stores 4-byte ``int`` distances, and with
integer edge weights ≤ 100 every finite path length stays far below 2²⁴, so
float32 arithmetic is exact here while halving memory traffic. Operands of
other dtypes or layouts are coerced (or routed to the generic numpy path
for non-float32 accumulators) so a Fortran-ordered or float64 tile can't
silently change the result dtype or fall off the fast path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DIST_DTYPE", "minplus", "minplus_update", "minplus_ops"]

#: dtype of dense distance tiles (see module docstring)
DIST_DTYPE = np.float32


def minplus(a: np.ndarray, b: np.ndarray, *, engine=None) -> np.ndarray:
    """Return the min-plus product ``A ⊗ B`` (no accumulation)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} ⊗ {b.shape}")
    out = np.full((a.shape[0], b.shape[1]), np.inf, dtype=np.result_type(a, b))
    return minplus_update(out, a, b, engine=engine)


def minplus_update(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, *, engine=None
) -> np.ndarray:
    """In-place ``C = min(C, A ⊗ B)``; returns ``C``.

    ``inf + inf = inf`` in IEEE arithmetic, so unreachable entries propagate
    correctly without sentinel handling. ``engine`` overrides the
    process-wide default :class:`~repro.core.engine.KernelEngine`.
    """
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    return engine.update(c, a, b)


def minplus_ops(bi: int, bk: int, bj: int) -> int:
    """Scalar operation count of one product (2 ops per inner element)."""
    return 2 * bi * bk * bj
