"""Registry of interchangeable min-plus / FW-tile kernel backends.

Every backend implements :class:`~repro.core.backends.base.KernelBackend`
and produces **bit-identical** distance tiles on the library's distance
domain; they differ only in wall-clock speed. The
:class:`~repro.core.engine.KernelEngine` picks one (auto-calibrated, or
forced via ``REPRO_KERNEL_BACKEND`` / an explicit API argument).

============  ==========================================================
``reference``  the seed rank-1 numpy loop — the semantics oracle
``tiled``      cache-blocked ``(bi, bk, bj)`` sub-tiles sized to L2
``chunked``    3-D broadcast over bounded ``k``-slabs
``jit``        numba → compiled C → tiled, degrading gracefully
``threaded``   thread-pool column panels over the best serial backend
============  ==========================================================
"""

from __future__ import annotations

from repro.core.backends.base import KernelBackend
from repro.core.backends.chunked import ChunkedBackend
from repro.core.backends.jit import JITBackend
from repro.core.backends.reference import ReferenceBackend
from repro.core.backends.threaded import ThreadedBackend
from repro.core.backends.tiled import TiledBackend

__all__ = [
    "ChunkedBackend",
    "JITBackend",
    "KernelBackend",
    "ReferenceBackend",
    "ThreadedBackend",
    "TiledBackend",
    "available_backends",
    "backend_names",
    "create_backend",
    "register_backend",
]

_REGISTRY: dict[str, type[KernelBackend]] = {}


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Add a backend class to the registry (keyed by ``cls.name``)."""
    if not cls.name or cls.name == "?":
        raise ValueError(f"{cls.__name__} needs a registry name")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (ReferenceBackend, TiledBackend, ChunkedBackend, JITBackend, ThreadedBackend):
    register_backend(_cls)


def backend_names() -> tuple[str, ...]:
    """All registered backend names, reference first."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Names of backends usable in this environment."""
    return tuple(name for name, cls in _REGISTRY.items() if cls.available())


def create_backend(name: str, **options) -> KernelBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {backend_names()}"
        ) from None
    return cls(**options)
