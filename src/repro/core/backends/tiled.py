"""Cache-blocked min-plus: ``(bi, bk, bj)`` sub-tiles sized to L2.

The rank-1 reference streams the full ``bi × bj`` output (plus an equally
large broadcast temporary) through memory once *per inner index* ``k`` —
``O(bk)`` passes over arrays that are megabytes each. Processing the output
in ``tile_i × tile_j`` sub-tiles keeps the C tile and the broadcast
temporary resident in the last-level cache across the whole ``k`` loop, so
the per-``k`` traffic drops to one A column slice and one B row slice.
The tile shape is deliberately wide (rows short, columns long): the inner
``minimum`` then streams long contiguous runs, which numpy's SIMD loops
like, while the short row count keeps the working set under the L2 size.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend, finite_column_indices

__all__ = ["TiledBackend"]


class TiledBackend(KernelBackend):
    """Numpy rank-1 updates restricted to cache-resident output tiles."""

    name = "tiled"
    summary = "cache-blocked numpy rank-1 updates (L2-resident C tiles)"

    def __init__(self, tile_i: int = 128, tile_j: int = 512) -> None:
        if tile_i < 1 or tile_j < 1:
            raise ValueError("tile sizes must be positive")
        self.tile_i = tile_i
        self.tile_j = tile_j

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)`` over L2-sized output tiles."""
        bi, bj = c.shape
        ti, tj = self.tile_i, self.tile_j
        if bi <= ti and bj <= tj:
            # tile degenerates to the whole problem: plain rank-1 loop
            from repro.core.backends.base import rank1_update

            return rank1_update(c, a, b)
        cols = finite_column_indices(a)
        ks = range(a.shape[1]) if cols is None else cols
        for i0 in range(0, bi, ti):
            i1 = min(i0 + ti, bi)
            asub = a[i0:i1]
            for j0 in range(0, bj, tj):
                j1 = min(j0 + tj, bj)
                ct = c[i0:i1, j0:j1]
                bsub = b[:, j0:j1]
                for k in ks:
                    np.minimum(ct, asub[:, k : k + 1] + bsub[k : k + 1, :], out=ct)
        return c
