"""JIT-compiled min-plus/FW kernels with graceful degradation.

Flavor resolution order (overridable with ``REPRO_JIT_FLAVOR``):

1. ``numba`` — ``@njit(nogil=True)`` kernels when numba is importable;
2. ``cc`` — a small C translation unit compiled at first use with the
   system C compiler (``gcc``/``cc``/``clang``) into a per-user cache
   directory and loaded through :mod:`ctypes`. No build-time dependency:
   machines without any compiler simply skip this flavor. The ``.so`` is
   keyed by a hash of the source, compiler, and resolved flag set, so
   later processes pay only a ``dlopen``;
3. ``cc-omp`` — the same C kernels with their OpenMP column-panel entry
   point, fanning one min-plus product across ``threads`` cores. Only
   selectable when the translation unit was built with OpenMP
   (``-fopenmp``); otherwise it degrades to ``cc``;
4. ``fallback`` — delegate to :class:`~repro.core.backends.tiled.TiledBackend`
   (pure numpy), so requesting ``jit`` is always safe.

Compile flags are **probed**, not assumed: ``-march=native``, ``-fopenmp``
and ``-fopenmp-simd`` are each test-compiled first and dropped individually
when the compiler rejects them; if the final compile still fails, one retry
with the degraded ``-O3``-only set runs before giving up. A machine with a
compiler therefore never silently loses the cc flavor to a flag quirk
(:func:`cc_build_info` reports what was actually used — the autotuner's
machine fingerprint is derived from it).

The C source is not an opaque string: it is assembled from
:data:`KERNEL_TEMPLATES`, one :class:`KernelTemplate` per C entry point,
each declaring its array extents (rows/cols/row-stride per pointer
parameter) and its aliasing contract. :mod:`repro.verifykernel` parses
the per-kernel sources and statically proves every subscript within the
declared extents, the OpenMP panels disjoint, and the Python dispatch
below consistent with each kernel's derived alias tolerance — run
``python -m repro verify-kernels``.

**Sanitizer-instrumented builds** ride the same pipeline: pass
``sanitize="asan" | "ubsan" | "tsan"`` to :func:`load_cc_kernels` /
:func:`compile_cc_so` (or set ``REPRO_JIT_SANITIZE``) and the probed flag
set grows the matching ``-fsanitize=...`` group. A toolchain without the
sanitizer degrades to a plain build — honestly reported in
``CCBuildInfo.sanitize``/``CCBuildInfo.degraded``, never silently. Note
ASan/TSan instrumented objects cannot be ``dlopen``-ed into an ordinary
process: the verification harness (:mod:`repro.verifykernel.sanitizers`)
runs them in a subprocess with the runtime preloaded
(:func:`sanitizer_runtime`).

The C side implements two semantically distinct min-plus entry points:

* a **register-blocked fast path** (2 output rows × 4 inner ``k`` per
  step, ``#pragma omp simd`` inner loops) used when ``C`` is disjoint
  from ``A``/``B`` — min is order-independent and every candidate
  ``a + b`` is the identical float32 sum, so reassociating the min
  accumulation is bit-exact;
* a **sequential-k path** (SIMD but no unrolling) used when ``C`` aliases
  an operand — blocked FW's stage-2 updates pass ``update(T, diag, T)``
  and ``update(T, T, diag)``, whose results depend on the in-place update
  order; this path preserves the exact per-row ``k``-sequential semantics
  of the original kernel (and of the engine-tested drivers).

Aliased operands never fan out across OpenMP panels: in the ``C==A``
stage-2 pattern every panel thread reads the *whole* of ``A`` while the
other threads write their ``C`` panels — a cross-panel read/write race.
Both the C entry point and the Python dispatch route ``seq`` operands to
the serial sequential-k kernel (the verification layer checks both).

On the library's distance domain (``[0, +inf]``, zero diagonals) both are
bit-identical to the numpy rank-1 formulation. ``fw_inplace`` additionally
offers Lund & Smith's multi-stage decomposition (``fw_block``): stage-1
closure of a cache-sized diagonal block, panel updates, then rank-2k
updates of the remainder — mapping the L1/L2/register tiers; it is exact on
integer-weight distance matrices (the library's domain) and off by default.
Setting ``REPRO_JIT=off`` forces the fallback (used by the CI leg that
exercises the degradation path).

A reduced-precision semiring rides the same interface:
:meth:`JITBackend.update_i32` runs an exact saturating int32 min-plus in C
(sentinel ``INT32_INF``), and :meth:`KernelBackend.update_f16` (base-class
implementation) computes through float32 and rounds once — see
``docs/PERFORMANCE.md`` for the documented tolerance.
"""

from __future__ import annotations

import contextlib
import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.backends.base import KernelBackend, int32_rank1_update
from repro.core.backends.tiled import TiledBackend

__all__ = [
    "CCBuildInfo",
    "JITBackend",
    "KERNEL_TEMPLATES",
    "KernelTemplate",
    "SANITIZER_FLAGS",
    "cc_build_info",
    "cc_compiler",
    "compile_cc_so",
    "kernel_source",
    "load_cc_kernels",
    "sanitizer_runtime",
]

#: shared translation-unit prologue: headers, the ``i64`` alias, and the
#: two build-introspection helpers (no array accesses — not analyzed)
_C_PRELUDE = r"""
#include <math.h>
#include <stdint.h>

#if defined(_OPENMP)
#include <omp.h>
#endif

typedef long long i64;

/* 1 when the translation unit was built with -fopenmp (threads exist),
 * 0 otherwise (including -fopenmp-simd-only builds, which vectorize the
 * simd pragmas but link no runtime). */
int repro_openmp(void)
{
#if defined(_OPENMP)
    return 1;
#else
    return 0;
#endif
}

int repro_max_threads(void)
{
#if defined(_OPENMP)
    return omp_get_max_threads();
#else
    return 1;
#endif
}
"""


@dataclass(frozen=True)
class KernelTemplate:
    """One C entry point plus the contract the verifier proves it against.

    ``arrays`` maps each pointer parameter to its declared 2-D extent —
    ``{"rows": ..., "cols": ..., "stride": ..., "mode": "r"|"w"|"rw"}``
    with rows/cols/stride given as parameter-expression strings (the row
    stride is in *elements*, unit stride along the last axis). Every
    subscript the kernel executes must decompose into a row index in
    ``[0, rows)`` and a column offset in ``[0, cols)`` — the static
    bounds proof in :mod:`repro.verifykernel.bounds`.

    ``alias_class`` is the *declared* aliasing contract, cross-checked
    against the tolerance :mod:`repro.verifykernel.alias` derives from
    the body:

    * ``"disjoint"`` — written arrays must not overlap read arrays
      (register-blocked pivot groups read ahead of their writes);
    * ``"k-sequential"`` — tolerates the row-aliased ``C==A`` / ``C==B``
      stage-2 patterns (strict per-row pivot order, one pivot at a time);
    * ``"inplace-fw"`` — the in-place FW recurrence (correct on the
      zero-diagonal distance domain);
    * ``"router"`` — dispatches to other kernels; inherits their classes.
    """

    name: str
    source: str
    arrays: dict[str, dict[str, str]]
    alias_class: str
    calls: tuple[str, ...] = ()
    parallel: bool = False
    scalars: tuple[str, ...] = field(default=())


_MP_SEQ_SOURCE = r"""
/* Sequential-k path: per output row, pivots applied strictly in order
 * (the original kernel's semantics — required when C aliases A or B,
 * e.g. blocked FW stage-2 panel updates). Inner loop is elementwise in
 * j, so `omp simd` is safe even under full C==A / C==B aliasing. */
void mp_update_f32_seq(float *c, const float *a, const float *b,
                       i64 bi, i64 bk, i64 bj,
                       i64 cs, i64 as, i64 bs, i64 tile)
{
    if (tile <= 0) tile = 256;
    for (i64 k0 = 0; k0 < bk; k0 += tile) {
        i64 k1 = k0 + tile < bk ? k0 + tile : bk;
        for (i64 j0 = 0; j0 < bj; j0 += tile) {
            i64 len = (j0 + tile < bj ? j0 + tile : bj) - j0;
            for (i64 i = 0; i < bi; i++) {
                float *crow = c + i * cs + j0;
                const float *arow = a + i * as;
                for (i64 k = k0; k < k1; k++) {
                    float aik = arow[k];
                    if (isinf(aik)) continue;
                    const float *brow = b + k * bs + j0;
                    #pragma omp simd
                    for (i64 j = 0; j < len; j++) {
                        float cand = aik + brow[j];
                        crow[j] = cand < crow[j] ? cand : crow[j];
                    }
                }
            }
        }
    }
}
"""

_MP_FAST_SOURCE = r"""
/* Register-blocked fast path: 2 output rows x 4 pivots per step. Each
 * B row load is reused by both output rows and each C row is loaded and
 * stored once per 4 pivots. Candidates are the same float32 sums as the
 * reference; min is order-independent, so the reassociation is
 * bit-exact. REQUIRES C disjoint from A and B (callers route aliased
 * operands to mp_update_f32_seq). All-inf pivot groups short-circuit;
 * a lone inf pivot contributes only +inf candidates, which never win. */
void mp_update_f32(float *c, const float *a, const float *b,
                   i64 bi, i64 bk, i64 bj,
                   i64 cs, i64 as, i64 bs, i64 tile)
{
    if (tile <= 0) tile = 256;
    for (i64 k0 = 0; k0 < bk; k0 += tile) {
        i64 k1 = k0 + tile < bk ? k0 + tile : bk;
        for (i64 j0 = 0; j0 < bj; j0 += tile) {
            i64 len = (j0 + tile < bj ? j0 + tile : bj) - j0;
            i64 i = 0;
            for (; i + 2 <= bi; i += 2) {
                float *c0r = c + i * cs + j0;
                float *c1r = c0r + cs;
                const float *a0r = a + i * as;
                const float *a1r = a0r + as;
                i64 k = k0;
                for (; k + 4 <= k1; k += 4) {
                    float a00 = a0r[k], a01 = a0r[k+1], a02 = a0r[k+2], a03 = a0r[k+3];
                    float a10 = a1r[k], a11 = a1r[k+1], a12 = a1r[k+2], a13 = a1r[k+3];
                    if (isinf(a00) && isinf(a01) && isinf(a02) && isinf(a03) &&
                        isinf(a10) && isinf(a11) && isinf(a12) && isinf(a13))
                        continue;
                    const float *b0 = b + k * bs + j0;
                    const float *b1 = b0 + bs, *b2 = b1 + bs, *b3 = b2 + bs;
                    #pragma omp simd
                    for (i64 j = 0; j < len; j++) {
                        float w0 = b0[j], w1 = b1[j], w2 = b2[j], w3 = b3[j];
                        float v0 = c0r[j], v1 = c1r[j];
                        float t;
                        t = a00 + w0; v0 = t < v0 ? t : v0;
                        t = a01 + w1; v0 = t < v0 ? t : v0;
                        t = a02 + w2; v0 = t < v0 ? t : v0;
                        t = a03 + w3; v0 = t < v0 ? t : v0;
                        t = a10 + w0; v1 = t < v1 ? t : v1;
                        t = a11 + w1; v1 = t < v1 ? t : v1;
                        t = a12 + w2; v1 = t < v1 ? t : v1;
                        t = a13 + w3; v1 = t < v1 ? t : v1;
                        c0r[j] = v0; c1r[j] = v1;
                    }
                }
                for (; k < k1; k++) {
                    const float *brow = b + k * bs + j0;
                    float aik0 = a0r[k], aik1 = a1r[k];
                    if (!isinf(aik0)) {
                        #pragma omp simd
                        for (i64 j = 0; j < len; j++) {
                            float cand = aik0 + brow[j];
                            c0r[j] = cand < c0r[j] ? cand : c0r[j];
                        }
                    }
                    if (!isinf(aik1)) {
                        #pragma omp simd
                        for (i64 j = 0; j < len; j++) {
                            float cand = aik1 + brow[j];
                            c1r[j] = cand < c1r[j] ? cand : c1r[j];
                        }
                    }
                }
            }
            for (; i < bi; i++) {
                float *crow = c + i * cs + j0;
                const float *arow = a + i * as;
                for (i64 k = k0; k < k1; k++) {
                    float aik = arow[k];
                    if (isinf(aik)) continue;
                    const float *brow = b + k * bs + j0;
                    #pragma omp simd
                    for (i64 j = 0; j < len; j++) {
                        float cand = aik + brow[j];
                        crow[j] = cand < crow[j] ? cand : crow[j];
                    }
                }
            }
        }
    }
}
"""

_MP_OMP_SOURCE = r"""
/* OpenMP column-panel fan-out of the register-blocked fast kernel.
 * Every output element depends only on its own column of C/B plus
 * read-only A, so partitioning columns across threads is bit-exact —
 * for DISJOINT operands. Aliased (seq) operands never fan out: under
 * the C==A stage-2 pattern each panel thread reads the whole of A
 * while other threads write their C panels — a cross-panel race — so
 * seq != 0 takes the serial sequential-k kernel (the Python dispatch
 * routes the same way; repro.verifykernel checks both layers). Falls
 * back to the serial fast kernel when built without OpenMP. */
void mp_update_f32_omp(float *c, const float *a, const float *b,
                       i64 bi, i64 bk, i64 bj,
                       i64 cs, i64 as, i64 bs, i64 tile,
                       i64 threads, i64 seq)
{
    if (seq) {
        mp_update_f32_seq(c, a, b, bi, bk, bj, cs, as, bs, tile);
        return;
    }
#if defined(_OPENMP)
    i64 max_panels = bj / 64;
    if (threads > max_panels) threads = max_panels;
    if (threads >= 2) {
        #pragma omp parallel for schedule(static) num_threads((int)threads)
        for (i64 t = 0; t < threads; t++) {
            i64 lo = bj * t / threads;
            i64 hi = bj * (t + 1) / threads;
            if (hi > lo) {
                mp_update_f32(c + lo, a, b + lo, bi, bk, hi - lo,
                              cs, as, bs, tile);
            }
        }
        return;
    }
#endif
    mp_update_f32(c, a, b, bi, bk, bj, cs, as, bs, tile);
}
"""

_FW_INPLACE_SOURCE = r"""
/* Register-blocked stage-1 kernel: per pivot, 4 output rows share each
 * krow load and the inner loop vectorizes. Equivalent to n rank-1
 * min-updates on matrices with non-negative weights and a zero
 * diagonal (the library's distance domain): the pivot row never
 * changes at its own pivot, so fusing rows is bit-exact. */
void fw_inplace_f32(float *d, i64 n, i64 s)
{
    for (i64 k = 0; k < n; k++) {
        const float *krow = d + k * s;
        i64 i = 0;
        for (; i + 4 <= n; i += 4) {
            float *r0 = d + i * s, *r1 = r0 + s, *r2 = r1 + s, *r3 = r2 + s;
            float d0 = r0[k], d1 = r1[k], d2 = r2[k], d3 = r3[k];
            if (isinf(d0) && isinf(d1) && isinf(d2) && isinf(d3))
                continue;
            #pragma omp simd
            for (i64 j = 0; j < n; j++) {
                float kj = krow[j];
                float t;
                t = d0 + kj; r0[j] = t < r0[j] ? t : r0[j];
                t = d1 + kj; r1[j] = t < r1[j] ? t : r1[j];
                t = d2 + kj; r2[j] = t < r2[j] ? t : r2[j];
                t = d3 + kj; r3[j] = t < r3[j] ? t : r3[j];
            }
        }
        for (; i < n; i++) {
            float dik = d[i * s + k];
            if (isinf(dik)) continue;
            float *irow = d + i * s;
            #pragma omp simd
            for (i64 j = 0; j < n; j++) {
                float cand = dik + krow[j];
                irow[j] = cand < irow[j] ? cand : irow[j];
            }
        }
    }
}
"""

_FW_BLOCKED_SOURCE = r"""
/* Multi-stage blocked FW (Lund & Smith): close a blk x blk diagonal
 * block with the register-blocked stage-1 kernel, update the four
 * row/column panels against the closed diagonal (aliased in-place
 * updates -> sequential-k kernel), then rank-blk-update the four
 * remaining quadrants with the fast kernel (fully disjoint). Stage
 * order mirrors repro.core.blocked_fw.blocked_floyd_warshall, to which
 * it is bit-identical on integer-weight distance matrices. */
void fw_blocked_f32(float *d, i64 n, i64 s, i64 blk, i64 tile)
{
    if (blk <= 0 || blk >= n) {
        fw_inplace_f32(d, n, s);
        return;
    }
    for (i64 k0 = 0; k0 < n; k0 += blk) {
        i64 k1 = k0 + blk < n ? k0 + blk : n;
        i64 nb = k1 - k0;
        float *diag = d + k0 * s + k0;
        fw_inplace_f32(diag, nb, s);
        /* stage 2: row panels (C == B) */
        if (k0 > 0)
            mp_update_f32_seq(d + k0 * s, diag, d + k0 * s,
                              nb, nb, k0, s, s, s, tile);
        if (k1 < n)
            mp_update_f32_seq(d + k0 * s + k1, diag, d + k0 * s + k1,
                              nb, nb, n - k1, s, s, s, tile);
        /* stage 2: column panels (C == A) */
        if (k0 > 0)
            mp_update_f32_seq(d + k0, d + k0, diag,
                              k0, nb, nb, s, s, s, tile);
        if (k1 < n)
            mp_update_f32_seq(d + k1 * s + k0, d + k1 * s + k0, diag,
                              n - k1, nb, nb, s, s, s, tile);
        /* stage 3: remaining quadrants (disjoint) */
        if (k0 > 0)
            mp_update_f32(d, d + k0, d + k0 * s,
                          k0, nb, k0, s, s, s, tile);
        if (k0 > 0 && k1 < n)
            mp_update_f32(d + k1, d + k0, d + k0 * s + k1,
                          k0, nb, n - k1, s, s, s, tile);
        if (k1 < n && k0 > 0)
            mp_update_f32(d + k1 * s, d + k1 * s + k0, d + k0 * s,
                          n - k1, nb, k0, s, s, s, tile);
        if (k1 < n)
            mp_update_f32(d + k1 * s + k1, d + k1 * s + k0, d + k0 * s + k1,
                          n - k1, nb, n - k1, s, s, s, tile);
    }
}
"""

_MP_I32_SOURCE = r"""
/* int32 semiring: exact min-plus with INT32_MAX as +inf, saturating
 * addition via a 64-bit intermediate. One candidate at a time — the
 * reduced-precision path trades peak rate for half the memory traffic
 * of float64 and exactness over float32 beyond 2^24. */
void mp_update_i32(int32_t *c, const int32_t *a, const int32_t *b,
                   i64 bi, i64 bk, i64 bj,
                   i64 cs, i64 as, i64 bs, i64 tile)
{
    const int32_t INF = INT32_MAX;
    if (tile <= 0) tile = 256;
    for (i64 k0 = 0; k0 < bk; k0 += tile) {
        i64 k1 = k0 + tile < bk ? k0 + tile : bk;
        for (i64 j0 = 0; j0 < bj; j0 += tile) {
            i64 len = (j0 + tile < bj ? j0 + tile : bj) - j0;
            for (i64 i = 0; i < bi; i++) {
                int32_t *crow = c + i * cs + j0;
                const int32_t *arow = a + i * as;
                for (i64 k = k0; k < k1; k++) {
                    int32_t aik = arow[k];
                    if (aik == INF) continue;
                    const int32_t *brow = b + k * bs + j0;
                    #pragma omp simd
                    for (i64 j = 0; j < len; j++) {
                        i64 wide = (i64)aik + (i64)brow[j];
                        int32_t cand = wide >= (i64)INF ? INF : (int32_t)wide;
                        crow[j] = cand < crow[j] ? cand : crow[j];
                    }
                }
            }
        }
    }
}
"""

#: the min-plus operand contract shared by all three mp_update kernels
_MP_ARRAYS: dict[str, dict[str, str]] = {
    "c": {"rows": "bi", "cols": "bj", "stride": "cs", "mode": "rw"},
    "a": {"rows": "bi", "cols": "bk", "stride": "as", "mode": "r"},
    "b": {"rows": "bk", "cols": "bj", "stride": "bs", "mode": "r"},
}

#: every C entry point, in translation-unit order, with its contract —
#: repro.verifykernel parses these sources and proves them safe
KERNEL_TEMPLATES: tuple[KernelTemplate, ...] = (
    KernelTemplate(
        name="mp_update_f32_seq",
        source=_MP_SEQ_SOURCE,
        arrays=_MP_ARRAYS,
        alias_class="k-sequential",
    ),
    KernelTemplate(
        name="mp_update_f32",
        source=_MP_FAST_SOURCE,
        arrays=_MP_ARRAYS,
        alias_class="disjoint",
    ),
    KernelTemplate(
        name="mp_update_f32_omp",
        source=_MP_OMP_SOURCE,
        arrays=_MP_ARRAYS,
        alias_class="router",
        calls=("mp_update_f32_seq", "mp_update_f32"),
        parallel=True,
        scalars=("threads", "seq"),
    ),
    KernelTemplate(
        name="fw_inplace_f32",
        source=_FW_INPLACE_SOURCE,
        arrays={"d": {"rows": "n", "cols": "n", "stride": "s", "mode": "rw"}},
        alias_class="inplace-fw",
    ),
    KernelTemplate(
        name="fw_blocked_f32",
        source=_FW_BLOCKED_SOURCE,
        arrays={"d": {"rows": "n", "cols": "n", "stride": "s", "mode": "rw"}},
        alias_class="inplace-fw",
        calls=("fw_inplace_f32", "mp_update_f32_seq", "mp_update_f32"),
        scalars=("blk", "tile"),
    ),
    KernelTemplate(
        name="mp_update_i32",
        source=_MP_I32_SOURCE,
        arrays=_MP_ARRAYS,
        alias_class="k-sequential",
    ),
)


def kernel_source(
    overrides: dict[str, str] | None = None,
    *,
    prelude: bool = True,
) -> str:
    """Assemble the C translation unit from the kernel templates.

    ``overrides`` substitutes individual kernel sources by name — the
    seeded-defect suite uses this to build intentionally broken variants
    without string-surgery on the whole unit.
    """
    parts = [_C_PRELUDE] if prelude else []
    for template in KERNEL_TEMPLATES:
        parts.append((overrides or {}).get(template.name, template.source))
    return "\n".join(parts)


#: assembled translation unit (kept for cache-key hashing)
_C_SOURCE = kernel_source()

#: flags always passed; probed extras are added per machine
_BASE_CFLAGS = ["-O3", "-funroll-loops", "-shared", "-fPIC"]

#: last-resort flag set when the assembled set still fails to compile
_DEGRADED_CFLAGS = ["-O3", "-shared", "-fPIC"]

#: probed flag groups per sanitizer mode; the first flag is the probe
SANITIZER_FLAGS: dict[str, tuple[str, ...]] = {
    "asan": ("-fsanitize=address", "-fno-omit-frame-pointer", "-g"),
    "ubsan": ("-fsanitize=undefined", "-fno-sanitize-recover=all", "-g"),
    "tsan": ("-fsanitize=thread", "-g"),
}

#: runtime shared object to LD_PRELOAD per sanitizer mode
_SANITIZER_RUNTIMES = {
    "asan": "libasan.so",
    "ubsan": "libubsan.so",
    "tsan": "libtsan.so",
}


@dataclass(frozen=True)
class CCBuildInfo:
    """What the cc flavor was actually built with on this machine.

    ``sanitize`` is the instrumentation that actually went into the
    build (``None`` for a plain build); ``degraded`` lists every request
    the toolchain could not honour (e.g. ``"sanitize:asan"`` when
    ``-fsanitize=address`` was rejected and the build fell back to
    plain) — the honesty contract the fallback-chain tests assert.
    """

    compiler: str
    version: str
    flags: tuple[str, ...]
    openmp: bool
    sanitize: str | None = None
    degraded: tuple[str, ...] = ()

    @property
    def fingerprint_key(self) -> str:
        """Stable ``compiler-version|flags`` string for machine keying."""
        return f"{Path(self.compiler).name}-{self.version}|{','.join(self.flags)}"


def cc_compiler() -> str | None:
    """Path of the first usable system C compiler, or ``None``."""
    override = os.environ.get("REPRO_CC")
    candidates = [override] if override else ["gcc", "cc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def sanitizer_runtime(mode: str, compiler: str | None = None) -> str | None:
    """Path of the sanitizer runtime to ``LD_PRELOAD``, or ``None``.

    Instrumented shared objects cannot be ``dlopen``-ed into an
    uninstrumented interpreter unless the runtime is already loaded;
    the harness preloads the library this resolves.
    """
    compiler = compiler or cc_compiler()
    if compiler is None:
        return None
    lib = _SANITIZER_RUNTIMES.get(mode)
    if lib is None:
        return None
    try:
        proc = subprocess.run(
            [compiler, f"-print-file-name={lib}"], capture_output=True, timeout=30
        )
    except Exception:
        return None
    path = proc.stdout.decode().strip()
    if proc.returncode != 0 or os.sep not in path or not Path(path).exists():
        return None
    return path


def _normalize_sanitize(sanitize: str | None) -> str | None:
    """Resolve a sanitize request (``None`` = consult ``REPRO_JIT_SANITIZE``)."""
    if sanitize is None:
        sanitize = os.environ.get("REPRO_JIT_SANITIZE", "")
    sanitize = sanitize.strip().lower()
    if sanitize in ("", "0", "off", "none", "no"):
        return None
    if sanitize not in SANITIZER_FLAGS:
        raise ValueError(
            f"unknown sanitizer {sanitize!r}; choose from {sorted(SANITIZER_FLAGS)}"
        )
    return sanitize


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_JIT_CACHE")
    if root:
        return Path(root)
    home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(home) / "repro-jit"


def _flag_works(compiler: str, flag: str, tmp: str) -> bool:
    """Test-compile a trivial TU with ``flag``; False on any rejection."""
    src = Path(tmp) / "probe.c"
    if not src.exists():
        src.write_text("int repro_probe(void) { return 0; }\n")
    out = Path(tmp) / f"probe-{abs(hash(flag)) % 10**8}.so"
    try:
        proc = subprocess.run(
            [compiler, flag, "-shared", "-fPIC", "-o", str(out), str(src)],
            capture_output=True,
            timeout=60,
        )
    except Exception:
        return False
    return proc.returncode == 0


def _resolve_flags(
    compiler: str, sanitize: str | None = None
) -> tuple[list[str], bool, str | None, tuple[str, ...]]:
    """Probe optional flags; returns ``(flags, openmp, sanitize, degraded)``.

    ``-march=native`` is dropped when rejected (satellite fix: it used to
    be passed unconditionally, losing the whole cc flavor on compilers
    without it). OpenMP degrades ``-fopenmp`` → ``-fopenmp-simd`` (SIMD
    pragmas honoured, no thread runtime) → nothing. A requested
    sanitizer whose probe flag the compiler rejects degrades to a plain
    build, recorded in ``degraded`` — never a hard failure.
    """
    flags = list(_BASE_CFLAGS)
    openmp = False
    degraded: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        if sanitize:
            group = SANITIZER_FLAGS[sanitize]
            if _flag_works(compiler, group[0], tmp):
                flags = [*group, *flags]
            else:
                degraded.append(f"sanitize:{sanitize}")
                sanitize = None
        if _flag_works(compiler, "-march=native", tmp):
            flags.insert(flags.index("-O3"), "-march=native")
        if _flag_works(compiler, "-fopenmp", tmp):
            flags.append("-fopenmp")
            openmp = True
        elif _flag_works(compiler, "-fopenmp-simd", tmp):
            flags.append("-fopenmp-simd")
    return flags, openmp, sanitize, tuple(degraded)


def _cc_version(compiler: str) -> str:
    try:
        proc = subprocess.run(
            [compiler, "-dumpversion"], capture_output=True, timeout=30
        )
        if proc.returncode == 0:
            return proc.stdout.decode().strip() or "unknown"
    except Exception:
        pass
    return "unknown"


@contextlib.contextmanager
def _build_lock(so_path: Path) -> Iterator[None]:
    """Exclusive advisory lock serialising compiles of one ``.so``.

    Parallel pytest workers (or any concurrent processes) that miss the
    cache simultaneously would otherwise all spawn compilers; the loser
    could also observe a half-written object were the publish not
    atomic. Belt and braces: the flock serialises builders (second one
    finds the published file and skips), and ``os.replace`` keeps the
    publish atomic for lock-less readers on platforms without fcntl.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = so_path.with_suffix(so_path.suffix + ".lock")
    with open(lock_path, "w") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


class _CCKernels:
    """ctypes bindings to the compiled shared object.

    Every bound entry point declares ``argtypes``/``restype`` — the FFI
    contract lint (RPR008) holds this module to it.
    """

    def __init__(self, lib: ctypes.CDLL, build: CCBuildInfo) -> None:
        self.build = build
        self.mp_update = lib.mp_update_f32
        self.mp_update.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] * 7
        self.mp_update.restype = None
        self.mp_update_seq = lib.mp_update_f32_seq
        self.mp_update_seq.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] * 7
        self.mp_update_seq.restype = None
        self.mp_update_omp = lib.mp_update_f32_omp
        self.mp_update_omp.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] * 9
        self.mp_update_omp.restype = None
        self.mp_update_i32 = lib.mp_update_i32
        self.mp_update_i32.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] * 7
        self.mp_update_i32.restype = None
        self.fw_inplace = lib.fw_inplace_f32
        self.fw_inplace.argtypes = [ctypes.c_void_p] + [ctypes.c_longlong] * 2
        self.fw_inplace.restype = None
        self.fw_blocked = lib.fw_blocked_f32
        self.fw_blocked.argtypes = [ctypes.c_void_p] + [ctypes.c_longlong] * 4
        self.fw_blocked.restype = None
        self._openmp_probe = lib.repro_openmp
        self._openmp_probe.argtypes = []
        self._openmp_probe.restype = ctypes.c_int
        self.openmp = bool(self._openmp_probe())
        self._max_threads_probe = lib.repro_max_threads
        self._max_threads_probe.argtypes = []
        self._max_threads_probe.restype = ctypes.c_int
        self.max_threads = int(self._max_threads_probe())


#: per-sanitize-mode cache: missing = untried, False = failed
_CC_KERNELS: dict[str | None, "_CCKernels | bool"] = {}


def compile_cc_so(
    compiler: str,
    flags: list[str],
    openmp: bool,
    *,
    sanitize: str | None = None,
    degraded: tuple[str, ...] = (),
    source: str | None = None,
    cache_dir: Path | None = None,
) -> tuple[Path, CCBuildInfo]:
    """Compile the kernel TU into the cache; returns ``(path, build info)``.

    Publishing is atomic (``os.replace``) and compiles are serialised by
    an advisory file lock, so concurrent processes race neither on the
    compiler nor on a half-written object. Does **not** ``dlopen`` — the
    sanitizer harness compiles instrumented objects here and loads them
    only inside a runtime-preloaded subprocess.
    """
    src_text = source if source is not None else _C_SOURCE
    key = hashlib.sha256(
        (src_text + compiler + " ".join(flags)).encode()
    ).hexdigest()[:16]
    cache = cache_dir or _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    so_path = cache / f"minplus-{key}.so"
    if not so_path.exists():
        with _build_lock(so_path):
            if not so_path.exists():  # the lock's previous holder built it
                with tempfile.TemporaryDirectory(dir=cache) as tmp:
                    src = Path(tmp) / "minplus.c"
                    src.write_text(src_text)
                    out = Path(tmp) / "minplus.so"
                    proc = subprocess.run(
                        [compiler, *flags, "-o", str(out), str(src)],
                        capture_output=True,
                        timeout=120,
                    )
                    if proc.returncode != 0:
                        raise OSError(proc.stderr.decode(errors="replace")[:2000])
                    os.replace(out, so_path)  # atomic publish into the cache
    build = CCBuildInfo(
        compiler=compiler,
        version=_cc_version(compiler),
        flags=tuple(flags),
        openmp=openmp,
        sanitize=sanitize,
        degraded=degraded,
    )
    return so_path, build


def _compile_and_load(
    compiler: str,
    flags: list[str],
    openmp: bool,
    *,
    sanitize: str | None = None,
    degraded: tuple[str, ...] = (),
) -> _CCKernels:
    so_path, build = compile_cc_so(
        compiler, flags, openmp, sanitize=sanitize, degraded=degraded
    )
    return _CCKernels(ctypes.CDLL(str(so_path)), build)


def load_cc_kernels(sanitize: str | None = None) -> _CCKernels | None:
    """Compile (once, cached on disk) and load the C kernels.

    ``sanitize`` selects an instrumented build (``"asan"``, ``"ubsan"``,
    ``"tsan"``; default consults ``REPRO_JIT_SANITIZE``). Returns
    ``None`` when no compiler is present or every compile attempt
    (probed flags, then the degraded ``-O3``-only set) fails — callers
    degrade to the numpy fallback. Never raises on toolchain gaps: a
    rejected sanitizer flag degrades to a plain build, reported in
    ``CCBuildInfo.degraded``. ASan/TSan objects only load inside a
    process with the matching runtime preloaded (:func:`sanitizer_runtime`).
    """
    mode = _normalize_sanitize(sanitize)
    if mode in ("asan", "tsan"):
        # dlopen of an ASan/TSan object into a process without the
        # runtime hard-aborts the interpreter ("runtime does not come
        # first in initial library list") — refuse with a recoverable
        # error instead; repro.verifykernel.matrixrun sets the preload.
        preload = os.environ.get("LD_PRELOAD", "")
        if f"lib{mode}" not in preload:
            raise RuntimeError(
                f"{mode}-instrumented kernels need the sanitizer runtime "
                f"preloaded: relaunch with LD_PRELOAD={sanitizer_runtime(mode)}"
            )
    cached = _CC_KERNELS.get(mode, None)
    if cached is not None:
        return cached if isinstance(cached, _CCKernels) else None
    _CC_KERNELS[mode] = False
    compiler = cc_compiler()
    if compiler is None:
        return None
    try:
        flags, openmp, got_mode, degraded = _resolve_flags(compiler, mode)
    except Exception:
        flags, openmp, got_mode, degraded = list(_BASE_CFLAGS), False, None, ()
        if mode:
            degraded = (f"sanitize:{mode}",)
    for attempt_flags, attempt_omp, attempt_mode, attempt_degraded in (
        (flags, openmp, got_mode, degraded),
        (_DEGRADED_CFLAGS, False, None,
         degraded + ((f"sanitize:{mode}",) if mode and got_mode else ())),
    ):
        try:
            kernels = _compile_and_load(
                compiler,
                list(attempt_flags),
                attempt_omp,
                sanitize=attempt_mode,
                degraded=tuple(dict.fromkeys(attempt_degraded)),
            )
            _CC_KERNELS[mode] = kernels
            return kernels
        except Exception:
            _CC_KERNELS[mode] = False
    return None


def cc_build_info(sanitize: str | None = None) -> CCBuildInfo | None:
    """Build provenance of the loaded cc kernels (``None`` if unavailable)."""
    kernels = load_cc_kernels(sanitize)
    return kernels.build if kernels else None


def _default_threads() -> int:
    """Thread count for the cc-omp flavor (``REPRO_JIT_THREADS`` wins)."""
    env = os.environ.get("REPRO_JIT_THREADS")
    if env:
        return max(1, int(env))
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _load_numba_kernels():
    """Compile the numba flavor; returns ``(update, fw)`` or ``None``."""
    try:
        import numba
    except ImportError:
        return None
    try:
        @numba.njit(cache=True, nogil=True)
        def nb_update(c, a, b, tile):  # pragma: no cover - needs numba
            bi, bj = c.shape
            bk = a.shape[1]
            for k0 in range(0, bk, tile):
                k1 = min(k0 + tile, bk)
                for j0 in range(0, bj, tile):
                    j1 = min(j0 + tile, bj)
                    for i in range(bi):
                        for k in range(k0, k1):
                            aik = a[i, k]
                            if np.isinf(aik):
                                continue
                            for j in range(j0, j1):
                                cand = aik + b[k, j]
                                if cand < c[i, j]:
                                    c[i, j] = cand
            return c

        @numba.njit(cache=True, nogil=True)
        def nb_fw(d):  # pragma: no cover - needs numba
            n = d.shape[0]
            for k in range(n):
                for i in range(n):
                    dik = d[i, k]
                    if np.isinf(dik):
                        continue
                    for j in range(n):
                        cand = dik + d[k, j]
                        if cand < d[i, j]:
                            d[i, j] = cand
            return d

        # trigger compilation now so failures downgrade instead of raising
        probe = np.zeros((2, 2), dtype=np.float32)
        nb_update(probe.copy(), probe, probe, 128)
        nb_fw(probe.copy())
        return nb_update, nb_fw
    except Exception:
        return None


class JITBackend(KernelBackend):
    """numba/compiled-C kernels, degrading gracefully to the tiled backend."""

    name = "jit"
    summary = "JIT kernel: numba if present, else vectorized C (serial or OpenMP), else tiled numpy"

    def __init__(
        self,
        flavor: str | None = None,
        tile: int = 256,
        threads: int | None = None,
        fw_block: int | None = None,
    ) -> None:
        self.tile = tile
        self.fw_block = fw_block
        self._numba = None
        self._cc = None
        self._fallback = TiledBackend()
        requested = flavor or os.environ.get("REPRO_JIT_FLAVOR") or "auto"
        if os.environ.get("REPRO_JIT", "").lower() in ("off", "0", "no"):
            requested = "fallback"
        if requested in ("auto", "numba"):
            self._numba = _load_numba_kernels()
        if self._numba is None and requested in ("auto", "cc", "cc-omp"):
            self._cc = load_cc_kernels()
        if requested == "numba" and self._numba is None:
            self._cc = load_cc_kernels()  # numba asked for but absent: degrade
        want_omp = requested == "cc-omp"
        self.threads = 1
        if self._cc is not None and want_omp and self._cc.openmp:
            self.threads = max(1, threads if threads is not None else _default_threads())
        if self._numba:
            self._flavor = "numba"
        elif self._cc:
            self._flavor = "cc-omp" if (want_omp and self.threads > 1) else "cc"
        else:
            self._flavor = "fallback"

    @property
    def flavor(self) -> str:
        """Implementation that answered: ``numba``, ``cc``, ``cc-omp``,
        or ``fallback``."""
        return self._flavor

    @property
    def compiled(self) -> bool:
        """True when a compiled (non-numpy) flavor is active."""
        return self._flavor in ("numba", "cc", "cc-omp")

    @staticmethod
    def _checked_operand(arr: np.ndarray, dtype: type) -> int:
        """FFI operand guard: dtype + unit inner stride, returns row stride.

        Every ndarray handed to a C entry point passes through here
        first — the statically-evident contiguity/dtype guard the FFI
        lint (RPR009) requires at ``.ctypes.data`` call sites.
        """
        if arr.dtype != dtype:
            raise TypeError(
                f"jit backend needs {np.dtype(dtype).name} operands, got {arr.dtype}"
            )
        if arr.strides[1] != arr.itemsize:
            raise ValueError("jit backend needs unit stride along the last axis")
        return arr.strides[0] // arr.itemsize

    @staticmethod
    def _aliased(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> bool:
        """May writing ``c`` be observed through ``a`` or ``b``?

        Conservative bounds check (``np.may_share_memory``): blocked FW's
        stage-2 updates pass ``update(T, diag, T)`` / ``update(T, T,
        diag)``, whose results depend on the in-place pivot order — those
        take the sequential-k kernel; disjoint operands take the
        register-blocked fast path.
        """
        return bool(np.may_share_memory(c, a) or np.may_share_memory(c, b))

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)`` via the active JIT flavor."""
        if self._flavor == "numba":
            return self._numba[0](c, a, b, self.tile)
        if self._cc is not None:
            bi, bj = c.shape
            bk = a.shape[1]
            seq = self._aliased(c, a, b)
            args = (
                c.ctypes.data, a.ctypes.data, b.ctypes.data,
                bi, bk, bj,
                self._checked_operand(c, np.float32),
                self._checked_operand(a, np.float32),
                self._checked_operand(b, np.float32),
                self.tile,
            )
            # aliased operands are order-dependent: they stay on the
            # serial sequential-k kernel and never fan out across OpenMP
            # panels (the C entry point routes identically; verified by
            # `repro verify-kernels`)
            if seq:
                self._cc.mp_update_seq(*args)
            elif self._flavor == "cc-omp":
                self._cc.mp_update_omp(*args, self.threads, 0)
            else:
                self._cc.mp_update(*args)
            return c
        return self._fallback.update(c, a, b)

    def fw_inplace(self, dist: np.ndarray) -> np.ndarray:
        """Floyd–Warshall closure via the active JIT flavor.

        With ``fw_block`` set (autotuned machines), matrices larger than
        the block run the multi-stage blocked kernel — exact on the
        library's integer-weight distance domain; otherwise the
        register-blocked plain kernel, bit-identical on any input.
        """
        if self._flavor == "numba":
            return self._numba[1](dist)
        if self._cc is not None:
            n = dist.shape[0]
            stride = self._checked_operand(dist, np.float32)
            if self.fw_block and n > self.fw_block:
                self._cc.fw_blocked(
                    dist.ctypes.data, n, stride, self.fw_block, self.tile
                )
            else:
                self._cc.fw_inplace(dist.ctypes.data, n, stride)
            return dist
        return self._fallback.fw_inplace(dist)

    def update_i32(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact saturating int32 min-plus (C kernel when available)."""
        if self._cc is not None and self._flavor in ("cc", "cc-omp"):
            bi, bj = c.shape
            bk = a.shape[1]
            self._cc.mp_update_i32(
                c.ctypes.data, a.ctypes.data, b.ctypes.data,
                bi, bk, bj,
                self._checked_operand(c, np.int32),
                self._checked_operand(a, np.int32),
                self._checked_operand(b, np.int32),
                self.tile,
            )
            return c
        return int32_rank1_update(c, a, b)
