"""JIT-compiled min-plus/FW kernels with graceful degradation.

Flavor resolution order (overridable with ``REPRO_JIT_FLAVOR``):

1. ``numba`` — ``@njit(nogil=True)`` kernels when numba is importable;
2. ``cc`` — a small C translation unit compiled at first use with the
   system C compiler (``gcc``/``cc``/``clang``) into a per-user cache
   directory and loaded through :mod:`ctypes`. No build-time dependency:
   machines without any compiler simply skip this flavor. The ``.so`` is
   keyed by a hash of the source and compiler, so later processes pay only
   a ``dlopen``;
3. ``fallback`` — delegate to :class:`~repro.core.backends.tiled.TiledBackend`
   (pure numpy), so requesting ``jit`` is always safe.

Both compiled flavors implement the same loop nest: ``k``-and-``j`` tiled,
with an early ``isinf(A[i, k])`` skip, candidate-compare inner loop. On the
library's distance domain (``[0, +inf]``, zero diagonals) this is
bit-identical to the numpy rank-1 formulation — ``min`` is order-independent
and float32 ``a + b`` rounds identically in all three. Setting
``REPRO_JIT=off`` forces the fallback (used by the CI leg that exercises
the degradation path).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.backends.tiled import TiledBackend

__all__ = ["JITBackend", "cc_compiler", "load_cc_kernels"]

_C_SOURCE = r"""
#include <math.h>

typedef long long i64;

/* In-place C = min(C, A (min,+) B).  Shapes: C bi x bj, A bi x bk, B bk x bj.
 * cs/as/bs are row strides in ELEMENTS (unit stride along the last axis).
 * k and j are tiled so the B sub-block stays cache-resident across the i
 * sweep; all-inf A entries short-circuit a full row of work. */
void mp_update_f32(float *c, const float *a, const float *b,
                   i64 bi, i64 bk, i64 bj,
                   i64 cs, i64 as, i64 bs, i64 tile)
{
    if (tile <= 0) tile = 128;
    for (i64 k0 = 0; k0 < bk; k0 += tile) {
        i64 k1 = k0 + tile < bk ? k0 + tile : bk;
        for (i64 j0 = 0; j0 < bj; j0 += tile) {
            i64 len = (j0 + tile < bj ? j0 + tile : bj) - j0;
            for (i64 i = 0; i < bi; i++) {
                float *crow = c + i * cs + j0;
                const float *arow = a + i * as;
                for (i64 k = k0; k < k1; k++) {
                    float aik = arow[k];
                    if (isinf(aik)) continue;
                    const float *brow = b + k * bs + j0;
                    for (i64 j = 0; j < len; j++) {
                        float cand = aik + brow[j];
                        if (cand < crow[j]) crow[j] = cand;
                    }
                }
            }
        }
    }
}

/* In-place Floyd-Warshall closure of an n x n tile with row stride s.
 * Equivalent to n rank-1 min-updates on matrices with non-negative
 * weights and a zero diagonal (the library's distance domain). */
void fw_inplace_f32(float *d, i64 n, i64 s)
{
    for (i64 k = 0; k < n; k++) {
        const float *krow = d + k * s;
        for (i64 i = 0; i < n; i++) {
            float dik = d[i * s + k];
            if (isinf(dik)) continue;
            float *irow = d + i * s;
            for (i64 j = 0; j < n; j++) {
                float cand = dik + krow[j];
                if (cand < irow[j]) irow[j] = cand;
            }
        }
    }
}
"""

_CFLAGS = ["-O3", "-march=native", "-funroll-loops", "-shared", "-fPIC"]


def cc_compiler() -> str | None:
    """Path of the first usable system C compiler, or ``None``."""
    override = os.environ.get("REPRO_CC")
    candidates = [override] if override else ["gcc", "cc", "clang"]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_JIT_CACHE")
    if root:
        return Path(root)
    home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(home) / "repro-jit"


class _CCKernels:
    """ctypes bindings to the compiled shared object."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self.mp_update = lib.mp_update_f32
        self.mp_update.argtypes = [ctypes.c_void_p] * 3 + [ctypes.c_longlong] * 7
        self.mp_update.restype = None
        self.fw_inplace = lib.fw_inplace_f32
        self.fw_inplace.argtypes = [ctypes.c_void_p] + [ctypes.c_longlong] * 2
        self.fw_inplace.restype = None


_CC_KERNELS: _CCKernels | None | bool = None  # None = untried, False = failed


def load_cc_kernels() -> _CCKernels | None:
    """Compile (once, cached on disk) and load the C kernels.

    Returns ``None`` when no compiler is present or compilation fails —
    callers degrade to the numpy fallback. Never raises.
    """
    global _CC_KERNELS
    if _CC_KERNELS is not None:
        return _CC_KERNELS or None
    _CC_KERNELS = False
    compiler = cc_compiler()
    if compiler is None:
        return None
    try:
        key = hashlib.sha256(
            (_C_SOURCE + compiler + " ".join(_CFLAGS)).encode()
        ).hexdigest()[:16]
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        so_path = cache / f"minplus-{key}.so"
        if not so_path.exists():
            with tempfile.TemporaryDirectory(dir=cache) as tmp:
                src = Path(tmp) / "minplus.c"
                src.write_text(_C_SOURCE)
                out = Path(tmp) / "minplus.so"
                proc = subprocess.run(
                    [compiler, *_CFLAGS, "-o", str(out), str(src)],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    return None
                os.replace(out, so_path)  # atomic publish into the cache
        _CC_KERNELS = _CCKernels(ctypes.CDLL(str(so_path)))
    except Exception:
        _CC_KERNELS = False
        return None
    return _CC_KERNELS


def _load_numba_kernels():
    """Compile the numba flavor; returns ``(update, fw)`` or ``None``."""
    try:
        import numba
    except ImportError:
        return None
    try:
        @numba.njit(cache=True, nogil=True)
        def nb_update(c, a, b, tile):  # pragma: no cover - needs numba
            bi, bj = c.shape
            bk = a.shape[1]
            for k0 in range(0, bk, tile):
                k1 = min(k0 + tile, bk)
                for j0 in range(0, bj, tile):
                    j1 = min(j0 + tile, bj)
                    for i in range(bi):
                        for k in range(k0, k1):
                            aik = a[i, k]
                            if np.isinf(aik):
                                continue
                            for j in range(j0, j1):
                                cand = aik + b[k, j]
                                if cand < c[i, j]:
                                    c[i, j] = cand
            return c

        @numba.njit(cache=True, nogil=True)
        def nb_fw(d):  # pragma: no cover - needs numba
            n = d.shape[0]
            for k in range(n):
                for i in range(n):
                    dik = d[i, k]
                    if np.isinf(dik):
                        continue
                    for j in range(n):
                        cand = dik + d[k, j]
                        if cand < d[i, j]:
                            d[i, j] = cand
            return d

        # trigger compilation now so failures downgrade instead of raising
        probe = np.zeros((2, 2), dtype=np.float32)
        nb_update(probe.copy(), probe, probe, 128)
        nb_fw(probe.copy())
        return nb_update, nb_fw
    except Exception:
        return None


class JITBackend(KernelBackend):
    """numba/compiled-C kernels, degrading gracefully to the tiled backend."""

    name = "jit"
    summary = "JIT kernel: numba if present, else compiled C, else tiled numpy"

    def __init__(self, flavor: str | None = None, tile: int = 128) -> None:
        self.tile = tile
        self._numba = None
        self._cc = None
        self._fallback = TiledBackend()
        requested = flavor or os.environ.get("REPRO_JIT_FLAVOR") or "auto"
        if os.environ.get("REPRO_JIT", "").lower() in ("off", "0", "no"):
            requested = "fallback"
        if requested in ("auto", "numba"):
            self._numba = _load_numba_kernels()
        if self._numba is None and requested in ("auto", "cc"):
            self._cc = load_cc_kernels()
        if requested == "numba" and self._numba is None:
            self._cc = load_cc_kernels()  # numba asked for but absent: degrade
        self._flavor = (
            "numba" if self._numba else "cc" if self._cc else "fallback"
        )

    @property
    def flavor(self) -> str:
        """Which implementation answered: ``numba``, ``cc``, or ``fallback``."""
        return self._flavor

    @property
    def compiled(self) -> bool:
        """True when a compiled (non-numpy) flavor is active."""
        return self._flavor in ("numba", "cc")

    @staticmethod
    def _row_stride(arr: np.ndarray) -> int:
        if arr.strides[1] != arr.itemsize:
            raise ValueError("jit backend needs unit stride along the last axis")
        return arr.strides[0] // arr.itemsize

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)`` via the active JIT flavor."""
        if self._flavor == "numba":
            return self._numba[0](c, a, b, self.tile)
        if self._flavor == "cc":
            bi, bj = c.shape
            bk = a.shape[1]
            self._cc.mp_update(
                c.ctypes.data, a.ctypes.data, b.ctypes.data,
                bi, bk, bj,
                self._row_stride(c), self._row_stride(a), self._row_stride(b),
                self.tile,
            )
            return c
        return self._fallback.update(c, a, b)

    def fw_inplace(self, dist: np.ndarray) -> np.ndarray:
        """Floyd–Warshall closure via the active JIT flavor."""
        if self._flavor == "numba":
            return self._numba[1](dist)
        if self._flavor == "cc":
            self._cc.fw_inplace(
                dist.ctypes.data, dist.shape[0], self._row_stride(dist)
            )
            return dist
        return self._fallback.fw_inplace(dist)
