"""Backend interface and shared numpy building blocks.

A :class:`KernelBackend` implements the two numeric primitives every APSP
driver in this repository bottoms out in:

* :meth:`KernelBackend.update` — the in-place min-plus accumulate
  ``C = min(C, A ⊗ B)`` (stages 2–3 of blocked FW, the boundary
  algorithm's ``dist4`` chain, min-plus powering);
* :meth:`KernelBackend.fw_inplace` — the Floyd–Warshall closure of one
  square tile (stage 1 / diagonal blocks / in-core solves).

Operand contract (enforced by :class:`~repro.core.engine.KernelEngine`,
which coerces on the way in): 2-D :data:`~repro.core.minplus.DIST_DTYPE`
arrays whose **last axis has unit stride**. Row strides may be arbitrary so
tile *views* of a larger matrix pass through without copies. Inputs are
assumed free of ``-inf``/``NaN`` (the library's distance domain is
``[0, +inf]``), which is what makes the all-``inf`` column fast path and
the compiled kernels' early-exit bit-identical to the plain formulation.

Backends must be **bit-identical** to :func:`rank1_update` on that domain —
the cross-backend equivalence suite (``tests/test_kernel_backends.py``)
enforces it on every registered backend.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "INT32_INF",
    "KernelBackend",
    "finite_column_indices",
    "float16_update",
    "int32_rank1_update",
    "numpy_fw_inplace",
    "rank1_update",
]

#: sentinel playing the role of ``+inf`` in the int32 semiring
INT32_INF = np.int32(np.iinfo(np.int32).max)


def finite_column_indices(a: np.ndarray) -> np.ndarray | None:
    """Indices of columns of ``a`` that are *not* entirely ``+inf``.

    Returns ``None`` when every column holds at least one finite entry, so
    callers can keep the zero-overhead contiguous loop in the common case.
    A column that is all ``+inf`` contributes only ``inf + b[k, j] = inf``
    candidates, which can never lower ``C`` — skipping it is a pure win for
    the sparse/boundary tiles that dominate early out-of-core iterations.
    """
    if a.size == 0:
        return None
    dead = np.isposinf(a).all(axis=0)
    if not dead.any():
        return None
    return np.flatnonzero(~dead)


def rank1_update(
    c: np.ndarray, a: np.ndarray, b: np.ndarray, *, skip_inf_columns: bool = True
) -> np.ndarray:
    """The reference formulation: ``k`` rank-1 broadcast min-updates.

    This is the profiled-fastest *plain numpy* formulation (see
    :mod:`repro.core.minplus`) and the semantics every other backend must
    reproduce bit-for-bit. ``skip_inf_columns`` enables the all-``inf``
    column fast path; it never changes the result on the distance domain.
    """
    nk = a.shape[1]
    if skip_inf_columns and c.shape[1] >= 4:
        cols = finite_column_indices(a)
        if cols is not None:
            for k in cols:
                np.minimum(c, a[:, k : k + 1] + b[k : k + 1, :], out=c)
            return c
    for k in range(nk):
        np.minimum(c, a[:, k : k + 1] + b[k : k + 1, :], out=c)
    return c


def int32_rank1_update(c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference int32 min-plus: :data:`INT32_INF` sentinel, saturating add.

    The numpy oracle the compiled int32 kernels must match **exactly** —
    the semiring is integral, so unlike float16 there is no tolerance:
    sums go through int64 and clamp to the sentinel instead of wrapping.
    """
    for k in range(a.shape[1]):
        wide = a[:, k : k + 1].astype(np.int64) + b[k : k + 1, :].astype(np.int64)
        cand = np.minimum(wide, np.int64(INT32_INF)).astype(np.int32)
        np.minimum(c, cand, out=c)
    return c


def float16_update(
    c: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    update=rank1_update,
) -> np.ndarray:
    """float16 min-plus computed through float32, rounded once at the end.

    Candidates are formed in float32 (``update`` may be any accelerated
    float32 backend method — all are bit-identical) and the accumulator
    rounds back to float16 on the way out. Relative error vs an exact
    semiring is bounded by one float16 rounding step (2^-11 ≈ 4.9e-4) of
    the final value; see ``docs/PERFORMANCE.md``.
    """
    c32 = np.ascontiguousarray(c, dtype=np.float32)
    a32 = np.ascontiguousarray(a, dtype=np.float32)
    b32 = np.ascontiguousarray(b, dtype=np.float32)
    update(c32, a32, b32)
    c[...] = c32.astype(np.float16)
    return c


def numpy_fw_inplace(dist: np.ndarray) -> np.ndarray:
    """Plain vectorised Floyd–Warshall, one rank-1 min-update per pivot."""
    for k in range(dist.shape[0]):
        np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :], out=dist)
    return dist


class KernelBackend(abc.ABC):
    """One interchangeable implementation of the min-plus/FW-tile kernels.

    Subclasses set :attr:`name` (the registry key) and :attr:`summary` (one
    line for benchmark tables) and implement :meth:`update`. The default
    :meth:`fw_inplace` is the numpy pivot loop; compiled backends override
    it with a fused kernel.
    """

    #: registry key (``REPRO_KERNEL_BACKEND`` value)
    name: str = "?"
    #: one-line description shown by ``python -m repro bench-kernels``
    summary: str = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current environment."""
        return True

    @property
    def flavor(self) -> str:
        """The concrete implementation in use (differs from :attr:`name`
        only for backends with internal fallbacks, e.g. ``jit``)."""
        return self.name

    @abc.abstractmethod
    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)``; returns ``C``."""

    def fw_inplace(self, dist: np.ndarray) -> np.ndarray:
        """Floyd–Warshall closure of a square tile, in place."""
        return numpy_fw_inplace(dist)

    def update_i32(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact int32 semiring update (:data:`INT32_INF` = ``+inf``).

        Default is the numpy oracle; compiled backends override with a
        saturating C kernel. Must match :func:`int32_rank1_update`
        bit-for-bit (the semiring is integral — no tolerance).
        """
        return int32_rank1_update(c, a, b)

    def update_f16(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """float16 semiring update, computed through this backend's
        float32 kernel and rounded once (documented tolerance: one
        float16 rounding step of the float32 result)."""
        return float16_update(c, a, b, update=self.update)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flavor = f" ({self.flavor})" if self.flavor != self.name else ""
        return f"<{type(self).__name__} {self.name!r}{flavor}>"
