"""Chunked 3-D broadcast min-plus with bounded temporary memory.

The naive 3-D formulation ``(A[:, :, None] + B[None, :, :]).min(axis=1)``
materialises a ``bi × bk × bj`` cube — gigabytes at out-of-core tile sizes
and measurably slower than the rank-1 loop. Chunking the inner axis into
slabs of ``chunk_k`` keeps the cube at ``bi × chunk_k × bj`` (preallocated
and reused), replaces ``chunk_k`` separate minimum passes over ``C`` with a
single reduction over the slab plus one pass over ``C``, and caps the
temporary at :attr:`ChunkedBackend.max_temp_bytes` regardless of tile size.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend, finite_column_indices, rank1_update

__all__ = ["ChunkedBackend"]


class ChunkedBackend(KernelBackend):
    """3-D broadcast over bounded ``bi × chunk_k × bj`` slabs."""

    name = "chunked"
    summary = "k-chunked 3-D broadcast with preallocated bounded slab"

    def __init__(self, chunk_k: int = 8, max_temp_bytes: int = 256 * 2**20) -> None:
        if chunk_k < 1:
            raise ValueError("chunk_k must be positive")
        self.chunk_k = chunk_k
        self.max_temp_bytes = max_temp_bytes

    def _chunk(self, bi: int, bj: int, itemsize: int) -> int:
        """Largest slab depth within the temporary-memory budget."""
        per_layer = max(1, bi * bj * itemsize)
        return max(1, min(self.chunk_k, self.max_temp_bytes // per_layer))

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)`` one bounded slab at a time."""
        bi, bj = c.shape
        bk = a.shape[1]
        kc = self._chunk(bi, bj, c.itemsize)
        if bk <= 1 or bi == 0 or bj == 0:
            return rank1_update(c, a, b)
        cols = finite_column_indices(a)
        if cols is not None and cols.size == 0:
            return c  # every candidate is +inf: nothing can improve C
        slab = np.empty((bi, kc, bj), dtype=c.dtype)
        reduced = np.empty((bi, bj), dtype=c.dtype)
        ks = np.arange(bk) if cols is None else cols
        for s0 in range(0, len(ks), kc):
            sel = ks[s0 : s0 + kc]
            m = len(sel)
            if cols is None:
                asub = a[:, sel[0] : sel[0] + m]
                bsub = b[sel[0] : sel[0] + m, :]
            else:  # fancy indexing copies just the surviving columns/rows
                asub = a[:, sel]
                bsub = b[sel, :]
            t = slab[:, :m, :]
            np.add(asub[:, :, None], bsub[None, :, :], out=t)
            np.minimum(c, t.min(axis=1, out=reduced), out=c)
        return c
