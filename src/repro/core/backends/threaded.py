"""Thread-pool backend: fan independent column panels across workers.

numpy's ufunc loops and the ctypes/numba JIT kernels all release the GIL,
so slicing ``C`` (and the matching columns of ``B``) into disjoint column
panels and updating each on its own thread scales the single-product
min-plus across cores. The same pool backs
:meth:`repro.core.engine.KernelEngine.map_updates`, which the blocked and
out-of-core Floyd–Warshall drivers use to fan their embarrassingly parallel
stage-3 block updates (each block shares only the read-only ``A(i,k)`` /
``A(k,j)`` panels).

Panels are views, not copies — every inner backend accepts arbitrary row
strides — and each worker writes a disjoint slice of ``C``, so no
synchronisation beyond the final join is needed. Results are bit-identical
to the serial inner backend because the panel decomposition does not change
any per-element candidate set.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.backends.jit import JITBackend
from repro.core.backends.tiled import TiledBackend

__all__ = ["ThreadedBackend", "default_workers", "shared_executor"]

_EXECUTOR: ThreadPoolExecutor | None = None
_EXECUTOR_WORKERS = 0
_LOCK = threading.Lock()


def default_workers() -> int:
    """Worker count: ``REPRO_KERNEL_WORKERS`` or the usable CPU count."""
    env = os.environ.get("REPRO_KERNEL_WORKERS")
    if env:
        return max(1, int(env))
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def shared_executor(workers: int) -> ThreadPoolExecutor:
    """Process-wide kernel thread pool, grown on demand, never shrunk."""
    global _EXECUTOR, _EXECUTOR_WORKERS
    with _LOCK:
        if _EXECUTOR is None or workers > _EXECUTOR_WORKERS:
            if _EXECUTOR is not None:
                _EXECUTOR.shutdown(wait=False)
            _EXECUTOR = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _EXECUTOR_WORKERS = workers
        return _EXECUTOR


class ThreadedBackend(KernelBackend):
    """Column-panel fan-out of an inner backend across a thread pool."""

    name = "threaded"
    summary = "thread-pool column panels over the best serial backend"

    #: panels narrower than this run serially (thread overhead dominates)
    MIN_PANEL = 64

    def __init__(
        self, inner: KernelBackend | None = None, workers: int | None = None
    ) -> None:
        if inner is None:
            jit = JITBackend()
            inner = jit if jit.compiled else TiledBackend()
        self.inner = inner
        self.workers = workers if workers is not None else default_workers()

    @property
    def flavor(self) -> str:
        """``threaded(<inner flavor>)×<workers>``."""
        return f"threaded({self.inner.flavor})x{self.workers}"

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)``, column panels across workers."""
        bj = c.shape[1]
        panels = min(self.workers, max(1, bj // self.MIN_PANEL))
        if panels < 2:
            return self.inner.update(c, a, b)
        bounds = np.linspace(0, bj, panels + 1, dtype=int)
        ex = shared_executor(self.workers)
        futures = [
            ex.submit(self.inner.update, c[:, lo:hi], a, b[:, lo:hi])
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for fut in futures:
            fut.result()  # re-raise worker exceptions
        return c

    def fw_inplace(self, dist: np.ndarray) -> np.ndarray:
        """FW has a loop-carried pivot dependency — run the inner serially."""
        return self.inner.fw_inplace(dist)
