"""The baseline backend: the original rank-1 broadcast loop.

Kept as the semantics oracle every other backend is property-tested
against, and as the universal fallback (it handles any dtype and any
stride pattern numpy itself handles).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends.base import KernelBackend, rank1_update

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Rank-1 numpy broadcast updates (the profiled seed implementation)."""

    name = "reference"
    summary = "rank-1 numpy broadcast loop (baseline)"

    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)`` via ``k`` rank-1 min-updates."""
        return rank1_update(c, a, b)
