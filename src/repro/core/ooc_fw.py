"""Out-of-core blocked Floyd–Warshall (paper Algorithm 1).

The distance matrix is partitioned into ``n_d × n_d`` blocks sized so the
working set fits in device memory. Per outer iteration ``k``:

* **stage 1** — upload the diagonal block, close it with FW on the device,
  download;
* **stage 2** — stream row blocks ``A(k,j)`` and column blocks ``A(i,k)``
  through the device, updating each with one min-plus against the closed
  diagonal block;
* **stage 3** — for every remaining block ``A(i,j)``, upload
  ``A(i,k)``/``A(k,j)``/``A(i,j)``, rank-update, download.

Every block crosses the bus each iteration, giving the paper's
``O(n_d · n²)`` data-movement complexity (Table I). With ``overlap=True``
(the paper's "asynchronous data transfers" optimisation) stage 3 runs
double-buffered: uploads of block ``t+1`` and the download of block ``t−1``
overlap the min-plus of block ``t`` on a second stream. The host side of
every transfer is a pinned staging buffer, as in the paper.

Host-side numeric work dispatches through the kernel engine
(:mod:`repro.core.engine`). With a threaded engine and ``overlap=True``,
stage 3 processes the double-buffered blocks in waves: both buffers'
independent rank-updates (disjoint outputs, shared read-only
``A(i,k)``/``A(k,j)`` panels) run concurrently on the worker pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.minplus import DIST_DTYPE, minplus_update
from repro.core.result import APSPResult
from repro.core.tiling import BlockLayout, HostStore
from repro.faults.checkpoint import CheckpointError, open_checkpoint
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.kernels import fw_tile_cost, minplus_cost
from repro.gpu.stream import Event

__all__ = ["emit_fw_ir", "ooc_floyd_warshall", "plan_fw_block_size", "transfer_stats"]

_ELEM = np.dtype(DIST_DTYPE).itemsize


def plan_fw_block_size(n: int, spec: DeviceSpec, *, overlap: bool = True) -> int:
    """Largest block size whose working set fits on the device.

    Stage 3 keeps one column block plus (with overlap) two double-buffered
    pairs of row/work blocks resident — five tiles; three without overlap.
    """
    tiles = 5 if overlap else 3
    b = int(np.sqrt(spec.memory_bytes / (tiles * _ELEM)))
    if b < 1:
        raise ValueError(
            f"device memory {spec.memory_bytes}B cannot hold {tiles} tiles of any size"
        )
    return max(1, min(b, n))


def transfer_stats(device: Device) -> dict:
    """Summarise bus traffic from the device trace (shared by all drivers)."""
    tl = device.timeline
    h2d = tl.engine_ops("h2d")
    d2h = tl.engine_ops("d2h")
    return {
        "bytes_h2d": sum(op.nbytes for op in h2d),
        "bytes_d2h": sum(op.nbytes for op in d2h),
        "num_transfers": len(h2d) + len(d2h),
        "transfer_seconds": tl.busy_time("h2d") + tl.busy_time("d2h"),
        "compute_seconds": tl.busy_time("compute"),
    }


def ooc_floyd_warshall(
    graph,
    device: Device,
    *,
    block_size: int | None = None,
    overlap: bool = True,
    store_mode: str = "ram",
    store_dir=None,
    engine=None,
    checkpoint=None,
) -> APSPResult:
    """Solve APSP with the out-of-core blocked FW algorithm.

    ``simulated_seconds`` in the result is the device-model makespan of the
    full schedule (kernels + transfers, overlapped where requested).
    ``engine`` overrides the process-wide kernel engine for the host-side
    numeric work. ``checkpoint`` (a directory path or
    :class:`~repro.faults.CheckpointStore`) saves progress after every
    outer iteration ``k`` and resumes from whatever the store already
    holds — a killed run re-run with the same store produces distances
    bit-identical to an uninterrupted one.
    """
    n = graph.num_vertices
    spec = device.spec
    if engine is None:
        from repro.core.engine import default_engine

        engine = default_engine()
    if block_size is None:
        block_size = plan_fw_block_size(n, spec, overlap=overlap)
    host = HostStore.from_graph(graph, mode=store_mode, directory=store_dir)
    layout = BlockLayout(n, block_size)
    nd = layout.num_blocks
    bmax = layout.size(0)

    device.reset_clock()
    ckpt = open_checkpoint(checkpoint, algorithm="floyd-warshall", graph=graph)
    start_k = 0
    if ckpt is not None:
        state = ckpt.load("progress")
        if state is not None:
            if int(state["block_size"]) != block_size:
                raise CheckpointError(
                    f"checkpoint used block_size={int(state['block_size'])}, "
                    f"this run plans {block_size}",
                    path=ckpt.path_for("progress"),
                )
            host.data[...] = state["dist"]
            start_k = int(state["k_done"])
            device.fault_report.resumed += start_k
    compute = device.default_stream
    copier = device.create_stream("fw-copy") if overlap else compute

    with device.memory.cleanup_on_error():
        _run_fw_schedule(
            device, compute, copier, host, layout, nd, bmax, spec, overlap, engine,
            start_k=start_k, ckpt=ckpt, block_size=block_size,
        )

    elapsed = device.synchronize()
    host.flush()
    return APSPResult(
        algorithm="floyd-warshall",
        store=host,
        simulated_seconds=elapsed,
        stats={
            "block_size": block_size,
            "num_blocks": nd,
            "overlap": overlap,
            "kernel_backend": engine.describe(),
            **transfer_stats(device),
        },
        faults=device.fault_report,
    )


def _run_fw_schedule(device, compute, copier, host, layout, nd, bmax, spec, overlap,
                     engine, *, start_k=0, ckpt=None, block_size=0):
    """The three-stage tile schedule of Algorithm 1 (see module docstring).

    ``start_k`` skips outer iterations a checkpoint already covers; each
    iteration's state is self-contained (events and buffer rotation reset
    per ``k``), so resuming at any ``k`` replays the identical schedule
    suffix. ``ckpt`` saves a ``progress`` stage after every iteration.
    """
    pinned = True  # staging buffers are pinned, as in the paper
    for k in range(start_k, nd):
        bk = layout.size(k)
        # ---- stage 1: diagonal block closure --------------------------
        diag = device.memory.alloc((bk, bk), DIST_DTYPE, name=f"diag{k}")
        compute.copy_h2d(diag, host.block(layout, k, k), pinned=pinned)
        engine.fw_inplace(diag.data)
        compute.launch("fw_diag", fw_tile_cost(spec, bk), reads=(diag,), writes=(diag,))
        compute.copy_d2h(host.block(layout, k, k), diag, pinned=pinned)

        # ---- stage 2: row and column panels ---------------------------
        with device.memory.alloc((bk, bmax), DIST_DTYPE, name="row-panel") as panel:
            for j in range(nd):
                if j == k:
                    continue
                bj = layout.size(j)
                view = panel.data[:bk, :bj]
                compute.copy_h2d(view, host.block(layout, k, j), pinned=pinned)
                minplus_update(view, diag.data, view, engine=engine)
                compute.launch(
                    "mp_row", minplus_cost(spec, bk, bk, bj),
                    reads=(diag, view), writes=(view,),
                )
                compute.copy_d2h(host.block(layout, k, j), view, pinned=pinned)
        with device.memory.alloc((bmax, bk), DIST_DTYPE, name="col-panel") as panel:
            for i in range(nd):
                if i == k:
                    continue
                bi = layout.size(i)
                view = panel.data[:bi, :bk]
                compute.copy_h2d(view, host.block(layout, i, k), pinned=pinned)
                minplus_update(view, view, diag.data, engine=engine)
                compute.launch(
                    "mp_col", minplus_cost(spec, bi, bk, bk),
                    reads=(diag, view), writes=(view,),
                )
                compute.copy_d2h(host.block(layout, i, k), view, pinned=pinned)
        diag.free()

        # ---- stage 3: rank-update of remaining blocks -----------------
        nbuf = 2 if overlap else 1
        col = device.memory.alloc((bmax, bk), DIST_DTYPE, name="col")
        rows = [
            device.memory.alloc((bk, bmax), DIST_DTYPE, name=f"row{p}") for p in range(nbuf)
        ]
        works = [
            device.memory.alloc((bmax, bmax), DIST_DTYPE, name=f"work{p}") for p in range(nbuf)
        ]
        down_events: list[Event | None] = [None] * nbuf
        # Row block A(k, j) is read-only during stage 3 and the buffer
        # rotation revisits the same j with a fixed period, so when buffer p
        # still holds block j its re-upload would be pure wasted bus bytes
        # (the static plan verifier flags exactly this as redundant).
        loaded: list[int | None] = [None] * nbuf
        fan_out = engine.fanout > 1 and nbuf > 1
        t = 0
        js = [j for j in range(nd) if j != k]
        # a "down" event is only worth recording if a later pair will
        # rotate back into buffer p and wait on it — a trailing record
        # would be a dead event (the HB checker proves none exist)
        pairs_total = (nd - 1) * len(js)
        for i in range(nd):
            if i == k:
                continue
            bi = layout.size(i)
            cview = col.data[:bi, :bk]
            if overlap:
                copier.copy_h2d_async(cview, host.block(layout, i, k), pinned=pinned)
                compute.wait(copier.record(Event("col-up")))
            else:
                compute.copy_h2d(cview, host.block(layout, i, k), pinned=pinned)
            if not fan_out:
                for j in js:
                    p = t % nbuf
                    q = t
                    t += 1
                    bj = layout.size(j)
                    if down_events[p] is not None:
                        # buffer p is reused: its previous download must finish
                        copier.wait(down_events[p])
                    rview = rows[p].data[:bk, :bj]
                    wview = works[p].data[:bi, :bj]
                    hwork = host.block(layout, i, j)
                    if overlap:
                        if loaded[p] != j:
                            copier.copy_h2d_async(rview, host.block(layout, k, j), pinned=pinned)
                        copier.copy_h2d_async(wview, hwork, pinned=pinned)
                        compute.wait(copier.record(Event("up")))
                    else:
                        if loaded[p] != j:
                            compute.copy_h2d(rview, host.block(layout, k, j), pinned=pinned)
                        compute.copy_h2d(wview, hwork, pinned=pinned)
                    loaded[p] = j
                    minplus_update(wview, cview, rview, engine=engine)
                    compute.launch(
                        "mp_rank", minplus_cost(spec, bi, bk, bj),
                        reads=(cview, rview), writes=(wview,),
                    )
                    if overlap:
                        copier.wait(compute.record(Event("comp")))
                        copier.copy_d2h_async(hwork, wview, pinned=pinned)
                        if q + nbuf < pairs_total:
                            down_events[p] = copier.record(Event("down"))
                    else:
                        compute.copy_d2h(hwork, wview, pinned=pinned)
                continue
            # Threaded engine: process the double-buffered blocks in waves
            # of nbuf. Each wave uploads into both buffer pairs, fans the
            # independent rank-updates (disjoint outputs, shared read-only
            # column panel) across the worker pool, then drains downloads.
            for w0 in range(0, len(js), nbuf):
                wave = []
                for j in js[w0 : w0 + nbuf]:
                    p = t % nbuf
                    q = t
                    t += 1
                    bj = layout.size(j)
                    if down_events[p] is not None:
                        copier.wait(down_events[p])
                    rview = rows[p].data[:bk, :bj]
                    wview = works[p].data[:bi, :bj]
                    hwork = host.block(layout, i, j)
                    if loaded[p] != j:
                        copier.copy_h2d_async(rview, host.block(layout, k, j), pinned=pinned)
                    copier.copy_h2d_async(wview, hwork, pinned=pinned)
                    compute.wait(copier.record(Event("up")))
                    loaded[p] = j
                    wave.append((p, q, bj, rview, wview, hwork))
                engine.map_updates([(w, cview, r) for (_, _, _, r, w, _) in wave])
                for p, q, bj, rview, wview, hwork in wave:
                    compute.launch(
                        "mp_rank", minplus_cost(spec, bi, bk, bj),
                        reads=(cview, rview), writes=(wview,),
                    )
                    copier.wait(compute.record(Event("comp")))
                    copier.copy_d2h_async(hwork, wview, pinned=pinned)
                    if q + nbuf < pairs_total:
                        down_events[p] = copier.record(Event("down"))
        for arr in [col, *rows, *works]:
            arr.free()
        if ckpt is not None:
            # host.data already holds every block of iteration k (the
            # simulated copies move data at enqueue time), so the stage is
            # consistent without forcing a device sync — checkpointing a
            # fault-free run leaves its timeline untouched.
            ckpt.save(
                "progress", k_done=k + 1, block_size=block_size,
                dist=np.asarray(host.data),
            )
            device.fault_report.checkpoints_written += 1


def emit_fw_ir(n: int, spec: DeviceSpec, *, block_size: int | None = None,
               overlap: bool = True, start_k: int = 0):
    """Compile the blocked-FW schedule to a symbolic
    :class:`~repro.verifyplan.ir.PlanIR` without executing anything.

    Mirrors :func:`_run_fw_schedule` op for op (allocations, transfers
    with their host-block keys, kernel def/use sets, the stage-3 row
    reuse, and — with ``overlap=True`` — the full double-buffered
    stream/event structure: async stage-3 copies on ``fw-copy`` ordered
    by ``col-up``/``up``/``comp``/``down`` record/wait edges exactly as
    the driver enqueues them). The verifyplan tests cross-validate it
    against the dynamic trace byte for byte and second for second. The
    threaded engine's wave grouping reorders ops within a wave but moves
    identical bytes, so one emission serves both engines for the byte
    analyses.

    ``start_k > 0`` emits the schedule *suffix* a checkpoint-resumed run
    replays — used to prove recovery paths are race- and hazard-free with
    the same machinery as full runs (resumed suffixes move fewer bytes
    than the paper bounds assume, so audit them with ``analyze_hb`` /
    ``audit_ir`` rather than the full-run ``verify_plan``).
    """
    from repro.verifyplan.ir import IREmitter, Rect

    if block_size is None:
        block_size = plan_fw_block_size(n, spec, overlap=overlap)
    layout = BlockLayout(n, block_size)
    nd = layout.num_blocks
    bmax = layout.size(0)
    em = IREmitter("floyd-warshall", spec.name, spec.memory_bytes)
    for k in range(start_k, nd):
        bk = layout.size(k)
        # stage 1: diagonal block closure
        diag = em.alloc(f"diag{k}", (bk, bk))
        em.h2d(diag, key=("A", k, k))
        em.kernel("fw_diag", reads=(diag,), writes=(diag,))
        em.d2h(diag, key=("A", k, k))
        # stage 2: row and column panels against the closed diagonal
        panel = em.alloc("row-panel", (bk, bmax))
        for j in range(nd):
            if j == k:
                continue
            r = Rect(0, bk, 0, layout.size(j))
            em.h2d(panel, r, key=("A", k, j))
            em.kernel("mp_row", reads=(diag, (panel, r)), writes=((panel, r),))
            em.d2h(panel, r, key=("A", k, j))
        em.free(panel)
        panel = em.alloc("col-panel", (bmax, bk))
        for i in range(nd):
            if i == k:
                continue
            r = Rect(0, layout.size(i), 0, bk)
            em.h2d(panel, r, key=("A", i, k))
            em.kernel("mp_col", reads=(diag, (panel, r)), writes=((panel, r),))
            em.d2h(panel, r, key=("A", i, k))
        em.free(panel)
        em.free(diag)
        # stage 3: double-buffered rank updates
        nbuf = 2 if overlap else 1
        copier = "fw-copy" if overlap else "default"
        col = em.alloc("col", (bmax, bk))
        rows = [em.alloc(f"row{p}", (bk, bmax)) for p in range(nbuf)]
        works = [em.alloc(f"work{p}", (bmax, bmax)) for p in range(nbuf)]
        down_events: list = [None] * nbuf
        loaded: list[int | None] = [None] * nbuf
        t = 0
        js = [j for j in range(nd) if j != k]
        pairs_total = (nd - 1) * len(js)
        for i in range(nd):
            if i == k:
                continue
            bi = layout.size(i)
            cr = Rect(0, bi, 0, bk)
            if overlap:
                em.h2d(col, cr, key=("A", i, k), stream=copier, sync=False)
                em.wait(em.record("col-up", stream=copier))
            else:
                em.h2d(col, cr, key=("A", i, k))
            for j in js:
                p = t % nbuf
                q = t
                t += 1
                bj = layout.size(j)
                rr = Rect(0, bk, 0, bj)
                wr = Rect(0, bi, 0, bj)
                if overlap:
                    if down_events[p] is not None:
                        # buffer p is reused: its previous download must finish
                        em.wait(down_events[p], stream=copier)
                    if loaded[p] != j:
                        em.h2d(rows[p], rr, key=("A", k, j), stream=copier, sync=False)
                    em.h2d(works[p], wr, key=("A", i, j), stream=copier, sync=False)
                    em.wait(em.record("up", stream=copier))
                else:
                    if loaded[p] != j:
                        em.h2d(rows[p], rr, key=("A", k, j))
                    em.h2d(works[p], wr, key=("A", i, j))
                loaded[p] = j
                em.kernel(
                    "mp_rank",
                    reads=((col, cr), (rows[p], rr)),
                    writes=((works[p], wr),),
                )
                if overlap:
                    em.wait(em.record("comp"), stream=copier)
                    em.d2h(works[p], wr, key=("A", i, j), stream=copier, sync=False)
                    if q + nbuf < pairs_total:
                        down_events[p] = em.record("down", stream=copier)
                else:
                    em.d2h(works[p], wr, key=("A", i, j))
        for buf in [col, *rows, *works]:
            em.free(buf)
    return em.finish()
