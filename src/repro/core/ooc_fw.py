"""Out-of-core blocked Floyd–Warshall (paper Algorithm 1).

The distance matrix is partitioned into ``n_d × n_d`` blocks sized so the
working set fits in device memory. Per outer iteration ``k``:

* **stage 1** — upload the diagonal block, close it with FW on the device,
  download;
* **stage 2** — stream row blocks ``A(k,j)`` and column blocks ``A(i,k)``
  through the device, updating each with one min-plus against the closed
  diagonal block;
* **stage 3** — for every remaining block ``A(i,j)``, upload
  ``A(i,k)``/``A(k,j)``/``A(i,j)``, rank-update, download.

Every block crosses the bus each iteration, giving the paper's
``O(n_d · n²)`` data-movement complexity (Table I). With ``overlap=True``
(the paper's "asynchronous data transfers" optimisation) stage 3 runs
double-buffered: uploads of block ``t+1`` and the download of block ``t−1``
overlap the min-plus of block ``t`` on a second stream. The host side of
every transfer is a pinned staging buffer, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.blocked_fw import floyd_warshall_inplace
from repro.core.minplus import DIST_DTYPE, minplus_update
from repro.core.result import APSPResult
from repro.core.tiling import BlockLayout, HostStore
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.kernels import fw_tile_cost, minplus_cost
from repro.gpu.stream import Event

__all__ = ["ooc_floyd_warshall", "plan_fw_block_size"]

_ELEM = np.dtype(DIST_DTYPE).itemsize


def plan_fw_block_size(n: int, spec: DeviceSpec, *, overlap: bool = True) -> int:
    """Largest block size whose working set fits on the device.

    Stage 3 keeps one column block plus (with overlap) two double-buffered
    pairs of row/work blocks resident — five tiles; three without overlap.
    """
    tiles = 5 if overlap else 3
    b = int(np.sqrt(spec.memory_bytes / (tiles * _ELEM)))
    if b < 1:
        raise ValueError(
            f"device memory {spec.memory_bytes}B cannot hold {tiles} tiles of any size"
        )
    return max(1, min(b, n))


def transfer_stats(device: Device) -> dict:
    """Summarise bus traffic from the device trace (shared by all drivers)."""
    tl = device.timeline
    h2d = tl.engine_ops("h2d")
    d2h = tl.engine_ops("d2h")
    return {
        "bytes_h2d": sum(op.nbytes for op in h2d),
        "bytes_d2h": sum(op.nbytes for op in d2h),
        "num_transfers": len(h2d) + len(d2h),
        "transfer_seconds": tl.busy_time("h2d") + tl.busy_time("d2h"),
        "compute_seconds": tl.busy_time("compute"),
    }


def ooc_floyd_warshall(
    graph,
    device: Device,
    *,
    block_size: int | None = None,
    overlap: bool = True,
    store_mode: str = "ram",
    store_dir=None,
) -> APSPResult:
    """Solve APSP with the out-of-core blocked FW algorithm.

    ``simulated_seconds`` in the result is the device-model makespan of the
    full schedule (kernels + transfers, overlapped where requested).
    """
    n = graph.num_vertices
    spec = device.spec
    if block_size is None:
        block_size = plan_fw_block_size(n, spec, overlap=overlap)
    host = HostStore.from_graph(graph, mode=store_mode, directory=store_dir)
    layout = BlockLayout(n, block_size)
    nd = layout.num_blocks
    bmax = layout.size(0)

    device.reset_clock()
    compute = device.default_stream
    copier = device.create_stream("fw-copy") if overlap else compute

    with device.memory.cleanup_on_error():
        _run_fw_schedule(
            device, compute, copier, host, layout, nd, bmax, spec, overlap
        )

    elapsed = device.synchronize()
    host.flush()
    return APSPResult(
        algorithm="floyd-warshall",
        store=host,
        simulated_seconds=elapsed,
        stats={
            "block_size": block_size,
            "num_blocks": nd,
            "overlap": overlap,
            **transfer_stats(device),
        },
    )


def _run_fw_schedule(device, compute, copier, host, layout, nd, bmax, spec, overlap):
    """The three-stage tile schedule of Algorithm 1 (see module docstring)."""
    pinned = True  # staging buffers are pinned, as in the paper
    for k in range(nd):
        bk = layout.size(k)
        # ---- stage 1: diagonal block closure --------------------------
        diag = device.memory.alloc((bk, bk), DIST_DTYPE, name=f"diag{k}")
        compute.copy_h2d(diag, host.block(layout, k, k), pinned=pinned)
        floyd_warshall_inplace(diag.data)
        compute.launch("fw_diag", fw_tile_cost(spec, bk))
        compute.copy_d2h(host.block(layout, k, k), diag, pinned=pinned)

        # ---- stage 2: row and column panels ---------------------------
        with device.memory.alloc((bk, bmax), DIST_DTYPE, name="row-panel") as panel:
            for j in range(nd):
                if j == k:
                    continue
                bj = layout.size(j)
                view = panel.data[:bk, :bj]
                compute.copy_h2d(view, host.block(layout, k, j), pinned=pinned)
                minplus_update(view, diag.data, view)
                compute.launch("mp_row", minplus_cost(spec, bk, bk, bj))
                compute.copy_d2h(host.block(layout, k, j), view, pinned=pinned)
        with device.memory.alloc((bmax, bk), DIST_DTYPE, name="col-panel") as panel:
            for i in range(nd):
                if i == k:
                    continue
                bi = layout.size(i)
                view = panel.data[:bi, :bk]
                compute.copy_h2d(view, host.block(layout, i, k), pinned=pinned)
                minplus_update(view, view, diag.data)
                compute.launch("mp_col", minplus_cost(spec, bi, bk, bk))
                compute.copy_d2h(host.block(layout, i, k), view, pinned=pinned)
        diag.free()

        # ---- stage 3: rank-update of remaining blocks -----------------
        nbuf = 2 if overlap else 1
        col = device.memory.alloc((bmax, bk), DIST_DTYPE, name="col")
        rows = [
            device.memory.alloc((bk, bmax), DIST_DTYPE, name=f"row{p}") for p in range(nbuf)
        ]
        works = [
            device.memory.alloc((bmax, bmax), DIST_DTYPE, name=f"work{p}") for p in range(nbuf)
        ]
        down_events: list[Event | None] = [None] * nbuf
        t = 0
        for i in range(nd):
            if i == k:
                continue
            bi = layout.size(i)
            cview = col.data[:bi, :bk]
            if overlap:
                copier.copy_h2d_async(cview, host.block(layout, i, k), pinned=pinned)
                compute.wait(copier.record(Event("col-up")))
            else:
                compute.copy_h2d(cview, host.block(layout, i, k), pinned=pinned)
            for j in range(nd):
                if j == k:
                    continue
                p = t % nbuf
                t += 1
                bj = layout.size(j)
                if down_events[p] is not None:
                    # buffer p is reused: its previous download must finish
                    copier.wait(down_events[p])
                rview = rows[p].data[:bk, :bj]
                wview = works[p].data[:bi, :bj]
                hwork = host.block(layout, i, j)
                if overlap:
                    copier.copy_h2d_async(rview, host.block(layout, k, j), pinned=pinned)
                    copier.copy_h2d_async(wview, hwork, pinned=pinned)
                    compute.wait(copier.record(Event("up")))
                else:
                    compute.copy_h2d(rview, host.block(layout, k, j), pinned=pinned)
                    compute.copy_h2d(wview, hwork, pinned=pinned)
                minplus_update(wview, cview, rview)
                compute.launch("mp_rank", minplus_cost(spec, bi, bk, bj))
                if overlap:
                    copier.wait(compute.record(Event("comp")))
                    copier.copy_d2h_async(hwork, wview, pinned=pinned)
                    down_events[p] = copier.record(Event("down"))
                else:
                    compute.copy_d2h(hwork, wview, pinned=pinned)
        for arr in [col, *rows, *works]:
            arr.free()
