"""The kernel engine: backend selection, coercion, and calibration.

Every numeric hot path in the repository — blocked FW stages 1–3, the
boundary algorithm's ``dist4`` chain, in-core FW, min-plus powering —
funnels through a :class:`KernelEngine`, which owns one
:class:`~repro.core.backends.base.KernelBackend` and guards its operand
contract:

* operands are coerced to C-layout :data:`~repro.core.minplus.DIST_DTYPE`
  (a Fortran-ordered or float64 tile can no longer silently take a slow
  broadcast path or change the result dtype);
* non-``DIST_DTYPE`` accumulators keep the generic numpy reference path,
  preserving exact legacy semantics for float64 callers;
* the output array is updated strictly in place, whatever its layout.

Selection order:

1. an explicit ``engine=`` argument on any driver / ``KernelEngine(name)``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable
   (``reference | tiled | chunked | jit | threaded | auto``);
3. ``auto`` — first, the **autotuned winner** persisted for this machine's
   fingerprint in ``BENCH_kernels.json`` (``python -m repro tune-kernels``;
   no re-sweeping at startup) when its flavor still materialises;
4. otherwise micro-calibrate at first use: time every registered backend
   on one small product and keep the fastest — except ``tiled``, which is
   demoted (0.65–0.95× reference at 1024³ in every committed sweep) and
   can never win while a measured-faster backend exists.

Run ``python -m repro bench-kernels`` for the full wall-clock sweep and
``python -m repro tune-kernels`` for the machine-keyed config search (see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.backends import (
    KernelBackend,
    ThreadedBackend,
    available_backends,
    backend_names,
    create_backend,
)
from repro.core.backends.base import numpy_fw_inplace, rank1_update
from repro.core.backends.threaded import shared_executor
from repro.core.minplus import DIST_DTYPE

__all__ = [
    "CalibrationResult",
    "DEMOTED_BACKENDS",
    "KernelEngine",
    "calibrate",
    "default_engine",
    "reset_default_engine",
    "set_default_backend",
]

#: environment variable naming the backend (or ``auto``)
ENV_BACKEND = "REPRO_KERNEL_BACKEND"

#: problem shape used for first-use micro-calibration (kept small: the
#: whole sweep costs tens of milliseconds, amortised over a full run)
CALIBRATION_SHAPE = (192, 192, 192)


#: backends excluded from auto selection while a measured-faster one
#: exists (committed sweeps: 0.65–0.95× reference for every tile at 1024³)
DEMOTED_BACKENDS = ("tiled",)


@dataclass
class CalibrationResult:
    """Timings of one micro-calibration sweep."""

    shape: tuple[int, int, int]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def best(self) -> str:
        """Name of the fastest backend in the sweep, after demotions.

        Demoted backends (:data:`DEMOTED_BACKENDS`) are only eligible
        when nothing else was measured — ``tiled`` never beats a
        measured-faster backend regardless of micro-benchmark noise.
        """
        pool = [r for r in self.rows if r["backend"] not in DEMOTED_BACKENDS]
        pool = pool or self.rows
        return min(pool, key=lambda r: r["seconds"])["backend"]

    def add(self, backend: str, flavor: str, seconds: float) -> None:
        """Record one backend's timing."""
        bi, bk, bj = self.shape
        self.rows.append(
            {
                "backend": backend,
                "flavor": flavor,
                "seconds": seconds,
                "gops": 2 * bi * bk * bj / seconds / 1e9 if seconds > 0 else 0.0,
            }
        )


def calibrate(
    shape: tuple[int, int, int] = CALIBRATION_SHAPE,
    backends: tuple[str, ...] | None = None,
    seed: int = 0,
) -> CalibrationResult:
    """Time every (requested) backend on one random product.

    Each backend gets a tiny warm-up first so one-time costs (numba/C
    compilation, thread-pool spin-up) don't pollute the measurement.
    """
    bi, bk, bj = shape
    rng = np.random.default_rng(seed)
    a = (rng.random((bi, bk), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
    b = (rng.random((bk, bj), dtype=DIST_DTYPE) * 100).astype(DIST_DTYPE)
    wa, wb = a[:32, :32].copy(), b[:32, :32].copy()
    result = CalibrationResult(shape)
    for name in backends or available_backends():
        backend = create_backend(name)
        backend.update(np.full((32, 32), np.inf, dtype=DIST_DTYPE), wa, wb)
        c = np.full((bi, bj), np.inf, dtype=DIST_DTYPE)
        t0 = perf_counter()
        backend.update(c, a, b)
        result.add(name, backend.flavor, perf_counter() - t0)
    demoted = [r["backend"] for r in result.rows if r["backend"] in DEMOTED_BACKENDS]
    if demoted and len(result.rows) > len(demoted):
        result.notes.append(
            f"demoted from selection: {', '.join(demoted)} — "
            "0.65–0.95× reference at 1024³ in every committed sweep; "
            "the fastest non-demoted backend is chosen"
        )
    return result


class KernelEngine:
    """One configured kernel backend plus the operand-contract guard rails."""

    def __init__(self, backend: str | KernelBackend | None = None, **options) -> None:
        self.calibration: CalibrationResult | None = None
        self.tuned: dict | None = None
        if backend is None:
            backend = os.environ.get(ENV_BACKEND, "auto")
        if isinstance(backend, KernelBackend):
            self.backend = backend
        elif backend == "auto":
            tuned = self._tuned_backend(options)
            if tuned is not None:
                self.backend = tuned
            else:
                self.calibration = calibrate()
                self.backend = create_backend(self.calibration.best, **options)
        else:
            if backend not in backend_names():
                raise ValueError(
                    f"unknown kernel backend {backend!r}; "
                    f"choose from {backend_names() + ('auto',)}"
                )
            self.backend = create_backend(backend, **options)

    def _tuned_backend(self, options: dict) -> KernelBackend | None:
        """Materialise the autotuned winner persisted for this machine.

        Lazy-imports the bench layer (it depends on this module), and
        validates that the winner's recorded flavor still comes up — a
        stale winner (compiler gone, numba removed) is discarded rather
        than silently running the fallback flavor, sending ``auto`` back
        to live micro-calibration. Caller-supplied ``options`` override
        the persisted ones.
        """
        try:
            from repro.bench.kernels import load_tuned_winner

            winner = load_tuned_winner()
            if winner is None:
                return None
            merged = {**(winner.get("options") or {}), **options}
            backend = create_backend(winner["backend"], **merged)
            expect = winner.get("flavor")
            if expect and getattr(backend, "flavor", backend.name) != expect:
                return None
            self.tuned = winner
            return backend
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Registry name of the active backend."""
        return self.backend.name

    @property
    def flavor(self) -> str:
        """Concrete implementation in use (e.g. ``cc`` inside ``jit``)."""
        return self.backend.flavor

    @property
    def fanout(self) -> int:
        """Worker count available for independent block fan-out."""
        return self.backend.workers if isinstance(self.backend, ThreadedBackend) else 1

    def describe(self) -> str:
        """Human-readable ``name (flavor)`` string for CLI output."""
        return self.name if self.flavor == self.name else f"{self.name} ({self.flavor})"

    # ------------------------------------------------------------------
    # Operand coercion
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(arr: np.ndarray, dtype) -> np.ndarray:
        """Return ``arr`` as ``dtype`` with unit stride on the last axis.

        Views that already satisfy the contract (any row stride, contiguous
        rows) pass through untouched; Fortran-ordered or wrong-dtype tiles
        are copied once — cheap next to the O(n³) product they feed.
        """
        if arr.dtype != dtype or arr.strides[-1] != arr.itemsize:
            return np.ascontiguousarray(arr, dtype=dtype)
        return arr

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def update(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place ``C = min(C, A ⊗ B)``; returns ``C``."""
        if c.shape != (a.shape[0], b.shape[1]) or a.shape[1] != b.shape[0]:
            raise ValueError(
                f"incompatible shapes C{c.shape} = A{a.shape} ⊗ B{b.shape}"
            )
        if c.size == 0 or a.shape[1] == 0:
            return c
        if c.dtype != DIST_DTYPE:
            # generic-dtype path: keep legacy numpy semantics exactly,
            # but still pin A/B to C's dtype so nothing upcasts mid-flight
            return rank1_update(c, self._coerce(a, c.dtype), self._coerce(b, c.dtype))
        a = self._coerce(a, DIST_DTYPE)
        b = self._coerce(b, DIST_DTYPE)
        if c.strides[-1] != c.itemsize:
            # e.g. a transposed view: update a packed copy, write back in place
            packed = np.ascontiguousarray(c)
            self.backend.update(packed, a, b)
            c[...] = packed
            return c
        self.backend.update(c, a, b)
        return c

    def fw_inplace(self, dist: np.ndarray) -> np.ndarray:
        """Floyd–Warshall closure of a square matrix, in place."""
        n = dist.shape[0]
        if dist.shape != (n, n):
            raise ValueError("dist must be square")
        if n == 0:
            return dist
        if dist.dtype != DIST_DTYPE or dist.strides[-1] != dist.itemsize:
            return numpy_fw_inplace(dist)
        return self.backend.fw_inplace(dist)

    def update_i32(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact int32 semiring update (``INT32_INF`` sentinel, saturating).

        Opt-in reduced-precision entry point: callers hold int32 distance
        matrices explicitly; the float32 paths are untouched.
        """
        if c.shape != (a.shape[0], b.shape[1]) or a.shape[1] != b.shape[0]:
            raise ValueError(
                f"incompatible shapes C{c.shape} = A{a.shape} ⊗ B{b.shape}"
            )
        if c.size == 0 or a.shape[1] == 0:
            return c
        a = self._coerce(a, np.int32)
        b = self._coerce(b, np.int32)
        if c.dtype != np.int32 or c.strides[-1] != c.itemsize:
            packed = np.ascontiguousarray(c, dtype=np.int32)
            self.backend.update_i32(packed, a, b)
            c[...] = packed
            return c
        self.backend.update_i32(c, a, b)
        return c

    def update_f16(self, c: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """float16 semiring update through the backend's float32 kernel,
        rounded once on the way out (tolerance: one float16 rounding step
        of the float32 result — see ``docs/PERFORMANCE.md``)."""
        if c.shape != (a.shape[0], b.shape[1]) or a.shape[1] != b.shape[0]:
            raise ValueError(
                f"incompatible shapes C{c.shape} = A{a.shape} ⊗ B{b.shape}"
            )
        if c.size == 0 or a.shape[1] == 0:
            return c
        return self.backend.update_f16(c, a, b)

    def minplus(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Fresh min-plus product ``A ⊗ B`` (no accumulation)."""
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} ⊗ {b.shape}")
        out = np.full(
            (a.shape[0], b.shape[1]), np.inf, dtype=np.result_type(a, b)
        )
        return self.update(out, a, b)

    def map_updates(
        self, tasks: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> None:
        """Run independent ``(C, A, B)`` updates, in parallel when threaded.

        Callers guarantee the ``C`` arrays are disjoint and the ``A``/``B``
        operands read-only — exactly the stage-3 situation in blocked FW.
        With a non-threaded backend this is a plain serial loop.
        """
        if self.fanout <= 1 or len(tasks) < 2:
            for c, a, b in tasks:
                self.update(c, a, b)
            return
        inner = self.backend.inner  # block-level parallelism: no panel split
        serial = KernelEngine(inner)
        ex = shared_executor(self.fanout)
        futures = [ex.submit(serial.update, c, a, b) for c, a, b in tasks]
        for fut in futures:
            fut.result()


# ----------------------------------------------------------------------
# Process-wide default engine
# ----------------------------------------------------------------------
_DEFAULT: KernelEngine | None = None
_DEFAULT_KEY: str | None = None
_PINNED = "<pinned>"


def default_engine() -> KernelEngine:
    """The lazily created process-wide engine.

    Tracks ``REPRO_KERNEL_BACKEND`` (re-resolving if it changes between
    calls) unless :func:`set_default_backend` pinned an explicit choice.
    """
    global _DEFAULT, _DEFAULT_KEY
    key = os.environ.get(ENV_BACKEND, "auto")
    if _DEFAULT is None or (_DEFAULT_KEY != _PINNED and key != _DEFAULT_KEY):
        _DEFAULT = KernelEngine(key)
        _DEFAULT_KEY = key
    return _DEFAULT


def set_default_backend(backend: str | KernelBackend | KernelEngine) -> KernelEngine:
    """Pin the process-wide default engine to ``backend``; returns it."""
    global _DEFAULT, _DEFAULT_KEY
    _DEFAULT = backend if isinstance(backend, KernelEngine) else KernelEngine(backend)
    _DEFAULT_KEY = _PINNED
    return _DEFAULT


def reset_default_engine() -> None:
    """Drop the cached default engine (next use re-resolves/re-calibrates)."""
    global _DEFAULT, _DEFAULT_KEY
    _DEFAULT = None
    _DEFAULT_KEY = None
