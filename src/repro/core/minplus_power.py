"""APSP by min-plus repeated squaring (extension baseline).

The min-plus matrix-power identity: with ``A`` the weight matrix
(0 diagonal), ``A^k`` under (min, +) holds shortest distances over paths of
at most ``k`` edges, so ``⌈log₂ n⌉`` squarings compute APSP in
``O(n³ log n)`` — a log-factor more work than Floyd–Warshall but built
entirely from the product kernel the paper's Table I calls maximally
regular. Kept as an educational baseline: the ablation test shows FW's
work advantage directly.
"""

from __future__ import annotations

import numpy as np

from repro.core.minplus import DIST_DTYPE, minplus
from repro.core.result import APSPResult
from repro.core.tiling import HostStore
from repro.gpu.device import Device
from repro.gpu.kernels import minplus_cost

__all__ = ["minplus_power_apsp", "squarings_needed"]


def squarings_needed(n: int) -> int:
    """Squarings until paths of length ``n−1`` are covered: ``⌈log₂(n−1)⌉``."""
    if n <= 2:
        return 0 if n < 2 else 1
    return int(np.ceil(np.log2(n - 1)))


def minplus_power_apsp(
    graph,
    device: Device | None = None,
    *,
    store_mode: str = "ram",
    store_dir=None,
    engine=None,
) -> APSPResult:
    """Solve APSP by repeated min-plus squaring (in-core on the device).

    Converges early when a squaring changes nothing (graphs with small
    weighted diameter in hops). ``engine`` overrides the process-wide
    kernel engine for the product kernel.
    """
    n = graph.num_vertices
    host = HostStore.from_graph(graph, mode=store_mode, directory=store_dir)
    if device is None:
        dist = np.asarray(host.data)
        for _ in range(squarings_needed(n)):
            nxt = minplus(dist, dist, engine=engine)
            if np.array_equal(nxt, dist):
                break
            dist = nxt
        host.data[...] = dist
        return APSPResult("minplus-power", host, 0.0, stats={"device": None})

    spec = device.spec
    device.reset_clock()
    stream = device.default_stream
    rounds = 0
    with device.memory.cleanup_on_error():
        with device.memory.alloc((n, n), DIST_DTYPE, name="dist") as dist:
            stream.copy_h2d(dist, host.data, pinned=True)
            for _ in range(squarings_needed(n)):
                nxt = minplus(dist.data, dist.data, engine=engine)
                stream.launch(
                    "mp_square",
                    minplus_cost(spec, n, n, n),
                    reads=(dist,),
                    writes=(dist,),
                )
                rounds += 1
                if np.array_equal(nxt, dist.data):
                    break
                dist.data[...] = nxt
            stream.copy_d2h(host.data, dist, pinned=True)
    elapsed = device.synchronize()
    host.flush()
    return APSPResult(
        "minplus-power",
        host,
        elapsed,
        stats={"squarings": rounds, "max_squarings": squarings_needed(n)},
    )
