"""Out-of-core Johnson's algorithm (paper Algorithm 2).

APSP as ``n`` SSSP instances, processed in batches of ``bat`` concurrent
Near-Far instances per MSSP kernel — one instance per thread block. The
batch size comes from the device memory budget (Section III-B):

.. math:: bat = (L - S) / (c · m)

with ``L`` the device memory, ``S`` the CSR graph size, and ``c·m`` the
per-instance worklist storage; we additionally charge the per-instance
output row, which must also reside on the device. When ``bat`` falls below
the device's active-block capacity the kernel under-utilises the GPU; the
**dynamic parallelism** option offloads the edge lists of high-out-degree
vertices to child kernels, restoring full throughput for those relaxations
at a per-launch overhead (modelled in
:func:`repro.gpu.kernels.mssp_batch_cost` from the statistics the real
Near-Far execution collects).

Batch results stream back to the host store; with ``overlap=True`` the
download of batch ``i`` overlaps the MSSP kernel of batch ``i+1`` via
double-buffered output rows on a second stream.
"""

from __future__ import annotations

import numpy as np

from repro.core.minplus import DIST_DTYPE
from repro.core.result import APSPResult
from repro.core.tiling import HostStore
from repro.faults.checkpoint import CheckpointError, open_checkpoint
from repro.gpu.device import Device, DeviceSpec
from repro.gpu.errors import OutOfMemoryError
from repro.gpu.kernels import MsspWorkload, mssp_batch_cost
from repro.gpu.stream import Event, Stream
from repro.sssp.near_far import DEFAULT_HEAVY_DEGREE, near_far_batch

__all__ = [
    "collect_mssp_workloads",
    "emit_johnson_ir",
    "graph_device_bytes",
    "ooc_johnson",
    "plan_batch_size",
    "run_mssp_batch",
]

_ELEM = np.dtype(DIST_DTYPE).itemsize

#: the paper's worklist constant ``c``: per-instance queue storage is
#: ``c · m`` distance-sized elements (near + far queues with slack)
DEFAULT_QUEUE_FACTOR = 4.0


def graph_device_bytes(graph, spec: "DeviceSpec | None" = None) -> int:
    """Device bytes of the CSR graph ``S``: int32 indptr/indices + float32
    weights (what the CUDA kernels would hold). On a scaled device, O(m)
    structures are charged at ``spec.sparse_charge_factor`` of their real
    bytes (see :class:`repro.gpu.device.DeviceSpec`)."""
    n, m = graph.num_vertices, graph.num_edges
    raw = 4 * (n + 1) + 4 * m + 4 * m
    if spec is None:
        return raw
    return max(1, int(raw * spec.sparse_charge_factor))


def plan_batch_size(
    graph,
    spec: DeviceSpec,
    *,
    queue_factor: float = DEFAULT_QUEUE_FACTOR,
    num_row_buffers: int = 2,
) -> int:
    """The paper's ``bat = (L − S)/(c·m)``, plus output-row accounting."""
    n, m = graph.num_vertices, graph.num_edges
    s = graph_device_bytes(graph, spec)
    free = spec.memory_bytes - s
    per_instance = (
        queue_factor * m * _ELEM + num_row_buffers * n * _ELEM
    ) * spec.sparse_charge_factor
    if free < per_instance:
        raise OutOfMemoryError(int(per_instance + s), max(0, free), spec.memory_bytes)
    return int(min(n, free // per_instance))


def run_mssp_batch(
    graph,
    device: Device,
    stream: Stream,
    sources: np.ndarray,
    out_rows: np.ndarray,
    *,
    bat: int,
    delta: float | None,
    dynamic_parallelism: bool,
    heavy_degree: int,
    graph_buffers=(),
) -> MsspWorkload:
    """Execute one MSSP kernel: real Near-Far numerics into ``out_rows``
    plus the modelled kernel time charged to ``stream``.

    ``bat`` is the planned batch size (the kernel's grid size); the last
    batch may carry fewer sources but still launches the same grid.
    ``graph_buffers`` names the resident CSR device arrays the kernel
    reads, for the schedule sanitizer.
    """
    dist, stats = near_far_batch(
        graph, sources, delta=delta, heavy_degree=heavy_degree
    )
    out_rows[...] = dist.astype(DIST_DTYPE, copy=False)
    workload = MsspWorkload(
        relaxations=stats.relaxations,
        heavy_relaxations=stats.heavy_relaxations if dynamic_parallelism else 0,
        iterations=stats.iterations,
        child_launches=stats.child_launches if dynamic_parallelism else 0,
    )
    cost = mssp_batch_cost(
        device.spec, workload, bat, dynamic_parallelism=dynamic_parallelism
    )
    stream.launch("mssp", cost, reads=tuple(graph_buffers), writes=(out_rows,))
    return workload


def ooc_johnson(
    graph,
    device: Device,
    *,
    batch_size: int | None = None,
    delta: float | None = None,
    dynamic_parallelism: bool = True,
    heavy_degree: int = DEFAULT_HEAVY_DEGREE,
    queue_factor: float = DEFAULT_QUEUE_FACTOR,
    overlap: bool = True,
    store_mode: str = "ram",
    store_dir=None,
    checkpoint=None,
) -> APSPResult:
    """Solve APSP with the out-of-core Johnson's algorithm.

    ``checkpoint`` (a directory path or
    :class:`~repro.faults.CheckpointStore`) saves progress after every
    MSSP batch and resumes from whatever the store already holds.
    """
    n = graph.num_vertices
    spec = device.spec
    nbuf = 2 if overlap else 1
    if batch_size is None:
        batch_size = plan_batch_size(
            graph, spec, queue_factor=queue_factor, num_row_buffers=nbuf
        )
    bat = max(1, min(batch_size, n))
    host = HostStore.empty(graph, mode=store_mode, directory=store_dir)

    device.reset_clock()
    ckpt = open_checkpoint(checkpoint, algorithm="johnson", graph=graph)
    start_b = 0
    if ckpt is not None:
        state = ckpt.load("progress")
        if state is not None:
            if int(state["batch_size"]) != bat:
                raise CheckpointError(
                    f"checkpoint used batch_size={int(state['batch_size'])}, "
                    f"this run plans {bat}",
                    path=ckpt.path_for("progress"),
                )
            host.data[...] = state["dist"]
            start_b = int(state["batches_done"])
            device.fault_report.resumed += start_b
    compute = device.default_stream
    copier = device.create_stream("johnson-copy") if overlap else compute

    with device.memory.cleanup_on_error():
        return _run_johnson(
            graph, device, compute, copier, host, bat, delta,
            dynamic_parallelism, heavy_degree, queue_factor, overlap,
            start_b=start_b, ckpt=ckpt,
        )


def _run_johnson(
    graph, device, compute, copier, host, bat, delta,
    dynamic_parallelism, heavy_degree, queue_factor, overlap,
    *, start_b=0, ckpt=None,
):
    """The batched MSSP pipeline of Algorithm 2 (see module docstring).

    ``start_b`` skips batches a checkpoint already covers; batches are
    independent SSSP groups, so the resumed suffix replays the identical
    schedule tail (elision indices stay absolute).
    """
    n = graph.num_vertices
    spec = device.spec
    nbuf = 2 if overlap else 1
    # Resident device state: the CSR graph, the per-instance worklists, and
    # the output-row buffers.
    charge = spec.sparse_charge_factor
    csr_indptr = device.memory.alloc(
        n + 1, np.int32, name="indptr", charged_bytes=int(4 * (n + 1) * charge) + 1
    )
    csr_indices = device.memory.alloc(
        max(1, graph.num_edges), np.int32, name="indices",
        charged_bytes=int(4 * graph.num_edges * charge) + 1,
    )
    csr_weights = device.memory.alloc(
        max(1, graph.num_edges), DIST_DTYPE, name="weights",
        charged_bytes=int(4 * graph.num_edges * charge) + 1,
    )
    compute.copy_h2d(csr_indptr, graph.indptr.astype(np.int32), pinned=True)
    if graph.num_edges:
        compute.copy_h2d(csr_indices, graph.indices.astype(np.int32), pinned=True)
        compute.copy_h2d(csr_weights, graph.weights.astype(DIST_DTYPE), pinned=True)
    queues = device.memory.alloc(
        max(1, int(bat * queue_factor * graph.num_edges * charge)),
        DIST_DTYPE,
        name="queues",
    )
    row_bufs = [
        device.memory.alloc(
            (bat, n), DIST_DTYPE, name=f"rows{p}",
            charged_bytes=int(bat * n * _ELEM * charge) + 1,
        )
        for p in range(nbuf)
    ]
    down_events: list[Event | None] = [None] * nbuf

    num_batches = (n + bat - 1) // bat
    batch_workloads: list[MsspWorkload] = []
    # empty graphs leave indices/weights unwritten — don't declare them read
    csr_arrays = (
        (csr_indptr, csr_indices, csr_weights) if graph.num_edges else (csr_indptr,)
    )
    for b in range(start_b, num_batches):
        lo, hi = b * bat, min((b + 1) * bat, n)
        sources = np.arange(lo, hi, dtype=np.int64)
        p = b % nbuf
        if down_events[p] is not None:
            compute.wait(down_events[p])  # rows buffer still draining
        rows_view = row_bufs[p].data[: sources.size, :]
        workload = run_mssp_batch(
            graph, device, compute, sources, rows_view,
            bat=bat, delta=delta,
            dynamic_parallelism=dynamic_parallelism, heavy_degree=heavy_degree,
            graph_buffers=csr_arrays,
        )
        batch_workloads.append(workload)
        if overlap:
            copier.wait(compute.record(Event("mssp-done")))
            copier.copy_d2h_async(host.rows(lo, hi), rows_view, pinned=True)
            if b + nbuf < num_batches:
                # Trailing drains have no future consumer; recording an
                # event nobody waits on would trip the dead-event check.
                down_events[p] = copier.record(Event("rows-down"))
        else:
            compute.copy_d2h(host.rows(lo, hi), rows_view, pinned=True)
        if ckpt is not None:
            # rows [0, hi) are already in host.data (simulated copies move
            # data at enqueue time), so the stage is consistent without a
            # device sync — checkpointing keeps the timeline untouched.
            ckpt.save(
                "progress", batches_done=b + 1, batch_size=bat,
                dist=np.asarray(host.data),
            )
            device.fault_report.checkpoints_written += 1

    elapsed = device.synchronize()
    host.flush()
    for arr in [csr_indptr, csr_indices, csr_weights, queues, *row_bufs]:
        arr.free()

    from repro.core.ooc_fw import transfer_stats

    return APSPResult(
        algorithm="johnson",
        store=host,
        simulated_seconds=elapsed,
        stats={
            "batch_size": bat,
            "num_batches": num_batches,
            "dynamic_parallelism": dynamic_parallelism,
            "relaxations": sum(w.relaxations for w in batch_workloads),
            "heavy_relaxations": sum(w.heavy_relaxations for w in batch_workloads),
            "overlap": overlap,
            **transfer_stats(device),
        },
        faults=device.fault_report,
    )

def collect_mssp_workloads(
    graph,
    *,
    batch_size: int,
    delta: float | None = None,
    dynamic_parallelism: bool = True,
    heavy_degree: int = DEFAULT_HEAVY_DEGREE,
    sample: int | None = None,
    seed: int = 0,
) -> list[MsspWorkload]:
    """Per-batch MSSP workload statistics for symbolic timing.

    Runs the same Near-Far execution :func:`run_mssp_batch` would (host
    numerics only, no device) for every batch, so the costs attached to
    the emitted ``mssp`` kernels equal the dynamic driver's exactly. With
    ``sample=K`` only ``K`` deterministically chosen batches are
    executed and the rest take the componentwise mean of the sampled
    workloads — the cheap mode the analytic selector uses.
    """
    n = graph.num_vertices
    bat = max(1, min(batch_size, n))
    num_batches = (n + bat - 1) // bat
    if sample is None or sample >= num_batches:
        picked = list(range(num_batches))
    else:
        rng = np.random.default_rng(seed)
        picked = sorted(
            rng.choice(num_batches, size=max(1, sample), replace=False).tolist()
        )
    sampled: dict[int, MsspWorkload] = {}
    for b in picked:
        lo, hi = b * bat, min((b + 1) * bat, n)
        sources = np.arange(lo, hi, dtype=np.int64)
        _dist, stats = near_far_batch(
            graph, sources, delta=delta, heavy_degree=heavy_degree
        )
        sampled[b] = MsspWorkload(
            relaxations=stats.relaxations,
            heavy_relaxations=stats.heavy_relaxations if dynamic_parallelism else 0,
            iterations=stats.iterations,
            child_launches=stats.child_launches if dynamic_parallelism else 0,
        )
    mean = MsspWorkload(
        relaxations=int(round(np.mean([w.relaxations for w in sampled.values()]))),
        heavy_relaxations=int(
            round(np.mean([w.heavy_relaxations for w in sampled.values()]))
        ),
        iterations=int(round(np.mean([w.iterations for w in sampled.values()]))),
        child_launches=int(
            round(np.mean([w.child_launches for w in sampled.values()]))
        ),
    )
    return [sampled.get(b, mean) for b in range(num_batches)]


def emit_johnson_ir(
    graph,
    spec: DeviceSpec,
    *,
    batch_size: int | None = None,
    queue_factor: float = DEFAULT_QUEUE_FACTOR,
    overlap: bool = True,
    workloads: "list[MsspWorkload] | None" = None,
    dynamic_parallelism: bool = True,
    start_batch: int = 0,
):
    """Compile the batched-MSSP schedule to a symbolic
    :class:`~repro.verifyplan.ir.PlanIR` without executing anything.

    Mirrors :func:`_run_johnson` exactly: the CSR uploads (charged at the
    scaled device's sparse factor), the worklist allocation, and one MSSP
    launch plus row download per batch — with ``overlap=True`` the
    download runs async on ``johnson-copy`` behind the
    ``mssp-done``/``rows-down`` event edges the driver uses. When
    ``workloads`` (from :func:`collect_mssp_workloads`) is given, each
    ``mssp`` kernel carries the exact modelled cost the dynamic run
    would charge, enabling the symbolic timing pass.

    ``start_batch > 0`` emits the suffix a checkpoint-resumed run
    replays, for auditing recovery paths with ``analyze_hb``/``audit_ir``.
    """
    from repro.verifyplan.ir import IREmitter, Rect

    n, m = graph.num_vertices, graph.num_edges
    nbuf = 2 if overlap else 1
    if batch_size is None:
        batch_size = plan_batch_size(
            graph, spec, queue_factor=queue_factor, num_row_buffers=nbuf
        )
    bat = max(1, min(batch_size, n))
    charge = spec.sparse_charge_factor
    em = IREmitter("johnson", spec.name, spec.memory_bytes)
    indptr = em.alloc(
        "indptr", (n + 1,), charged_bytes=int(4 * (n + 1) * charge) + 1
    )
    indices = em.alloc(
        "indices", (max(1, m),), charged_bytes=int(4 * m * charge) + 1
    )
    weights = em.alloc(
        "weights", (max(1, m),), charged_bytes=int(4 * m * charge) + 1
    )
    em.h2d(indptr, key=("csr", "indptr"))
    if m:
        em.h2d(indices, key=("csr", "indices"))
        em.h2d(weights, key=("csr", "weights"))
    queues = em.alloc("queues", (max(1, int(bat * queue_factor * m * charge)),))
    row_bufs = [
        em.alloc(f"rows{p}", (bat, n), charged_bytes=int(bat * n * _ELEM * charge) + 1)
        for p in range(nbuf)
    ]
    csr_arrays = (indptr, indices, weights) if m else (indptr,)
    num_batches = (n + bat - 1) // bat
    copier = "johnson-copy" if overlap else "default"
    down_events: list = [None] * nbuf
    for b in range(start_batch, num_batches):
        lo, hi = b * bat, min((b + 1) * bat, n)
        p = b % nbuf
        rect = Rect(0, hi - lo, 0, n)
        cost = None
        if workloads is not None:
            cost = mssp_batch_cost(
                spec, workloads[b], bat, dynamic_parallelism=dynamic_parallelism
            )
        if overlap and down_events[p] is not None:
            em.wait(down_events[p])  # rows buffer still draining
        em.kernel("mssp", reads=csr_arrays, writes=((row_bufs[p], rect),), cost=cost)
        if overlap:
            em.wait(em.record("mssp-done"), stream=copier)
            em.d2h(row_bufs[p], rect, key=("rows", lo, hi), stream=copier, sync=False)
            if b + nbuf < num_batches:
                down_events[p] = em.record("rows-down", stream=copier)
        else:
            em.d2h(row_bufs[p], rect, key=("rows", lo, hi))
    for buf in [indptr, indices, weights, queues, *row_bufs]:
        em.free(buf)
    return em.finish()
