"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``         run out-of-core APSP on a graph file or generator spec
``info``          graph features: density, degrees, separator class (Table III columns)
``select``        run the Section-IV selector and print the report
``suite``         list the paper's evaluation-graph registry
``devices``       list the device presets and their constants
``bench-kernels`` wall-clock sweep of the min-plus kernel backends
``tune-kernels``  autotune the kernel for this machine, persist the winner
``bench-transfers`` record/check the static transfer-volume baseline
``sanitize``      run the schedule sanitizer over the out-of-core drivers
``verify-plan``   statically verify the OOC execution plans (no execution)
``check-schedule`` happens-before + symbolic critical-path check of the plans
``verify-cluster`` cross-node HB + communication-volume proofs for the
                  distributed blocked-FW schedule
``bench-cluster`` record/check the cluster scaling baseline
``verify-update`` static O(n²) transfer proofs + patch-soundness checks for
                  the dynamic-graph update schedules
``bench-dynamic`` record/check the update-latency vs re-solve crossover baseline
``serve``         run the batched/cached/admission-controlled query service
                  over a deterministic workload (``--selftest`` for the
                  differential smoke test)
``bench-serve``   record/check the serving latency/throughput baseline
``lint``          run the repository AST contract checker
``verify-kernels`` static bounds/alias proofs + sanitizer legs for the JIT C kernels

Exit codes (``sanitize``, ``verify-plan``, ``check-schedule``,
``verify-cluster``, ``verify-update``, ``bench-transfers --check``,
``bench-cluster --check``, ``bench-dynamic --check``, ``serve``,
``bench-serve --check``, ``tune-kernels --check``, ``lint``,
``verify-kernels``):
0 — clean/verified; 1 — hazards, findings, failed bounds, or baseline
drift; 2 — usage error (argparse).

Every ``--json`` payload carries a top-level ``schema_version`` field
(:data:`SCHEMA_VERSION`) so downstream consumers can detect format
changes.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["SCHEMA_VERSION", "main"]

#: version of the machine-readable (--json) output payloads; bump on any
#: backwards-incompatible change to their structure
SCHEMA_VERSION = 1


def _load_graph(args):
    from repro.graphs.generators import erdos_renyi, planar_like, random_geometric, rmat, road_like
    from repro.graphs.io import read_edge_list, read_matrix_market
    from repro.graphs.suite import get_suite_graph

    if args.graph.endswith((".mtx", ".mtx.gz")):
        return read_matrix_market(args.graph)
    if args.graph.endswith((".txt", ".el", ".edges")):
        return read_edge_list(args.graph)
    kind, _, rest = args.graph.partition(":")
    if kind == "suite":
        return get_suite_graph(rest, args.scale)
    try:
        params = dict(p.split("=", 1) for p in rest.split(",") if p)
    except ValueError:
        params = None
    if params is None or kind not in ("rmat", "road", "planar", "geometric", "er"):
        raise SystemExit(
            f"unrecognised graph spec {args.graph!r}; use a .mtx/.txt path or "
            "suite:<name> | rmat:n=..,m=.. | road:n=..,deg=.. | planar:n=.. | "
            "geometric:n=..,r=..[,dim=3] | er:n=..,m=.."
        )
    n = int(params.get("n", 1000))
    seed = int(params.get("seed", 0))
    if kind == "rmat":
        return rmat(n, int(params.get("m", 8 * n)), seed=seed)
    if kind == "road":
        return road_like(n, float(params.get("deg", 2.6)), seed=seed)
    if kind == "planar":
        return planar_like(n, seed=seed)
    if kind == "geometric":
        return random_geometric(
            n, float(params.get("r", 0.1)), dim=int(params.get("dim", 2)), seed=seed
        )
    return erdos_renyi(n, int(params.get("m", 8 * n)), seed=seed)


def _device_spec(args):
    from repro.gpu.device import K80, TEST_DEVICE, V100

    base = {"v100": V100, "k80": K80, "test": TEST_DEVICE}[args.device]
    return base.scaled(args.scale) if args.scale < 1.0 else base


def _fault_plan(args):
    """Build the ``FaultPlan`` requested on the ``solve`` command line."""
    from repro.faults import FaultPlan

    if args.fault_kill:
        site, _, index = args.fault_kill.partition(":")
        return FaultPlan.kill(site=site, index=int(index or 0))
    if args.fault_count:
        sites = tuple(s for s in args.fault_sites.split(",") if s)
        return FaultPlan.random(args.fault_seed, args.fault_count, sites=sites)
    return None


def _json_scalars(mapping) -> dict:
    """Scalar-only, JSON-safe view of a stats dict (numpy types unboxed)."""
    out = {}
    for key, value in mapping.items():
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            out[key] = value.item()
        elif isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
    return out


def cmd_solve(args) -> int:
    import json

    from repro.core import solve_apsp
    from repro.core.verify import verify_result
    from repro.faults import CheckpointError, RetryPolicy
    from repro.gpu.device import Device
    from repro.gpu.errors import TransientDeviceError

    emit = (lambda *a, **k: None) if args.json else print
    graph = _load_graph(args)
    device = Device(_device_spec(args))
    emit(f"graph:  {graph}")
    emit(f"device: {device.spec.name} ({device.spec.memory_bytes / 2**20:.1f} MiB)")
    retry = RetryPolicy(max_attempts=args.retry_limit) if args.retry_limit else None
    try:
        result = solve_apsp(
            graph,
            algorithm=args.algorithm,
            device=device,
            density_scale=args.scale,
            store_mode="disk" if args.disk else "ram",
            kernel_backend=args.kernel_backend or None,
            faults=_fault_plan(args),
            retry=retry,
            checkpoint_dir=args.checkpoint_dir or None,
        )
    except (TransientDeviceError, CheckpointError) as exc:
        print(f"solve failed: {exc}", file=sys.stderr)
        return 1
    emit(f"algorithm: {result.algorithm}")
    if "kernel_backend" in result.stats:
        emit(f"kernel backend: {result.stats['kernel_backend']}")
    emit(f"simulated time: {result.simulated_seconds:.6f}s")
    for key in ("block_size", "num_blocks", "batch_size", "num_batches",
                "num_components", "num_boundary", "num_transfers"):
        if key in result.stats:
            emit(f"  {key}: {result.stats[key]}")
    if result.faults is not None and not result.faults.clean:
        emit(f"  faults: {result.faults}")
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "graph": {"n": graph.num_vertices, "m": graph.num_edges},
            "device": device.spec.name,
            "algorithm": result.algorithm,
            "simulated_seconds": result.simulated_seconds,
            "stats": _json_scalars(result.stats),
            "faults": result.faults.to_dict() if result.faults is not None else None,
        }
        print(json.dumps(payload, indent=2))
    if args.verify:
        report = verify_result(graph, result, num_rows=args.verify)
        status = "ok" if report.ok else "FAILED"
        emit(f"verification ({report.checked_rows} rows): {status} "
             f"(max |err| {report.max_abs_error:g})")
        if not report.ok:
            return 1
    if args.trace:
        from repro.gpu.trace import export_chrome_trace, utilization_report

        emit(utilization_report(device))
        path = export_chrome_trace(device, args.trace)
        emit(f"trace written to {path}")
    if args.query:
        u, v = (int(x) for x in args.query.split(","))
        emit(f"dist({u}, {v}) = {result.distance(u, v):g}")
    return 0


def cmd_info(args) -> int:
    from repro.graphs.properties import analyze
    from repro.partition import classify_separator

    graph = _load_graph(args)
    props = analyze(graph)
    print(f"graph: {graph}")
    print(f"  vertices:        {props.num_vertices}")
    print(f"  edges:           {props.num_edges}")
    print(f"  density:         {props.density_percent:.4f}%")
    print(f"  degrees:         mean {props.mean_out_degree:.2f}, "
          f"p99 {props.degree_p99:.0f}, max {props.max_out_degree}")
    print(f"  components:      {props.num_components}")
    info = classify_separator(graph, seed=0)
    cls = "small" if info.small_separator else "large"
    print(f"  separator:       {info.num_boundary} boundary vertices over "
          f"{info.num_parts} parts (√(kn)={info.ideal_boundary:.0f}, "
          f"ratio {info.ratio:.2f}) -> {cls}")
    return 0


def cmd_select(args) -> int:
    import json as _json

    from repro.gpu.device import Device
    from repro.select import Selector

    graph = _load_graph(args)
    spec = _device_spec(args)
    timing_calibration = None
    if args.calibrated:
        if not args.analytic:
            raise SystemExit("--calibrated requires --analytic")
        from repro.verifyplan.timing import TimingCalibration

        timing_calibration = TimingCalibration.from_bench()
        if timing_calibration.minplus_rate is None and not args.json:
            print("no measured kernel rate found; run `repro tune-kernels` first")
        elif not args.json:
            print(
                f"pricing min-plus off the measured kernel: "
                f"{timing_calibration.minplus_rate / 1e9:.2f} Gop/s"
            )
    if not args.json and not args.analytic:
        print("calibrating cost models...")
    selector = Selector(
        spec,
        density_scale=args.scale,
        seed=0,
        analytic=args.analytic,
        timing_calibration=timing_calibration,
    )
    report = selector.select(graph, device=Device(spec))
    if args.json:
        print(_json.dumps(
            {"schema_version": SCHEMA_VERSION, **report.to_dict()}, indent=2
        ))
        return 0
    print(f"graph:      {graph}")
    print(f"density:    {report.density:.4%} (band {report.band!r})")
    print(f"method:     {report.method}")
    print(f"candidates: {', '.join(report.candidates)}")
    for name, est in report.estimates.items():
        print(f"  {name:<16} {est.total_seconds:.6f}s "
              f"(compute {est.compute_seconds:.6f} + transfer {est.transfer_seconds:.6f})")
    if report.infeasible:
        print(f"infeasible: {', '.join(report.infeasible)}")
    print(f"selected:   {report.algorithm}")
    return 0


def cmd_plan(args) -> int:
    from repro.core.planner import explain_plan

    graph = _load_graph(args)
    report = explain_plan(graph, _device_spec(args), seed=0)
    print(report.describe())
    return 0


def cmd_suite(args) -> int:
    from repro.graphs.suite import list_suite

    print(f"{'name':<16} {'family':<11} {'tier':<11} {'sep':<6} "
          f"{'paper n':>9} {'paper m':>11} {'density%':>9}")
    for e in list_suite():
        print(f"{e.name:<16} {e.family:<11} {e.tier:<11} "
              f"{'small' if e.small_separator else 'large':<6} "
              f"{e.paper_n:>9} {e.paper_m:>11} {e.paper_density_pct:>9.4f}")
    return 0


def cmd_devices(args) -> int:
    from repro.gpu.device import K80, TEST_DEVICE, V100

    for spec in (V100, K80, TEST_DEVICE):
        print(f"{spec.name}:")
        print(f"  memory:            {spec.memory_bytes / 2**30:.1f} GiB")
        print(f"  min-plus rate:     {spec.minplus_rate:.3g} ops/s")
        print(f"  relax rate:        {spec.relax_rate:.3g} relax/s")
        print(f"  PCIe:              {spec.transfer_throughput / 1e9:.2f} GB/s, "
              f"{spec.transfer_latency * 1e6:.0f} µs/copy")
        print(f"  active blocks:     {spec.max_active_blocks}")
    return 0


def cmd_bench_kernels(args) -> int:
    from repro.bench.kernels import save_sweep, sweep_backends
    from repro.bench.runner import format_bars, format_table
    from repro.core.backends import backend_names

    try:
        sizes = tuple(int(s) for s in args.sizes.split(","))
        tiles = tuple(int(t) for t in args.tiles.split(","))
    except ValueError:
        raise SystemExit("--sizes and --tiles take comma-separated integers")
    backends = tuple(args.backends.split(",")) if args.backends else None
    bad = [b for b in backends or () if b not in backend_names()]
    if bad:
        raise SystemExit(
            f"unknown backend(s) {', '.join(bad)}; choose from {', '.join(backend_names())}"
        )
    rows = sweep_backends(
        sizes, tiles, backends, repeats=args.repeats, seed=args.seed
    )
    table_rows = [
        {
            "backend": r["backend"],
            "flavor": r["flavor"],
            "n": r["n"],
            "tile": r["tile"] if r["tile"] is not None else "-",
            "seconds": r["seconds"],
            "Gop/s": r["gops"],
            "speedup": r["speedup"],
            "identical": "yes" if r["identical"] else "NO",
        }
        for r in rows
    ]
    print(format_table(table_rows))
    n_max = max(r["n"] for r in rows)
    print(f"\nGop/s at n={n_max}:")
    bar_rows = [
        {
            "config": f"{r['backend']}"
            + (f"[{r['tile']}]" if r["tile"] is not None else ""),
            "gops": r["gops"],
        }
        for r in rows
        if r["n"] == n_max
    ]
    print(format_bars(bar_rows, "config", "gops"))
    if not args.no_save:
        path = save_sweep(rows)
        print(f"\nwrote {path}")
    if any(r["identical"] is False for r in rows):
        print("ERROR: a backend diverged from the reference result", file=sys.stderr)
        return 1
    return 0


def cmd_tune_kernels(args) -> int:
    from repro.bench.kernels import (
        bench_kernels_path,
        check_regression,
        record_tuned,
        tune_kernels,
    )
    from repro.bench.runner import format_table

    try:
        tiles = tuple(int(t) for t in args.tiles.split(","))
    except ValueError:
        raise SystemExit("--tiles takes comma-separated integers")
    result = tune_kernels(args.size, tiles, repeats=args.repeats, seed=args.seed)
    table_rows = [
        {
            "backend": r["backend"],
            "config": ",".join(f"{k}={v}" for k, v in r["options"].items()) or "-",
            "flavor": r["flavor"],
            "seconds": r["seconds"],
            "Gop/s": r["gops"],
            "speedup": r["speedup"],
            "identical": "yes" if r["identical"] else "NO",
        }
        for r in result["rows"]
    ]
    print(format_table(table_rows))
    winner = result["winner"]
    print(f"\nfingerprint: {result['fingerprint']}")
    print(
        f"winner: {winner['backend']} ({winner['flavor']}) "
        f"{winner['gops']:.2f} Gop/s at n={winner['n']} "
        f"({winner['speedup']:.2f}× reference)"
    )
    if args.check:
        ok, msg = check_regression(result, tolerance=args.tolerance)
        print(f"regression gate: {msg}")
        if not ok:
            print("ERROR: tuned kernel rate regressed past the gate", file=sys.stderr)
            return 1
    if not args.no_save:
        path = record_tuned(result)
        print(f"recorded tuned winner in {path}")
    else:
        print(f"(--no-save: not written to {bench_kernels_path()})")
    return 0


def cmd_sanitize(args) -> int:
    import json as _json

    from repro.sanitize import DRIVER_NAMES, sanitize_driver

    graph = _load_graph(args)
    spec = _device_spec(args)
    names = list(DRIVER_NAMES) if args.driver == "all" else [args.driver]
    failures = 0
    reports = {}
    for name in names:
        kwargs = {}
        if name == "multi-gpu":
            kwargs["num_devices"] = args.num_devices
        elif not args.overlap:
            kwargs["overlap"] = False
        report, result = sanitize_driver(name, graph, spec, **kwargs)
        reports[name] = report
        if not report.clean:
            failures += 1
        if args.json:
            continue
        status = "clean" if report.clean else f"{len(report.hazards)} hazard(s)"
        print(f"{name:<10} {report.num_ops:>5} ops, {report.num_buffers:>3} buffers: {status}")
        if not report.clean:
            for line in report.describe().splitlines()[1:]:
                print(line)
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "graph": {"n": graph.num_vertices, "m": graph.num_edges},
            "device": spec.name,
            "clean": failures == 0,
            "drivers": {name: r.to_dict() for name, r in reports.items()},
        }
        print(_json.dumps(payload, indent=2))
    return 1 if failures else 0


def cmd_verify_plan(args) -> int:
    import json as _json

    from repro.verifyplan import DEFAULT_TOLERANCE, verify_plan

    graph = _load_graph(args)
    spec = _device_spec(args)
    algorithms = None if args.algorithm == "all" else [args.algorithm]
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    ver = verify_plan(
        graph,
        spec,
        algorithms=algorithms,
        overlap=args.overlap,
        num_devices=args.num_devices,
        tolerance=tolerance,
    )
    if args.json:
        print(_json.dumps(
            {"schema_version": SCHEMA_VERSION, **ver.to_dict()}, indent=2
        ))
    else:
        print(ver.describe())
    return 0 if ver.ok else 1


def cmd_check_schedule(args) -> int:
    import json as _json

    from repro.verifyplan import verify_plan

    graph = _load_graph(args)
    spec = _device_spec(args)
    algorithms = None if args.algorithm == "all" else [args.algorithm]
    ver = verify_plan(
        graph,
        spec,
        algorithms=algorithms,
        overlap=args.overlap,
        num_devices=args.num_devices,
        timing=True,
    )
    if args.json:
        print(_json.dumps(
            {"schema_version": SCHEMA_VERSION, **ver.to_dict()}, indent=2
        ))
        return 0 if ver.ok else 1
    print(f"schedule checker [{spec.name}]: graph n={graph.num_vertices}, "
          f"m={graph.num_edges}")
    for name, audit in ver.audits.items():
        if not audit.feasible:
            print(f"  {name}: infeasible — {audit.reason}")
            continue
        hb = audit.hb
        if hb is not None:
            status = ("race/deadlock-free in every interleaving" if hb.ok
                      else f"{len(hb.findings)} finding(s)")
            print(f"  {name}: {hb.num_ops} clocked ops on {hb.num_streams} "
                  f"stream(s), {hb.num_events} event(s), {hb.num_waits} "
                  f"wait(s) — {status}")
            for f in hb.findings:
                print(f"    {f.describe()}")
        if audit.timing is not None:
            t = audit.timing
            print(f"    predicted makespan {t.makespan:.3e} s (compute "
                  f"{t.compute_seconds:.3e}, h2d {t.h2d_seconds:.3e}, d2h "
                  f"{t.d2h_seconds:.3e}; overlap efficiency "
                  f"{t.overlap_efficiency:.0%})")
    print("schedule check: " + ("PASS" if ver.ok else "FAIL"))
    return 0 if ver.ok else 1


def cmd_verify_cluster(args) -> int:
    import json as _json

    from repro.cluster import ClusterSpec, verify_cluster

    graph = _load_graph(args)
    spec = _device_spec(args)
    cluster = ClusterSpec.make(args.nodes, args.num_devices, device=spec)
    ver = verify_cluster(
        graph.num_vertices,
        cluster,
        block_size=args.block_size,
        graph=None if args.static_only else graph,
    )
    if args.json:
        print(_json.dumps(
            {"schema_version": SCHEMA_VERSION, **ver.to_dict()}, indent=2
        ))
    else:
        print(ver.describe())
    return 0 if ver.ok else 1


def cmd_bench_cluster(args) -> int:
    from repro.bench.cluster import compare_baseline, save_baseline

    if args.check:
        drifts = compare_baseline()
        if drifts:
            for line in drifts:
                print(line)
            print(f"{len(drifts)} drift(s) from BENCH_cluster.json", file=sys.stderr)
            return 1
        print("cluster scaling baseline: no drift")
        return 0
    path = save_baseline()
    print(f"wrote {path}")
    return 0


def cmd_bench_transfers(args) -> int:
    from repro.bench.transfers import compare_baseline, save_baseline

    if args.check:
        drifts = compare_baseline()
        if drifts:
            for line in drifts:
                print(line)
            print(f"{len(drifts)} drift(s) from BENCH_transfers.json", file=sys.stderr)
            return 1
        print("transfer baseline: no drift")
        return 0
    path = save_baseline()
    print(f"wrote {path}")
    return 0


def cmd_verify_update(args) -> int:
    import json as _json

    from repro.dynamic import verify_update

    spec = _device_spec(args)
    ver = verify_update(spec)
    if args.json:
        print(_json.dumps(
            {"schema_version": SCHEMA_VERSION, **ver.to_dict()}, indent=2
        ))
    else:
        print(ver.describe())
    return 0 if ver.ok else 1


def cmd_bench_dynamic(args) -> int:
    from repro.bench.dynamic import compare_dynamic, save_dynamic

    if args.check:
        drifts = compare_dynamic()
        if drifts:
            for line in drifts:
                print(line)
            print(f"{len(drifts)} drift(s) from BENCH_dynamic.json", file=sys.stderr)
            return 1
        print("dynamic crossover baseline: no drift")
        return 0
    path = save_dynamic()
    print(f"wrote {path}")
    return 0


def cmd_serve(args) -> int:
    import json as _json

    from repro.serve import AdmissionError, run_selftest
    from repro.serve.loadgen import generate_queries, generate_updates
    from repro.serve.service import APSPService

    if args.selftest:
        report = run_selftest(seed=args.seed, verbose=not args.json)
        if args.json:
            print(_json.dumps(
                {"schema_version": SCHEMA_VERSION, **report}, indent=2, default=str
            ))
        else:
            print("serve selftest: " + ("PASS" if report["ok"] else "FAIL"))
        return 0 if report["ok"] else 1

    graph = _load_graph(args)
    spec = _device_spec(args)
    tenants = tuple(f"tenant{i}" for i in range(max(1, args.tenants)))
    service = APSPService(
        graph,
        spec=spec,
        cache_dir=args.cache_dir or None,
        spool_dir=args.spool_dir or None,
        budget_seconds=args.budget_seconds if args.budget_seconds > 0 else None,
        batch_size=args.batch_size or None,
    )
    queries = generate_queries(
        graph, num_queries=args.queries, seed=args.seed, tenants=tenants,
        point_fraction=args.point_fraction, full_fraction=args.full_fraction,
    )
    waves = [queries]
    if args.mutations:
        half = len(queries) // 2
        waves = [queries[:half], queries[half:]]
    responses = []
    rejected = 0
    for wave_index, wave in enumerate(waves):
        if wave_index:
            service.mutate(
                generate_updates(
                    service.graph, num_updates=args.mutations, seed=args.seed + 1
                )
            )
        for query in wave:
            try:
                service.submit(query)
            except AdmissionError:
                rejected += 1
        responses.extend(service.drain())
    latencies = np.array([r.latency for r in responses], dtype=np.float64)
    stats = service.stats()
    if args.json:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "graph": {"n": graph.num_vertices, "m": graph.num_edges},
            "device": spec.name,
            "answered": len(responses),
            "rejected": rejected,
            "p50_us": float(np.percentile(latencies, 50) * 1e6) if len(responses) else None,
            "p99_us": float(np.percentile(latencies, 99) * 1e6) if len(responses) else None,
            "qps": len(responses) / stats["now_seconds"] if stats["now_seconds"] else None,
            "stats": stats,
        }
        print(_json.dumps(payload, indent=2))
        return 0
    print(f"graph:   {graph}")
    print(f"device:  {spec.name}; batch plan: {stats['batch_plan']} sources/launch")
    print(f"answered {len(responses)} queries ({rejected} refused at admission) "
          f"in {stats['now_seconds'] * 1e3:.3f} modeled ms")
    if len(responses):
        print(f"  latency p50 {np.percentile(latencies, 50) * 1e6:.1f} µs, "
              f"p99 {np.percentile(latencies, 99) * 1e6:.1f} µs; "
              f"throughput {len(responses) / stats['now_seconds']:.0f} q/s")
    print("  served from: " + ", ".join(
        f"{k}={v}" for k, v in stats["served"].items()))
    if stats["cache"] is not None:
        c = stats["cache"]
        print(f"  closure cache: {c['ram_hits']} ram + {c['disk_hits']} disk hits, "
              f"{c['misses']} misses, {c['evictions']} evictions, "
              f"{c['revalidate_hits']} revalidations")
    return 0


def cmd_bench_serve(args) -> int:
    from repro.bench.serve import compare_serve, save_serve

    if args.check:
        drifts = compare_serve()
        if drifts:
            for line in drifts:
                print(line)
            print(f"{len(drifts)} drift(s) from BENCH_serve.json", file=sys.stderr)
            return 1
        print("serving baseline: no drift (>=3x batching floor holds)")
        return 0
    path = save_serve()
    print(f"wrote {path}")
    return 0


def cmd_lint(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.sanitize import format_violations, lint_paths

    paths = [Path(p) for p in args.paths] or [Path("src")]
    violations = lint_paths(paths)
    if args.json:
        print(_json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "ok": not violations,
                "count": len(violations),
                "violations": [
                    {
                        "rule": v.rule, "name": v.name, "file": v.file,
                        "line": v.line, "col": v.col, "message": v.message,
                    }
                    for v in violations
                ],
            },
            indent=2,
        ))
        return 1 if violations else 0
    if violations:
        print(format_violations(violations))
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


def cmd_verify_kernels(args) -> int:
    import json as _json

    from repro.verifykernel import verify_kernels

    modes: tuple[str, ...] = ()
    if args.sanitize == "all":
        modes = ("asan", "ubsan", "tsan")
    elif args.sanitize != "none":
        modes = (args.sanitize,)
    ver = verify_kernels(sanitize=modes, defects=args.defects, fast=not args.full)
    strict_failures: list[str] = []
    if args.strict:
        for leg in ver.sanitizers:
            if not leg.available:
                strict_failures.append(f"sanitizer leg {leg.mode} unavailable")
        for d in ver.defects:
            if d.dynamic is None:
                strict_failures.append(
                    f"defect {d.defect.name}: dynamic leg unavailable"
                )
    ok = ver.ok and not strict_failures
    if args.json:
        payload = {"schema_version": SCHEMA_VERSION, **ver.to_dict()}
        payload["ok"] = ok
        payload["strict_failures"] = strict_failures
        print(_json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(f"verify-kernels: {len(ver.findings)} static finding(s) on shipped kernels")
    for f in ver.findings:
        print(f"  {f.describe()}")
    for leg in ver.sanitizers:
        if not leg.available:
            print(f"  [{leg.mode}] unavailable — {leg.detail}")
        else:
            status = "clean" if leg.clean else (
                "FAULTED" if leg.faulted else "DIVERGED"
            )
            print(f"  [{leg.mode}] {status} (exit {leg.returncode})")
    for d in ver.defects:
        dyn = ("skipped" if d.dynamic is None
               else ("caught" if d.dynamic.caught else "MISSED"))
        sta = "caught" if d.static_caught else "MISSED"
        print(f"  defect {d.defect.name}: static {sta}, dynamic {dyn}")
    for msg in strict_failures:
        print(f"  strict: {msg}")
    print("verify-kernels: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


def cmd_report(args) -> int:
    from repro.bench.report import collect_records, render_markdown, write_report

    if args.stdout:
        print(render_markdown(collect_records()))
    else:
        path = write_report()
        print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-core GPU APSP (IPDPS 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p):
        p.add_argument("graph", help="path (.mtx/.txt) or spec (suite:usroads, rmat:n=1000,m=8000, ...)")
        p.add_argument("--scale", type=float, default=1 / 64,
                       help="linear scale of graph/device relative to paper size (default 1/64)")
        p.add_argument("--device", choices=["v100", "k80", "test"], default="v100")

    p = sub.add_parser("solve", help="run out-of-core APSP")
    add_graph_args(p)
    p.add_argument("--algorithm", default="auto",
                   choices=["auto", "floyd-warshall", "johnson", "boundary"])
    p.add_argument("--disk", action="store_true", help="disk-backed output store")
    p.add_argument("--verify", type=int, metavar="ROWS", default=0,
                   help="verify N sampled rows against Dijkstra")
    p.add_argument("--trace", metavar="PATH", default="",
                   help="write a chrome://tracing JSON of the device schedule")
    p.add_argument("--query", metavar="U,V", default="",
                   help="print one distance after solving")
    p.add_argument("--kernel-backend", default="",
                   choices=["", "auto", "reference", "tiled", "chunked", "jit", "threaded"],
                   help="host min-plus kernel backend (default: process-wide engine)")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--checkpoint-dir", metavar="DIR", default="",
                   help="write per-iteration checkpoints here; rerunning with "
                        "the same directory resumes from the last checkpoint")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for --fault-count's random fault plan")
    p.add_argument("--fault-count", type=int, default=0,
                   help="inject N seeded transient device faults")
    p.add_argument("--fault-sites", default="h2d,d2h,kernel,alloc",
                   help="comma-separated fault sites for --fault-count")
    p.add_argument("--fault-kill", metavar="SITE:INDEX", default="",
                   help="make the INDEXth op at SITE fail permanently "
                        "(exhausts retries; pair with --checkpoint-dir)")
    p.add_argument("--retry-limit", type=int, default=0,
                   help="override the retry budget (attempts per op)")
    p.set_defaults(fn=cmd_solve)

    p = sub.add_parser("info", help="graph features (Table III columns)")
    add_graph_args(p)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("select", help="run the algorithm selector")
    add_graph_args(p)
    p.add_argument("--analytic", action="store_true",
                   help="rank candidates by the symbolic schedule-DAG "
                        "critical path instead of calibration/sampling runs")
    p.add_argument("--calibrated", action="store_true",
                   help="with --analytic: price min-plus off the autotuned "
                        "kernel rate in BENCH_kernels.json (repro tune-kernels)")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_select)

    p = sub.add_parser("plan", help="explain each algorithm's execution plan")
    add_graph_args(p)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("suite", help="list the paper's evaluation graphs")
    p.set_defaults(fn=cmd_suite)

    p = sub.add_parser("devices", help="list device presets")
    p.set_defaults(fn=cmd_devices)

    p = sub.add_parser("bench-kernels",
                       help="wall-clock Gop/s sweep of the min-plus kernel backends")
    p.add_argument("--sizes", default="256,1024", help="comma-separated problem sizes")
    p.add_argument("--tiles", default="64,128,256",
                   help="comma-separated tile sizes for tiled/jit backends")
    p.add_argument("--backends", default="",
                   help="comma-separated backend names (default: all registered)")
    p.add_argument("--repeats", type=int, default=1, help="timing repeats (best-of)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-save", action="store_true",
                   help="print only; skip writing BENCH_kernels.json")
    p.set_defaults(fn=cmd_bench_kernels)

    p = sub.add_parser(
        "tune-kernels",
        help="autotune the min-plus kernel for this machine and persist "
             "the winner (fingerprint-keyed) in BENCH_kernels.json")
    p.add_argument("--size", type=int, default=1024,
                   help="problem size n for the n³ tuning product")
    p.add_argument("--tiles", default="128,192,256,384",
                   help="comma-separated tile sizes to search")
    p.add_argument("--repeats", type=int, default=2, help="timing repeats (best-of)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--check", action="store_true",
                   help="fail if the winner regresses >tolerance below the "
                        "committed baseline for this machine's fingerprint class")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed fractional Gop/s drop for --check (default 0.20)")
    p.add_argument("--no-save", action="store_true",
                   help="print only; do not record the winner")
    p.set_defaults(fn=cmd_tune_kernels)

    p = sub.add_parser("sanitize",
                       help="race/hazard-check the simulated schedules of the drivers")
    add_graph_args(p)
    p.add_argument("--driver", default="all",
                   choices=["all", "fw", "boundary", "johnson", "multi-gpu"],
                   help="which out-of-core driver(s) to check (default: all)")
    p.add_argument("--num-devices", type=int, default=2,
                   help="device count for the multi-gpu driver")
    p.add_argument("--no-overlap", dest="overlap", action="store_false",
                   help="check the single-stream (overlap=False) schedules")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_sanitize)

    p = sub.add_parser(
        "verify-plan",
        help="statically prove the OOC execution plans fit memory and "
             "match the paper's transfer bounds (nothing executes)",
    )
    add_graph_args(p)
    p.add_argument("--algorithm", default="all",
                   choices=["all", "fw", "floyd-warshall", "johnson", "boundary", "multi-gpu"],
                   help="which plan(s) to verify (default: all)")
    p.add_argument("--num-devices", type=int, default=2,
                   help="device count for the multi-gpu plan")
    p.add_argument("--no-overlap", dest="overlap", action="store_false",
                   help="verify the single-stream (overlap=False) schedules")
    p.add_argument("--tolerance", type=float, default=None,
                   help="relative tolerance for the approximate FW bounds")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_verify_plan)

    p = sub.add_parser(
        "check-schedule",
        help="prove the OOC schedules race- and deadlock-free in every "
             "interleaving and predict their critical-path makespans",
    )
    add_graph_args(p)
    p.add_argument("--algorithm", default="all",
                   choices=["all", "fw", "floyd-warshall", "johnson", "boundary", "multi-gpu"],
                   help="which schedule(s) to check (default: all)")
    p.add_argument("--num-devices", type=int, default=2,
                   help="device count for the multi-gpu schedule")
    p.add_argument("--no-overlap", dest="overlap", action="store_false",
                   help="check the single-stream (overlap=False) schedules")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_check_schedule)

    p = sub.add_parser(
        "verify-cluster",
        help="statically prove the distributed blocked-FW schedule "
             "race/deadlock-free across nodes with exact per-link "
             "communication volumes, cross-validated against the "
             "dynamic cluster simulator",
    )
    add_graph_args(p)
    p.add_argument("--nodes", type=int, default=2,
                   help="cluster node count N (default 2)")
    p.add_argument("--num-devices", type=int, default=1,
                   help="devices per node M (default 1)")
    p.add_argument("--block-size", type=int, default=None,
                   help="distribution block size (default: planner's choice)")
    p.add_argument("--static-only", action="store_true",
                   help="skip the dynamic simulator cross-validation")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_verify_cluster)

    p = sub.add_parser(
        "bench-cluster",
        help="record (default) or --check the cluster scaling baseline "
             "in BENCH_cluster.json (predicted == simulated makespans)",
    )
    p.add_argument("--check", action="store_true",
                   help="diff the recomputed sweep against the recorded baseline")
    p.set_defaults(fn=cmd_bench_cluster)

    p = sub.add_parser(
        "verify-update",
        help="statically prove the dynamic-graph update schedules sound: "
             "closed-form O(n²) transfer bounds == static IR tally == "
             "dynamic trace, touched-block coverage, HB cleanliness, and "
             "the seeded-defect + differential + revalidation suites",
    )
    p.add_argument("--scale", type=float, default=1.0,
                   help="linear device scale (default 1.0 — the sweep "
                        "configs are already test-sized)")
    p.add_argument("--device", choices=["v100", "k80", "test"], default="test")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_verify_update)

    p = sub.add_parser(
        "bench-dynamic",
        help="record (default) or --check the modeled update-latency vs "
             "full re-solve crossover baseline in BENCH_dynamic.json",
    )
    p.add_argument("--check", action="store_true",
                   help="diff the recomputed model against the recorded baseline")
    p.set_defaults(fn=cmd_bench_dynamic)

    p = sub.add_parser(
        "serve",
        help="run the APSP query service over a deterministic workload: "
             "batched MSSP answers, fingerprint-keyed closure cache, "
             "analytic admission control, weighted-fair tenant scheduling",
    )
    p.add_argument("graph", nargs="?", default="er:n=96,m=400",
                   help="path (.mtx/.txt) or spec (default er:n=96,m=400)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="linear device scale (default 1.0)")
    p.add_argument("--device", choices=["v100", "k80", "test"], default="test")
    p.add_argument("--selftest", action="store_true",
                   help="run the end-to-end differential smoke test "
                        "(service answers vs fresh solves, incl. a "
                        "seeded-fault leg) and exit 0/1")
    p.add_argument("--queries", type=int, default=64,
                   help="generated queries (default 64)")
    p.add_argument("--tenants", type=int, default=2,
                   help="number of round-robin tenants (default 2)")
    p.add_argument("--point-fraction", type=float, default=0.4,
                   help="fraction of point queries (default 0.4)")
    p.add_argument("--full-fraction", type=float, default=0.05,
                   help="fraction of full-APSP queries (default 0.05)")
    p.add_argument("--mutations", type=int, default=0,
                   help="apply N edge mutations mid-workload (revalidates "
                        "the closure cache)")
    p.add_argument("--budget-seconds", type=float, default=0.0,
                   help="admission budget: refuse requests past this "
                        "predicted backlog (0 disables)")
    p.add_argument("--batch-size", type=int, default=0,
                   help="cap the MSSP batch size (0: the bat formula)")
    p.add_argument("--cache-dir", metavar="DIR", default="",
                   help="closure-cache directory (persistent across runs)")
    p.add_argument("--spool-dir", metavar="DIR", default="",
                   help="checkpoint spool: a restarted service resumes "
                        "long solves from here instead of recomputing")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "bench-serve",
        help="record (default) or --check the modeled serving "
             "latency/throughput baseline in BENCH_serve.json "
             "(--check also enforces the >=3x batching floor)",
    )
    p.add_argument("--check", action="store_true",
                   help="diff the re-driven service against the recorded baseline")
    p.set_defaults(fn=cmd_bench_serve)

    p = sub.add_parser(
        "bench-transfers",
        help="record (default) or --check the static transfer-volume "
             "baseline in BENCH_transfers.json",
    )
    p.add_argument("--check", action="store_true",
                   help="diff current audits against the recorded baseline")
    p.set_defaults(fn=cmd_bench_transfers)

    p = sub.add_parser("lint", help="AST contract checks for this repository")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "verify-kernels",
        help="prove the JIT C kernels memory- and alias-safe: static "
             "bounds/alias/dispatch analysis plus optional sanitizer legs",
    )
    p.add_argument("--sanitize", default="none",
                   choices=["none", "asan", "ubsan", "tsan", "all"],
                   help="also replay the kernel matrix under instrumented "
                        "builds (default: static analysis only)")
    p.add_argument("--defects", action="store_true",
                   help="cross-validate: every seeded defect must be caught "
                        "both statically and dynamically")
    p.add_argument("--strict", action="store_true",
                   help="fail when a requested sanitizer leg is unavailable "
                        "instead of skipping it")
    p.add_argument("--full", action="store_true",
                   help="full matrix (more sizes/threads) instead of the "
                        "fast subset")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(fn=cmd_verify_kernels)

    p = sub.add_parser("report", help="render benchmarks/results/*.json to RESULTS.md")
    p.add_argument("--stdout", action="store_true", help="print instead of writing")
    p.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
