"""repro — out-of-core GPU APSP (IPDPS 2022 reproduction).

Reproduction of Xia, Agrawal, Jiang & Ramnath, *"Scaling and Selecting GPU
Methods for All Pairs Shortest Paths (APSP) Computations"* (IPDPS 2022),
on a simulated GPU substrate.

Public API highlights
---------------------
* :func:`repro.core.solve_apsp` — run APSP out-of-core with a chosen or
  auto-selected algorithm.
* :class:`repro.select.Selector` — the paper's density filter + cost-model
  selection methodology.
* :mod:`repro.graphs` — CSR graphs, generators, Matrix Market I/O, and the
  evaluation-suite registry.
* :mod:`repro.gpu` — the simulated V100/K80 devices.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
