"""Deterministic fault injection and recovery for the simulated substrate.

The paper's out-of-core algorithms stream ``O(n_d · n²)`` bytes of distance
blocks between host and device; on real hardware a single transient copy
failure or device loss wastes the whole run. This package provides the
chaos/recovery plane the drivers use to survive that:

- :class:`~repro.faults.plan.FaultPlan` — a seedable, fully deterministic
  plan of which H2D/D2H copies, kernel launches, or allocations raise
  transient errors (attached via ``Device(faults=...)``);
- :class:`~repro.faults.retry.RetryPolicy` — bounded retry with capped
  exponential backoff, charged to the simulated clock;
- :class:`~repro.faults.retry.FaultReport` — injected/retried/resumed
  accounting attached to every :class:`~repro.core.result.APSPResult`;
- :class:`~repro.faults.checkpoint.CheckpointStore` — atomic per-stage
  checkpoints (FW rounds, Johnson batches, boundary stages) keyed to a
  content hash of the graph, enabling kill-and-resume runs that are
  bit-identical to fault-free ones.

See ``docs/FAULT_TOLERANCE.md`` for the fault model and formats.
"""

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointStore,
    graph_fingerprint,
    open_checkpoint,
)
from repro.faults.plan import FAULT_SITES, FaultPlan, FaultSpec
from repro.faults.retry import FaultReport, RetryPolicy

__all__ = [
    "FAULT_SITES",
    "CheckpointError",
    "CheckpointStore",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "RetryPolicy",
    "graph_fingerprint",
    "open_checkpoint",
]
