"""Retry policy and fault accounting for guarded device operations.

:class:`RetryPolicy` bounds how often the substrate re-attempts an
operation that raised a :class:`~repro.gpu.errors.TransientDeviceError`
and how long the host backs off between attempts. The backoff is charged
to the simulated :class:`~repro.gpu.timeline.Timeline` on a dedicated
``"host"`` engine, so a recovered run's ``simulated_seconds`` honestly
includes the time lost to faults. The policy is deterministic (no
jitter): identical fault plans give identical timelines.

:class:`FaultReport` is the per-run ledger: faults injected (per site),
retries spent, retry budgets exhausted, checkpoint stages resumed and
written, and backoff seconds charged. It rides on
:attr:`repro.core.result.APSPResult.faults` and in ``repro solve --json``
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultReport", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    ``max_attempts`` counts *attempts*, not retries: the default of 4
    tolerates up to 3 consecutive transient faults on one operation
    before giving up and re-raising the last error.
    """

    max_attempts: int = 4
    base_delay: float = 1e-4
    multiplier: float = 2.0
    max_delay: float = 1e-2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1:
            raise ValueError("delays must be non-negative and multiplier >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff charged before retry following failed attempt ``attempt``
        (1-based): ``min(max_delay, base_delay · multiplier^(attempt-1))``."""
        return min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))


@dataclass
class FaultReport:
    """Ledger of fault-injection and recovery activity for one run."""

    injected: int = 0
    injected_by_site: dict[str, int] = field(default_factory=dict)
    retried: int = 0
    exhausted: int = 0
    resumed: int = 0
    checkpoints_written: int = 0
    backoff_seconds: float = 0.0

    def count_injected(self, site: str) -> None:
        """Record one injected fault at ``site``."""
        self.injected += 1
        self.injected_by_site[site] = self.injected_by_site.get(site, 0) + 1

    def merged(self, other: "FaultReport") -> "FaultReport":
        """Componentwise sum (multi-GPU runs merge per-device reports)."""
        by_site = dict(self.injected_by_site)
        for site, count in other.injected_by_site.items():
            by_site[site] = by_site.get(site, 0) + count
        return FaultReport(
            injected=self.injected + other.injected,
            injected_by_site=by_site,
            retried=self.retried + other.retried,
            exhausted=self.exhausted + other.exhausted,
            resumed=self.resumed + other.resumed,
            checkpoints_written=self.checkpoints_written + other.checkpoints_written,
            backoff_seconds=self.backoff_seconds + other.backoff_seconds,
        )

    def to_dict(self) -> dict:
        """JSON-safe payload for ``--json`` output."""
        return {
            "injected": self.injected,
            "injected_by_site": dict(self.injected_by_site),
            "retried": self.retried,
            "exhausted": self.exhausted,
            "resumed": self.resumed,
            "checkpoints_written": self.checkpoints_written,
            "backoff_seconds": self.backoff_seconds,
        }

    @property
    def clean(self) -> bool:
        """True when the run saw no faults and resumed nothing."""
        return self.injected == 0 and self.resumed == 0
