"""Atomic per-stage checkpoints for the out-of-core drivers.

A :class:`CheckpointStore` is a directory of ``<stage>.npz`` files plus a
``meta.json`` binding the store to one algorithm and one graph (by a
SHA-256 content hash over the CSR arrays). Drivers save a stage after
each completed unit of outer-loop work — an FW round, a Johnson batch, a
boundary dist2 block / dist3 closure / dist4 flush — and on a later run
skip every stage the store already holds, producing distances
bit-identical to an uninterrupted run.

Writes are atomic (temp file + ``os.replace``) so a kill mid-write leaves
the previous stage intact. Reads validate eagerly: a corrupt or truncated
stage raises :class:`CheckpointError` naming the offending path, and a
store written for a different graph or algorithm is rejected up front via
the fingerprint — never a numpy decode traceback, never silently-wrong
distances.

Checkpoint I/O is host-side and is deliberately *not* charged to the
simulated device clock (it is disk work outside the device model); the
backoff of the retry layer, which does occupy the host, is charged.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

__all__ = ["CheckpointError", "CheckpointStore", "graph_fingerprint", "open_checkpoint"]

#: version of the on-disk checkpoint layout; bump on incompatible change
CHECKPOINT_SCHEMA = 1


class CheckpointError(RuntimeError):
    """A checkpoint store is unreadable, corrupt, or belongs to another run.

    ``path`` names the offending file (or directory) when known.
    """

    def __init__(self, message: str, *, path: "str | Path | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            message = f"{message} [{self.path}]"
        super().__init__(message)


def graph_fingerprint(graph) -> str:
    """SHA-256 content hash of a CSR graph (n, m, indptr, indices, weights).

    Two graphs resume-compatible iff their fingerprints match; a stale
    checkpoint of a different graph is rejected by this hash.
    """
    h = hashlib.sha256()
    h.update(f"n={graph.num_vertices};m={graph.num_edges};".encode())
    h.update(np.ascontiguousarray(graph.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(graph.weights, dtype=np.float64).tobytes())
    return h.hexdigest()


class CheckpointStore:
    """Directory-backed store of named checkpoint stages.

    Use :meth:`bind` (or :func:`open_checkpoint`) before saving/loading:
    it validates ``meta.json`` against the run's algorithm and graph
    fingerprint, writing fresh metadata for an empty directory.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.saved = 0
        self.loaded = 0

    @property
    def meta_path(self) -> Path:
        return self.directory / "meta.json"

    def path_for(self, stage: str) -> Path:
        """On-disk path of one stage file."""
        return self.directory / f"{stage}.npz"

    # ------------------------------------------------------------------
    # Binding / validation
    # ------------------------------------------------------------------
    def bind(self, *, algorithm: str, fingerprint: str) -> "CheckpointStore":
        """Validate (or initialise) the store for one algorithm + graph.

        Raises :class:`CheckpointError` when the directory holds
        checkpoints of a different graph, a different algorithm, an
        incompatible schema, or stage files with no metadata.
        """
        if self.meta_path.exists():
            try:
                meta = json.loads(self.meta_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint metadata: {exc}", path=self.meta_path
                ) from None
            if meta.get("schema") != CHECKPOINT_SCHEMA:
                raise CheckpointError(
                    f"checkpoint schema {meta.get('schema')!r} is not "
                    f"{CHECKPOINT_SCHEMA}",
                    path=self.meta_path,
                )
            if meta.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "checkpoint belongs to a different graph "
                    "(content-hash mismatch); refusing to resume",
                    path=self.meta_path,
                )
            if meta.get("algorithm") != algorithm:
                raise CheckpointError(
                    f"checkpoint was written by algorithm "
                    f"{meta.get('algorithm')!r}, not {algorithm!r}",
                    path=self.meta_path,
                )
            return self
        if self.directory.exists() and any(self.directory.glob("*.npz")):
            raise CheckpointError(
                "checkpoint directory holds stage files but no metadata",
                path=self.directory,
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "algorithm": algorithm,
                "fingerprint": fingerprint,
            },
            indent=2,
        )
        tmp = self.meta_path.with_suffix(".json.tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.meta_path)
        return self

    # ------------------------------------------------------------------
    # Stage I/O
    # ------------------------------------------------------------------
    def save(self, stage: str, **arrays) -> Path:
        """Atomically write one stage (named numpy arrays); returns its path."""
        path = self.path_for(stage)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **{k: np.asarray(v) for k, v in arrays.items()})
        os.replace(tmp, path)
        self.saved += 1
        return path

    def load(self, stage: str) -> "dict[str, np.ndarray] | None":
        """Read one stage; ``None`` if absent, :class:`CheckpointError` if
        the file exists but cannot be decoded."""
        path = self.path_for(stage)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                out = {key: npz[key] for key in npz.files}
        except (OSError, ValueError, EOFError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(
                f"corrupt or truncated checkpoint stage {stage!r}: {exc}",
                path=path,
            ) from None
        self.loaded += 1
        return out

    def has(self, stage: str) -> bool:
        """Whether a stage file exists (without decoding it)."""
        return self.path_for(stage).exists()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.directory)!r})"


def open_checkpoint(
    checkpoint: "CheckpointStore | str | Path | None",
    *,
    algorithm: str,
    graph,
) -> "CheckpointStore | None":
    """Normalise a driver's ``checkpoint=`` argument and bind it.

    Accepts ``None`` (checkpointing off), a directory path, or a prebuilt
    :class:`CheckpointStore`; binding validates algorithm + graph
    fingerprint either way.
    """
    if checkpoint is None:
        return None
    store = (
        checkpoint
        if isinstance(checkpoint, CheckpointStore)
        else CheckpointStore(checkpoint)
    )
    return store.bind(algorithm=algorithm, fingerprint=graph_fingerprint(graph))
