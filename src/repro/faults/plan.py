"""Seedable, deterministic fault plans for the simulated GPU substrate.

A :class:`FaultPlan` decides, per fault *site*, which attempt ordinals
fail. The four sites mirror the guarded operations of the substrate:

- ``"h2d"`` / ``"d2h"`` — host↔device copies (``Stream.copy_*``), raising
  :class:`~repro.gpu.errors.TransferError`;
- ``"kernel"`` — kernel launches (``Stream.launch``), raising
  :class:`~repro.gpu.errors.KernelFaultError`;
- ``"alloc"`` — device allocations (``DeviceMemory.alloc``), raising
  :class:`~repro.gpu.errors.AllocFaultError`.

Ordinals count *attempts*, not logical operations: a retry of a failed
copy consumes the next ordinal at its site. This makes the worst case
analysable — ``f`` planned faults can hit at most ``f`` consecutive
attempts of one logical op, so any run whose fault count is below the
retry budget (``max_attempts - 1``) is guaranteed to complete with
results bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.gpu.errors import (
    AllocFaultError,
    KernelFaultError,
    TransferError,
    TransientDeviceError,
)

__all__ = ["FAULT_SITES", "FaultPlan", "FaultSpec"]

#: the guarded operation classes of the simulated substrate
FAULT_SITES = ("h2d", "d2h", "kernel", "alloc")

#: fraction of a transfer assumed delivered before an injected failure
DEFAULT_PROGRESS = 0.5


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: attempts ``[index, index + count)`` at ``site``.

    ``count=1`` is a single transient blip; ``count=-1`` makes every
    attempt from ``index`` on fail — permanent device loss, guaranteed to
    exhaust any retry budget (used by the kill-and-resume tests and the
    CI chaos sweep). ``progress`` is the delivered fraction charged for
    aborted transfers.
    """

    site: str
    index: int
    count: int = 1
    progress: float = DEFAULT_PROGRESS

    def covers(self, ordinal: int) -> bool:
        """Whether attempt ``ordinal`` at this spec's site fails."""
        if ordinal < self.index:
            return False
        return self.count < 0 or ordinal < self.index + self.count


class FaultPlan:
    """A deterministic schedule of transient faults, attached to a device.

    The plan also works as a pure *counter*: attach an empty plan and the
    per-site attempt counts after a run (:attr:`op_counts`) tell you how
    many guarded operations of each class the driver issues — which is how
    the chaos tests target "first / middle / last" operations exactly.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, label: str = "") -> None:
        self.specs = tuple(specs)
        self.label = label
        bad = sorted({s.site for s in self.specs} - set(FAULT_SITES))
        if bad:
            raise ValueError(f"unknown fault site(s) {bad}; choose from {FAULT_SITES}")
        self._by_site: dict[str, tuple[FaultSpec, ...]] = {
            site: tuple(s for s in self.specs if s.site == site)
            for site in FAULT_SITES
        }
        self._counters: dict[str, int] = {site: 0 for site in FAULT_SITES}
        self.num_injected = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_faults: int,
        *,
        sites: Sequence[str] = FAULT_SITES,
        horizon: int = 64,
    ) -> "FaultPlan":
        """A seeded plan of ``num_faults`` distinct single-attempt faults.

        Fault positions are drawn without replacement from the grid
        ``sites × range(horizon)``, so no two faults share an attempt
        ordinal: ``num_faults`` below the retry budget can never exhaust
        it. Fully deterministic in ``seed``.
        """
        sites = tuple(sites)
        cells = [(s, o) for s in sites for o in range(max(1, horizon))]
        rng = np.random.default_rng(seed)
        picked = rng.choice(len(cells), size=min(num_faults, len(cells)), replace=False)
        specs = [
            FaultSpec(site=cells[int(i)][0], index=cells[int(i)][1])
            for i in sorted(int(j) for j in picked)
        ]
        return cls(specs, label=f"random(seed={seed}, n={num_faults})")

    @classmethod
    def kill(cls, site: str = "h2d", index: int = 0) -> "FaultPlan":
        """A plan that permanently fails ``site`` from attempt ``index`` on.

        Models device loss: the retry budget is guaranteed to exhaust, the
        driver raises, and a later run resumes from its checkpoints.
        """
        return cls(
            [FaultSpec(site=site, index=index, count=-1)],
            label=f"kill({site}@{index})",
        )

    # ------------------------------------------------------------------
    # Runtime interface (called by Device.run_guarded)
    # ------------------------------------------------------------------
    def check(self, site: str, op: str) -> None:
        """Account one attempt at ``site``; raise if the plan says it fails.

        Raises the site's transient error class
        (:class:`~repro.gpu.errors.TransientDeviceError` subclass).
        """
        ordinal = self._counters[site]
        self._counters[site] = ordinal + 1
        for spec in self._by_site[site]:
            if spec.covers(ordinal):
                self.num_injected += 1
                raise self._make_error(site, op, ordinal, spec)

    @staticmethod
    def _make_error(
        site: str, op: str, ordinal: int, spec: FaultSpec
    ) -> TransientDeviceError:
        if site in ("h2d", "d2h"):
            return TransferError(site, op, ordinal, progress=spec.progress)
        if site == "kernel":
            return KernelFaultError(site, op, ordinal)
        return AllocFaultError(site, op, ordinal)

    @property
    def op_counts(self) -> dict[str, int]:
        """Attempts seen per site since the last :meth:`reset`."""
        return dict(self._counters)

    def reset(self) -> None:
        """Zero the attempt counters (called by ``Device.reset_clock`` so
        ordinals are relative to the current run)."""
        for site in self._counters:
            self._counters[site] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = self.label or f"{len(self.specs)} spec(s)"
        return f"FaultPlan({tag})"
