"""The APSP query service: one request path over every subsystem.

:class:`APSPService` composes the previously-built layers under a single
modeled-clock engine:

* **batching** — pending point/SSSP queries coalesce (keyed dedup, see
  :mod:`repro.serve.batcher`) into MSSP batches sized by the paper's
  ``bat = (L − S)/(c·m)`` formula and run on a persistent simulated
  device exactly the way :func:`repro.core.ooc_johnson._run_johnson`
  runs its batches — resident CSR, worklist charge, real Near-Far
  numerics, modelled kernel cost;
* **caching** — full closures live in the
  :class:`~repro.serve.cache.ClosureCache` (fingerprint-keyed
  ``DistanceCache`` disk tier + budgeted RAM LRU); hot SSSP rows live in
  a second row-level LRU. Graph mutations revalidate the closure by
  patch-forward (:mod:`repro.dynamic`) instead of discarding it;
* **admission + fairness** — the analytic selector prices every request
  (:mod:`repro.serve.admission`); over-budget requests are refused and
  admitted ones drain in weighted-fair order;
* **resilience** — the device carries the service's
  :class:`~repro.faults.FaultPlan`; transient mid-batch faults retry
  inside the streams and a ticket is only answered once its batch
  completed, so a failed drain leaves tickets *pending*, never answered
  stale or partial. Full solves checkpoint into a spool directory keyed
  by graph fingerprint, so a replacement service over the same spool
  resumes a killed solve instead of recomputing it.

Everything advances one modeled clock (``self.now``, simulated seconds):
batch costs are the persistent device's elapsed-time delta, solve costs
are :attr:`~repro.core.result.APSPResult.simulated_seconds`, cache reads
are free. Latency numbers are therefore machine-independent — the bench
(:mod:`repro.bench.serve`) gates them in CI with exact equality.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.api import solve_apsp
from repro.core.minplus import DIST_DTYPE
from repro.core.ooc_johnson import (
    DEFAULT_QUEUE_FACTOR,
    graph_device_bytes,
    plan_batch_size,
    run_mssp_batch,
)
from repro.dynamic.patch import EdgeUpdate, apply_edge_updates
from repro.faults.checkpoint import graph_fingerprint
from repro.gpu.device import V100, Device, DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.serve.admission import AdmissionController
from repro.serve.batcher import SourceBatch, coalesce
from repro.serve.cache import DEFAULT_MEMORY_BUDGET, ClosureCache
from repro.serve.request import Query, Response, Ticket
from repro.sssp.near_far import DEFAULT_HEAVY_DEGREE

__all__ = ["APSPService", "DEFAULT_ROW_BUDGET"]

#: default row-LRU capacity (number of cached SSSP rows)
DEFAULT_ROW_BUDGET = 256


def _canonical_changes(
    graph: CSRGraph, updates: Sequence[EdgeUpdate]
) -> dict[tuple[int, int], float]:
    """Validate and dedupe updates (last wins) — the same contract
    :meth:`repro.dynamic.patch.DynamicAPSP.apply` enforces, applied here so
    the cache-miss mutation path rejects the same inputs the patch path
    would."""
    n = graph.num_vertices
    changes: dict[tuple[int, int], float] = {}
    for upd in updates:
        u, v, w = int(upd.u), int(upd.v), float(upd.weight)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            raise ValueError("self-loop updates carry no APSP information")
        if math.isnan(w) or w < 0:
            raise ValueError(f"edge weight must be >= 0 or inf, got {w}")
        changes[(u, v)] = w
    return changes


class APSPService:
    """Batched, cached, admission-controlled APSP query service."""

    def __init__(
        self,
        graph: CSRGraph,
        *,
        spec: "DeviceSpec | None" = None,
        cache_dir: "str | Path | None" = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        row_budget: int = DEFAULT_ROW_BUDGET,
        spool_dir: "str | Path | None" = None,
        budget_seconds: "float | None" = None,
        tenant_weights: "Mapping[str, float] | None" = None,
        faults=None,
        retry=None,
        batch_size: "int | None" = None,
        algorithm: str = "auto",
        queue_factor: float = DEFAULT_QUEUE_FACTOR,
    ) -> None:
        self.graph = graph
        self.spec = spec if spec is not None else V100
        self.fingerprint = graph_fingerprint(graph)
        self.algorithm = algorithm
        self.queue_factor = float(queue_factor)
        self.batch_size = batch_size
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.cache: "ClosureCache | None" = (
            ClosureCache(cache_dir, memory_budget=memory_budget)
            if cache_dir is not None
            else None
        )
        if row_budget < 0:
            raise ValueError("row_budget must be >= 0")
        self.row_budget = int(row_budget)
        self._rows: "OrderedDict[tuple[str, int], np.ndarray]" = OrderedDict()
        self.admission = AdmissionController(
            self.spec,
            budget_seconds=budget_seconds,
            weights=dict(tenant_weights or {}),
        )
        # the persistent batch device: never reset, so fault-plan ordinals
        # and the modeled clock accumulate across drains
        self.device = Device(self.spec, record_trace=False, faults=faults, retry=retry)
        self._faults = faults
        self._retry = retry
        self._csr: "tuple | None" = None
        self._auto_algorithm: "str | None" = None
        #: the service's modeled clock (simulated seconds)
        self.now = 0.0
        self._next_ticket = 0
        self._pending: "dict[int, Ticket]" = {}
        self.served: "dict[str, int]" = {}

    # ------------------------------------------------------------------
    # Submission (admission control happens here)
    # ------------------------------------------------------------------
    def submit(self, query: Query, *, at: "float | None" = None) -> Ticket:
        """Admit one query; raises
        :class:`~repro.serve.request.AdmissionError` past the budget."""
        if at is not None:
            self.now = max(self.now, float(at))
        cost = self.admission.estimate(
            self.graph, self.fingerprint, query, cached=self._is_cached(query)
        )
        vfinish = self.admission.admit(query, cost)
        ticket = Ticket(
            ticket_id=self._next_ticket,
            query=query,
            arrival=self.now,
            cost_estimate=cost,
            vfinish=vfinish,
        )
        self._next_ticket += 1
        self._pending[ticket.ticket_id] = ticket
        return ticket

    def _is_cached(self, query: Query) -> bool:
        if self.cache is not None and self.cache.contains(self.graph):
            return True
        return query.needs_row and (self.fingerprint, query.source) in self._rows

    @property
    def pending(self) -> tuple[Ticket, ...]:
        """Admitted-but-unanswered tickets in fair-queue drain order."""
        return tuple(
            sorted(self._pending.values(), key=lambda t: (t.vfinish, t.ticket_id))
        )

    # ------------------------------------------------------------------
    # Mutation (invalidation + patch-forward revalidation)
    # ------------------------------------------------------------------
    def mutate(self, updates: Sequence[EdgeUpdate], *, at: "float | None" = None):
        """Apply edge updates to the served graph.

        With a closure cached, the cache is *revalidated*: the old closure
        is patched forward through :mod:`repro.dynamic` (``O(n²)``) and
        filed under the new fingerprint. Without one, the graph simply
        moves on — the old fingerprint's entries can never be served again.
        Returns the :class:`~repro.dynamic.patch.UpdateResult` on a
        revalidation hit, else ``None``.
        """
        if at is not None:
            self.now = max(self.now, float(at))
        changes = _canonical_changes(self.graph, updates)
        old_fingerprint = self.fingerprint
        result = None
        if self.cache is not None:
            revalidated = self.cache.revalidate(self.graph, updates)
            if revalidated is not None:
                self.graph, _dist, result = revalidated
            else:
                self.graph = apply_edge_updates(self.graph, changes)
        else:
            self.graph = apply_edge_updates(self.graph, changes)
        self.fingerprint = graph_fingerprint(self.graph)
        # stale-state hygiene: rows keyed to the old fingerprint can never
        # match again, drop them now; analytic prices and the CSR residency
        # belong to the old graph
        for key in [k for k in self._rows if k[0] == old_fingerprint]:
            del self._rows[key]
        self.admission.forget(old_fingerprint)
        self._auto_algorithm = None
        self._free_csr()
        return result

    # ------------------------------------------------------------------
    # Drain: answer every pending ticket in weighted-fair order
    # ------------------------------------------------------------------
    def drain(self) -> list[Response]:
        """Serve all pending tickets against the *current* graph.

        Tickets are walked in ``(vfinish, ticket_id)`` order; consecutive
        row queries coalesce into MSSP batches, full queries run the
        out-of-core solver (checkpointed into the spool). A fault that
        exhausts its retry budget propagates and the unanswered tickets
        stay pending — the service never returns stale or partial
        distances.
        """
        if not self._pending:
            return []
        responses: list[Response] = []
        closure = self.cache.get(self.graph) if self.cache is not None else None
        run: list[Ticket] = []
        for ticket in self.pending:
            if ticket.query.kind == "full" and closure is None:
                responses.extend(self._flush_rows(run))
                run = []
                closure, response = self._serve_full_solve(ticket)
                responses.append(response)
                continue
            if closure is not None:
                responses.append(self._serve_from_closure(ticket, closure))
                continue
            row = self._rows.get((self.fingerprint, ticket.query.source))
            if row is not None:
                self._rows.move_to_end((self.fingerprint, ticket.query.source))
                responses.append(self._answer(ticket, row, "row-cache"))
                continue
            run.append(ticket)
        responses.extend(self._flush_rows(run))
        return responses

    def _answer(self, ticket: Ticket, row: np.ndarray, served_from: str, *, started: "float | None" = None) -> Response:
        q = ticket.query
        value: "float | np.ndarray"
        if q.kind == "point":
            value = float(row[q.v])
        elif q.kind == "sssp":
            value = row.copy()
        else:
            value = row.copy()  # full: row is the whole matrix here
        response = Response(
            ticket_id=ticket.ticket_id,
            query=q,
            value=value,
            arrival=ticket.arrival,
            started=ticket.arrival if started is None else started,
            completed=self.now,
            served_from=served_from,
            fingerprint=self.fingerprint,
        )
        del self._pending[ticket.ticket_id]
        self.admission.complete(ticket.cost_estimate, ticket.vfinish)
        self.served[served_from] = self.served.get(served_from, 0) + 1
        return response

    def _serve_from_closure(self, ticket: Ticket, closure: np.ndarray) -> Response:
        q = ticket.query
        if q.kind == "full":
            return self._answer(ticket, closure, "closure-cache")
        return self._answer(ticket, closure[q.source], "closure-cache")

    # -- full solves ----------------------------------------------------
    def _plan_algorithm(self) -> str:
        """Concrete algorithm for full solves: ``auto`` resolves through
        the *analytic* selector (free, deterministic) exactly once per
        graph version, so spool checkpoints bind to a stable algorithm."""
        if self.algorithm != "auto":
            return self.algorithm
        if self._auto_algorithm is None:
            from repro.select.selector import Selector

            self._auto_algorithm = (
                Selector(self.spec, analytic=True).select(self.graph).algorithm
            )
        return self._auto_algorithm

    def _serve_full_solve(self, ticket: Ticket) -> tuple[np.ndarray, Response]:
        algorithm = self._plan_algorithm()
        checkpoint_dir = None
        if self.spool_dir is not None:
            checkpoint_dir = str(
                self.spool_dir / f"{self.fingerprint[:16]}-{algorithm}"
            )
        started = self.now
        result = solve_apsp(
            self.graph,
            algorithm=algorithm,
            device=self.spec,
            faults=self._faults,
            retry=self._retry,
            checkpoint_dir=checkpoint_dir,
        )
        self.now += result.simulated_seconds
        closure = np.ascontiguousarray(result.to_array(), dtype=DIST_DTYPE)
        if self.cache is not None:
            self.cache.put(self.graph, closure)
        served_from = "solve-resumed" if result.faults.resumed > 0 else "solve"
        response = self._answer(ticket, closure, served_from, started=started)
        return closure, response

    # -- the batched MSSP path ------------------------------------------
    def plan_batch(self) -> int:
        """Distinct sources per MSSP launch: the paper's ``bat`` formula
        on the service device, optionally capped by ``batch_size``."""
        bat = plan_batch_size(
            self.graph, self.spec, queue_factor=self.queue_factor, num_row_buffers=1
        )
        bat = max(1, min(bat, self.graph.num_vertices))
        if self.batch_size is not None:
            bat = max(1, min(bat, int(self.batch_size)))
        return bat

    def _ensure_csr(self) -> tuple:
        if self._csr is not None:
            return self._csr
        graph = self.graph
        n, m = graph.num_vertices, graph.num_edges
        charge = self.spec.sparse_charge_factor
        mem = self.device.memory
        compute = self.device.default_stream
        indptr = mem.alloc(
            n + 1, np.int32, name="serve-indptr",
            charged_bytes=int(4 * (n + 1) * charge) + 1,
        )
        indices = mem.alloc(
            max(1, m), np.int32, name="serve-indices",
            charged_bytes=int(4 * m * charge) + 1,
        )
        weights = mem.alloc(
            max(1, m), DIST_DTYPE, name="serve-weights",
            charged_bytes=int(4 * m * charge) + 1,
        )
        compute.copy_h2d(indptr, graph.indptr.astype(np.int32), pinned=True)
        if m:
            compute.copy_h2d(indices, graph.indices.astype(np.int32), pinned=True)
            compute.copy_h2d(weights, graph.weights.astype(DIST_DTYPE), pinned=True)
        self._csr = (indptr, indices, weights)
        return self._csr

    def _free_csr(self) -> None:
        if self._csr is not None:
            for arr in self._csr:
                arr.free()
            self._csr = None

    def _flush_rows(self, run: list[Ticket]) -> list[Response]:
        if not run:
            return []
        bat = self.plan_batch()
        responses: list[Response] = []
        for batch in coalesce(run, bat):
            responses.extend(self._run_batch(batch, bat))
        return responses

    def _run_batch(self, batch: SourceBatch, bat: int) -> list[Response]:
        graph = self.graph
        n, m = graph.num_vertices, graph.num_edges
        charge = self.spec.sparse_charge_factor
        device = self.device
        compute = device.default_stream
        started = self.now
        t0 = device.elapsed
        csr = self._ensure_csr()
        # empty graphs leave indices/weights unwritten — don't declare them read
        csr_arrays = csr if m else (csr[0],)
        host_rows = np.empty((batch.num_sources, n), dtype=DIST_DTYPE)
        with device.memory.cleanup_on_error():
            queues = device.memory.alloc(
                max(1, int(bat * self.queue_factor * m * charge)),
                DIST_DTYPE,
                name="serve-queues",
            )
            row_buf = device.memory.alloc(
                (bat, n), DIST_DTYPE, name="serve-rows",
                charged_bytes=int(bat * n * np.dtype(DIST_DTYPE).itemsize * charge) + 1,
            )
            rows_view = row_buf.data[: batch.num_sources, :]
            run_mssp_batch(
                graph, device, compute, batch.sources, rows_view,
                bat=bat, delta=None, dynamic_parallelism=True,
                heavy_degree=DEFAULT_HEAVY_DEGREE, graph_buffers=csr_arrays,
            )
            compute.copy_d2h(host_rows, rows_view, pinned=True)
            queues.free()
            row_buf.free()
        self.now += device.synchronize() - t0
        for idx, source in enumerate(batch.sources.tolist()):
            self._store_row(int(source), host_rows[idx])
        return [
            self._answer(ticket, host_rows[row], "batch", started=started)
            for ticket, row in batch.assignments
        ]

    def _store_row(self, source: int, row: np.ndarray) -> None:
        if self.row_budget == 0:
            return
        key = (self.fingerprint, source)
        self._rows[key] = row.copy()
        self._rows.move_to_end(key)
        while len(self._rows) > self.row_budget:
            self._rows.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-serialisable service counters (CLI ``--json`` payload)."""
        return {
            "now_seconds": self.now,
            "fingerprint": self.fingerprint,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "pending": len(self._pending),
            "served": dict(sorted(self.served.items())),
            "batch_plan": self.plan_batch(),
            "graph_device_bytes": graph_device_bytes(self.graph, self.spec),
            "cached_rows": len(self._rows),
            "cache": self.cache.stats.to_dict() if self.cache is not None else None,
            "admission": self.admission.to_dict(),
        }
