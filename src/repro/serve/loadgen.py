"""Deterministic load generation for the serving layer.

The generator is pure in its seed: the same ``(graph, spec, seed)`` always
produces the same query stream and mutation schedule, which is what lets
the service bench (:mod:`repro.bench.serve`) commit modeled latency
numbers and lets the CLI's ``repro serve`` demo reproduce a workload
exactly. Weights of generated mutations stay integer-valued so every
service answer remains bit-identical to a fresh solve (the property the
differential harness in ``tests/test_serve.py`` checks).
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.patch import EdgeUpdate
from repro.graphs.csr import CSRGraph
from repro.serve.request import Query

__all__ = ["generate_queries", "generate_updates"]

#: generated mutation weights stay in the generators' integer range
_WEIGHT_LO, _WEIGHT_HI = 1, 100


def generate_queries(
    graph: CSRGraph,
    *,
    num_queries: int,
    seed: int = 0,
    tenants: "tuple[str, ...]" = ("default",),
    point_fraction: float = 0.4,
    full_fraction: float = 0.0,
    distinct_sources: bool = False,
) -> list[Query]:
    """A seeded stream of ``num_queries`` mixed queries.

    ``point_fraction`` / ``full_fraction`` split the stream (the rest are
    SSSP rows); tenants round-robin. With ``distinct_sources=True`` every
    row query gets its own source (capped at ``n`` queries) — the offered-
    load shape the throughput bench uses, where batching has no dedup help
    and the ≥3× win must come from occupancy alone.
    """
    if not 0.0 <= point_fraction + full_fraction <= 1.0:
        raise ValueError("point_fraction + full_fraction must lie in [0, 1]")
    if not tenants:
        raise ValueError("need at least one tenant")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    if distinct_sources:
        if num_queries > n:
            raise ValueError(
                f"distinct_sources needs num_queries <= n, got {num_queries} > {n}"
            )
        sources = rng.permutation(n)[:num_queries]
    else:
        sources = rng.integers(0, n, size=num_queries)
    rolls = rng.random(num_queries)
    targets = rng.integers(0, n, size=num_queries)
    queries: list[Query] = []
    for i in range(num_queries):
        tenant = tenants[i % len(tenants)]
        if rolls[i] < full_fraction:
            queries.append(Query.full(tenant=tenant))
        elif rolls[i] < full_fraction + point_fraction:
            queries.append(Query.point(int(sources[i]), int(targets[i]), tenant=tenant))
        else:
            queries.append(Query.sssp(int(sources[i]), tenant=tenant))
    return queries


def generate_updates(
    graph: CSRGraph,
    *,
    num_updates: int,
    seed: int = 0,
    delete_fraction: float = 0.2,
) -> list[EdgeUpdate]:
    """A seeded batch of edge mutations: integer re-weights (decreases
    and increases alike) plus a ``delete_fraction`` of deletions, biased
    toward existing edges so increases/deletions actually bite."""
    n = graph.num_vertices
    if n < 2:
        raise ValueError("graph needs at least two vertices to mutate")
    rng = np.random.default_rng(seed)
    src, dst, _w = graph.edge_array()
    updates: list[EdgeUpdate] = []
    for i in range(num_updates):
        if len(src) and rng.random() < 0.75:
            e = int(rng.integers(0, len(src)))
            u, v = int(src[e]), int(dst[e])
        else:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n - 1))
            if v >= u:
                v += 1
        if rng.random() < delete_fraction:
            updates.append(EdgeUpdate.delete(u, v))
        else:
            weight = float(rng.integers(_WEIGHT_LO, _WEIGHT_HI + 1))
            updates.append(EdgeUpdate(u, v, weight))
    return updates
