"""Request model of the APSP query service.

Production traffic at the ROADMAP's scale is not whole-matrix solves but
streams of small *queries*: point-to-point distances, single-source rows,
and the occasional full closure. A :class:`Query` describes one of the
three kinds; :meth:`APSPService.submit <repro.serve.service.APSPService.submit>`
wraps it in a :class:`Ticket` (arrival time on the modeled clock, admission
cost estimate, fair-queuing virtual finish time) and a later ``drain``
produces one :class:`Response` per ticket.

Everything is timestamped on the service's *modeled* clock (simulated
seconds, same unit as :attr:`repro.core.result.APSPResult.simulated_seconds`),
never wall clock — latency numbers are machine-independent and CI-gateable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AdmissionError",
    "QUERY_KINDS",
    "Query",
    "Response",
    "Ticket",
]

#: the three request kinds the service accepts
QUERY_KINDS = ("point", "sssp", "full")


@dataclass(frozen=True)
class Query:
    """One client request: a point distance, an SSSP row, or a full closure.

    ``u`` is the source for ``point``/``sssp`` queries; ``v`` is the target
    of a ``point`` query (unused otherwise). Construct via the
    :meth:`point` / :meth:`sssp` / :meth:`full` helpers.
    """

    kind: str
    u: int = -1
    v: int = -1
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}; choose from {QUERY_KINDS}")
        if self.kind in ("point", "sssp") and self.u < 0:
            raise ValueError(f"{self.kind} query needs a source vertex")
        if self.kind == "point" and self.v < 0:
            raise ValueError("point query needs a target vertex")

    @classmethod
    def point(cls, u: int, v: int, *, tenant: str = "default") -> "Query":
        return cls("point", u=int(u), v=int(v), tenant=tenant)

    @classmethod
    def sssp(cls, source: int, *, tenant: str = "default") -> "Query":
        return cls("sssp", u=int(source), tenant=tenant)

    @classmethod
    def full(cls, *, tenant: str = "default") -> "Query":
        return cls("full", tenant=tenant)

    @property
    def source(self) -> int:
        """The SSSP source this query needs a row for (``point``/``sssp``)."""
        return self.u

    @property
    def needs_row(self) -> bool:
        return self.kind in ("point", "sssp")


@dataclass
class Ticket:
    """One admitted request in flight.

    ``vfinish`` is the weighted-fair-queuing virtual finish time assigned
    at admission; drains execute pending tickets in ``(vfinish, ticket_id)``
    order, which is what keeps one flooding tenant from starving the rest.
    """

    ticket_id: int
    query: Query
    arrival: float
    cost_estimate: float
    vfinish: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        q = self.query
        return (
            f"Ticket(#{self.ticket_id} {q.kind} tenant={q.tenant!r} "
            f"arrival={self.arrival:.6f})"
        )


@dataclass
class Response:
    """The answer to one ticket, with its modeled service timeline.

    ``value`` is a float for ``point`` queries, an ``(n,)`` distance row
    for ``sssp``, and an ``(n, n)`` matrix for ``full`` — always in
    external vertex order and the library's distance dtype, bit-identical
    to a fresh :func:`repro.core.api.solve_apsp` on the graph version the
    query executed against (``fingerprint``).

    ``served_from`` names the path that produced the answer:
    ``"closure-cache"`` / ``"row-cache"`` (no device work), ``"batch"``
    (coalesced Johnson MSSP batch), ``"solve"`` (full out-of-core solve),
    or ``"solve-resumed"`` (full solve resumed from checkpoints).
    """

    ticket_id: int
    query: Query
    value: "float | np.ndarray"
    arrival: float
    started: float
    completed: float
    served_from: str
    fingerprint: str

    @property
    def latency(self) -> float:
        """Modeled seconds from arrival to completion."""
        return self.completed - self.arrival


class AdmissionError(RuntimeError):
    """The service refused a request: admitting it would push the queue's
    predicted backlog past the admission budget.

    ``retry_after`` is the modeled seconds until the current backlog is
    predicted to drain — the client's back-off hint.
    """

    def __init__(
        self,
        message: str,
        *,
        backlog_seconds: float,
        budget_seconds: float,
        retry_after: float,
    ) -> None:
        super().__init__(
            f"{message} (predicted backlog {backlog_seconds:.6f}s "
            f"vs budget {budget_seconds:.6f}s; retry after {retry_after:.6f}s)"
        )
        self.backlog_seconds = backlog_seconds
        self.budget_seconds = budget_seconds
        self.retry_after = retry_after
