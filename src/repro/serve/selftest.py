"""`repro serve --selftest`: an end-to-end differential smoke test.

Runs the full service composition — admission, fair queuing, batching,
closure/row caching, patch-forward revalidation, and a seeded-fault leg —
on a small graph and checks every answer bit-identically against fresh
:func:`repro.core.api.solve_apsp` ground truth. Deterministic in its
seed, fast enough for CI, and returns a JSON-serialisable report with an
overall ``ok`` flag (the CLI exits non-zero when any check fails).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.api import solve_apsp
from repro.faults.plan import FaultPlan
from repro.graphs.generators import erdos_renyi
from repro.gpu.device import TEST_DEVICE
from repro.serve.loadgen import generate_queries, generate_updates
from repro.serve.service import APSPService

__all__ = ["run_selftest"]


def _truth(graph) -> np.ndarray:
    return solve_apsp(graph, algorithm="johnson", device=TEST_DEVICE).to_array()


def _check_responses(responses, truth: np.ndarray) -> list[str]:
    failures: list[str] = []
    for resp in responses:
        q = resp.query
        if q.kind == "point":
            expected = float(truth[q.u, q.v])
            ok = float(resp.value) == expected
        elif q.kind == "sssp":
            ok = np.array_equal(np.asarray(resp.value), truth[q.source])
        else:
            ok = np.array_equal(np.asarray(resp.value), truth)
        if not ok:
            failures.append(
                f"ticket {resp.ticket_id} ({q.kind}, via {resp.served_from}) "
                "diverged from fresh solve"
            )
    return failures


def run_selftest(*, seed: int = 0, verbose: bool = False) -> dict:
    """Run the service selftest; returns a report dict with ``ok``."""
    graph = erdos_renyi(48, 180, seed=seed, name="selftest")
    checks: list[dict] = []

    def record(name: str, failures: list[str], detail: "dict | None" = None) -> None:
        checks.append(
            {"name": name, "ok": not failures, "failures": failures, **(detail or {})}
        )

    with tempfile.TemporaryDirectory(prefix="repro-serve-selftest-") as tmp:
        tmp_path = Path(tmp)
        service = APSPService(
            graph,
            spec=TEST_DEVICE,
            cache_dir=tmp_path / "cache",
            spool_dir=tmp_path / "spool",
        )

        # leg 1: mixed point/SSSP/full stream against the initial graph
        for query in generate_queries(
            graph, num_queries=24, seed=seed, tenants=("alpha", "beta"),
            point_fraction=0.4, full_fraction=0.1,
        ):
            service.submit(query)
        truth = _truth(graph)
        record("mixed-stream", _check_responses(service.drain(), truth))

        # leg 2: mutate (patch-forward revalidation), then query again
        updates = generate_updates(graph, num_updates=4, seed=seed + 1)
        result = service.mutate(updates)
        for query in generate_queries(
            service.graph, num_queries=12, seed=seed + 2, tenants=("alpha", "beta"),
            point_fraction=0.5,
        ):
            service.submit(query)
        truth2 = _truth(service.graph)
        failures = _check_responses(service.drain(), truth2)
        if result is None:
            failures.append("mutation did not revalidate the cached closure")
        record("mutate-revalidate", failures)

        # leg 3: seeded transient faults mid-batch must retry, never
        # corrupt an answer
        chaos = APSPService(
            graph,
            spec=TEST_DEVICE,
            # horizon 3: the single coalesced batch issues only a handful of
            # guarded ops, so faults must land on early ordinals to fire; at
            # most 3 consecutive per site, within the default retry budget
            faults=FaultPlan.random(
                seed + 3, 6, sites=("h2d", "d2h", "kernel"), horizon=3
            ),
        )
        for query in generate_queries(
            graph, num_queries=16, seed=seed + 4, point_fraction=0.25,
        ):
            chaos.submit(query)
        failures = _check_responses(chaos.drain(), truth)
        injected = chaos.device.fault_report.injected
        if injected == 0:
            failures.append("fault leg injected no faults (plan never fired)")
        record("seeded-faults", failures, {"injected": injected})

        report = {
            "ok": all(c["ok"] for c in checks),
            "seed": seed,
            "graph": {"n": graph.num_vertices, "m": graph.num_edges},
            "checks": checks,
            "stats": service.stats(),
        }
    if verbose:  # pragma: no cover - cosmetic
        for check in checks:
            print(f"  {'ok ' if check['ok'] else 'FAIL'} {check['name']}")
    return report
