"""LRU closure cache for the serving layer.

:class:`ClosureCache` wraps :class:`repro.dynamic.cache.DistanceCache`
(fingerprint-keyed, :class:`~repro.faults.checkpoint.CheckpointStore`-backed
closures on disk) with a RAM residency tier under a hard ``memory_budget``:
closures promoted into RAM serve queries without touching disk, and LRU
eviction drops residency — never the durable disk copy — once the budget
is exceeded.

Invalidation is structural: entries are keyed by graph *content*
fingerprint, so after a mutation the new fingerprint simply misses and the
stale closure can never be served (the store's own ``bind`` refuses a
directory written for a different fingerprint — see
:meth:`~repro.faults.checkpoint.CheckpointStore.bind`). Instead of
discarding the old entry, :meth:`revalidate` patches it forward through
:class:`~repro.dynamic.patch.DynamicAPSP` (``O(n²)`` instead of ``O(n³)``)
and files the result under the mutated graph's fingerprint — the ROADMAP
item-3 "wire the cache into the service layer" remainder.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.dynamic.cache import DistanceCache
from repro.dynamic.patch import EdgeUpdate, UpdateResult
from repro.faults.checkpoint import graph_fingerprint
from repro.graphs.csr import CSRGraph

__all__ = ["CacheStats", "ClosureCache"]

#: default RAM residency budget for cached closures
DEFAULT_MEMORY_BUDGET = 8 * 1024 * 1024


@dataclass
class CacheStats:
    """Counters of every way a lookup or revalidation can go."""

    #: lookups answered from the RAM tier
    ram_hits: int = 0
    #: lookups answered from disk (and promoted into RAM)
    disk_hits: int = 0
    #: lookups with no entry for the fingerprint
    misses: int = 0
    #: closures filed (stores + successful revalidations)
    stores: int = 0
    #: RAM residencies dropped by the LRU budget
    evictions: int = 0
    #: mutations patched forward from a cached closure
    revalidate_hits: int = 0
    #: mutations with no cached closure to patch (nothing to do)
    revalidate_misses: int = 0

    @property
    def hits(self) -> int:
        return self.ram_hits + self.disk_hits

    def to_dict(self) -> dict:
        return {
            "ram_hits": self.ram_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "revalidate_hits": self.revalidate_hits,
            "revalidate_misses": self.revalidate_misses,
        }


@dataclass
class _Resident:
    dist: np.ndarray
    nbytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.nbytes = int(self.dist.nbytes)


class ClosureCache:
    """Solved-closure cache: durable disk tier + budgeted RAM LRU tier."""

    def __init__(
        self,
        directory: "str | Path",
        *,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
    ) -> None:
        if memory_budget < 0:
            raise ValueError("memory_budget must be >= 0")
        self.disk = DistanceCache(directory)
        self.memory_budget = int(memory_budget)
        self.stats = CacheStats()
        self._resident: "OrderedDict[str, _Resident]" = OrderedDict()

    # ------------------------------------------------------------------
    # Residency management
    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._resident.values())

    @property
    def resident_fingerprints(self) -> tuple[str, ...]:
        """RAM-resident fingerprints, least- to most-recently used."""
        return tuple(self._resident)

    def _admit(self, fingerprint: str, dist: np.ndarray) -> None:
        entry = _Resident(dist)
        if entry.nbytes > self.memory_budget:
            # larger than the whole budget: disk-only, nothing to evict for
            self._resident.pop(fingerprint, None)
            return
        self._resident[fingerprint] = entry
        self._resident.move_to_end(fingerprint)
        while self.resident_bytes > self.memory_budget:
            evicted, _ = self._resident.popitem(last=False)
            if evicted == fingerprint:  # pragma: no cover - guarded above
                break
            self.stats.evictions += 1

    def drop(self, fingerprint: str) -> None:
        """Drop one RAM residency (the disk copy is untouched)."""
        self._resident.pop(fingerprint, None)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def contains(self, graph: CSRGraph) -> bool:
        """Whether either tier holds the closure of ``graph``, without
        counting a hit or miss (admission pricing peeks, it does not read)."""
        if graph_fingerprint(graph) in self._resident:
            return True
        return self.disk.lookup(graph) is not None

    def get(self, graph: CSRGraph) -> "np.ndarray | None":
        """The cached closure of exactly this graph, or ``None``.

        RAM tier first; a disk hit is promoted into RAM (possibly evicting
        the least-recently-used residency). A directory written for a
        different fingerprint raises
        :class:`~repro.faults.checkpoint.CheckpointError` — a stale entry
        is refused, never served.
        """
        fingerprint = graph_fingerprint(graph)
        entry = self._resident.get(fingerprint)
        if entry is not None:
            self._resident.move_to_end(fingerprint)
            self.stats.ram_hits += 1
            return entry.dist
        dist = self.disk.lookup(graph)
        if dist is None:
            self.stats.misses += 1
            return None
        self.stats.disk_hits += 1
        self._admit(fingerprint, dist)
        return dist

    def put(self, graph: CSRGraph, dist: np.ndarray) -> str:
        """File ``dist`` as the closure of ``graph``; returns the fingerprint."""
        fingerprint = graph_fingerprint(graph)
        self.disk.store(graph, dist)
        stored = self.disk.lookup(graph)
        assert stored is not None
        self._admit(fingerprint, stored)
        self.stats.stores += 1
        return fingerprint

    # ------------------------------------------------------------------
    # Mutation: patch-forward revalidation
    # ------------------------------------------------------------------
    def revalidate(
        self,
        graph: CSRGraph,
        updates: Sequence[EdgeUpdate],
    ) -> "tuple[CSRGraph, np.ndarray, UpdateResult] | None":
        """Patch the cached closure of ``graph`` under ``updates`` and file
        it under the mutated fingerprint.

        Returns ``(new_graph, new_dist, result)`` on a hit; ``None`` when
        no closure of ``graph`` is cached (a revalidation *miss* — the
        service just proceeds uncached; nothing stale survives because the
        old entry stays keyed to the old fingerprint).
        """
        old_fingerprint = graph_fingerprint(graph)
        # a foreign/stale bind must propagate as CheckpointError — only a
        # genuinely absent entry counts as a revalidation miss
        if self.disk.lookup(graph) is None:
            self.stats.revalidate_misses += 1
            self.drop(old_fingerprint)
            return None
        new_graph, new_dist, result = self.disk.revalidate(graph, updates)
        self.stats.revalidate_hits += 1
        self.stats.stores += 1
        self.drop(old_fingerprint)
        self._admit(graph_fingerprint(new_graph), new_dist)
        return new_graph, new_dist, result
