"""Admission control and per-tenant fair scheduling for the query service.

Admission prices every request with the **analytic selector's** makespan
predictions (the ``select --analytic`` machinery of
:mod:`repro.select.cost_models`): a full-APSP request costs the predicted
critical-path makespan of the best algorithm's schedule IR, and a row
(point/SSSP) request costs the amortised per-source share of the batched
Johnson makespan. No device time is spent on estimation — the same
property that makes ``--analytic`` free makes admission control free.

Two mechanisms ride on those prices:

* **admission** — a request whose cost would push the predicted queue
  backlog past ``budget_seconds`` is refused up front with
  :class:`~repro.serve.request.AdmissionError` carrying a ``retry_after``
  hint, instead of being accepted into a queue it would time out of;
* **weighted fair queuing** — each tenant owns a virtual clock advanced by
  ``cost / weight`` per admitted request; drains execute tickets in
  virtual-finish-time order, so a flooding tenant slows itself down, not
  its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec
from repro.graphs.csr import CSRGraph
from repro.serve.request import AdmissionError, Query

__all__ = ["AdmissionController", "TenantState"]


@dataclass
class TenantState:
    """Fair-queuing state and counters for one tenant."""

    name: str
    weight: float = 1.0
    #: virtual finish time of the tenant's last admitted request
    vtime: float = 0.0
    admitted: int = 0
    rejected: int = 0
    cost_admitted: float = 0.0

    def to_dict(self) -> dict:
        return {
            "weight": self.weight,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "cost_admitted_seconds": self.cost_admitted,
        }


@dataclass
class AdmissionController:
    """Prices requests analytically; admits, rejects, and orders them."""

    spec: DeviceSpec
    #: predicted-backlog ceiling; ``None`` disables admission rejection
    budget_seconds: "float | None" = None
    #: per-tenant weights (missing tenants default to 1.0)
    weights: dict[str, float] = field(default_factory=dict)
    #: estimated seconds of admitted-but-unfinished work
    backlog_seconds: float = 0.0
    #: global virtual clock: advanced to each ticket's vfinish as it completes
    vnow: float = 0.0
    tenants: dict[str, TenantState] = field(default_factory=dict)
    _full_cost: dict[str, float] = field(default_factory=dict)
    _row_cost: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Analytic pricing (cached per graph fingerprint)
    # ------------------------------------------------------------------
    def estimate(
        self, graph: CSRGraph, fingerprint: str, query: Query, *, cached: bool
    ) -> float:
        """Predicted cost of ``query`` in modeled seconds.

        ``cached=True`` (the closure of the current graph is resident)
        prices at zero: cache reads do no device work, so they are always
        admissible and never charge a tenant's fair-queue clock.
        """
        if cached:
            return 0.0
        if query.kind == "full":
            return self._full_seconds(graph, fingerprint)
        return self._row_seconds(graph, fingerprint)

    def _full_seconds(self, graph: CSRGraph, fingerprint: str) -> float:
        cost = self._full_cost.get(fingerprint)
        if cost is None:
            from repro.select.selector import Selector

            report = Selector(self.spec, analytic=True).select(graph)
            cost = report.estimated_seconds()
            self._full_cost[fingerprint] = cost
        return cost

    def _row_seconds(self, graph: CSRGraph, fingerprint: str) -> float:
        cost = self._row_cost.get(fingerprint)
        if cost is None:
            from repro.select.cost_models import analytic_estimate_johnson

            estimate = analytic_estimate_johnson(graph, self.spec)
            cost = estimate.total_seconds / max(1, graph.num_vertices)
            self._row_cost[fingerprint] = cost
        return cost

    def forget(self, fingerprint: str) -> None:
        """Drop cached prices for a fingerprint (after a mutation)."""
        self._full_cost.pop(fingerprint, None)
        self._row_cost.pop(fingerprint, None)

    # ------------------------------------------------------------------
    # Admission + fair queuing
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = TenantState(name, weight=float(self.weights.get(name, 1.0)))
            self.tenants[name] = state
        return state

    def admit(self, query: Query, cost: float) -> float:
        """Admit one request; returns its fair-queue virtual finish time.

        Raises :class:`~repro.serve.request.AdmissionError` when the
        predicted backlog (including this request) would exceed the
        budget.
        """
        state = self.tenant(query.tenant)
        if (
            self.budget_seconds is not None
            and cost > 0.0
            and self.backlog_seconds + cost > self.budget_seconds
        ):
            state.rejected += 1
            raise AdmissionError(
                f"admission refused for tenant {query.tenant!r} "
                f"({query.kind} query, estimated {cost:.6f}s)",
                backlog_seconds=self.backlog_seconds,
                budget_seconds=self.budget_seconds,
                retry_after=self.backlog_seconds,
            )
        # WFQ: an idle tenant restarts at the global virtual clock instead
        # of spending banked idle time to burst past active tenants
        start = max(self.vnow, state.vtime)
        state.vtime = start + cost / state.weight
        state.admitted += 1
        state.cost_admitted += cost
        self.backlog_seconds += cost
        return state.vtime

    def complete(self, cost: float, vfinish: float) -> None:
        """Account one finished ticket: release its backlog share and
        advance the global virtual clock."""
        self.backlog_seconds = max(0.0, self.backlog_seconds - cost)
        self.vnow = max(self.vnow, vfinish)

    def to_dict(self) -> dict:
        return {
            "budget_seconds": self.budget_seconds,
            "backlog_seconds": self.backlog_seconds,
            "tenants": {name: t.to_dict() for name, t in sorted(self.tenants.items())},
        }
