"""Coalescing pending row queries into Johnson MSSP batches.

The paper's batching formula ``bat = (L − S)/(c·m)``
(:func:`repro.core.ooc_johnson.plan_batch_size`) sizes how many SSSP
instances one MSSP kernel launch can carry. The serving layer repurposes
it as *request* batching: every pending point/SSSP query needs one source
row, and amortising many sources per launch is where the throughput lives
(occupancy: a single-source launch leaves the grid almost empty).

Coalescing uses **keyed dedup**: each batch keeps one row per *distinct*
source, in first-request order, and every ticket records the row index of
*its own* source. Two tenants requesting overlapping source sets share
rows without ever being handed another query's row — a naive
``sorted(set(sources))`` dedup breaks the per-query source mapping as soon
as request order differs from sorted order (regression-tested in
``tests/test_serve_batcher.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.serve.request import Ticket

__all__ = ["SourceBatch", "coalesce"]


@dataclass(frozen=True)
class SourceBatch:
    """One MSSP launch worth of coalesced row queries.

    ``sources`` holds the distinct sources in first-request order;
    ``assignments`` maps every ticket to the row index of its own source
    (several tickets may share a row — that is the dedup paying off).
    """

    sources: np.ndarray
    assignments: tuple[tuple[Ticket, int], ...]

    @property
    def num_sources(self) -> int:
        return int(self.sources.size)

    @property
    def num_queries(self) -> int:
        return len(self.assignments)


def coalesce(tickets: Sequence[Ticket], batch_size: int) -> list[SourceBatch]:
    """Group row-needing tickets into batches of ≤ ``batch_size`` distinct
    sources.

    Tickets are consumed in the given (fair-queue) order; a ticket whose
    source already has a row in the open batch joins that row instead of
    widening the batch (keyed dedup). The batch closes when it holds
    ``batch_size`` distinct sources, so the kernel grid never exceeds the
    ``bat`` formula's memory plan.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batches: list[SourceBatch] = []
    row_of: dict[int, int] = {}
    order: list[int] = []
    assignments: list[tuple[Ticket, int]] = []

    def close() -> None:
        if order:
            batches.append(
                SourceBatch(
                    sources=np.asarray(order, dtype=np.int64),
                    assignments=tuple(assignments),
                )
            )
        row_of.clear()
        order.clear()
        assignments.clear()

    for ticket in tickets:
        if not ticket.query.needs_row:
            raise ValueError(f"cannot coalesce a {ticket.query.kind!r} query")
        source = ticket.query.source
        row = row_of.get(source)
        if row is None:
            if len(order) >= batch_size:
                close()
            row = len(order)
            row_of[source] = row
            order.append(source)
        assignments.append((ticket, row))
    close()
    return batches
