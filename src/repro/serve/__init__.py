"""The APSP query service (ROADMAP item 1).

A batched, cached, admission-controlled serving layer over the solver
stack: point/SSSP/full queries coalesce into ``bat``-sized Johnson MSSP
batches, answers come from a fingerprint-keyed closure cache with
patch-forward revalidation, the analytic selector prices admission, and
solves checkpoint/resume through the chaos harness. See
``docs/SERVING.md`` for the request model and semantics.
"""

from repro.serve.admission import AdmissionController, TenantState
from repro.serve.batcher import SourceBatch, coalesce
from repro.serve.cache import CacheStats, ClosureCache
from repro.serve.loadgen import generate_queries, generate_updates
from repro.serve.request import AdmissionError, Query, Response, Ticket
from repro.serve.selftest import run_selftest
from repro.serve.service import APSPService

__all__ = [
    "APSPService",
    "AdmissionController",
    "AdmissionError",
    "CacheStats",
    "ClosureCache",
    "Query",
    "Response",
    "SourceBatch",
    "TenantState",
    "Ticket",
    "coalesce",
    "generate_queries",
    "generate_updates",
    "run_selftest",
]
