"""Multilevel k-way partitioner.

``partition_kway(graph, k)`` is the METIS_PartGraphKway stand-in the
boundary algorithm calls (Algorithm 3, step 1): coarsen by heavy-edge
matching, partition the coarsest graph by greedy region growing from
spread-out seeds, then uncoarsen with boundary refinement at every level.

Directed inputs are symmetrised for partitioning (cut direction is
irrelevant to the boundary-vertex definition) and connectivity strengths are
uniform, which minimises the *number* of cut edges — a proxy for the number
of boundary vertices the paper's algorithm cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.partition.coarsen import CoarseLevel, coarsen_graph
from repro.partition.refine import edge_cut, refine_partition

__all__ = ["PartitionResult", "partition_kway"]


@dataclass(frozen=True)
class PartitionResult:
    """A k-way partition and its quality measures."""

    labels: np.ndarray  # part id per vertex, in [0, num_parts)
    num_parts: int
    edge_cut: float
    part_sizes: np.ndarray

    @property
    def imbalance(self) -> float:
        """max part size / ideal part size."""
        ideal = self.part_sizes.mean()
        return float(self.part_sizes.max() / ideal) if ideal else 1.0


def _spread_seeds(graph: CSRGraph, k: int, rng: np.random.Generator) -> np.ndarray:
    """k seeds chosen by repeated farthest-point BFS (hop distance)."""
    n = graph.num_vertices
    seeds = [int(rng.integers(n))]
    hop = _bfs_hops(graph, seeds[0])
    for _ in range(1, k):
        cand = int(np.argmax(np.where(np.isfinite(hop), hop, -1.0)))
        if hop[cand] <= 0:  # disconnected or exhausted: random unseeded vertex
            unused = np.setdiff1d(np.arange(n), np.array(seeds))
            cand = int(rng.choice(unused)) if unused.size else int(rng.integers(n))
        seeds.append(cand)
        hop = np.minimum(hop, _bfs_hops(graph, cand))
    return np.array(seeds, dtype=np.int64)


def _bfs_hops(graph: CSRGraph, source: int) -> np.ndarray:
    n = graph.num_vertices
    hop = np.full(n, np.inf)
    hop[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        nxt: list[np.ndarray] = []
        for u in frontier:
            nbrs = graph.indices[graph.indptr[u] : graph.indptr[u + 1]]
            fresh = nbrs[~np.isfinite(hop[nbrs])]
            if fresh.size:
                hop[fresh] = level
                nxt.append(np.unique(fresh))
        frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, dtype=np.int64)
    return hop


def _grow_regions(
    graph: CSRGraph,
    seeds: np.ndarray,
    vertex_weight: np.ndarray,
    balance_tol: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy multi-source region growing with per-part weight budgets."""
    n = graph.num_vertices
    k = seeds.size
    labels = np.full(n, -1, dtype=np.int64)
    budget = balance_tol * vertex_weight.sum() / k
    weight = np.zeros(k)
    frontiers: list[list[int]] = [[int(s)] for s in seeds]
    for p, s in enumerate(seeds):
        labels[s] = p
        weight[p] += vertex_weight[s]

    active = True
    while active:
        active = False
        for p in rng.permutation(k):
            if weight[p] >= budget or not frontiers[p]:
                continue
            new_frontier: list[int] = []
            for u in frontiers[p]:
                for v in graph.indices[graph.indptr[u] : graph.indptr[u + 1]]:
                    if labels[v] < 0 and weight[p] + vertex_weight[v] <= budget:
                        labels[v] = p
                        weight[p] += vertex_weight[v]
                        new_frontier.append(int(v))
            frontiers[p] = new_frontier
            if new_frontier:
                active = True

    # Unreached vertices (disconnected or budget-blocked) go to the lightest part.
    for v in np.nonzero(labels < 0)[0]:
        p = int(np.argmin(weight))
        labels[v] = p
        weight[p] += vertex_weight[v]
    return labels


def partition_kway(
    graph: CSRGraph,
    num_parts: int,
    *,
    balance_tol: float = 1.10,
    coarsen_to: int | None = None,
    seed: int = 0,
    refine_passes: int = 4,
) -> PartitionResult:
    """Partition ``graph`` into ``num_parts`` balanced parts.

    Returns a :class:`PartitionResult`; ``labels[v]`` is ``v``'s part.
    ``coarsen_to`` stops coarsening once the graph has at most that many
    vertices (default ``max(20·k, 200)``).
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_vertices
    if num_parts == 1 or n <= num_parts:
        labels = np.zeros(n, dtype=np.int64) if num_parts == 1 else np.arange(n) % num_parts
        sym = graph.symmetrize()
        return PartitionResult(
            labels=labels,
            num_parts=num_parts,
            edge_cut=edge_cut(sym, labels) / 2.0,
            part_sizes=np.bincount(labels, minlength=num_parts),
        )

    rng = np.random.default_rng(seed)
    # Partition on the symmetrised graph with uniform strengths.
    src, dst, _ = graph.symmetrize().edge_array()
    work = CSRGraph.from_edges(n, src, dst, np.ones(src.size), dedupe="min")

    if coarsen_to is None:
        coarsen_to = max(20 * num_parts, 200)

    levels: list[CoarseLevel] = []
    cur = work
    cur_weight = np.ones(n)
    while cur.num_vertices > coarsen_to:
        level = coarsen_graph(cur, cur_weight, rng=rng)
        if level.graph.num_vertices >= cur.num_vertices * 0.95:
            break  # matching stalled (e.g. star graphs) — stop coarsening
        levels.append(level)
        cur = level.graph
        cur_weight = level.vertex_weight

    seeds = _spread_seeds(cur, num_parts, rng)
    labels = _grow_regions(cur, seeds, cur_weight, balance_tol, rng)
    labels = refine_partition(
        cur, labels, num_parts,
        vertex_weight=cur_weight, balance_tol=balance_tol,
        max_passes=refine_passes, rng=rng,
    )

    for idx in range(len(levels) - 1, -1, -1):
        level = levels[idx]
        labels = labels[level.fine_to_coarse]
        if idx == 0:
            finer, finer_weight = work, np.ones(n)
        else:
            finer = levels[idx - 1].graph
            finer_weight = levels[idx - 1].vertex_weight
        labels = refine_partition(
            finer, labels, num_parts,
            vertex_weight=finer_weight, balance_tol=balance_tol,
            max_passes=refine_passes, rng=rng,
        )

    sizes = np.bincount(labels, minlength=num_parts)
    return PartitionResult(
        labels=labels,
        num_parts=num_parts,
        edge_cut=edge_cut(work, labels) / 2.0,
        part_sizes=sizes,
    )
