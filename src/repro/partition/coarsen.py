"""Graph coarsening by heavy-edge matching.

Each coarsening level matches vertices with their heaviest-connectivity
unmatched neighbour and contracts matched pairs. Vertex weights accumulate
(so balance on the coarse graph reflects fine-graph sizes) and parallel
edges merge with summed connectivity. Edge *weights* here are connectivity
strengths for the partitioner, not shortest-path lengths — the partitioner
treats every input edge as strength 1, the standard choice for minimising
the boundary-vertex count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["CoarseLevel", "coarsen_graph", "heavy_edge_matching"]


@dataclass(frozen=True)
class CoarseLevel:
    """One level of the coarsening hierarchy."""

    graph: CSRGraph  # coarse graph (edge weights = connectivity strengths)
    vertex_weight: np.ndarray  # fine vertices contained in each coarse vertex
    fine_to_coarse: np.ndarray  # map from the previous level's vertices


def heavy_edge_matching(
    graph: CSRGraph, *, rng: np.random.Generator
) -> np.ndarray:
    """Greedy heavy-edge matching; returns ``match[v]`` (= v if unmatched).

    Vertices are visited in random order; each unmatched vertex matches its
    heaviest-strength unmatched neighbour.
    """
    n = graph.num_vertices
    match = np.arange(n, dtype=np.int64)
    matched = np.zeros(n, dtype=bool)
    order = rng.permutation(n)
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for u in order:
        if matched[u]:
            continue
        lo, hi = indptr[u], indptr[u + 1]
        best = -1
        best_w = -np.inf
        for e in range(lo, hi):
            v = indices[e]
            if v != u and not matched[v] and weights[e] > best_w:
                best = v
                best_w = weights[e]
        if best >= 0:
            match[u] = best
            match[best] = u
            matched[u] = True
            matched[best] = True
    return match


def coarsen_graph(
    graph: CSRGraph,
    vertex_weight: np.ndarray,
    *,
    rng: np.random.Generator,
) -> CoarseLevel:
    """Contract a heavy-edge matching into a coarser graph."""
    n = graph.num_vertices
    match = heavy_edge_matching(graph, rng=rng)

    # Assign coarse ids: the lower endpoint of each pair owns the id.
    owner = np.minimum(np.arange(n), match)
    is_owner = owner == np.arange(n)
    coarse_id = np.cumsum(is_owner) - 1
    fine_to_coarse = coarse_id[owner]

    nc = int(is_owner.sum())
    cw = np.bincount(fine_to_coarse, weights=vertex_weight, minlength=nc)

    src, dst, w = graph.edge_array()
    cs, cd = fine_to_coarse[src], fine_to_coarse[dst]
    keep = cs != cd  # drop edges internal to a contracted pair
    coarse = CSRGraph.from_edges(nc, cs[keep], cd[keep], w[keep], dedupe="sum")
    return CoarseLevel(graph=coarse, vertex_weight=cw, fine_to_coarse=fine_to_coarse)
