"""Boundary-vertex extraction and small-separator classification.

The paper (Section IV-B): for an edge ``(u, v)`` whose endpoints lie in
different components, *both* ``u`` and ``v`` are boundary nodes. A graph
"has a small separator" when, after partitioning into ``k = √n`` parts, the
number of boundary nodes ``NB`` is close to the planar-ideal
:math:`\\sqrt{kn}`; Tables III classifies graphs this way and the boundary
cost model bins ``c_unit`` by ``NB`` ranges ``[n^{3/4}, 2·n^{3/4}]``, … .
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.partition.kway import partition_kway

__all__ = ["SeparatorInfo", "boundary_nodes", "classify_separator", "separator_info"]

#: NB within this factor of √(kn) counts as "small separator". The paper's
#: Table III split corresponds to this threshold: its small-separator graphs
#: have NB/√(kn) between 0.4 (luxembourg_osm) and ~2.5 (wi2010, nm2010),
#: while its "other sparse" graphs start at ~6 (onera_dual) and reach ~20
#: (SiO2); 4.0 separates the classes with margin on both sides.
SMALL_SEPARATOR_FACTOR = 4.0


def boundary_nodes(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """Vertices incident to a cut edge (both endpoints, per the paper)."""
    src, dst, _ = graph.edge_array()
    cut = labels[src] != labels[dst]
    return np.unique(np.concatenate([src[cut], dst[cut]]))


@dataclass(frozen=True)
class SeparatorInfo:
    """Separator features of one partitioned graph."""

    num_parts: int
    num_boundary: int
    ideal_boundary: float  # √(kn)
    boundary_per_part: np.ndarray
    small_separator: bool

    @property
    def ratio(self) -> float:
        """NB / √(kn); ≈1 for planar-like graphs."""
        return self.num_boundary / self.ideal_boundary if self.ideal_boundary else np.inf

    @property
    def range_index(self) -> int:
        """Index of the paper's NB range: 0 → [ideal, 2·ideal), 1 → [2, 4·ideal), …"""
        r = max(self.ratio, 1.0)
        return int(np.floor(np.log2(r)))


def separator_info(
    graph: CSRGraph,
    labels: np.ndarray,
    *,
    small_factor: float = SMALL_SEPARATOR_FACTOR,
) -> SeparatorInfo:
    """Compute separator features for an existing partition."""
    k = int(labels.max()) + 1 if labels.size else 1
    bnd = boundary_nodes(graph, labels)
    per_part = np.bincount(labels[bnd], minlength=k) if bnd.size else np.zeros(k, dtype=np.int64)
    ideal = float(np.sqrt(k * graph.num_vertices))
    return SeparatorInfo(
        num_parts=k,
        num_boundary=int(bnd.size),
        ideal_boundary=ideal,
        boundary_per_part=per_part,
        small_separator=bnd.size <= small_factor * ideal,
    )


def classify_separator(
    graph: CSRGraph,
    *,
    num_parts: int | None = None,
    seed: int = 0,
    small_factor: float = SMALL_SEPARATOR_FACTOR,
) -> SeparatorInfo:
    """Partition with the paper's ``k = √n`` and classify the separator."""
    n = graph.num_vertices
    k = num_parts if num_parts is not None else max(2, int(round(np.sqrt(n))))
    result = partition_kway(graph, k, seed=seed)
    return separator_info(graph, result.labels, small_factor=small_factor)
