"""Boundary refinement: greedy Kernighan–Lin-style vertex moves.

Given a k-way labelling, repeatedly move boundary vertices to the
neighbouring part with the largest cut-reduction *gain*, subject to a
balance constraint on weighted part sizes. This is the uncoarsening-phase
refinement of the multilevel scheme (METIS calls it greedy k-way
refinement); a few passes per level recover most of the cut quality of a
full FM implementation at a fraction of the complexity.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = ["refine_partition", "edge_cut"]


def edge_cut(graph: CSRGraph, labels: np.ndarray) -> float:
    """Total strength of edges crossing parts (each direction counted once)."""
    src, dst, w = graph.edge_array()
    return float(w[labels[src] != labels[dst]].sum())


def refine_partition(
    graph: CSRGraph,
    labels: np.ndarray,
    num_parts: int,
    *,
    vertex_weight: np.ndarray | None = None,
    balance_tol: float = 1.10,
    max_passes: int = 4,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine ``labels`` in place-ish (returns a new array).

    A move of vertex ``v`` from part ``a`` to ``b`` has gain
    ``conn(v, b) − conn(v, a)`` where ``conn`` sums strengths of ``v``'s
    edges into a part. Moves must keep every part's weight at most
    ``balance_tol · (total/num_parts)`` and no part may be emptied.
    """
    labels = np.asarray(labels, dtype=np.int64).copy()
    n = graph.num_vertices
    if vertex_weight is None:
        vertex_weight = np.ones(n)
    if rng is None:
        rng = np.random.default_rng(0)
    part_weight = np.bincount(labels, weights=vertex_weight, minlength=num_parts)
    max_weight = balance_tol * vertex_weight.sum() / num_parts
    part_count = np.bincount(labels, minlength=num_parts)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    for _pass in range(max_passes):
        moved = 0
        src, dst, _ = graph.edge_array()
        boundary = np.unique(src[labels[src] != labels[dst]])
        if boundary.size == 0:
            break
        for v in rng.permutation(boundary):
            a = labels[v]
            if part_count[a] <= 1:
                continue
            lo, hi = indptr[v], indptr[v + 1]
            nbr_parts = labels[indices[lo:hi]]
            conn = np.bincount(nbr_parts, weights=weights[lo:hi], minlength=num_parts)
            conn_a = conn[a]
            conn[a] = -np.inf
            # Only parts with room.
            room = part_weight + vertex_weight[v] <= max_weight
            conn[~room] = -np.inf
            b = int(np.argmax(conn))
            if conn[b] == -np.inf:
                continue
            gain = conn[b] - conn_a
            if gain > 0:
                labels[v] = b
                part_weight[a] -= vertex_weight[v]
                part_weight[b] += vertex_weight[v]
                part_count[a] -= 1
                part_count[b] += 1
                moved += 1
        if moved == 0:
            break
    return labels
