"""Multilevel k-way graph partitioning (METIS substitute).

The paper's boundary algorithm uses METIS's k-way partitioner (Section
III-C) to split the graph into ``k`` balanced components with few boundary
vertices. METIS is unavailable here, so this subpackage implements the same
multilevel scheme from scratch:

1. **coarsening** by heavy-edge matching until the graph is small
   (:mod:`~repro.partition.coarsen`),
2. an **initial partition** of the coarsest graph by greedy region growing
   (:mod:`~repro.partition.kway`),
3. **uncoarsening with boundary refinement** — greedy Kernighan–Lin-style
   moves that reduce the edge cut under a balance constraint
   (:mod:`~repro.partition.refine`).

:mod:`~repro.partition.separator` derives what the paper's selector needs
from a partition: the boundary-vertex set, its size ``NB``, and the
small-separator classification against the :math:`\\sqrt{kn}` ideal.
"""

from repro.partition.coarsen import CoarseLevel, coarsen_graph, heavy_edge_matching
from repro.partition.kway import PartitionResult, partition_kway
from repro.partition.refine import refine_partition
from repro.partition.separator import (
    SeparatorInfo,
    boundary_nodes,
    classify_separator,
    separator_info,
)

__all__ = [
    "CoarseLevel",
    "PartitionResult",
    "SeparatorInfo",
    "boundary_nodes",
    "classify_separator",
    "coarsen_graph",
    "heavy_edge_matching",
    "partition_kway",
    "refine_partition",
    "separator_info",
]
