"""Top-level verification pipeline: static proofs + sanitizer legs + defects.

:func:`verify_kernels` is what the CLI (``repro verify-kernels``) and the
autotuner consume. It composes:

- the **static pass** (:func:`static_findings`): affine bounds proofs,
  interprocedural call-region checks, alias-class derivation, OpenMP
  panel disjointness, router seq-discipline, and the Python dispatch
  cross-check — all purely symbolic, no compiler needed;
- optional **sanitizer legs** (ASan/UBSan matrix replays, the TSan
  driver for ``cc-omp``), skipped with an honest record when the
  toolchain lacks a mode;
- the optional **seeded-defect cross-validation**: every defect in
  :data:`repro.verifykernel.defects.DEFECTS` must be flagged by the
  static pass *and* by its dynamic catcher — zero false negatives on
  the seeded suite, zero findings on clean kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.backends import jit
from repro.core.backends.jit import KERNEL_TEMPLATES
from repro.verifykernel import cparse
from repro.verifykernel.alias import (
    check_call_aliasing,
    check_parallel_disjointness,
    check_python_dispatch,
    derive_alias_class,
)
from repro.verifykernel.bounds import Finding, analyze_kernel, check_kernel_bounds
from repro.verifykernel.defects import DEFECTS, SeededDefect
from repro.verifykernel.sanitizers import SanitizerRunResult, run_matrix

__all__ = [
    "SCHEMA_VERSION",
    "DefectResult",
    "KernelVerification",
    "static_findings",
    "verify_kernels",
]

SCHEMA_VERSION = 1


def static_findings(
    overrides: dict[str, str] | None = None,
    python_source: str | None = None,
) -> list[Finding]:
    """Run the full static pass; returns every finding (empty = proven).

    ``overrides`` substitutes kernel template sources (seeded defects);
    ``python_source`` substitutes the dispatch-layer source checked by
    the Python cross-check (defaults to the shipped ``jit.py``).
    """
    overrides = overrides or {}
    findings: list[Finding] = []
    templates_by_name = {t.name: t for t in KERNEL_TEMPLATES}
    parsed: dict[str, cparse.FuncDef] = {}
    for t in KERNEL_TEMPLATES:
        source = overrides.get(t.name, t.source)
        try:
            parsed[t.name] = cparse.parse_kernel(source)
        except cparse.CParseError as exc:
            findings.append(Finding("parse", t.name, 0, str(exc)))
    known = frozenset(parsed)
    analyses = {}
    derived: dict[str, str] = {}
    for t in KERNEL_TEMPLATES:
        if t.name not in parsed:
            continue
        analysis, bounds_findings = check_kernel_bounds(
            t, parsed[t.name], templates_by_name, parsed
        )
        analyses[t.name] = analysis
        findings.extend(bounds_findings)
        cls, class_findings = derive_alias_class(analysis, t)
        derived[t.name] = cls
        findings.extend(class_findings)
    for t in KERNEL_TEMPLATES:
        if t.name not in analyses:
            continue
        findings.extend(
            check_parallel_disjointness(
                analyses[t.name], t, templates_by_name, parsed
            )
        )
        findings.extend(
            check_call_aliasing(
                analyses[t.name], t, templates_by_name, parsed, derived
            )
        )
    if python_source is None:
        python_source = Path(jit.__file__).read_text()
    findings.extend(check_python_dispatch(python_source))
    return findings


@dataclass
class DefectResult:
    """Cross-validation outcome for one seeded defect."""

    defect: SeededDefect
    static_caught: bool
    static_findings: list[Finding]
    dynamic: SanitizerRunResult | None  # None = leg unavailable, skipped
    ok: bool

    def to_dict(self) -> dict:
        return {
            "name": self.defect.name,
            "static_caught": self.static_caught,
            "static_findings": [f.to_dict() for f in self.static_findings],
            "dynamic": self.dynamic.to_dict() if self.dynamic else None,
            "dynamic_skipped": self.dynamic is None,
            "ok": self.ok,
        }


def _run_defect(defect: SeededDefect, *, fast: bool) -> DefectResult:
    templates_by_name = {t.name: t for t in KERNEL_TEMPLATES}
    if defect.kind == "c":
        overrides = defect.overrides(templates_by_name)
        found = static_findings(overrides)
    else:
        patched = defect.apply(Path(jit.__file__).read_text())
        found = static_findings(python_source=patched)
    relevant = [f for f in found if f.check == defect.static_check]
    static_caught = bool(relevant)

    dynamic: SanitizerRunResult | None
    if defect.dynamic == "divergence":
        dynamic = run_matrix("asan", force_fast_alias=True, fast=fast)
    elif defect.kind == "c":
        dynamic = run_matrix(
            defect.dynamic, overrides=defect.overrides(templates_by_name), fast=fast
        )
    else:  # pragma: no cover - no such defect today
        dynamic = None
    if dynamic is not None and not dynamic.available:
        dynamic = None  # toolchain can't run the leg: skip, don't fail
    ok = static_caught and (dynamic is None or dynamic.caught)
    return DefectResult(defect, static_caught, relevant, dynamic, ok)


@dataclass
class KernelVerification:
    """Aggregated result of one ``verify-kernels`` run."""

    findings: list[Finding] = field(default_factory=list)
    sanitizers: list[SanitizerRunResult] = field(default_factory=list)
    defects: list[DefectResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        static_ok = not self.findings
        legs_ok = all(s.clean for s in self.sanitizers if s.ran)
        defects_ok = all(d.ok for d in self.defects)
        return static_ok and legs_ok and defects_ok

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "ok": self.ok,
            "kernels": [t.name for t in KERNEL_TEMPLATES],
            "findings": [f.to_dict() for f in self.findings],
            "sanitizers": [s.to_dict() for s in self.sanitizers],
            "defects": [d.to_dict() for d in self.defects],
        }


def verify_kernels(
    *,
    sanitize: tuple[str, ...] = (),
    defects: bool = False,
    fast: bool = True,
) -> KernelVerification:
    """Verify every shipped kernel flavor; see module docstring."""
    result = KernelVerification(findings=static_findings())
    for mode in sanitize:
        result.sanitizers.append(run_matrix(mode, fast=fast))
    if defects:
        for defect in DEFECTS:
            result.defects.append(_run_defect(defect, fast=fast))
    return result
